"""Figure 2: the worked aggregate-advantage example.

Regenerates the paper's candidate table for the pharmacy problem load
under the exact published assumptions (100 iterations, 60/20 path
split, 40 misses, unit latency, Lmem=8, 4-wide, IPC 1) and checks the
published scores: -10, -20, 7.5, 40, 177.5 (printed 177), 165.
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness.report import render_table
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.model import ModelParams, evaluate_candidate
from repro.pthreads import PThreadBody

PARAMS = ModelParams(bw_seq=4, unassisted_ipc=1.0, mem_latency=8, load_latency=1)

I11 = Instruction(Opcode.ADDI, rd=5, rs1=5, imm=16, pc=11)
I04 = Instruction(Opcode.LW, rd=7, rs1=5, imm=4, pc=4)
I07 = Instruction(Opcode.SLLI, rd=7, rs1=7, imm=2, pc=7)
I08 = Instruction(Opcode.ADDI, rd=7, rs1=7, imm=8192, pc=8)
I09 = Instruction(Opcode.LW, rd=8, rs1=7, imm=0, pc=9)

CANDIDATES = [
    ("1 trig=#08", [I09], [2], 80, 40),
    ("2 trig=#07", [I08, I09], [2, 3], 80, 40),
    ("3 trig=#04", [I07, I08, I09], [3, 4, 5], 60, 30),
    ("4 trig=#11", [I04, I07, I08, I09], [8, 10, 11, 12], 100, 30),
    ("5 trig=#11 u1", [I11, I04, I07, I08, I09], [13, 20, 22, 23, 24], 100, 30),
    ("6 trig=#11 u2", [I11, I11, I04, I07, I08, I09],
     [13, 25, 32, 34, 35, 36], 100, 30),
]

PAPER_SCORES = [-10.0, -20.0, 7.5, 40.0, 177.5, 165.0]


def compute_scores():
    scores = []
    for name, insts, dists, dc_trig, dc_ptcm in CANDIDATES:
        scores.append(
            evaluate_candidate(
                11, 9, len(insts), insts, dists, PThreadBody(insts),
                dc_trig, dc_ptcm, PARAMS,
            )
        )
    return scores


def test_fig2_working_example(benchmark, save_report):
    scores = run_once(benchmark, compute_scores)
    rows = []
    for (name, *_), score, paper in zip(CANDIDATES, scores, PAPER_SCORES):
        rows.append(
            [
                name,
                score.size,
                score.scdh_mt,
                score.scdh_pt,
                score.lt,
                score.lt_agg,
                score.oh_agg,
                score.adv_agg,
                paper,
            ]
        )
    save_report(
        "fig2_working_example",
        render_table(
            ["candidate", "SIZE", "SCDHmt", "SCDHpt", "LT", "LTagg",
             "OHagg", "ADVagg", "paper ADVagg"],
            rows,
            title="Figure 2: aggregate advantage working example",
            precision=1,
        ),
    )
    for score, paper in zip(scores, PAPER_SCORES):
        assert score.adv_agg == pytest.approx(paper)
    assert max(scores, key=lambda s: s.adv_agg) is scores[4]
