"""Figure 8: response to memory-latency variation (cross-validation).

Four experiments per benchmark in the paper's pXX(tYY) notation —
simulate latency XX with p-threads selected assuming YY, for
XX, YY in {70, 140}.  Published trends: a latency increase makes the
framework select longer p-threads that fully cover fewer misses; the
self-validation experiments generally match or beat the corresponding
cross-validation experiments.
"""

from benchmarks.conftest import run_once
from repro.harness.figures import figure8_memory_latency

# Bar order from repro.harness.figures: p140(t70), p140(t140),
# p70(t70), p70(t140).
P140_T70, P140_T140, P70_T70, P70_T140 = 0, 1, 2, 3


def test_fig8_memory_latency(benchmark, runner, executor, workloads, save_report):
    figure = run_once(
        benchmark,
        lambda: figure8_memory_latency(
            runner, workloads=workloads, executor=executor
        ),
    )
    save_report("fig8_memory_latency", figure.render())

    longer = 0
    self_wins_high = 0
    fuller = 0
    active = 0
    for name in workloads:
        lengths = figure.series(name, "pthread_len")
        full = figure.series(name, "full_coverage_pct")
        ipcs = [r.preexec.ipc for r in figure.results[name]]
        if not any(lengths):
            continue
        active += 1
        # Higher assumed latency -> longer p-threads (compare the two
        # t140 selections against the two t70 selections).
        if (
            lengths[P140_T140] >= lengths[P140_T70] - 0.25
            and lengths[P70_T140] >= lengths[P70_T70] - 0.25
        ):
            longer += 1
        # At the long simulated latency, self-validation must win: the
        # t70 p-threads simply cannot tolerate 140 cycles.
        if ipcs[P140_T140] >= ipcs[P140_T70] * 0.97:
            self_wins_high += 1
        # Over-specification buys more *full* coverage ("the light gray
        # bars are highest in this group").
        if full[P70_T140] >= full[P70_T70] - 1.0:
            fuller += 1
    if active:
        assert longer >= 0.6 * active
        assert self_wins_high >= 0.7 * active
        assert fuller >= 0.7 * active
    # At the short simulated latency the paper's contention exception —
    # over-specification helping the framework "model bus contention" —
    # dominates our miss-dense suite, so no p70 self-win assertion is
    # made; EXPERIMENTS.md discusses the reversal.
