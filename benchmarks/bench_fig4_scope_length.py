"""Figure 4: combined impact of slicing scope and p-thread length.

Sweeps the paper's four scope/length combinations (256/8, 512/16,
1024/32, 2048/64).  The published trends: p-thread length, full miss
coverage, and performance increase as constraints relax, then saturate
— "each combination of program and processor configuration has a
natural set of p-threads".
"""

from benchmarks.conftest import run_once
from repro.harness.figures import figure4_scope_length

COMBOS = ((256, 8), (512, 16), (1024, 32), (2048, 64))


def test_fig4_scope_length(benchmark, runner, executor, workloads, save_report):
    figure = run_once(
        benchmark,
        lambda: figure4_scope_length(
            runner, workloads=workloads, combos=COMBOS, executor=executor
        ),
    )
    save_report("fig4_scope_length", figure.render())

    rising_full = 0
    for name in workloads:
        lengths = figure.series(name, "pthread_len")
        # Relaxation never shrinks achievable p-thread length (within
        # noise of the selector's choices).
        assert lengths[-1] >= lengths[0] - 0.5
        full = figure.series(name, "full_coverage_pct")
        # Full coverage rises with relaxation for most benchmarks.  It
        # is not universal: longer p-threads can trade full coverage of
        # a subset for breadth (the paper's "longer p-threads ... cover
        # fewer misses" effect; our vortex shows it).
        if full[-1] >= full[0] - 2.0:
            rising_full += 1
    assert rising_full >= 0.7 * len(workloads)

    # Saturation: the last relaxation step changes full coverage less
    # than the total swing, for a majority of benchmarks.
    saturating = 0
    for name in workloads:
        full = figure.series(name, "full_coverage_pct")
        swing = max(full) - min(full)
        last_step = abs(full[-1] - full[-2])
        if swing < 1.0 or last_step <= 0.5 * swing + 1.0:
            saturating += 1
    assert saturating >= 0.6 * len(workloads)
