"""Ablation: conventional stride prefetching vs. pre-execution.

The paper's opening claim: "certain static problem loads defy address
prediction and their misses elude prefetching" — pre-execution exists
for those loads.  This bench quantifies the claim on the suite: a
classic stride prefetcher (Chen & Baer, the paper's reference [1])
against the framework's p-threads, coverage and speedup side by side.

Expected shape: stride prefetching helps streaming access patterns and
is useless on computed/pointer addresses (vpr.p, mcf, parser), where
pre-execution does its work.
"""

from benchmarks.conftest import run_once
from repro.harness.experiment import ExperimentConfig
from repro.harness.report import render_table
from repro.timing.config import BASELINE, MachineConfig
from repro.timing.core import TimingSimulator


def measure(runner, workloads):
    rows = []
    for name in workloads:
        result = runner.run(ExperimentConfig(workload=name))
        workload = result.workload
        stride = TimingSimulator(
            workload.program,
            workload.hierarchy,
            MachineConfig(stride_prefetch=True),
        ).run(BASELINE)
        rows.append(
            dict(
                name=name,
                base_ipc=result.baseline.ipc,
                stride_cov=100.0 * stride.coverage_fraction,
                stride_speedup=100.0 * stride.speedup_over(result.baseline),
                preexec_cov=100.0 * result.coverage,
                preexec_speedup=100.0 * result.speedup,
            )
        )
    return rows


def test_stride_vs_preexecution(benchmark, runner, workloads, save_report):
    rows = run_once(benchmark, lambda: measure(runner, workloads))
    save_report(
        "ablation_stride_vs_preexecution",
        render_table(
            ["benchmark", "base IPC", "stride cov%", "stride speedup%",
             "pre-exec cov%", "pre-exec speedup%"],
            [
                [r["name"], r["base_ipc"], r["stride_cov"],
                 r["stride_speedup"], r["preexec_cov"], r["preexec_speedup"]]
                for r in rows
            ],
            title="Ablation: stride prefetching vs. pre-execution",
        ),
    )
    by_name = {r["name"]: r for r in rows}
    # Computed/pointer addresses defy address prediction.
    for hard in ("vpr.p", "mcf", "parser"):
        if hard in by_name:
            assert by_name[hard]["stride_cov"] < 20.0
    # Pre-execution reaches misses stride prefetching cannot, overall.
    total_pre = sum(r["preexec_cov"] for r in rows)
    total_stride = sum(r["stride_cov"] for r in rows)
    assert total_pre > total_stride
