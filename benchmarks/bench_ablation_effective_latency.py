"""Ablation: the critical-path (effective-latency) refinement.

The paper (§4.3): "the simulated metric that most poorly correlates
with its predicted value is performance improvement ... generally
overestimated.  The primary cause is a single assumption ... that miss
latency translates cycle for cycle into execution latency."  Its future
work names a critical-path model as the fix.

This bench runs selection both ways — naive ``Lmem`` vs. the per-load
exposed-stall measurement — and reports IPC prediction error and end
performance for each, demonstrating the refinement shrinks the
prediction error the paper complains about.
"""

from benchmarks.conftest import run_once
from repro.harness.experiment import ExperimentConfig
from repro.harness.report import render_table


def measure(runner, workloads):
    rows = []
    for name in workloads:
        naive = runner.run(ExperimentConfig(workload=name))
        refined = runner.run(
            ExperimentConfig(workload=name, effective_latency=True)
        )

        def err(result):
            measured = result.preexec.ipc
            if measured <= 0:
                return 0.0
            predicted = result.selection.prediction.predicted_ipc
            return 100.0 * abs(predicted - measured) / measured

        rows.append(
            dict(
                name=name,
                naive_pred=naive.selection.prediction.predicted_ipc,
                naive_meas=naive.preexec.ipc,
                naive_err=err(naive),
                refined_pred=refined.selection.prediction.predicted_ipc,
                refined_meas=refined.preexec.ipc,
                refined_err=err(refined),
            )
        )
    return rows


def test_effective_latency_ablation(benchmark, runner, workloads, save_report):
    rows = run_once(benchmark, lambda: measure(runner, workloads))
    save_report(
        "ablation_effective_latency",
        render_table(
            ["benchmark", "naive pred IPC", "naive meas IPC", "naive err%",
             "refined pred IPC", "refined meas IPC", "refined err%"],
            [
                [r["name"], r["naive_pred"], r["naive_meas"], r["naive_err"],
                 r["refined_pred"], r["refined_meas"], r["refined_err"]]
                for r in rows
            ],
            title="Ablation: effective-latency (critical-path) refinement",
        ),
    )
    active = [r for r in rows if r["naive_meas"] > 0 and r["naive_err"] > 1.0]
    if active:
        improved = sum(
            1 for r in active if r["refined_err"] <= r["naive_err"] + 1.0
        )
        assert improved >= 0.6 * len(active)
        # Aggregate prediction error must shrink.
        assert sum(r["refined_err"] for r in active) <= sum(
            r["naive_err"] for r in active
        )
