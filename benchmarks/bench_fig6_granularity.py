"""Figure 6: p-thread selection granularity.

Whole-run selection vs. region-specialized selection (run/8, run/32,
run/128 — proportional stand-ins for the paper's 100M/10M/1M regions
of billion-instruction runs).  The published finding is *consistency*:
results are broadly similar across grains — "a certain amount of
self-similarity in programs" — with occasional coverage loss at the
finest grain when a region's statistics no longer justify a p-thread.
"""

from benchmarks.conftest import run_once
from repro.harness.figures import figure6_granularity

DIVISORS = (1, 8, 32, 128)


def test_fig6_granularity(benchmark, runner, executor, workloads, save_report):
    figure = run_once(
        benchmark,
        lambda: figure6_granularity(
            runner, workloads=workloads, divisors=DIVISORS, executor=executor
        ),
    )
    save_report("fig6_granularity", figure.render())

    consistent = 0
    for name in workloads:
        speedups = figure.series(name, "speedup_pct")
        coverage = figure.series(name, "coverage_pct")
        if max(coverage) < 1.0:
            consistent += 1  # nothing selected anywhere: consistent
            continue
        # Cross-grain self-similarity: region selection stays within a
        # broad band of the whole-run result.
        if abs(speedups[1] - speedups[0]) <= max(15.0, abs(speedups[0])):
            consistent += 1
    assert consistent >= 0.6 * len(workloads)
