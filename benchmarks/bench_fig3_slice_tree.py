"""Figure 3: the slice tree for the pharmacy problem load.

Builds the tree from a real execution trace and verifies the published
structure: one root, a shared suffix, a fork into the two computation
arms (paper #04 / #06), induction-unroll nodes below each arm, and the
``DCpt-cm(parent) = sum(children)`` invariant everywhere.
"""

from benchmarks.conftest import run_once
from repro.engine import run_program
from repro.slicing import build_slice_trees
from repro.workloads import pharmacy
from repro.workloads.common import SUITE_HIERARCHY


def build_tree():
    program = pharmacy.build(**pharmacy.INPUTS["train"])
    result = run_program(program, SUITE_HIERARCHY)
    trees = build_slice_trees(result.trace, scope=1024, max_length=24)
    return program, trees[pharmacy.PROBLEM_LOAD_PC]


def test_fig3_slice_tree(benchmark, save_report):
    program, tree = run_once(benchmark, build_tree)
    tree.check_invariants()
    save_report(
        "fig3_slice_tree",
        "Figure 3: slice tree (pharmacy problem load)\n"
        "============================================\n"
        + tree.render(program, max_depth=7)
        + f"\n\nnodes={tree.num_nodes()} depth={tree.max_depth()} "
        f"misses={tree.total_misses()}",
    )
    # The two-arm fork below the shared suffix (addi + slli).
    node = tree.root
    for _ in range(2):
        assert len(node.children) == 1
        node = next(iter(node.children.values()))
    assert len(node.children) == 2
    arms = sorted(node.children.values(), key=lambda n: n.visits, reverse=True)
    # The #04 (PARTIAL) arm carries roughly 3x the #06 (GENERIC) misses.
    assert arms[0].visits > arms[1].visits
    # Parent DCpt-cm equals the sum over the arms.
    assert node.visits == arms[0].visits + arms[1].visits + node.truncated
