"""Figure 5: impact of p-thread optimization and merging.

Four variants: neither, optimization only, merging only, both.
Published trends: optimization shortens p-threads and makes previously
illegal/unprofitable candidates viable (raising coverage); merging cuts
launch counts and overhead.
"""

from benchmarks.conftest import run_once
from repro.harness.figures import figure5_opt_merge

NONE, OPT, MERGE, BOTH = 0, 1, 2, 3


def test_fig5_opt_merge(benchmark, runner, executor, workloads, save_report):
    figure = run_once(
        benchmark,
        lambda: figure5_opt_merge(
            runner, workloads=workloads, executor=executor
        ),
    )
    save_report("fig5_opt_merge", figure.render())

    shorter = 0
    active = 0
    for name in workloads:
        lengths = figure.series(name, "pthread_len")
        launches = figure.series(name, "launches")
        coverage = figure.series(name, "coverage_pct")
        if not any(launches):
            continue  # nothing selected under any variant (crafty)
        active += 1
        # Merging never increases launch counts vs. the same setting
        # without merging.
        assert launches[MERGE] <= launches[NONE] + 1
        assert launches[BOTH] <= launches[OPT] + 1
        # Optimization must not reduce achievable coverage.
        assert coverage[BOTH] >= coverage[MERGE] - 2.0
        if lengths[NONE] and lengths[OPT] < lengths[NONE]:
            shorter += 1
    if active:
        # Optimization shortens p-threads for a majority of benchmarks.
        assert shorter >= 0.5 * active
