"""Figure 7: p-thread selection input data set.

Three scenarios: *perfect* (select on the measured run itself),
*dynamic* (select on a small leading profile phase — the JIT scenario),
and *static* (select on the test input — the profile-driven static
compiler scenario).  Published findings: the dynamic scenario
approaches perfect information; the static scenario is usable but
weaker because test inputs are small and miss less (for the paper's
twolf/vpr.p the test working set fits in the L2 and no p-threads are
selected at all).
"""

from benchmarks.conftest import run_once
from repro.harness.figures import figure7_input_sets

PERFECT, DYNAMIC, STATIC = 0, 1, 2


def test_fig7_input_sets(benchmark, runner, executor, workloads, save_report):
    figure = run_once(
        benchmark,
        lambda: figure7_input_sets(
            runner, workloads=workloads, executor=executor
        ),
    )
    save_report("fig7_input_sets", figure.render())

    dynamic_close = 0
    active = 0
    for name in workloads:
        speedups = figure.series(name, "speedup_pct")
        if abs(speedups[PERFECT]) < 1.0:
            continue
        active += 1
        # Dynamic profiles often approach perfect information.
        if speedups[DYNAMIC] >= 0.5 * speedups[PERFECT] - 2.0:
            dynamic_close += 1
        # No scenario should produce a catastrophic slowdown.
        assert min(speedups) > -20.0
    if active:
        assert dynamic_close >= 0.5 * active
