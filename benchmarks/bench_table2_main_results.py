"""Table 2: primary results and model validation.

Pre-execution IPC, launches, p-thread lengths, miss coverage, the
overhead-only (execute & sequence) and latency-only IPCs, and the
framework's predictions of each — the paper's §4.2 table.

Shape checks mirror the paper's headline claims:
* pre-execution improves most benchmarks; crafty is flat/negative;
* the two overhead-only measurements agree (overhead ==
  sequencing-bandwidth consumption);
* predicted launch counts upper-bound measured ones (context drops);
* p-thread length predictions are self-fulfilling.
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness.tables import render_table2, table2


def test_table2_main_results(benchmark, runner, executor, workloads, save_report):
    rows = run_once(
        benchmark, lambda: table2(runner, workloads=workloads, executor=executor)
    )
    save_report("table2_main_results", render_table2(rows))
    by_name = {row.name: row for row in rows}

    improved = sum(1 for row in rows if row.speedup_pct > 2.0)
    assert improved >= 0.6 * len(rows)

    for row in rows:
        # Overhead-as-sequencing assumption: the two overhead-only
        # implementations agree closely (paper: "often identical").
        assert row.overhead_execute_ipc == pytest.approx(
            row.overhead_sequence_ipc, rel=0.05
        )
        # Latency tolerance for free cannot materially lose to the
        # unassisted machine.  (It is NOT always >= full pre-execution:
        # stolen sequencing slots pace the main thread and can give
        # p-threads extra lookahead — observed on vortex.)
        assert row.latency_only_ipc >= row.base_ipc * 0.90
        if row.launches:
            assert row.pred_launches >= row.launches
            assert row.insns_per_pthread == pytest.approx(
                row.pred_insns_per_pthread, rel=0.05
            )

    if "crafty" in by_name:
        assert by_name["crafty"].speedup_pct < 5.0
    if "mcf" in by_name:
        # Structurally limited: low full coverage, modest effect.
        assert by_name["mcf"].full_covered_pct < 40.0
