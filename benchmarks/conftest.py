"""Shared benchmark fixtures.

One :class:`~repro.harness.experiment.ExperimentRunner` is shared by
every bench module so traces and baselines are computed once per
(workload, input, hierarchy, machine) across the whole session, and one
:class:`~repro.harness.parallel.SweepExecutor` fans sweep cells out
over worker processes.  The persistent artifact cache (default
``~/.cache/repro``) makes stage outputs survive across sessions and
lets parallel workers share work; after the session a stage-timing /
cache-effectiveness report is written to ``results/perf_harness.txt``.

Environment knobs:
    REPRO_BENCH_WORKLOADS  comma-separated subset of the suite (default
                           all ten benchmarks).
    REPRO_JOBS             sweep worker processes (default: CPU count;
                           1 forces the serial path).
    REPRO_CACHE_DIR        persistent cache root; ``off`` disables it.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.harness.artifacts import ArtifactCache
from repro.harness.experiment import ExperimentRunner
from repro.harness.parallel import SweepExecutor
from repro.workloads.suite import SUITE

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def artifacts():
    return ArtifactCache.from_env()


@pytest.fixture(scope="session")
def runner(artifacts) -> ExperimentRunner:
    return ExperimentRunner(artifacts=artifacts)


@pytest.fixture(scope="session")
def executor(runner) -> SweepExecutor:
    return SweepExecutor(runner=runner)


@pytest.fixture(scope="session", autouse=True)
def _perf_report(runner):
    """Write the session's harness-performance report on teardown."""
    yield
    RESULTS_DIR.mkdir(exist_ok=True)
    report = runner.perf.render(
        title="Harness performance (bench session: stage compute seconds "
        "and cache hits)"
    )
    (RESULTS_DIR / "perf_harness.txt").write_text(report + "\n")


@pytest.fixture(scope="session")
def workloads() -> list:
    requested = os.environ.get("REPRO_BENCH_WORKLOADS")
    if not requested:
        return list(SUITE)
    names = [name.strip() for name in requested.split(",") if name.strip()]
    unknown = set(names) - set(SUITE) - {"pharmacy"}
    if unknown:
        raise ValueError(f"unknown workloads: {sorted(unknown)}")
    return names


@pytest.fixture(scope="session")
def save_report():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _save


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
