"""Shared benchmark fixtures.

One :class:`~repro.harness.experiment.ExperimentRunner` is shared by
every bench module so traces and baselines are computed once per
(workload, input, hierarchy, machine) across the whole session.

Every bench writes its regenerated table/figure to ``results/`` (and
echoes it to stdout) so EXPERIMENTS.md can reference concrete numbers.

Environment knobs:
    REPRO_BENCH_WORKLOADS  comma-separated subset of the suite (default
                           all ten benchmarks).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.harness.experiment import ExperimentRunner
from repro.workloads.suite import SUITE

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    return ExperimentRunner()


@pytest.fixture(scope="session")
def workloads() -> list:
    requested = os.environ.get("REPRO_BENCH_WORKLOADS")
    if not requested:
        return list(SUITE)
    names = [name.strip() for name in requested.split(",") if name.strip()]
    unknown = set(names) - set(SUITE) - {"pharmacy"}
    if unknown:
        raise ValueError(f"unknown workloads: {sorted(unknown)}")
    return names


@pytest.fixture(scope="session")
def save_report():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _save


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
