"""Processor-width cross-validation (paper §4.5).

The paper performs the Figure 8 methodology on processor width too and
reports "similar results" without a figure; this bench regenerates
that study explicitly for widths {4, 8}: pW(tV) simulates width W with
p-threads selected assuming width V.

On a narrower machine overhead is relatively more expensive (the
``BWseq`` denominator in Equation 4), so width-4 selections should be
no more aggressive than width-8 selections.
"""

from benchmarks.conftest import run_once
from repro.harness.figures import figure8b_processor_width

# Bar order: p8(t4), p8(t8), p4(t4), p4(t8).
P8_T4, P8_T8, P4_T4, P4_T8 = 0, 1, 2, 3


def test_fig8b_processor_width(benchmark, runner, executor, workloads, save_report):
    figure = run_once(
        benchmark,
        lambda: figure8b_processor_width(
            runner, workloads=workloads, executor=executor
        ),
    )
    save_report("fig8b_processor_width", figure.render())

    active = 0
    sane = 0
    for name in workloads:
        overheads = figure.series(name, "overhead_pct")
        ipcs = [r.preexec.ipc for r in figure.results[name]]
        base_ipcs = [r.baseline.ipc for r in figure.results[name]]
        if not any(overheads):
            continue
        active += 1
        # The wide machine runs at least as fast as the narrow one.
        if ipcs[P8_T8] >= ipcs[P4_T4] * 0.98:
            sane += 1
        # Width-4 selection is never more overhead-aggressive than
        # width-8 selection measured on the same machine.
        assert overheads[P4_T4] <= overheads[P4_T8] + 10.0
        assert base_ipcs[P8_T8] >= base_ipcs[P4_T4] * 0.98
    if active:
        assert sane >= 0.7 * active
