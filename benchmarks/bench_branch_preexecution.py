"""Extension: branch pre-execution (the paper's footnote 1).

"Pre-execution has also been proposed as a way of dealing with problem
(i.e., frequently mis-predicted) branches ... all of our methods do
apply in that scenario."  This bench applies them: slice trees rooted
at mispredicted dynamic branch instances, aggregate advantage with
``Lmem = mispredict penalty``, and a run-time hint mechanism that lets
the fetch engine skip the redirect when a p-thread resolved the branch
first.

Expected shape: the workloads with data-dependent branches (vpr.p's
accept test, crafty's evaluation splits) gain; workloads with
predictable control (bzip2, vpr.r) select little or nothing.
"""

from benchmarks.conftest import run_once
from repro.engine import run_program
from repro.harness.report import render_table
from repro.model import ModelParams, SelectionConstraints
from repro.selection import select_branch_pthreads
from repro.timing import BASELINE, MachineConfig, PRE_EXECUTION, TimingSimulator


def measure(runner, workloads):
    rows = []
    for name in workloads:
        workload = runner.workload(name, "train")
        trace = runner.trace(workload)
        base = runner.baseline(workload, MachineConfig())
        params = ModelParams(
            bw_seq=8,
            unassisted_ipc=max(base.ipc, 0.05),
            mem_latency=workload.hierarchy.mem_latency,
            load_latency=workload.hierarchy.l1.hit_latency,
        )
        selection = select_branch_pthreads(
            workload.program, trace.trace, params, SelectionConstraints(),
            mispredict_penalty=10,
        )
        pre = TimingSimulator(
            workload.program, workload.hierarchy, pthreads=selection.pthreads
        ).run(PRE_EXECUTION)
        rows.append(
            dict(
                name=name,
                base_ipc=base.ipc,
                mispredict_rate=100.0 * base.misprediction_rate,
                pthreads=len(selection.pthreads),
                ipc=pre.ipc,
                speedup=100.0 * pre.speedup_over(base),
                covered=pre.mispredicts_covered,
                mispredicts=pre.mispredictions,
            )
        )
    return rows


def test_branch_preexecution(benchmark, runner, workloads, save_report):
    rows = run_once(benchmark, lambda: measure(runner, workloads))
    save_report(
        "extension_branch_preexecution",
        render_table(
            ["benchmark", "base IPC", "mispred%", "p-threads", "IPC",
             "speedup%", "covered", "mispredicts"],
            [
                [r["name"], r["base_ipc"], r["mispredict_rate"],
                 r["pthreads"], r["ipc"], r["speedup"], r["covered"],
                 r["mispredicts"]]
                for r in rows
            ],
            title="Extension: branch pre-execution",
        ),
    )
    by_name = {r["name"]: r for r in rows}
    # The branchy benchmarks gain; no benchmark collapses.
    for branchy in ("vpr.p", "crafty"):
        if branchy in by_name:
            assert by_name[branchy]["speedup"] > 5.0
            assert by_name[branchy]["covered"] > 0
    for r in rows:
        assert r["speedup"] > -10.0
