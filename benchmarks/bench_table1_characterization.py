"""Table 1: benchmark characterization.

Instructions, loads, L2 misses, unassisted IPC and perfect-L2 IPC for
every workload in the suite — the analogue of the paper's Table 1.
Shape checks: the suite must span the paper's spread (mcf most
miss-bound, crafty least; perfect-L2 never below baseline).
"""

from benchmarks.conftest import run_once
from repro.harness.tables import render_table1, table1


def test_table1_characterization(benchmark, runner, workloads, save_report):
    rows = run_once(benchmark, lambda: table1(runner, workloads=workloads))
    save_report("table1_characterization", render_table1(rows))
    by_name = {row.name: row for row in rows}
    for row in rows:
        assert row.perfect_l2_ipc >= row.ipc * 0.99
        assert 0 < row.loads < row.instructions
    if {"mcf", "crafty"} <= set(by_name):
        miss_rate = lambda r: r.l2_misses / r.instructions
        assert miss_rate(by_name["mcf"]) > miss_rate(by_name["crafty"])
        assert by_name["mcf"].ipc < by_name["crafty"].ipc
