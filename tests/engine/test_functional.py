"""Tests for the functional simulator."""

import pytest

from repro.engine.functional import (
    ExecutionLimitExceeded,
    FunctionalResult,
    FunctionalSimulator,
    run_program,
)
from repro.isa import DataImage, assemble
from repro.memory.hierarchy import MemoryLevel


class TestBasicExecution:
    def test_arithmetic_and_halt(self):
        program = assemble(
            """
            addi r1, r0, 6
            addi r2, r0, 7
            mul  r3, r1, r2
            halt
            """
        )
        result = run_program(program)
        assert result.halted
        assert result.registers[3] == 42
        assert result.instructions == 4

    def test_r0_writes_discarded(self):
        program = assemble("addi r0, r0, 99\nhalt")
        result = run_program(program)
        assert result.registers[0] == 0

    def test_memory_round_trip(self):
        program = assemble(
            """
            addi r1, r0, 1000
            addi r2, r0, 55
            sw   r2, 0(r1)
            lw   r3, 0(r1)
            halt
            """
        )
        result = run_program(program)
        assert result.registers[3] == 55
        assert result.memory.load(1000) == 55

    def test_branches_taken_and_not(self):
        program = assemble(
            """
                addi r1, r0, 3
            loop:
                addi r2, r2, 10
                addi r1, r1, -1
                bgt  r1, r0, loop
                halt
            """
        )
        result = run_program(program)
        assert result.registers[2] == 30
        assert result.branches == 3

    def test_jal_jr_call_return(self):
        program = assemble(
            """
                jal ra, func
                addi r2, r0, 1
                halt
            func:
                addi r3, r0, 5
                jr ra
            """
        )
        result = run_program(program)
        assert result.halted
        assert result.registers[2] == 1
        assert result.registers[3] == 5

    def test_instruction_limit(self):
        program = assemble("loop:\nj loop")
        result = run_program(program, max_instructions=100)
        assert not result.halted
        assert result.instructions == 100

    def test_strict_limit_raises(self):
        program = assemble("loop:\nj loop")
        sim = FunctionalSimulator(program)
        with pytest.raises(ExecutionLimitExceeded):
            sim.run(max_instructions=10, strict_limit=True)

    def test_data_image_loaded(self):
        data = DataImage()
        data.store_word(4096, 77)
        program = assemble(
            "addi r1, r0, 4096\nlw r2, 0(r1)\nhalt", data=data
        )
        assert run_program(program).registers[2] == 77


class TestTraceGeneration:
    def test_dependence_edges(self, sum_loop_program, tiny_hierarchy):
        result = run_program(sum_loop_program, tiny_hierarchy)
        trace = result.trace
        # Find a load and check its address producer is the preceding add.
        import numpy as np

        load_indices = np.nonzero(trace.level[: len(trace)])[0]
        first_load = int(load_indices[0])
        producer = int(trace.dep1[first_load])
        assert producer >= 0
        assert trace.pc[producer] == trace.pc[first_load] - 1

    def test_store_to_load_memdep(self):
        program = assemble(
            """
            addi r1, r0, 2048
            addi r2, r0, 9
            sw   r2, 0(r1)
            lw   r3, 0(r1)
            halt
            """
        )
        trace = run_program(program).trace
        assert trace.record(3).memdep == 2

    def test_miss_levels_recorded(self, sum_loop_program, tiny_hierarchy):
        result = run_program(sum_loop_program, tiny_hierarchy)
        trace = result.trace
        miss_indices = trace.miss_indices(int(MemoryLevel.MEM))
        assert len(miss_indices) == result.l2_misses
        assert result.l2_misses > 0

    def test_counts_match_with_and_without_trace(
        self, sum_loop_program, tiny_hierarchy
    ):
        with_trace = run_program(sum_loop_program, tiny_hierarchy)
        without = run_program(
            sum_loop_program, tiny_hierarchy, collect_trace=False
        )
        assert with_trace.instructions == without.instructions
        assert with_trace.loads == without.loads
        assert with_trace.l2_misses == without.l2_misses
        assert without.trace is None

    def test_branch_taken_flags(self):
        program = assemble(
            """
            addi r1, r0, 1
            beq  r1, r0, skip    # not taken
            bne  r1, r0, skip    # taken
            addi r2, r0, 1
        skip:
            halt
            """
        )
        trace = run_program(program).trace
        assert not trace.record(1).taken
        assert trace.record(2).taken

    def test_live_in_deps_are_negative(self):
        program = assemble("add r1, r2, r3\nhalt")
        trace = run_program(program).trace
        assert trace.record(0).dep1 == -1
        assert trace.record(0).dep2 == -1

    def test_static_counts(self, sum_loop_program):
        result = run_program(sum_loop_program)
        counts = result.trace.static_counts(len(sum_loop_program))
        # The loop body executes 100 times.
        assert counts[6] == 100  # the load
        assert counts[3] == 101  # the bge (100 + exit check)


class TestCodec:
    def test_round_trip(self, sum_loop_program, tiny_hierarchy):
        import numpy as np

        result = run_program(sum_loop_program, tiny_hierarchy)
        rebuilt = FunctionalResult.from_dict(result.to_dict())
        for name in (
            "instructions",
            "traced_instructions",
            "halted",
            "loads",
            "stores",
            "branches",
            "l1_misses",
            "l2_misses",
            "registers",
            "load_level_counts",
        ):
            assert getattr(rebuilt, name) == getattr(result, name), name
        assert rebuilt.memory.snapshot() == result.memory.snapshot()
        assert len(rebuilt.trace) == len(result.trace)
        for field in ("pc", "addr", "level", "dep1", "dep2", "memdep", "taken"):
            assert np.array_equal(
                getattr(rebuilt.trace, field)[: len(rebuilt.trace)],
                getattr(result.trace, field)[: len(result.trace)],
            ), field

    def test_dict_is_json_compatible(self, sum_loop_program, tiny_hierarchy):
        import json

        result = run_program(sum_loop_program, tiny_hierarchy)
        rebuilt = FunctionalResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert rebuilt.instructions == result.instructions
        assert rebuilt.trace.record(0).pc == result.trace.record(0).pc

    def test_traceless_round_trip(self, sum_loop_program, tiny_hierarchy):
        result = run_program(
            sum_loop_program, tiny_hierarchy, collect_trace=False
        )
        rebuilt = FunctionalResult.from_dict(result.to_dict())
        assert rebuilt.trace is None
        assert rebuilt.l2_misses == result.l2_misses
