"""Concurrency regressions for the compile memo and in-flight guard.

The serve daemon compiles from multiple worker threads.  Pre-fix, the
unsynchronized memo meant racing threads could each miss the memo and
``exec`` the same generated module, and concurrent evictions could blow
up inside ``OrderedDict``.  The hammer here pins one-compilation-per-key
and bounded-memo behaviour under deliberate thread storms.
"""

import sys
import threading

import pytest

from repro.engine import compiler
from repro.engine.codecache import reset_code_cache
from repro.engine.compiler import (
    _MEMO_LIMIT,
    _memo_len,
    clear_compile_memo,
    compile_functional,
)
from repro.engine.decode import DecodedProgram
from repro.isa import assemble

# A few hundred instructions: big enough that one compilation spans
# several GIL slices at a tiny switch interval, so unguarded racers
# genuinely overlap inside the emit/exec path (a 5-line program
# compiles within one slice and never exposes the race).
_BODY = "\n".join(
    f"    addi r{2 + i % 20}, r{2 + i % 20}, {i % 7}" for i in range(600)
)
LOOP_SOURCE = f"""
    addi r1, r0, 3
loop:
{_BODY}
    addi r1, r1, -1
    bgt  r1, r0, loop
    halt
"""

THREADS = 8


@pytest.fixture
def cold_compiler(monkeypatch):
    """No persistent code cache, empty memo; restored afterwards."""
    monkeypatch.setenv("REPRO_CACHE_DIR", "off")
    reset_code_cache()  # also clears the memo
    yield
    reset_code_cache()  # next consult re-reads the restored environment


@pytest.fixture
def exec_counter(monkeypatch):
    """Count every generated-module ``exec`` (the expensive step)."""
    calls = []
    lock = threading.Lock()
    real = compiler._exec_module

    def counting(source, filename):
        with lock:
            calls.append(filename)
        return real(source, filename)

    monkeypatch.setattr(compiler, "_exec_module", counting)
    return calls


def _storm(work) -> None:
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)
    try:
        barrier = threading.Barrier(THREADS)
        errors = []

        def body(index):
            try:
                barrier.wait()
                work(index)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=body, args=(index,))
            for index in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors
    finally:
        sys.setswitchinterval(previous)


def test_racing_threads_compile_each_key_once(cold_compiler, exec_counter):
    """THREADS racing compiles of one program exec exactly one module."""
    decoded = DecodedProgram(assemble(LOOP_SOURCE))
    results = [None] * THREADS

    def work(index):
        results[index] = compile_functional(decoded, tracing=True, caching=True)

    _storm(work)
    assert len(exec_counter) == 1
    assert results[0] is not None
    assert all(compiled is results[0] for compiled in results)


def test_distinct_keys_compile_independently(cold_compiler, exec_counter):
    """Different variants are different keys: one exec per variant."""
    decoded = DecodedProgram(assemble(LOOP_SOURCE))

    def work(index):
        # Half the threads ask for the tracing variant, half for the
        # non-tracing one; each variant must compile exactly once.
        compile_functional(decoded, tracing=bool(index % 2), caching=True)

    _storm(work)
    assert len(exec_counter) == 2


def test_memo_stays_bounded_under_concurrent_puts():
    """Concurrent put/evict keeps the memo at the limit, no KeyErrors."""
    clear_compile_memo()
    try:

        def work(index):
            for serial in range(4 * _MEMO_LIMIT):
                compiler._memo_put(f"hammer-{index}-{serial}", object())
                assert _memo_len() <= _MEMO_LIMIT

        _storm(work)
        assert _memo_len() <= _MEMO_LIMIT
    finally:
        clear_compile_memo()
