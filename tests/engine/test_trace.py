"""Tests for the numpy-backed trace container."""

import pytest

from repro.engine.trace import Trace


class TestTrace:
    def test_append_and_record(self):
        trace = Trace(capacity=2)
        index = trace.append(pc=5, addr=100, level=3, dep1=0, taken=True)
        assert index == 0
        record = trace.record(0)
        assert record.pc == 5
        assert record.addr == 100
        assert record.level == 3
        assert record.dep1 == 0
        assert record.dep2 == -1
        assert record.taken

    def test_growth_preserves_data(self):
        trace = Trace(capacity=16)
        for i in range(100):
            trace.append(pc=i)
        assert len(trace) == 100
        assert all(trace.record(i).pc == i for i in range(100))

    def test_trim_releases_capacity(self):
        trace = Trace(capacity=1024)
        trace.append(pc=1)
        trace.trim()
        assert len(trace.pc) == 1
        assert trace.record(0).pc == 1

    def test_record_bounds_checked(self):
        trace = Trace()
        trace.append(pc=0)
        with pytest.raises(IndexError):
            trace.record(1)
        with pytest.raises(IndexError):
            trace.record(-1)

    def test_iteration(self):
        trace = Trace()
        for i in range(5):
            trace.append(pc=i)
        assert [r.pc for r in trace] == list(range(5))

    def test_static_counts(self):
        trace = Trace()
        for pc in [0, 1, 1, 2, 2, 2]:
            trace.append(pc=pc)
        counts = trace.static_counts(4)
        assert list(counts) == [1, 2, 3, 0]

    def test_miss_indices_threshold(self):
        trace = Trace()
        trace.append(pc=0, level=1)
        trace.append(pc=1, level=2)
        trace.append(pc=2, level=3)
        trace.append(pc=3, level=0)
        assert list(trace.miss_indices(3)) == [2]
        assert list(trace.miss_indices(2)) == [1, 2]
