"""Tests for the basic-block specializing compiler."""

import pytest

from repro.engine.compiler import (
    ENGINE_COMPILED,
    ENGINE_ENV,
    ENGINE_INTERP,
    ENGINE_TIERED,
    MAX_PROGRAM,
    compile_functional,
    discover_blocks,
    resolve_engine,
)
from repro.engine.decode import DecodedProgram
from repro.engine.functional import FunctionalSimulator
from repro.isa import assemble

LOOP_SOURCE = """
    addi r1, r0, 3
loop:
    addi r2, r2, 10
    addi r1, r1, -1
    bgt  r1, r0, loop
    halt
"""

CALL_SOURCE = """
    jal ra, func
    addi r2, r0, 1
    halt
func:
    addi r3, r0, 5
    jr ra
"""


def decoded(source):
    return DecodedProgram(assemble(source))


class TestResolveEngine:
    def test_default_is_tiered(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        assert resolve_engine() == ENGINE_TIERED

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "interp")
        assert resolve_engine("compiled") == ENGINE_COMPILED

    def test_tiered_spelling(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, " Tiered ")
        assert resolve_engine() == ENGINE_TIERED

    @pytest.mark.parametrize(
        "name", ["interp", "interpreter", "Interpreted", " INTERP "]
    )
    def test_interpreter_spellings(self, monkeypatch, name):
        monkeypatch.setenv(ENGINE_ENV, name)
        assert resolve_engine() == ENGINE_INTERP

    def test_unknown_value_rejected(self):
        with pytest.raises(ValueError):
            resolve_engine("turbo")


class TestDiscoverBlocks:
    def test_blocks_partition_program(self):
        program = decoded(LOOP_SOURCE)
        blocks = discover_blocks(program)
        covered = []
        for start, end in blocks:
            assert start < end
            covered.extend(range(start, end))
        assert covered == list(range(len(program)))

    def test_branch_target_and_fallthrough_are_leaders(self):
        blocks = discover_blocks(decoded(LOOP_SOURCE))
        leaders = {start for start, _ in blocks}
        # loop: label (branch target) and the instruction after bgt.
        assert 1 in leaders
        assert 4 in leaders

    def test_terminators_end_blocks(self):
        program = decoded(CALL_SOURCE)
        blocks = discover_blocks(program)
        kind_ends = {end - 1 for _, end in blocks}
        # jal (pc 0), halt (pc 2), jr (pc 4) all terminate blocks.
        assert {0, 2, 4} <= kind_ends

    def test_extra_leaders_split_blocks(self):
        program = decoded(LOOP_SOURCE)
        plain = {s for s, _ in discover_blocks(program)}
        split = {s for s, _ in discover_blocks(program, extra_leaders=(2,))}
        assert split == plain | {2}


class TestCompileFunctional:
    def test_compiles_block_table(self):
        compiled = compile_functional(
            decoded(LOOP_SOURCE), tracing=False, caching=False
        )
        assert compiled is not None
        assert compiled.num_blocks == len(compiled.starts)
        assert compiled.max_len >= 1

    def test_oversized_program_falls_back(self):
        program = decoded(LOOP_SOURCE)
        real_length = len(program)
        try:
            program.kind.extend([program.kind[0]] * MAX_PROGRAM)
            assert (
                compile_functional(program, tracing=False, caching=False)
                is None
            )
        finally:
            del program.kind[real_length:]


class TestEngineSeam:
    def test_last_engine_reflects_run(self):
        program = assemble(LOOP_SOURCE)
        sim = FunctionalSimulator(program, engine="compiled")
        sim.run()
        assert sim.last_engine == ENGINE_COMPILED
        sim = FunctionalSimulator(program, engine="interp")
        sim.run()
        assert sim.last_engine == ENGINE_INTERP

    def test_env_var_selects_interpreter(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "interp")
        sim = FunctionalSimulator(assemble(LOOP_SOURCE))
        sim.run()
        assert sim.last_engine == ENGINE_INTERP

    def test_engines_agree_on_call_return(self):
        program = assemble(CALL_SOURCE)
        results = {}
        for engine in (ENGINE_INTERP, ENGINE_COMPILED):
            sim = FunctionalSimulator(program, engine=engine)
            results[engine] = sim.run().to_dict()
            assert sim.last_engine == engine
        assert results[ENGINE_INTERP] == results[ENGINE_COMPILED]

    def test_computed_jump_into_block_interior(self):
        # jr lands on pc 6, which is mid-block (5..7 is one straight
        # line): the dispatcher must fall back to the interpreter for
        # the partial block, then resume compiled execution.
        source = """
            addi r9, r0, 6
            addi r2, r0, 0
            jr   r9
            addi r2, r2, 100
            addi r2, r2, 200
            addi r2, r2, 1
            addi r2, r2, 2
            addi r2, r2, 4
            halt
        """
        program = assemble(source)
        results = {}
        for engine in (ENGINE_INTERP, ENGINE_COMPILED):
            sim = FunctionalSimulator(program, engine=engine)
            result = sim.run()
            assert sim.last_engine == engine
            results[engine] = result.to_dict()
            assert result.registers[2] == 6
        assert results[ENGINE_INTERP] == results[ENGINE_COMPILED]
