"""Tests for the pre-decoded program form."""

from repro.engine.decode import (
    DecodedProgram,
    K_ALU_I,
    K_ALU_R,
    K_BRANCH,
    K_HALT,
    K_JAL,
    K_JR,
    K_JUMP,
    K_LOAD,
    K_NOP,
    K_STORE,
)
from repro.isa import assemble


SOURCE = """
start:
    add  r1, r2, r3
    addi r4, r5, 6
    lw   r7, 8(r9)
    sw   r7, 12(r9)
    beq  r1, r4, start
    j    start
    jal  ra, start
    jr   ra
    nop
    halt
"""


class TestDecodedProgram:
    def test_kinds(self):
        decoded = DecodedProgram(assemble(SOURCE))
        assert decoded.kind == [
            K_ALU_R,
            K_ALU_I,
            K_LOAD,
            K_STORE,
            K_BRANCH,
            K_JUMP,
            K_JAL,
            K_JR,
            K_NOP,
            K_HALT,
        ]

    def test_operands(self):
        decoded = DecodedProgram(assemble(SOURCE))
        assert decoded.rd[0] == 1 and decoded.rs1[0] == 2 and decoded.rs2[0] == 3
        assert decoded.imm[1] == 6
        assert decoded.imm[2] == 8 and decoded.rs1[2] == 9
        assert decoded.rs2[3] == 7  # stored value

    def test_targets_resolved(self):
        decoded = DecodedProgram(assemble(SOURCE))
        assert decoded.target[4] == 0
        assert decoded.target[5] == 0

    def test_alu_functions_attached(self):
        decoded = DecodedProgram(assemble(SOURCE))
        assert decoded.alu[0] is not None
        assert decoded.alu[0](2, 3) == 5
        assert decoded.branch[4] is not None
        assert decoded.branch[4](1, 1)

    def test_latencies(self):
        decoded = DecodedProgram(assemble("mul r1, r2, r3\nhalt"))
        assert decoded.latency[0] == 3

    def test_len(self):
        decoded = DecodedProgram(assemble(SOURCE))
        assert len(decoded) == 10
