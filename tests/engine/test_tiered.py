"""Tiered-engine mechanics and the persistent codegen cache.

The equivalence suite proves the tiered engine's *results*; these
tests pin its *mechanics*: the entry-count threshold compiles exactly
the hot blocks, short runs never pay for codegen, warm disk-cache hits
skip source emission entirely, and a corrupt cache entry degrades to a
recompile instead of an error.
"""

import pytest

from repro.engine import compiler
from repro.engine.codecache import get_code_cache, reset_code_cache
from repro.engine.compiler import (
    ENGINE_COMPILED,
    ENGINE_INTERP,
    ENGINE_TIERED,
    TIER_ENV,
    TIER_SLICE,
)
from repro.engine.functional import FunctionalSimulator
from repro.isa import assemble

#: A hot loop (3000 iterations, ~9000 instructions — comfortably past
#: TIER_SLICE) followed by a cold straight-line tail that runs once.
#: Block leaders: 0 (entry), 1 (loop target), 4 (loop fallthrough).
HOT_COLD_SOURCE = """
    addi r1, r0, 3000
loop:
    addi r2, r2, 1
    addi r1, r1, -1
    bgt  r1, r0, loop
    addi r3, r0, 7
    halt
"""

HOT_LEADER = 1
COLD_LEADER = 4


def _program(name="tiered_test"):
    return assemble(HOT_COLD_SOURCE, name=name)


def _run(program, engine, **kwargs):
    sim = FunctionalSimulator(program, engine=engine)
    result = sim.run(**kwargs)
    return sim, result


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    """Point the codegen cache at a private root for the test."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    reset_code_cache()
    yield tmp_path
    reset_code_cache()


class TestTierThreshold:
    def test_hot_blocks_compile_cold_blocks_stay_interpreted(
        self, monkeypatch
    ):
        monkeypatch.setenv(TIER_ENV, "10")
        program = _program()
        sim, result = _run(program, ENGINE_TIERED)
        assert sim.last_engine == ENGINE_TIERED
        tier = sim.last_tier
        assert tier["tier_ups"] >= 1
        # Exactly the loop block crossed the threshold; the entry and
        # tail blocks each ran once and stay interpreted.
        assert tier["hot"] == (HOT_LEADER,)
        assert tier["compiled_blocks"] == 1
        assert tier["interp_blocks"] >= 1
        # And the mixed run still matches the pure interpreter.
        _sim, ref = _run(program, ENGINE_INTERP)
        assert result.to_dict() == ref.to_dict()

    def test_short_run_never_compiles(self, monkeypatch):
        monkeypatch.setenv(TIER_ENV, "10")
        program = _program()
        sim, result = _run(
            program, ENGINE_TIERED, max_instructions=TIER_SLICE // 2
        )
        assert sim.last_tier["tier_ups"] == 0
        assert sim.last_tier["compiled_blocks"] == 0
        _sim, ref = _run(
            program, ENGINE_INTERP, max_instructions=TIER_SLICE // 2
        )
        assert result.to_dict() == ref.to_dict()

    def test_unreachable_threshold_stays_interpreted(self, monkeypatch):
        monkeypatch.setenv(TIER_ENV, "1000000")
        program = _program()
        sim, result = _run(program, ENGINE_TIERED)
        assert sim.last_tier["tier_ups"] == 0
        _sim, ref = _run(program, ENGINE_INTERP)
        assert result.to_dict() == ref.to_dict()


class TestCodeCache:
    def test_warm_disk_hit_skips_emission(self, cache_dir, monkeypatch):
        program = _program()
        _sim, cold = _run(program, ENGINE_COMPILED)
        assert get_code_cache().perf.misses.get("codegen", 0) >= 1

        # Fresh process-state: new singleton, new simulator, and source
        # emission booby-trapped — the warm run must never reach it.
        reset_code_cache()

        def boom(*args, **kwargs):
            raise AssertionError("emission not skipped on warm cache")

        monkeypatch.setattr(compiler, "_emit_functional_block", boom)
        sim, warm = _run(program, ENGINE_COMPILED)
        assert sim.last_engine == ENGINE_COMPILED
        assert warm.to_dict() == cold.to_dict()
        cache = get_code_cache()
        assert cache.perf.disk_hits.get("codegen", 0) >= 1
        assert cache.perf.misses.get("codegen", 0) == 0

    def test_tiered_engine_hits_the_same_cache(self, cache_dir, monkeypatch):
        monkeypatch.setenv(TIER_ENV, "10")
        program = _program()
        _sim, cold = _run(program, ENGINE_TIERED)
        reset_code_cache()
        sim, warm = _run(program, ENGINE_TIERED)
        assert sim.last_tier["tier_ups"] >= 1
        assert warm.to_dict() == cold.to_dict()
        assert get_code_cache().perf.disk_hits.get("codegen", 0) >= 1

    def test_corrupt_entry_falls_back_to_recompile(self, cache_dir):
        program = _program()
        _sim, cold = _run(program, ENGINE_COMPILED)
        entries = list(cache_dir.glob("codegen/*/*.json"))
        assert entries
        for entry in entries:
            entry.write_text("{definitely not json")

        reset_code_cache()
        sim, warm = _run(program, ENGINE_COMPILED)
        assert sim.last_engine == ENGINE_COMPILED
        assert warm.to_dict() == cold.to_dict()
        # The corrupt load counted as a miss and was recomputed.
        assert get_code_cache().perf.misses.get("codegen", 0) >= 1
