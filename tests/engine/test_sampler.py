"""Tests for the cyclic sampling controller."""

import pytest

from repro.engine.sampler import ALWAYS_ON, CyclicSampler, Phase
from repro.engine.functional import run_program
from repro.isa import assemble


class TestCyclicSampler:
    def test_phase_boundaries(self):
        sampler = CyclicSampler(off=10, warm=5, on=5)
        assert sampler.period == 20
        assert sampler.phase(0) == Phase.OFF
        assert sampler.phase(9) == Phase.OFF
        assert sampler.phase(10) == Phase.WARM
        assert sampler.phase(14) == Phase.WARM
        assert sampler.phase(15) == Phase.ON
        assert sampler.phase(19) == Phase.ON
        assert sampler.phase(20) == Phase.OFF  # next period

    def test_always_on(self):
        assert all(ALWAYS_ON.phase(i) == Phase.ON for i in range(10))

    def test_zero_off_starts_in_warm(self):
        sampler = CyclicSampler(off=0, warm=4, on=4)
        assert sampler.period == 8
        assert sampler.phase(0) == Phase.WARM
        assert sampler.phase(3) == Phase.WARM
        assert sampler.phase(4) == Phase.ON
        assert sampler.phase(7) == Phase.ON
        assert sampler.phase(8) == Phase.WARM  # wraps straight to warm

    def test_zero_warm_jumps_off_to_on(self):
        sampler = CyclicSampler(off=6, warm=0, on=2)
        assert sampler.phase(5) == Phase.OFF
        assert sampler.phase(6) == Phase.ON
        assert sampler.phase(7) == Phase.ON
        assert sampler.phase(8) == Phase.OFF

    def test_zero_off_and_warm_is_always_on(self):
        sampler = CyclicSampler(off=0, warm=0, on=3)
        assert all(sampler.phase(i) == Phase.ON for i in range(12))

    def test_single_instruction_phases(self):
        sampler = CyclicSampler(off=1, warm=1, on=1)
        expected = [Phase.OFF, Phase.WARM, Phase.ON] * 2
        assert [sampler.phase(i) for i in range(6)] == expected

    def test_validation(self):
        with pytest.raises(ValueError):
            CyclicSampler(off=0, warm=0, on=0)
        with pytest.raises(ValueError):
            CyclicSampler(off=-1, warm=0, on=1)

    def test_sampled_trace_is_subset(self, sum_loop_program, tiny_hierarchy):
        full = run_program(sum_loop_program, tiny_hierarchy)
        sampler = CyclicSampler(off=100, warm=50, on=50)
        sampled = run_program(
            sum_loop_program, tiny_hierarchy, sampler=sampler
        )
        assert sampled.instructions == full.instructions
        assert 0 < sampled.traced_instructions < full.traced_instructions

    def test_off_phase_skips_caches(self, sum_loop_program, tiny_hierarchy):
        sampler = CyclicSampler(off=1_000_000, warm=1, on=1)
        result = run_program(sum_loop_program, tiny_hierarchy, sampler=sampler)
        assert result.l2_misses == 0  # whole run inside the off phase
