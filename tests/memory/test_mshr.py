"""Tests for the MSHR file."""

import pytest

from repro.memory.mshr import MshrFile


class TestMshr:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            MshrFile(0)

    def test_lookup_miss_returns_none(self):
        mshrs = MshrFile(4)
        assert mshrs.lookup(0x100, now=0) is None

    def test_merge_returns_ready_time(self):
        mshrs = MshrFile(4)
        mshrs.allocate(0x100, now=0, ready=70)
        assert mshrs.lookup(0x100, now=10) == 70
        assert mshrs.merges == 1

    def test_entries_expire(self):
        mshrs = MshrFile(4)
        mshrs.allocate(0x100, now=0, ready=70)
        assert mshrs.lookup(0x100, now=71) is None
        assert mshrs.outstanding(71) == 0

    def test_full_delays_new_allocation(self):
        mshrs = MshrFile(2)
        mshrs.allocate(0x000, now=0, ready=50)
        mshrs.allocate(0x040, now=0, ready=80)
        ready = mshrs.allocate(0x080, now=0, ready=70)
        # Delayed by the earliest completion (50 cycles).
        assert ready == 70 + 50
        assert mshrs.full_stalls == 1

    def test_not_full_no_delay(self):
        mshrs = MshrFile(3)
        mshrs.allocate(0x000, now=0, ready=50)
        assert mshrs.allocate(0x040, now=0, ready=60) == 60
        assert mshrs.full_stalls == 0

    def test_outstanding_counts(self):
        mshrs = MshrFile(8)
        for i in range(5):
            mshrs.allocate(i * 64, now=0, ready=100)
        assert mshrs.outstanding(0) == 5
        assert mshrs.outstanding(100) == 0

    def test_reset(self):
        mshrs = MshrFile(4)
        mshrs.allocate(0x100, now=0, ready=70)
        mshrs.reset()
        assert mshrs.outstanding(0) == 0
        assert mshrs.allocations == 0
