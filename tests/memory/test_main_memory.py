"""Tests for sparse main memory."""

import pytest

from repro.isa.program import DataImage
from repro.memory.main_memory import MainMemory, MemoryAlignmentError


class TestMainMemory:
    def test_uninitialized_reads_zero(self):
        assert MainMemory().load(1024) == 0

    def test_store_load(self):
        memory = MainMemory()
        memory.store(64, -7)
        assert memory.load(64) == -7

    def test_image_initialization(self):
        image = DataImage()
        image.store_words(128, [10, 20])
        memory = MainMemory(image)
        assert memory.load(128) == 10
        assert memory.load(132) == 20

    def test_image_is_copied(self):
        image = DataImage()
        image.store_word(0, 1)
        memory = MainMemory(image)
        memory.store(0, 2)
        assert image.load_word(0) == 1

    def test_alignment_enforced(self):
        memory = MainMemory()
        with pytest.raises(MemoryAlignmentError):
            memory.load(3)
        with pytest.raises(MemoryAlignmentError):
            memory.store(5, 1)

    def test_snapshot_restore(self):
        memory = MainMemory()
        memory.store(0, 1)
        snap = memory.snapshot()
        memory.store(0, 2)
        memory.restore(snap)
        assert memory.load(0) == 1

    def test_len_counts_words(self):
        memory = MainMemory()
        memory.store(0, 1)
        memory.store(4, 2)
        assert len(memory) == 2
