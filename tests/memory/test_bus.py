"""Tests for the slotted bus occupancy model."""

import pytest

from repro.memory.bus import Bus


class TestTransferCycles:
    def test_exact_width(self):
        assert Bus("b", 32).transfer_cycles(32) == 1

    def test_rounds_up(self):
        assert Bus("b", 32).transfer_cycles(33) == 2

    def test_clock_divisor(self):
        # The paper's memory bus: 32B wide at quarter clock, 64B line.
        assert Bus("mem", 32, 4).transfer_cycles(64) == 8

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            Bus("b", 0)
        with pytest.raises(ValueError):
            Bus("b", 32, 0)


class TestArbitration:
    def test_free_bus_no_wait(self):
        bus = Bus("b", 32)
        assert bus.request(10, 32) == 11
        assert bus.wait_cycles == 0

    def test_back_to_back_serialize(self):
        bus = Bus("b", 32, 4)  # 4-cycle slots for 32B
        first = bus.request(0, 32)
        second = bus.request(0, 32)
        assert first == 4
        assert second >= 8  # pushed to the next slot

    def test_out_of_order_requests_do_not_block_earlier_ones(self):
        """A request stamped in the future must not delay an earlier one.

        This is the scenario that breaks a naive ``next_free`` cursor:
        p-thread prefetches are scheduled ahead of main-thread demand
        requests with smaller timestamps.
        """
        bus = Bus("b", 32, 4)
        late = bus.request(1000, 32)
        early = bus.request(0, 32)
        assert late >= 1004
        assert early <= 8  # unaffected by the future transfer

    def test_throughput_is_bounded(self):
        bus = Bus("b", 32, 4)  # one transfer per 4 cycles
        completions = [bus.request(0, 32) for _ in range(10)]
        # 10 transfers cannot complete faster than 40 cycles of occupancy.
        assert max(completions) >= 40

    def test_busy_cycles_accumulate(self):
        bus = Bus("b", 32, 4)
        bus.request(0, 64)
        bus.request(0, 64)
        assert bus.busy_cycles == 16
        assert bus.transfers == 2

    def test_reset(self):
        bus = Bus("b", 32)
        bus.request(0, 32)
        bus.reset()
        assert bus.transfers == 0
        assert bus.request(0, 32) == 1
