"""Tests for the stride prefetcher."""

import pytest

from repro.memory.prefetcher import StridePrefetcher


class TestStridePrefetcher:
    def test_constant_stride_learned(self):
        prefetcher = StridePrefetcher(threshold=2, degree=1)
        out = []
        for i in range(6):
            out = prefetcher.observe(pc=10, addr=1000 + i * 64)
        assert out == [1000 + 6 * 64]

    def test_degree_extends_lookahead(self):
        prefetcher = StridePrefetcher(threshold=1, degree=3)
        for i in range(4):
            out = prefetcher.observe(pc=10, addr=i * 32)
        assert out == [128, 160, 192]

    def test_random_addresses_never_predict(self):
        import random

        rng = random.Random(0)
        prefetcher = StridePrefetcher(threshold=2)
        predictions = []
        for _ in range(500):
            predictions.extend(
                prefetcher.observe(pc=10, addr=rng.randrange(1 << 20) * 4)
            )
        assert len(predictions) < 10  # chance repeats only

    def test_stride_change_resets_confidence(self):
        prefetcher = StridePrefetcher(threshold=2, degree=1)
        for i in range(5):
            prefetcher.observe(pc=10, addr=i * 64)
        assert prefetcher.observe(pc=10, addr=10_000) == []
        assert prefetcher.observe(pc=10, addr=10_100) == []
        assert prefetcher.observe(pc=10, addr=10_200) == []
        # Stride 100 confirmed twice -> predicts again.
        assert prefetcher.observe(pc=10, addr=10_300) == [10_400]

    def test_pcs_tracked_independently(self):
        prefetcher = StridePrefetcher(threshold=1, degree=1)
        for i in range(3):
            prefetcher.observe(pc=1, addr=i * 8)
            prefetcher.observe(pc=2, addr=i * 1024)
        assert prefetcher.observe(pc=1, addr=24) == [32]
        assert prefetcher.observe(pc=2, addr=3072) == [4096]

    def test_zero_stride_never_predicts(self):
        prefetcher = StridePrefetcher(threshold=1)
        for _ in range(10):
            out = prefetcher.observe(pc=1, addr=512)
        assert out == []

    def test_validation(self):
        with pytest.raises(ValueError):
            StridePrefetcher(table_entries=0)
        with pytest.raises(ValueError):
            StridePrefetcher(degree=0)

    def test_reset(self):
        prefetcher = StridePrefetcher(threshold=1)
        for i in range(3):
            prefetcher.observe(pc=1, addr=i * 8)
        prefetcher.reset()
        assert prefetcher.trainings == 0
        assert prefetcher.observe(pc=1, addr=100) == []


class TestStrideInTimingModel:
    def test_covers_sequential_not_computed(self):
        """The paper's opening claim, end to end: stride prefetching
        covers streaming misses (bzip2's index array) but none of the
        computed-address misses (vpr.p)."""
        from repro.timing import BASELINE, MachineConfig, TimingSimulator
        from repro.workloads import build

        machine = MachineConfig(stride_prefetch=True)
        covered = {}
        for name in ("bzip2", "vpr.p"):
            workload = build(name, "test")
            stats = TimingSimulator(
                workload.program, workload.hierarchy, machine
            ).run(BASELINE)
            covered[name] = stats.coverage_fraction
        assert covered["bzip2"] > 0.2
        assert covered["vpr.p"] < 0.02
