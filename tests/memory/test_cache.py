"""Tests for the set-associative LRU cache."""

import pytest

from repro.memory.cache import Cache, CacheConfig


def small_cache(assoc=2, sets=4, line=32):
    return Cache(
        CacheConfig(
            name="T",
            size_bytes=assoc * sets * line,
            line_bytes=line,
            assoc=assoc,
            hit_latency=1,
        )
    )


class TestConfig:
    def test_num_sets(self):
        config = CacheConfig("T", 1024, 32, 2, 1)
        assert config.num_sets == 16

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig("T", 1000, 32, 2, 1)

    def test_non_power_of_two_line_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig("T", 1024, 24, 2, 1)


class TestAccess:
    def test_first_access_misses_then_hits(self):
        cache = small_cache()
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.misses == 1 and cache.hits == 1

    def test_same_line_different_word_hits(self):
        cache = small_cache(line=32)
        cache.access(0)
        assert cache.access(28)
        assert not cache.access(32)  # next line

    def test_lru_eviction_order(self):
        cache = small_cache(assoc=2, sets=1, line=32)
        a, b, c = 0, 32, 64  # all map to the single set
        cache.access(a)
        cache.access(b)
        cache.access(a)  # a is MRU
        cache.access(c)  # evicts b (LRU)
        assert cache.probe(a)
        assert not cache.probe(b)
        assert cache.probe(c)

    def test_probe_does_not_update_lru(self):
        cache = small_cache(assoc=2, sets=1)
        a, b, c = 0, 32, 64
        cache.access(a)
        cache.access(b)  # LRU order: b, a
        cache.probe(a)  # must NOT promote a
        cache.access(c)  # evicts a
        assert not cache.probe(a)
        assert cache.probe(b)

    def test_probe_does_not_count_stats(self):
        cache = small_cache()
        cache.probe(0)
        assert cache.accesses == 0

    def test_dirty_eviction_counts_writeback(self):
        cache = small_cache(assoc=1, sets=1)
        cache.access(0, is_write=True)
        cache.access(32)  # evict dirty line
        assert cache.writebacks == 1
        cache.access(64)  # evict clean line
        assert cache.writebacks == 1

    def test_write_hit_marks_dirty(self):
        cache = small_cache(assoc=1, sets=1)
        cache.access(0)
        cache.access(0, is_write=True)
        cache.access(32)
        assert cache.writebacks == 1

    def test_fill_installs_without_stats(self):
        cache = small_cache()
        cache.fill(0)
        assert cache.probe(0)
        assert cache.accesses == 0 and cache.misses == 0

    def test_fill_existing_line_is_noop(self):
        cache = small_cache(assoc=1, sets=1)
        cache.fill(0)
        cache.fill(0)
        assert cache.resident_lines() == 1

    def test_invalidate(self):
        cache = small_cache()
        cache.fill(0)
        assert cache.invalidate(0)
        assert not cache.probe(0)
        assert not cache.invalidate(0)

    def test_miss_rate(self):
        cache = small_cache()
        assert cache.miss_rate() == 0.0
        cache.access(0)
        cache.access(0)
        assert cache.miss_rate() == 0.5

    def test_reset_stats(self):
        cache = small_cache()
        cache.access(0)
        cache.reset_stats()
        assert cache.accesses == 0 and cache.misses == 0

    def test_capacity_bound(self):
        cache = small_cache(assoc=2, sets=4)
        for i in range(100):
            cache.access(i * 32)
        assert cache.resident_lines() <= 8

    def test_line_addr(self):
        cache = small_cache(line=32)
        assert cache.line_addr(0) == 0
        assert cache.line_addr(31) == 0
        assert cache.line_addr(32) == 32
        assert cache.line_addr(100) == 96


class TestGoldenSequences:
    """Scripted access sequences with exact expected outcomes.

    These pin the flat-array LRU implementation (and the compiled
    engine's inlined copy of its hit path) to known-good behaviour:
    any change to replacement order, dirty tracking, or writeback
    accounting shows up as an exact mismatch here.
    """

    def test_lru_golden_sequence(self):
        cache = small_cache(assoc=2, sets=1, line=32)
        # (address, is_write) -> expected hit
        script = [
            (0, False, False),     # miss, installs A
            (32, False, False),    # miss, installs B (A is LRU)
            (0, False, True),      # hit A, A becomes MRU
            (64, False, False),    # miss, evicts B (LRU)
            (32, False, False),    # miss again: B was evicted
            (0, False, False),     # miss: A was evicted by B reload
            (0, False, True),      # hit
        ]
        for addr, is_write, expected_hit in script:
            assert cache.access(addr, is_write) is expected_hit, addr
        assert cache.accesses == len(script)
        assert cache.misses == 5
        assert cache.hits == 2

    def test_writeback_golden_sequence(self):
        cache = small_cache(assoc=2, sets=1, line=32)
        cache.access(0, is_write=True)    # A dirty
        cache.access(32, is_write=False)  # B clean
        cache.access(64, is_write=False)  # evicts A (LRU, dirty) -> wb
        assert cache.writebacks == 1
        cache.access(96, is_write=False)  # evicts B (clean) -> no wb
        assert cache.writebacks == 1
        cache.access(64, is_write=True)   # hit, re-dirty
        cache.access(128, is_write=False) # evicts 96 (clean)
        assert cache.writebacks == 1
        cache.access(160, is_write=False) # evicts 64 (dirty) -> wb
        assert cache.writebacks == 2

    def test_write_miss_installs_dirty(self):
        cache = small_cache(assoc=2, sets=1, line=32)
        cache.access(0, is_write=True)   # write miss: allocate dirty
        cache.access(32, is_write=False)
        cache.access(64, is_write=False)  # evicts line 0: dirty
        assert cache.writebacks == 1

    def test_invalidate_golden_sequence(self):
        cache = small_cache(assoc=2, sets=1, line=32)
        cache.access(0)
        cache.access(32)
        assert cache.resident_lines() == 2
        assert cache.invalidate(0) is True
        assert cache.invalidate(0) is False  # already gone
        assert cache.resident_lines() == 1
        assert cache.probe(32)
        assert not cache.probe(0)
        # The freed way is reused without evicting the survivor.
        cache.access(64)
        assert cache.probe(32)
        assert cache.resident_lines() == 2

    def test_invalidated_dirty_line_never_writes_back(self):
        cache = small_cache(assoc=2, sets=1, line=32)
        cache.access(0, is_write=True)
        assert cache.invalidate(0) is True
        cache.access(32)
        cache.access(64)
        cache.access(96)  # pressure: evictions, but line 0 is gone
        assert cache.writebacks == 0

    def test_mru_move_preserves_dirty_bits(self):
        cache = small_cache(assoc=2, sets=1, line=32)
        cache.access(0, is_write=True)   # A dirty
        cache.access(32, is_write=False) # B clean, A now LRU
        cache.access(0, is_write=False)  # hit A: moves to MRU, stays dirty
        cache.access(32, is_write=False) # hit B: B MRU, A LRU
        cache.access(64, is_write=False) # evicts A: must write back
        assert cache.writebacks == 1
