"""Tests for the functional and timed two-level hierarchies."""

import pytest

from repro.memory.cache import CacheConfig
from repro.memory.hierarchy import (
    CoverageKind,
    FunctionalHierarchy,
    HierarchyConfig,
    MemoryLevel,
    TimedHierarchy,
)


def tiny_config(mem_latency=70):
    return HierarchyConfig(
        l1=CacheConfig("L1D", 256, 32, 2, 2),
        l2=CacheConfig("L2", 1024, 64, 4, 6),
        mem_latency=mem_latency,
        mshr_entries=4,
    )


class TestFunctionalHierarchy:
    def test_miss_then_hits(self):
        hierarchy = FunctionalHierarchy(tiny_config())
        assert hierarchy.access(0) == MemoryLevel.MEM
        assert hierarchy.access(0) == MemoryLevel.L1

    def test_l2_hit_after_l1_eviction(self):
        hierarchy = FunctionalHierarchy(tiny_config())
        hierarchy.access(0)
        # Evict line 0 from the 4-set 2-way L1 (same-set lines) while
        # the 1KB L2 keeps it.
        hierarchy.access(128)
        hierarchy.access(256)
        assert hierarchy.access(0) == MemoryLevel.L2

    def test_warm_installs_silently(self):
        hierarchy = FunctionalHierarchy(tiny_config())
        hierarchy.warm(0)
        assert hierarchy.access(0) == MemoryLevel.L1
        assert hierarchy.l1.misses == 0

    def test_scaled_config(self):
        config = tiny_config().scaled(2)
        assert config.l1.size_bytes == 128
        assert config.l2.size_bytes == 512
        assert config.l1.line_bytes == 32

    def test_with_mem_latency(self):
        config = tiny_config().with_mem_latency(140)
        assert config.mem_latency == 140
        assert config.l1 == tiny_config().l1


class TestTimedHierarchyBasics:
    def test_l1_hit_latency(self):
        timed = TimedHierarchy(tiny_config())
        timed.mt_access(0, now=0)  # miss, installs
        outcome = timed.mt_access(0, now=500)
        assert outcome.level == MemoryLevel.L1
        assert outcome.complete == 502

    def test_memory_latency_includes_bus(self):
        timed = TimedHierarchy(tiny_config())
        outcome = timed.mt_access(0, now=0)
        assert outcome.level == MemoryLevel.MEM
        # 70 memory + 64B over a 32B quarter-clock bus = 8 cycles.
        assert outcome.complete == 78

    def test_in_flight_line_serializes_second_access(self):
        timed = TimedHierarchy(tiny_config())
        first = timed.mt_access(0, now=0)
        second = timed.mt_access(4, now=5)  # same line, still in flight
        assert second.complete >= first.complete

    def test_mshr_merge_same_line(self):
        timed = TimedHierarchy(tiny_config())
        timed.mt_access(0, now=0)
        assert timed.mshrs.merges == 0
        # A different L1 line in the same L2 line (L1 line 32B, L2 64B)
        # misses L1 and L2-hits (fill already installed) — so force an
        # L2-level merge via a second *L2* line fetch path instead:
        timed.mt_access(4096, now=0)
        assert timed.mt_l2_misses == 2


class TestCoverageClassification:
    def test_full_coverage(self):
        timed = TimedHierarchy(tiny_config())
        prefetched = timed.pt_access(0, now=0)
        outcome = timed.mt_access(0, now=prefetched.complete + 10)
        assert outcome.coverage == CoverageKind.FULL
        assert timed.full_covered == 1

    def test_partial_coverage_waits_for_fill(self):
        timed = TimedHierarchy(tiny_config())
        prefetched = timed.pt_access(0, now=0)
        outcome = timed.mt_access(0, now=20)  # fill still in flight
        assert outcome.coverage == CoverageKind.PARTIAL
        assert outcome.complete >= prefetched.complete
        assert timed.partial_covered == 1
        assert timed.partial_covered_cycles >= 20

    def test_coverage_counted_once(self):
        timed = TimedHierarchy(tiny_config())
        done = timed.pt_access(0, now=0).complete
        timed.mt_access(0, now=done + 1)
        timed.mt_access(0, now=done + 2)
        assert timed.full_covered == 1

    def test_evicted_prefetch(self):
        config = tiny_config()
        timed = TimedHierarchy(config)
        timed.pt_access(0, now=0)
        # Evict line 0 from the 1KB 4-way L2: fill its set heavily.
        num_sets = config.l2.num_sets
        for way in range(1, 8):
            timed.mt_access(way * num_sets * 64, now=100 + way)
        outcome = timed.mt_access(0, now=1000)
        assert outcome.coverage == CoverageKind.EVICTED
        assert timed.evicted_prefetches == 1

    def test_pt_loads_do_not_fill_l1(self):
        timed = TimedHierarchy(tiny_config())
        done = timed.pt_access(0, now=0).complete
        outcome = timed.mt_access(0, now=done + 10)
        # The main thread finds the line in the L2, not the L1.
        assert outcome.level == MemoryLevel.L2

    def test_pt_hit_in_l2_no_stamp(self):
        timed = TimedHierarchy(tiny_config())
        done = timed.mt_access(0, now=0).complete  # MT fetches the line
        outcome = timed.pt_access(0, now=done + 1)
        assert outcome.level in (MemoryLevel.L1, MemoryLevel.L2)
        follow = timed.mt_access(0, now=done + 50)
        assert follow.coverage is None

    def test_unclaimed_prefetches(self):
        timed = TimedHierarchy(tiny_config())
        timed.pt_access(0, now=0)
        timed.pt_access(4096, now=0)
        assert timed.unclaimed_prefetches() == 2


class TestPhantomAccess:
    def test_phantom_does_not_change_state(self):
        timed = TimedHierarchy(tiny_config())
        outcome = timed.phantom_access(0, now=0)
        assert outcome.complete == 70
        assert timed.mt_access(0, now=0).level == MemoryLevel.MEM

    def test_phantom_reads_residency(self):
        timed = TimedHierarchy(tiny_config())
        timed.mt_access(0, now=0)
        outcome = timed.phantom_access(0, now=100)
        assert outcome.level == MemoryLevel.L1
        assert outcome.complete == 102


class TestPerfectL2:
    def test_miss_completes_in_l2_time(self):
        timed = TimedHierarchy(tiny_config(), perfect_l2=True)
        outcome = timed.mt_access(0, now=0)
        assert outcome.level == MemoryLevel.MEM  # still counted
        assert outcome.complete == 6
        assert timed.mt_l2_misses == 1

    def test_same_line_followup_not_delayed(self):
        timed = TimedHierarchy(tiny_config(), perfect_l2=True)
        timed.mt_access(0, now=0)
        outcome = timed.mt_access(4, now=1)
        assert outcome.complete <= 7
