"""Tests for aggregate advantage beyond the Figure 2 golden numbers."""

import pytest

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.model.advantage import (
    evaluate_candidate,
    instruction_latency,
    main_thread_scdh,
    pthread_scdh,
)
from repro.model.params import ModelParams
from repro.pthreads.body import PThreadBody


def chain_body(n_addis):
    """addi chain feeding a load."""
    insts = [
        Instruction(Opcode.ADDI, rd=5, rs1=5, imm=16, pc=11)
        for _ in range(n_addis)
    ]
    insts.append(Instruction(Opcode.LW, rd=8, rs1=5, imm=0, pc=9))
    return insts


PARAMS = ModelParams(bw_seq=8, unassisted_ipc=1.0, mem_latency=70, load_latency=2)


class TestInstructionLatency:
    def test_loads_use_model_latency(self):
        load = Instruction(Opcode.LW, rd=1, rs1=2)
        assert instruction_latency(load, PARAMS) == 2

    def test_alu_uses_isa_latency(self):
        mul = Instruction(Opcode.MUL, rd=1, rs1=2, rs2=3)
        assert instruction_latency(mul, PARAMS) == 3


class TestScdhSides:
    def test_pthread_side_dense(self):
        body = PThreadBody(chain_body(3))
        height = pthread_scdh(body, PARAMS)
        # Serial addi chain: 1 (SC) + 3 latencies, then the load's SC=4.
        assert height == pytest.approx(4.0)

    def test_main_thread_side_sparse(self):
        insts = chain_body(3)
        # One loop iteration (say 14 instructions) between each addi.
        dists = [15, 29, 43, 45]
        height = main_thread_scdh(insts, dists, PARAMS)
        assert height > pthread_scdh(PThreadBody(insts), PARAMS)

    def test_distance_vector_length_checked(self):
        with pytest.raises(ValueError):
            main_thread_scdh(chain_body(1), [1, 2, 3], PARAMS)


class TestCandidateProperties:
    def make(self, n_addis, iteration_length=14, dc_trig=100, dc_ptcm=50):
        insts = chain_body(n_addis)
        dists = [
            1 + (n_addis - i) * iteration_length for i in range(n_addis)
        ]
        dists.append(dists[-1] + 2 if n_addis else 2)
        # distances must increase along the body; rebuild properly:
        dists = [1 + (i + 1) * iteration_length for i in range(n_addis)]
        dists.append(n_addis * iteration_length + 3)
        return evaluate_candidate(
            trigger_pc=11,
            load_pc=9,
            depth=len(insts),
            original=insts,
            mt_distances=dists,
            executed_body=PThreadBody(insts),
            dc_trig=dc_trig,
            dc_pt_cm=dc_ptcm,
            params=PARAMS,
        )

    def test_lt_never_negative(self):
        assert self.make(0).lt >= 0.0

    def test_lt_capped(self):
        deep = self.make(30)
        assert deep.lt <= PARAMS.mem_latency

    def test_unrolling_increases_tolerance_until_cap(self):
        lts = [self.make(n).lt for n in (1, 4, 8, 16)]
        assert lts == sorted(lts)

    def test_overhead_grows_with_size(self):
        assert self.make(8).oh > self.make(2).oh

    def test_aggregates(self):
        s = self.make(4, dc_trig=200, dc_ptcm=80)
        assert s.lt_agg == pytest.approx(80 * s.lt)
        assert s.oh_agg == pytest.approx(200 * s.oh)
        assert s.adv_agg == pytest.approx(s.lt_agg - s.oh_agg)

    def test_useless_pthreads_cost_without_benefit(self):
        precise = self.make(4, dc_trig=100, dc_ptcm=50)
        wasteful = self.make(4, dc_trig=1000, dc_ptcm=50)
        assert wasteful.adv_agg < precise.adv_agg

    def test_describe_mentions_key_stats(self):
        text = self.make(4).describe()
        assert "ADVagg" in text and "DCtrig" in text
