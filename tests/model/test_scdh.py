"""Tests for sequencing-constrained dataflow height."""

import pytest

from repro.model.scdh import scdh_input_height, scdh_profile


class TestScdhProfile:
    def test_independent_instructions_follow_sequencing(self):
        completion = scdh_profile([1, 2, 3], [1, 1, 1], [(), (), ()])
        assert completion == [2, 3, 4]

    def test_dependence_dominates_sequencing(self):
        completion = scdh_profile([1, 2, 3], [5, 1, 1], [(), (0,), (1,)])
        assert completion == [6, 7, 8]

    def test_sequencing_dominates_dependence(self):
        completion = scdh_profile([1, 10, 20], [1, 1, 1], [(), (0,), (1,)])
        assert completion == [2, 11, 21]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            scdh_profile([1], [1, 2], [()])

    def test_forward_dependence_rejected(self):
        with pytest.raises(ValueError):
            scdh_profile([1, 2], [1, 1], [(1,), ()])


class TestInputHeight:
    def test_excludes_target_latency(self):
        # Target is the last instruction; its own latency must not count.
        height = scdh_input_height([1, 2], [1, 99], [(), (0,)])
        assert height == 2  # producer completes at 2; SC is 2

    def test_target_sequencing_constraint_applies(self):
        height = scdh_input_height([1, 50], [1, 1], [(), (0,)])
        assert height == 50

    def test_no_deps_uses_sequencing_only(self):
        assert scdh_input_height([7], [1], [()]) == 7

    def test_explicit_target_position(self):
        height = scdh_input_height(
            [1, 2, 3], [1, 1, 1], [(), (0,), ()], target=1
        )
        assert height == 2  # max(SC=2, completion[0]=2)

    def test_target_bounds_checked(self):
        with pytest.raises(ValueError):
            scdh_input_height([1], [1], [()], target=5)

    def test_monotone_in_sequencing_constraints(self):
        base = scdh_input_height([1, 2, 3], [1, 1, 1], [(), (0,), (1,)])
        slower = scdh_input_height([2, 4, 6], [1, 1, 1], [(), (0,), (1,)])
        assert slower >= base
