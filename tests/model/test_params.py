"""Tests for model parameters and selection constraints."""

import pytest

from repro.model.params import ModelParams, SelectionConstraints


class TestModelParams:
    def test_bw_seq_mt_weighting(self):
        # (2*IPC + BWseq) / 3, weighted 2:1 toward IPC.
        params = ModelParams(bw_seq=8, unassisted_ipc=2.0)
        assert params.bw_seq_mt == pytest.approx(4.0)

    def test_bw_seq_mt_bounds(self):
        params = ModelParams(bw_seq=8, unassisted_ipc=8.0)
        assert params.bw_seq_mt == pytest.approx(8.0)
        params = ModelParams(bw_seq=8, unassisted_ipc=0.1)
        assert 0.1 < params.bw_seq_mt < 8.0

    def test_overhead_charge_formula(self):
        params = ModelParams(bw_seq=4, unassisted_ipc=1.0)
        assert params.overhead_per_instruction() == pytest.approx(2.0 / 16.0)

    def test_wider_machine_cheaper_overhead(self):
        narrow = ModelParams(bw_seq=4, unassisted_ipc=1.0)
        wide = ModelParams(bw_seq=8, unassisted_ipc=1.0)
        assert (
            wide.overhead_per_instruction() < narrow.overhead_per_instruction()
        )

    def test_with_helpers(self):
        params = ModelParams()
        assert params.with_ipc(2.0).unassisted_ipc == 2.0
        assert params.with_mem_latency(140).mem_latency == 140
        assert params.with_width(4).bw_seq == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(bw_seq=0),
            dict(bw_seq_pt=0),
            dict(mem_latency=0),
            dict(unassisted_ipc=0),
            dict(load_latency=0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ModelParams(**kwargs)


class TestSelectionConstraints:
    def test_paper_defaults(self):
        constraints = SelectionConstraints()
        assert constraints.scope == 1024
        assert constraints.max_pthread_length == 32
        assert constraints.optimize and constraints.merge

    @pytest.mark.parametrize(
        "kwargs",
        [dict(scope=0), dict(max_pthread_length=0), dict(min_support=0)],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SelectionConstraints(**kwargs)
