"""Golden test: the paper's Figure 2 working example.

The pharmacy loop, 100 iterations, 80 containing the problem load (60
via #04 / 20 via #06), 40 misses (30/10 by path), unit latencies,
``Lmem = 8``, 4-wide processor, unassisted IPC 1 (so ``BWseq-mt = 2``
and the per-instruction overhead charge is 0.125).

The paper's scores: candidates 1/2 lose (-10 / -20), candidate 3 barely
wins (LT=1, ADVagg 7.5), candidate 4 is better (LT=3, ADVagg 40),
candidate 5 wins with full latency tolerance (LT=8, ADVagg 177.5 — the
paper prints the rounded 177 with "63 overhead cycles"), and candidate
6 only adds overhead (ADVagg 165).
"""

import pytest

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.model.advantage import evaluate_candidate
from repro.model.params import ModelParams
from repro.pthreads.body import PThreadBody

PARAMS = ModelParams(bw_seq=4, unassisted_ipc=1.0, mem_latency=8, load_latency=1)

I11 = Instruction(Opcode.ADDI, rd=5, rs1=5, imm=16, pc=11)
I04 = Instruction(Opcode.LW, rd=7, rs1=5, imm=4, pc=4)
I07 = Instruction(Opcode.SLLI, rd=7, rs1=7, imm=2, pc=7)
I08 = Instruction(Opcode.ADDI, rd=7, rs1=7, imm=8192, pc=8)
I09 = Instruction(Opcode.LW, rd=8, rs1=7, imm=0, pc=9)

# (name, trigger pc, body, main-thread DISTtrig, DCtrig, DCpt-cm)
CANDIDATES = [
    ("c1", 8, [I09], [2], 80, 40),
    ("c2", 7, [I08, I09], [2, 3], 80, 40),
    ("c3", 4, [I07, I08, I09], [3, 4, 5], 60, 30),
    ("c4", 11, [I04, I07, I08, I09], [8, 10, 11, 12], 100, 30),
    ("c5", 11, [I11, I04, I07, I08, I09], [13, 20, 22, 23, 24], 100, 30),
    (
        "c6",
        11,
        [I11, I11, I04, I07, I08, I09],
        [13, 25, 32, 34, 35, 36],
        100,
        30,
    ),
]


def score(name):
    name, trigger, insts, dists, dc_trig, dc_ptcm = next(
        c for c in CANDIDATES if c[0] == name
    )
    return evaluate_candidate(
        trigger_pc=trigger,
        load_pc=9,
        depth=len(insts),
        original=insts,
        mt_distances=dists,
        executed_body=PThreadBody(insts),
        dc_trig=dc_trig,
        dc_pt_cm=dc_ptcm,
        params=PARAMS,
    )


class TestModelParameters:
    def test_bw_seq_mt_is_two(self):
        assert PARAMS.bw_seq_mt == 2.0

    def test_overhead_charge_is_eighth(self):
        assert PARAMS.overhead_per_instruction() == pytest.approx(0.125)


class TestFigure2Candidates:
    @pytest.mark.parametrize(
        "name,lt,oh_agg,adv",
        [
            ("c1", 0.0, 10.0, -10.0),
            ("c2", 0.0, 20.0, -20.0),
            ("c3", 1.0, 22.5, 7.5),
            ("c4", 3.0, 50.0, 40.0),
            ("c5", 8.0, 62.5, 177.5),
            ("c6", 8.0, 75.0, 165.0),
        ],
    )
    def test_published_scores(self, name, lt, oh_agg, adv):
        s = score(name)
        assert s.lt == pytest.approx(lt)
        assert s.oh_agg == pytest.approx(oh_agg)
        assert s.adv_agg == pytest.approx(adv)

    def test_candidate_5_wins(self):
        scores = {name: score(name).adv_agg for name, *_ in CANDIDATES}
        assert max(scores, key=scores.get) == "c5"

    def test_first_two_candidates_lose(self):
        assert score("c1").adv_agg < 0
        assert score("c2").adv_agg < 0

    def test_lt_capped_at_miss_latency(self):
        assert score("c5").lt == PARAMS.mem_latency
        assert score("c6").lt == PARAMS.mem_latency

    def test_dc_ptcm_monotonically_non_increasing_along_slice(self):
        """Longer p-threads correspond to fewer dynamic computations."""
        dcs = [c[5] for c in CANDIDATES]
        assert dcs == sorted(dcs, reverse=True)

    def test_paper_rounding_of_winner(self):
        """The paper reports 177 with "63 overhead cycles": the exact
        values are 177.5 and 62.5, truncated/rounded up in the text."""
        s = score("c5")
        assert s.oh_agg == pytest.approx(62.5)
        assert int(s.adv_agg) == 177


class TestOptimizationOnCandidate6:
    def test_folding_makes_c6_match_c5(self):
        """With constant folding, candidate 6's two #11 copies fold into
        one ``addi r5, r5, 32`` — the paper's stated optimization — and
        the score rises back to candidate 5 territory."""
        from repro.pthreads.optimizer import optimize_body

        _, trigger, insts, dists, dc_trig, dc_ptcm = next(
            c for c in CANDIDATES if c[0] == "c6"
        )
        optimized = optimize_body(PThreadBody(insts)).body
        assert optimized.size == 5
        assert optimized.instructions[0].imm == 32
        s = evaluate_candidate(
            trigger_pc=trigger,
            load_pc=9,
            depth=6,
            original=insts,
            mt_distances=dists,
            executed_body=optimized,
            dc_trig=dc_trig,
            dc_pt_cm=dc_ptcm,
            params=PARAMS,
        )
        assert s.adv_agg == pytest.approx(177.5)
