"""Differential equivalence: compiled/tiered engines vs. interpreter.

The compiled basic-block engine and the tiered engine layered on top
of it are optimizations, not second models: for every bundled workload
they must reproduce the interpreter's results bit for bit — the packed
functional trace, every statistic, every timing-simulator counter, in
every simulation mode.  These tests are the contract that keeps the
three engines pinned together.
"""

import pytest

from repro.engine.compiler import (
    ENGINE_COMPILED,
    ENGINE_INTERP,
    ENGINE_TIERED,
)
from repro.engine.functional import FunctionalSimulator
from repro.model.params import ModelParams
from repro.selection.program_selector import select_pthreads
from repro.timing.config import (
    BASELINE,
    OVERHEAD_SEQUENCE,
    PERFECT_L2,
    PRE_EXECUTION,
)
from repro.timing.core import TimingSimulator
from repro.workloads.suite import SUITE, build

ALL_WORKLOADS = list(SUITE) + ["pharmacy"]

#: p-thread-bearing modes exercised per workload: with launches
#: (steal + execute + prefetch), steal-only overhead accounting, and
#: the perfect-L2 bound (no launches, different hierarchy behavior).
MODES = (BASELINE, PRE_EXECUTION, OVERHEAD_SEQUENCE, PERFECT_L2)

_CACHE = {}


def _workload(name):
    if name not in _CACHE:
        _CACHE[name] = build(name)
    return _CACHE[name]


def _selected_pthreads(name):
    """Real selected p-threads for ``name`` (memoized per session)."""
    key = ("pthreads", name)
    if key not in _CACHE:
        workload = _workload(name)
        result = FunctionalSimulator(
            workload.program, workload.hierarchy, engine=ENGINE_INTERP
        ).run()
        params = ModelParams(
            bw_seq=8,
            unassisted_ipc=1.0,
            mem_latency=workload.hierarchy.mem_latency,
            load_latency=workload.hierarchy.l1.hit_latency,
        )
        selection = select_pthreads(workload.program, result.trace, params)
        _CACHE[key] = selection.pthreads
    return _CACHE[key]


def _diff(a, b):
    return {k: (a[k], b[k]) for k in a if a[k] != b[k]}


@pytest.mark.parametrize("name", ALL_WORKLOADS)
def test_functional_results_bit_identical(name):
    workload = _workload(name)
    results = {}
    for engine in (ENGINE_INTERP, ENGINE_COMPILED, ENGINE_TIERED):
        sim = FunctionalSimulator(
            workload.program, workload.hierarchy, engine=engine
        )
        results[engine] = sim.run().to_dict()
        assert sim.last_engine == engine
    for engine in (ENGINE_COMPILED, ENGINE_TIERED):
        assert results[ENGINE_INTERP] == results[engine], (
            engine,
            _diff(results[ENGINE_INTERP], results[engine]),
        )


@pytest.mark.parametrize("name", ALL_WORKLOADS)
def test_functional_no_trace_bit_identical(name):
    workload = _workload(name)
    results = {}
    for engine in (ENGINE_INTERP, ENGINE_COMPILED, ENGINE_TIERED):
        sim = FunctionalSimulator(
            workload.program, workload.hierarchy, engine=engine
        )
        results[engine] = sim.run(collect_trace=False).to_dict()
        assert sim.last_engine == engine
    for engine in (ENGINE_COMPILED, ENGINE_TIERED):
        assert results[ENGINE_INTERP] == results[engine], engine


@pytest.mark.parametrize("name", ALL_WORKLOADS)
def test_timing_stats_bit_identical_across_modes(name):
    workload = _workload(name)
    pthreads = _selected_pthreads(name)
    for mode in MODES:
        stats = {}
        for engine in (ENGINE_INTERP, ENGINE_COMPILED, ENGINE_TIERED):
            sim = TimingSimulator(
                workload.program,
                workload.hierarchy,
                pthreads=pthreads,
                engine=engine,
            )
            stats[engine] = sim.run(mode).to_dict()
            assert sim.last_engine == engine
        for engine in (ENGINE_COMPILED, ENGINE_TIERED):
            assert stats[ENGINE_INTERP] == stats[engine], (
                mode.name,
                engine,
                _diff(stats[ENGINE_INTERP], stats[engine]),
            )
