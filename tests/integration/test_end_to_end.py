"""End-to-end integration: the full paper pipeline on real workloads."""

import pytest

from repro.harness.experiment import ExperimentConfig, ExperimentRunner
from repro.model.params import SelectionConstraints
from repro.workloads.suite import build


@pytest.fixture(scope="module")
def runner():
    """Runner seeded with reduced-size train inputs for speed."""
    runner = ExperimentRunner()
    overrides = {
        "pharmacy": dict(n_xact=900, n_drugs=16384, hot_drugs=1024),
        "vpr.r": dict(n_expansions=900, n_nodes=8192),
        "mcf": dict(n_chains=30, chain_length=40, arena_words=16 * 1024),
    }
    for name, params in overrides.items():
        small = build(name, "train", **params)
        runner._workloads[(name, "train", None)] = small
        runner._workloads[(name, "train", small.hierarchy)] = small
    return runner


class TestPharmacyEndToEnd:
    def test_pre_execution_improves_pharmacy(self, runner):
        result = runner.run(ExperimentConfig(workload="pharmacy"))
        assert result.speedup > 0.10
        assert result.coverage > 0.70

    def test_merged_pthread_structure(self, runner):
        """The selected p-threads must be the paper's: triggered by the
        induction, built from folded unrolling + the two arms."""
        result = runner.run(ExperimentConfig(workload="pharmacy"))
        from repro.workloads import pharmacy

        triggers = {p.trigger_pc for p in result.selection.pthreads}
        assert pharmacy.INDUCTION_PC in triggers
        main = max(
            result.selection.pthreads,
            key=lambda p: p.prediction.misses_covered,
        )
        # Folded induction: one addi with a multi-iteration stride.
        first = main.body.instructions[0]
        assert first.imm % 16 == 0 and first.imm >= 32

    def test_predictions_track_measurements(self, runner):
        result = runner.run(
            ExperimentConfig(workload="pharmacy", validate=True)
        )
        prediction = result.selection.prediction
        stats = result.preexec
        assert stats.pthread_launches <= prediction.launches
        assert stats.pthread_launches >= 0.5 * prediction.launches
        measured_cov = stats.coverage_fraction
        predicted_cov = prediction.coverage_fraction
        assert abs(measured_cov - predicted_cov) < 0.25
        overhead = result.validation["overhead_sequence"]
        assert overhead.ipc == pytest.approx(
            prediction.predicted_overhead_ipc, rel=0.25
        )


class TestContrastingWorkloads:
    def test_vpr_route_highly_coverable(self, runner):
        result = runner.run(ExperimentConfig(workload="vpr.r"))
        assert result.coverage > 0.5
        assert result.speedup > 0.0

    def test_mcf_structurally_limited(self, runner):
        """The pointer chase: covered misses exist, but full coverage
        and speedup stay small — the paper's central mcf observation."""
        result = runner.run(ExperimentConfig(workload="mcf"))
        assert result.full_coverage < 0.5
        assert abs(result.speedup) < 0.35

    def test_vpr_beats_mcf(self, runner):
        vpr = runner.run(ExperimentConfig(workload="vpr.r"))
        mcf = runner.run(ExperimentConfig(workload="mcf"))
        assert vpr.speedup > mcf.speedup


class TestConstraintResponse:
    def test_scope_length_relaxation_monotone_lt(self, runner):
        tight = runner.run(
            ExperimentConfig(
                workload="pharmacy",
                constraints=SelectionConstraints(
                    scope=64, max_pthread_length=4
                ),
            )
        )
        loose = runner.run(
            ExperimentConfig(
                workload="pharmacy",
                constraints=SelectionConstraints(
                    scope=1024, max_pthread_length=32
                ),
            )
        )
        assert (
            loose.selection.prediction.lt_agg
            >= tight.selection.prediction.lt_agg
        )
        assert loose.full_coverage >= tight.full_coverage

    def test_memory_latency_response(self, runner):
        """Selecting for a longer latency must produce longer p-threads
        (the Figure 8 'intuitive response')."""
        short = runner.run(
            ExperimentConfig(workload="pharmacy", model_mem_latency=35)
        )
        long = runner.run(
            ExperimentConfig(workload="pharmacy", model_mem_latency=140)
        )
        if short.selection.pthreads and long.selection.pthreads:
            assert (
                long.selection.prediction.avg_pthread_length
                >= short.selection.prediction.avg_pthread_length
            )

    def test_self_validation_beats_cross_validation(self, runner):
        """p70(t70) >= p70(t140-ish): p-threads selected for the actual
        latency should not lose to over-specified ones."""
        self_val = runner.run(
            ExperimentConfig(workload="pharmacy")
        )
        over_spec = runner.run(
            ExperimentConfig(workload="pharmacy", model_mem_latency=280)
        )
        # Allow small noise; the self-selected set must be competitive.
        assert self_val.preexec.ipc >= over_spec.preexec.ipc * 0.93
