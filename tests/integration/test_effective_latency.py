"""Tests for the effective-latency (critical-path) selection refinement.

The paper identifies its serial-latency assumption as the main source
of IPC over-prediction and names a critical-path model as future work;
``ExperimentConfig(effective_latency=True)`` implements it by feeding
each load's measured exposed stall back into selection as its ``Lmem``.
"""

import pytest

from repro.harness.experiment import ExperimentConfig, ExperimentRunner
from repro.workloads.suite import build


@pytest.fixture(scope="module")
def runner():
    runner = ExperimentRunner()
    small = build("pharmacy", "train", n_xact=900, n_drugs=16384, hot_drugs=1024)
    runner._workloads[("pharmacy", "train", None)] = small
    runner._workloads[("pharmacy", "train", small.hierarchy)] = small
    return runner


class TestExposureMeasurement:
    def test_baseline_records_exposure(self, runner):
        workload = runner.workload("pharmacy", "train")
        base = runner.baseline(workload, ExperimentConfig(workload="pharmacy").machine)
        assert base.miss_exposure
        for pc, (count, cycles) in base.miss_exposure.items():
            assert count > 0 and cycles >= 0
            assert base.effective_latency(pc, 70.0) <= 300

    def test_default_for_unknown_pc(self, runner):
        workload = runner.workload("pharmacy", "train")
        base = runner.baseline(workload, ExperimentConfig(workload="pharmacy").machine)
        assert base.effective_latency(999_999, 42.0) == 42.0


class TestEffectiveLatencySelection:
    def test_predictions_less_optimistic(self, runner):
        naive = runner.run(ExperimentConfig(workload="pharmacy"))
        refined = runner.run(
            ExperimentConfig(workload="pharmacy", effective_latency=True)
        )
        assert (
            refined.selection.prediction.lt_agg
            <= naive.selection.prediction.lt_agg
        )
        assert (
            refined.selection.prediction.predicted_ipc
            <= naive.selection.prediction.predicted_ipc + 1e-9
        )

    def test_ipc_prediction_error_reduced(self, runner):
        naive = runner.run(ExperimentConfig(workload="pharmacy"))
        refined = runner.run(
            ExperimentConfig(workload="pharmacy", effective_latency=True)
        )

        def error(result):
            predicted = result.selection.prediction.predicted_ipc
            measured = result.preexec.ipc
            return abs(predicted - measured) / measured

        assert error(refined) <= error(naive) + 1e-9

    def test_performance_not_destroyed(self, runner):
        naive = runner.run(ExperimentConfig(workload="pharmacy"))
        refined = runner.run(
            ExperimentConfig(workload="pharmacy", effective_latency=True)
        )
        # The refinement may trade a little speedup for honesty, but
        # must remain in the same performance regime.
        assert refined.preexec.ipc >= naive.preexec.ipc * 0.75
