"""Cross-checks between the functional and timing engines.

Both engines execute programs independently; architectural outcomes and
memory-system *functional* behaviour must agree exactly.
"""

import pytest

from repro.engine import run_program
from repro.timing import BASELINE, TimingSimulator
from repro.workloads import SUITE, build


@pytest.mark.parametrize("name", SUITE + ["pharmacy"])
def test_engines_agree_on_all_workloads(name):
    workload = build(name, "test")
    functional = run_program(workload.program, workload.hierarchy)
    timing = TimingSimulator(workload.program, workload.hierarchy).run(BASELINE)
    assert timing.instructions == functional.instructions
    assert timing.loads == functional.loads
    assert timing.stores == functional.stores
    assert timing.branches == functional.branches
    # Same cache model, same reference stream: identical L2 misses.
    assert timing.l2_misses == functional.l2_misses


@pytest.mark.parametrize("name", ["mcf", "vpr.r"])
def test_ipc_within_physical_bounds(name):
    workload = build(name, "test")
    timing = TimingSimulator(workload.program, workload.hierarchy).run(BASELINE)
    assert 0.0 < timing.ipc <= 8.0
