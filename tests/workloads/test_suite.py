"""Tests for the workload suite registry and shared infrastructure."""

import pytest

from repro.engine import run_program
from repro.workloads import SUITE, available_inputs, build
from repro.workloads.common import DataBuilder, SUITE_HIERARCHY, mixed_indices


class TestRegistry:
    def test_suite_matches_paper_list(self):
        assert SUITE == [
            "bzip2",
            "crafty",
            "gap",
            "gcc",
            "mcf",
            "parser",
            "twolf",
            "vortex",
            "vpr.p",
            "vpr.r",
        ]

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            build("spec2077")

    def test_unknown_input_rejected(self):
        with pytest.raises(KeyError):
            build("mcf", "reference-large")

    def test_every_workload_has_train_and_test(self):
        for name in SUITE + ["pharmacy"]:
            inputs = available_inputs(name)
            assert "train" in inputs and "test" in inputs

    def test_overrides_apply(self):
        workload = build("mcf", "test", n_chains=5)
        assert workload.program.name == "mcf"

    def test_metadata(self):
        workload = build("vpr.p", "test")
        assert workload.name == "vpr.p"
        assert workload.input_name == "test"
        assert workload.hierarchy == SUITE_HIERARCHY
        assert workload.description


class TestDataBuilder:
    def test_regions_disjoint(self):
        builder = DataBuilder(seed=1)
        a = builder.region("a", 1000)
        b = builder.region("b", 1000)
        assert a != b
        assert abs(a - b) >= 1000 * 4

    def test_deterministic(self):
        a = DataBuilder(seed=5).random_words("x", 100, 0, 1000)
        b_builder = DataBuilder(seed=5)
        b = b_builder.random_words("x", 100, 0, 1000)
        assert a == b  # same base
        image_a = DataBuilder(seed=5)
        image_a.random_words("x", 100, 0, 1000)
        assert image_a.image.words == b_builder.image.words

    def test_permutation_complete(self):
        builder = DataBuilder(seed=3)
        base = builder.permutation("p", 50)
        values = sorted(
            builder.image.load_word(base + 4 * i) for i in range(50)
        )
        assert values == list(range(50))

    def test_region_exhaustion(self):
        builder = DataBuilder(seed=1)
        with pytest.raises(ValueError):
            for i in range(100):
                builder.region(f"r{i}", 1)


class TestMixedIndices:
    def test_hot_fraction_respected(self):
        import random

        rng = random.Random(0)
        indices = mixed_indices(rng, 10000, 1000, 100, hot_fraction=0.3)
        hot = sum(1 for i in indices if i < 100)
        assert 0.25 < hot / 10000 < 0.35

    def test_all_in_range(self):
        import random

        rng = random.Random(0)
        indices = mixed_indices(rng, 1000, 500, 50, 0.5)
        assert all(0 <= i < 500 for i in indices)


class TestExecution:
    @pytest.mark.parametrize("name", SUITE + ["pharmacy"])
    def test_test_input_halts_cleanly(self, name):
        workload = build(name, "test")
        result = run_program(
            workload.program, workload.hierarchy, max_instructions=2_000_000
        )
        assert result.halted
        assert result.l2_misses >= 0

    @pytest.mark.parametrize("name", SUITE)
    def test_deterministic_builds(self, name):
        a = build(name, "test").program
        b = build(name, "test").program
        assert a.instructions == b.instructions
        assert a.data.words == b.data.words
