"""Structural tests: each workload exhibits its benchmark's behaviour class.

These pin down the *shape* properties the reproduction relies on (see
DESIGN.md §2): mcf's serial chains, vpr.p's register-resident address
computation, parser/twolf's wide-span computations, crafty's scarcity
of coverable misses.
"""

import pytest

from repro.engine import run_program
from repro.model import ModelParams, SelectionConstraints
from repro.selection import select_pthreads
from repro.slicing import build_slice_trees
from repro.workloads import build


def traced(name, **overrides):
    workload = build(name, "test", **overrides)
    return workload, run_program(workload.program, workload.hierarchy)


PARAMS = ModelParams(bw_seq=8, unassisted_ipc=0.6, mem_latency=70, load_latency=2)


class TestMcfStructure:
    def test_slices_are_load_chains(self):
        workload, result = traced("mcf")
        trees = build_slice_trees(result.trace, scope=512, max_length=24)
        assert trees
        # The dominant tree's spine must be mostly loads (pointer hops).
        tree = max(trees.values(), key=lambda t: t.total_misses())
        spine = []
        node = tree.root
        while node.children:
            node = max(node.children.values(), key=lambda c: c.visits)
            spine.append(node)
        loads = sum(
            1 for n in spine if workload.program[n.pc].is_load
        )
        assert loads >= len(spine) * 0.4


class TestVprPlaceStructure:
    def test_slices_are_pure_arithmetic(self):
        workload, result = traced("vpr.p")
        trees = build_slice_trees(result.trace, scope=512, max_length=24)
        tree = max(trees.values(), key=lambda t: t.total_misses())
        spine = []
        node = tree.root
        while node.children:
            node = max(node.children.values(), key=lambda c: c.visits)
            spine.append(node)
        # Beyond the root load, the computation is register arithmetic.
        loads = sum(1 for n in spine if workload.program[n.pc].is_load)
        assert loads == 0


class TestCraftyStructure:
    def test_nothing_worth_selecting(self):
        workload, result = traced("crafty")
        selection = select_pthreads(
            workload.program, result.trace, PARAMS, SelectionConstraints()
        )
        # Cold lookups chain through the previous miss and fan out over
        # branch paths: no (or almost no) static p-thread qualifies.
        covered = selection.prediction.misses_covered
        assert covered <= 0.3 * max(1, selection.prediction.sample_l2_misses)


class TestPharmacyStructure:
    def test_two_arm_tree(self, pharmacy_small, pharmacy_small_run):
        from repro.workloads import pharmacy

        trees = build_slice_trees(pharmacy_small_run.trace, scope=512)
        tree = trees[pharmacy.PROBLEM_LOAD_PC]
        arm_pcs = set()
        for node in tree.nodes():
            if node.depth == 3:
                arm_pcs.add(node.pc)
        assert len(arm_pcs) == 2


class TestCoverageSpectrum:
    def test_suite_spans_coverable_and_uncoverable(self):
        """The suite must contain both ends of the paper's spectrum."""
        fractions = {}
        for name in ("vpr.r", "crafty"):
            workload, result = traced(name)
            selection = select_pthreads(
                workload.program, result.trace, PARAMS, SelectionConstraints()
            )
            prediction = selection.prediction
            fractions[name] = prediction.coverage_fraction
        assert fractions["vpr.r"] > fractions["crafty"]
