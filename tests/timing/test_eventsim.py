"""Tests for the discrete-event timing simulator.

Heap ordering (including the stable insertion-order tie-break the
front end depends on), typed-handler scheduling as observed through
the event journal, the engine seam, and the auxiliary metrics.
Cross-model agreement itself is pinned by the parity suite
(``tests/validation/test_parity.py`` and the ``timing_parity`` oracle
family); these tests cover the event machinery.
"""

import pytest

from repro.fuzz.generator import generate
from repro.isa import DataImage, assemble
from repro.obs import AUXILIARY_METRICS, get_registry, reset_registry
from repro.timing.config import BASELINE, PRE_EXECUTION
from repro.timing.eventsim import (
    EV_FETCH,
    EV_ISSUE,
    EV_RETIRE,
    EventHeap,
    EventSimulator,
    JOURNAL_LIMIT,
)


class TestEventHeap:
    def test_pops_in_time_order(self):
        heap = EventHeap()
        for time in (9, 3, 7, 1, 5):
            heap.push(time, EV_FETCH, time)
        times = [heap.pop()[0] for _ in range(5)]
        assert times == [1, 3, 5, 7, 9]

    def test_equal_times_pop_in_insertion_order(self):
        # The front end relies on this: a p-thread burst pushed before
        # a same-cycle fetch must steal bandwidth from that fetch.
        heap = EventHeap()
        for payload in range(10):
            heap.push(42, EV_ISSUE, payload)
        payloads = [heap.pop()[3] for _ in range(10)]
        assert payloads == list(range(10))

    def test_interleaved_pushes_keep_stable_order(self):
        heap = EventHeap()
        heap.push(5, EV_FETCH, "a")
        heap.push(1, EV_FETCH, "early")
        heap.push(5, EV_FETCH, "b")
        assert heap.pop()[3] == "early"
        heap.push(5, EV_FETCH, "c")
        assert [heap.pop()[3] for _ in range(3)] == ["a", "b", "c"]

    def test_depth_and_throughput_counters(self):
        heap = EventHeap()
        for i in range(8):
            heap.push(i, EV_RETIRE, None)
        assert heap.max_depth == 8
        for _ in range(3):
            heap.pop()
        heap.push(99, EV_RETIRE, None)
        assert heap.max_depth == 8  # high-water, not current depth
        assert heap.pushes == 9
        assert heap.pops == 3
        assert len(heap) == 6
        assert bool(heap)
        while heap:
            heap.pop()
        assert not heap


def run_event(source, hierarchy, mode=BASELINE, data=None, **kwargs):
    program = assemble(source, data=data)
    sim = EventSimulator(program, hierarchy, **kwargs)
    return sim, sim.run(mode)


class TestHandlerScheduling:
    @pytest.fixture
    def journal(self, tiny_hierarchy):
        source = """
            addi a0, zero, 0
            addi a1, zero, 40
            addi t0, zero, 8192
        loop:
            bge  a0, a1, done
            slli t1, a0, 4
            add  t1, t1, t0
            lw   t2, 0(t1)
            add  s0, s0, t2
            sw   s0, 4096(zero)
            addi a0, a0, 1
            j    loop
        done:
            halt
        """
        data = DataImage()
        data.store_words(8192, range(0, 640))
        sim, stats = run_event(source, tiny_hierarchy, data=data)
        assert stats.l2_misses > 0  # the walk must stress the hierarchy
        return sim.last_journal

    def test_first_event_is_fetch_at_cycle_zero(self, journal):
        assert journal[0] == (0, "fetch", None)

    def test_every_typed_handler_fires(self, journal):
        names = {entry[1] for entry in journal}
        assert {"fetch", "issue", "retire", "cache_fill"} <= names
        assert "mshr_release" in names  # L2 misses allocate MSHRs

    def test_issue_follows_fetch_by_dispatch_latency(self, journal):
        first_issue = next(e for e in journal if e[1] == "issue")
        assert first_issue[0] == 2  # fetch cycle 0 + dispatch latency

    def test_popped_events_are_chronological(self, journal):
        # Inline-dispatched launch entries carry future dispatch times;
        # every heap-popped event must pop in nondecreasing time order.
        popped = [e[0] for e in journal if e[1] != "pthread_launch"]
        assert popped == sorted(popped)

    def test_retire_payloads_are_program_ordered(self, journal):
        retires = [e[2] for e in journal if e[1] == "retire"]
        assert retires == sorted(retires)
        assert retires[0] == 1

    def test_journal_is_bounded(self, tiny_hierarchy):
        source = "\n".join(["addi r1, r1, 1"] * 2000) + "\nhalt"
        sim, stats = run_event(source, tiny_hierarchy)
        assert stats.instructions == 2001
        assert len(sim.last_journal) == JOURNAL_LIMIT
        assert sim.last_event_count > JOURNAL_LIMIT

    def test_pthread_bursts_fire_with_schedule(self, tiny_hierarchy):
        # A fuzz workload with a real selection exercises the launch
        # and burst handlers end to end.
        from repro.engine.functional import FunctionalSimulator
        from repro.model.params import ModelParams, SelectionConstraints
        from repro.selection.program_selector import select_pthreads

        workload = generate(7)  # loop_nest: launches and drops
        func = FunctionalSimulator(
            workload.program, workload.hierarchy
        ).run(max_instructions=100_000)
        params = ModelParams(
            bw_seq=8,
            unassisted_ipc=1.0,
            mem_latency=workload.hierarchy.mem_latency,
            load_latency=workload.hierarchy.l1.hit_latency,
        )
        selection = select_pthreads(
            workload.program, func.trace, params, SelectionConstraints()
        )
        assert selection.pthreads
        sim = EventSimulator(
            workload.program, workload.hierarchy,
            pthreads=selection.pthreads,
        )
        stats = sim.run(PRE_EXECUTION, max_instructions=100_000)
        assert stats.pthread_launches > 0
        names = {entry[1] for entry in sim.last_journal}
        assert "pthread_launch" in names
        assert "pthread_burst" in names


class TestEngineSeam:
    def test_engines_are_bit_identical(self, tiny_hierarchy):
        workload = generate(3)
        runs = {}
        for engine in ("interp", "compiled", "tiered"):
            sim = EventSimulator(
                workload.program, workload.hierarchy, engine=engine
            )
            stats = sim.run(BASELINE, max_instructions=100_000)
            assert sim.last_engine == engine
            runs[engine] = (stats.to_dict(), list(sim.last_registers))
        assert runs["compiled"] == runs["interp"]
        assert runs["tiered"] == runs["interp"]

    def test_compiled_seam_preresolves_every_pc(self, tiny_hierarchy):
        source = "\n".join(["addi r1, r1, 1"] * 5) + "\nhalt"
        program = assemble(source)
        sim = EventSimulator(program, tiny_hierarchy, engine="compiled")
        sim.run(BASELINE)
        assert len(sim._steps) == len(program)

    def test_tiered_seam_promotes_hot_pcs_only(self, tiny_hierarchy):
        source = """
            addi a0, zero, 0
            addi a1, zero, 100
        loop:
            bge  a0, a1, done
            addi a0, a0, 1
            j    loop
        done:
            halt
        """
        program = assemble(source)
        sim = EventSimulator(program, tiny_hierarchy, engine="tiered")
        sim.run(BASELINE)
        # The loop body runs 100x and is promoted; the one-shot
        # prologue/epilogue PCs never reach the threshold.
        assert sim._steps  # something promoted
        assert len(sim._steps) < len(program)

    def test_rejects_pthreads_and_schedule_together(self, tiny_hierarchy):
        program = assemble("halt")
        with pytest.raises(ValueError, match="not both"):
            EventSimulator(
                program, tiny_hierarchy, pthreads=[], schedule=[]
            )


class TestMetrics:
    def test_auxiliary_metrics_published(self, tiny_hierarchy):
        reset_registry()
        source = "\n".join(["addi r1, r1, 1"] * 50) + "\nhalt"
        sim, stats = run_event(source, tiny_hierarchy)
        snapshot = get_registry().snapshot()
        assert snapshot["eventsim.runs"]["value"] == 1
        assert snapshot["eventsim.instructions"]["value"] == 51
        assert (
            snapshot["eventsim.events"]["value"] == sim.last_event_count
        )
        assert (
            snapshot["eventsim.heap.max_depth"]["value"]
            == sim.last_heap_max_depth
        )
        # Every published name is registered in the auxiliary catalog
        # with the right type (they must stay out of METRIC_CATALOG:
        # pipeline snapshots never contain them).
        for name, entry in snapshot.items():
            if name.startswith("eventsim."):
                assert AUXILIARY_METRICS[name] == entry["type"]
