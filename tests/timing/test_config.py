"""Tests for timing configuration and simulation modes."""

import pytest

from repro.timing.config import (
    BASELINE,
    LATENCY_ONLY,
    MachineConfig,
    OVERHEAD_EXECUTE,
    OVERHEAD_SEQUENCE,
    PERFECT_L2,
    PRE_EXECUTION,
)


class TestMachineConfig:
    def test_paper_defaults(self):
        machine = MachineConfig()
        assert machine.bw_seq == 8
        assert machine.window == 128
        assert machine.pthread_contexts == 3
        assert machine.pthread_burst == 8
        assert machine.pthread_burst_period == 8

    def test_with_width(self):
        assert MachineConfig().with_width(4).bw_seq == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(bw_seq=0),
            dict(window=0),
            dict(pthread_contexts=-1),
            dict(pthread_burst=0),
            dict(pthread_burst_period=0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            MachineConfig(**kwargs)

    def test_hashable_for_cache_keys(self):
        assert hash(MachineConfig()) == hash(MachineConfig())


class TestModes:
    def test_mode_flag_matrix(self):
        assert not BASELINE.launch
        assert PRE_EXECUTION.launch and PRE_EXECUTION.steal
        assert PRE_EXECUTION.prefetch and PRE_EXECUTION.execute
        assert OVERHEAD_EXECUTE.execute and not OVERHEAD_EXECUTE.prefetch
        assert not OVERHEAD_SEQUENCE.execute and OVERHEAD_SEQUENCE.steal
        assert LATENCY_ONLY.prefetch and not LATENCY_ONLY.steal
        assert PERFECT_L2.perfect_l2 and not PERFECT_L2.launch

    def test_mode_names_unique(self):
        names = {
            m.name
            for m in (
                BASELINE,
                PRE_EXECUTION,
                OVERHEAD_EXECUTE,
                OVERHEAD_SEQUENCE,
                LATENCY_ONLY,
                PERFECT_L2,
            )
        }
        assert len(names) == 6


class TestSimStats:
    def test_derived_metrics(self):
        from repro.timing.stats import SimStats

        stats = SimStats(
            cycles=1000,
            instructions=500,
            l2_misses=100,
            misses_fully_covered=30,
            misses_partially_covered=20,
            pthread_launches=10,
            pthread_instructions=80,
            branches=50,
            mispredictions=5,
        )
        assert stats.ipc == 0.5
        assert stats.misses_covered == 50
        assert stats.coverage_fraction == 0.5
        assert stats.full_coverage_fraction == 0.3
        assert stats.avg_pthread_length == 8.0
        assert stats.instruction_overhead == 0.16
        assert stats.misprediction_rate == 0.1

    def test_zero_division_guards(self):
        from repro.timing.stats import SimStats

        stats = SimStats()
        assert stats.ipc == 0.0
        assert stats.coverage_fraction == 0.0
        assert stats.avg_pthread_length == 0.0
        assert stats.instruction_overhead == 0.0
        assert stats.misprediction_rate == 0.0
        assert stats.speedup_over(SimStats()) == 0.0
