"""Tests for the timing simulator core (baseline behaviour)."""

import pytest

from repro.isa import DataImage, assemble
from repro.timing.config import BASELINE, MachineConfig, PERFECT_L2
from repro.timing.core import TimingSimulator, _store_queue_put


def simulate(source, hierarchy, machine=None, data=None, mode=BASELINE):
    program = assemble(source, data=data)
    sim = TimingSimulator(program, hierarchy, machine)
    return sim.run(mode)


class TestBasics:
    def test_functional_correctness_preserved(self, tiny_hierarchy):
        """The timing model must not change architectural results."""
        from repro.engine import run_program

        source = """
            addi a0, zero, 0
            addi a1, zero, 50
        loop:
            bge  a0, a1, done
            slli t1, a0, 2
            addi t1, t1, 8192
            lw   t2, 0(t1)
            add  s0, s0, t2
            sw   s0, 4096(zero)
            addi a0, a0, 1
            j    loop
        done:
            halt
        """
        data = DataImage()
        data.store_words(8192, range(50))
        program = assemble(source, data=data)
        functional = run_program(program)
        stats = TimingSimulator(program, tiny_hierarchy).run(BASELINE)
        assert stats.instructions == functional.instructions
        assert stats.loads == functional.loads
        assert stats.stores == functional.stores

    def test_ipc_bounded_by_width(self, tiny_hierarchy):
        stats = simulate(
            "\n".join(["addi r1, r1, 1"] * 200 + ["halt"]), tiny_hierarchy
        )
        assert stats.ipc <= 8.0

    def test_narrow_machine_slower(self, tiny_hierarchy):
        source = "\n".join(
            f"addi r{1 + i % 8}, r0, {i}" for i in range(400)
        ) + "\nhalt"
        wide = simulate(source, tiny_hierarchy, MachineConfig(bw_seq=8))
        narrow = simulate(source, tiny_hierarchy, MachineConfig(bw_seq=2))
        assert narrow.cycles > wide.cycles

    def test_dependent_chain_serializes(self, tiny_hierarchy):
        independent = "\n".join(
            f"addi r{1 + i % 8}, r0, 1" for i in range(64)
        ) + "\nhalt"
        dependent = "\n".join("addi r1, r1, 1" for _ in range(64)) + "\nhalt"
        fast = simulate(independent, tiny_hierarchy)
        slow = simulate(dependent, tiny_hierarchy)
        assert slow.cycles > fast.cycles

    def test_window_limits_lookahead(self):
        # Many independent loads: a small window serializes them.  Use
        # a memory system rich enough (MSHRs, bus) that the window is
        # the binding constraint.
        from repro.memory import CacheConfig, HierarchyConfig

        rich = HierarchyConfig(
            l1=CacheConfig("L1D", 1024, 32, 2, 2),
            l2=CacheConfig("L2", 4096, 64, 4, 6),
            mem_latency=70,
            mshr_entries=64,
            memory_bus_bytes=64,
            memory_bus_divisor=1,
        )
        lines = ["addi r1, r0, 65536"]
        for i in range(40):
            lines.append(f"lw r{2 + i % 6}, {i * 4096}(r1)")
        lines.append("halt")
        source = "\n".join(lines)
        big = simulate(source, rich, MachineConfig(window=128))
        small = simulate(source, rich, MachineConfig(window=2))
        assert small.cycles > big.cycles

    def test_l2_misses_counted(self, sum_loop_program, tiny_hierarchy):
        from repro.engine import run_program

        stats = TimingSimulator(sum_loop_program, tiny_hierarchy).run(BASELINE)
        functional = run_program(sum_loop_program, tiny_hierarchy)
        assert stats.l2_misses == functional.l2_misses


class TestMemoryTiming:
    def test_misses_cost_cycles(self, sum_loop_program, tiny_hierarchy):
        with_misses = TimingSimulator(sum_loop_program, tiny_hierarchy).run(
            BASELINE
        )
        perfect = TimingSimulator(sum_loop_program, tiny_hierarchy).run(
            PERFECT_L2
        )
        assert perfect.cycles < with_misses.cycles
        assert perfect.l2_misses == with_misses.l2_misses  # still counted

    def test_higher_latency_costs_more(self, sum_loop_program, tiny_hierarchy):
        slow_config = tiny_hierarchy.with_mem_latency(280)
        fast = TimingSimulator(sum_loop_program, tiny_hierarchy).run(BASELINE)
        slow = TimingSimulator(sum_loop_program, slow_config).run(BASELINE)
        assert slow.cycles > fast.cycles

    def test_store_forwarding_fast(self, tiny_hierarchy):
        source = """
            addi r1, r0, 65536
            addi r2, r0, 7
            sw   r2, 0(r1)
            lw   r3, 0(r1)
            halt
        """
        stats = simulate(source, tiny_hierarchy)
        # The load forwards from the store queue — far below miss time.
        assert stats.cycles < 30


class TestBranches:
    def test_random_branches_cost_cycles(self, tiny_hierarchy):
        # Data-dependent branch pattern from an LCG.
        source = """
            addi r1, r0, 12345
            addi r2, r0, 1103515245
            addi r3, r0, 0
            addi r4, r0, 300
        loop:
            bge  r3, r4, done
            mul  r1, r1, r2
            addi r1, r1, 12345
            srli r5, r1, 9
            andi r5, r5, 1
            beq  r5, zero, even
            addi r6, r6, 1
            j    next
        even:
            addi r7, r7, 1
        next:
            addi r3, r3, 1
            j    loop
        done:
            halt
        """
        fast_machine = MachineConfig(mispredict_penalty=0)
        slow_machine = MachineConfig(mispredict_penalty=30)
        fast = simulate(source, tiny_hierarchy, fast_machine)
        slow = simulate(source, tiny_hierarchy, slow_machine)
        assert slow.mispredictions > 10
        assert slow.cycles > fast.cycles

    def test_predictable_loop_branch_learned(self, tiny_hierarchy):
        source = """
            addi r1, r0, 0
            addi r2, r0, 500
        loop:
            addi r1, r1, 1
            blt  r1, r2, loop
            halt
        """
        stats = simulate(source, tiny_hierarchy)
        assert stats.misprediction_rate < 0.05

    def test_stats_describe(self, tiny_hierarchy):
        stats = simulate("nop\nhalt", tiny_hierarchy)
        assert "IPC" in stats.describe()


class TestStoreQueue:
    """Regression tests for the bounded store queue's recency order."""

    def test_restore_moves_entry_to_mru(self):
        queue = {}
        for addr in range(8):
            _store_queue_put(queue, addr, (addr, addr), limit=8)
        # Re-storing address 0 must refresh its recency...
        _store_queue_put(queue, 0, (99, 99), limit=8)
        assert list(queue) == [1, 2, 3, 4, 5, 6, 7, 0]
        assert queue[0] == (99, 99)
        # ...so the next eviction removes the oldest entry (1), not 0.
        _store_queue_put(queue, 100, (0, 0), limit=8)
        assert 0 in queue
        assert 1 not in queue

    def test_eviction_drops_oldest(self):
        queue = {}
        for addr in range(4):
            _store_queue_put(queue, addr, (addr, addr), limit=3)
        assert list(queue) == [1, 2, 3]

    def test_hot_address_survives_under_pressure(self):
        queue = {}
        for round_index in range(64):
            _store_queue_put(queue, 0xBEEF, (round_index, 1), limit=4)
            _store_queue_put(queue, round_index, (0, 0), limit=4)
        # The hot address was re-stored every round, so it must still
        # be forwardable; before the move-to-MRU fix it kept its
        # original insertion slot and was evicted on round 3.
        assert 0xBEEF in queue
        assert queue[0xBEEF][0] == 63
