"""Tests for :mod:`repro.timing.stats`.

``speedup_over`` regression: a broken baseline (ran, but its counters
give a non-positive IPC) must raise instead of silently reporting a
0.0% speedup — that silence hid real harness bugs.
"""

import pytest

from repro.timing.stats import SimStats


class TestSpeedupOver:
    def test_normal_speedup(self):
        base = SimStats(mode="baseline", cycles=200, instructions=100)
        pre = SimStats(mode="pre-execution", cycles=100, instructions=100)
        assert pre.speedup_over(base) == pytest.approx(1.0)

    def test_slowdown_is_negative(self):
        base = SimStats(mode="baseline", cycles=100, instructions=100)
        pre = SimStats(mode="pre-execution", cycles=200, instructions=100)
        assert pre.speedup_over(base) == pytest.approx(-0.5)

    def test_empty_baseline_is_zero(self):
        # Nothing simulated at all: legitimately no speedup to report.
        base = SimStats(mode="baseline")
        pre = SimStats(mode="pre-execution", cycles=100, instructions=100)
        assert pre.speedup_over(base) == 0.0

    def test_baseline_with_cycles_but_no_instructions_raises(self):
        base = SimStats(mode="baseline", cycles=500, instructions=0)
        pre = SimStats(mode="pre-execution", cycles=100, instructions=100)
        with pytest.raises(ValueError, match="broken baseline"):
            pre.speedup_over(base)

    def test_error_names_the_mode(self):
        base = SimStats(mode="perfect-L2", cycles=500, instructions=0)
        with pytest.raises(ValueError, match="perfect-L2"):
            SimStats(cycles=1, instructions=1).speedup_over(base)


class TestCodec:
    def test_round_trip(self):
        stats = SimStats(
            mode="pre-execution",
            cycles=1234,
            instructions=987,
            loads=300,
            stores=120,
            branches=88,
            mispredictions=9,
            l1_misses=40,
            l2_misses=17,
            misses_fully_covered=11,
            misses_partially_covered=3,
            partial_covered_cycles=210,
            prefetches_evicted=1,
            prefetches_unclaimed=2,
            pthread_launches=25,
            pthread_drops=4,
            pthread_instructions=300,
            pthread_l2_misses=15,
            launches_by_trigger={7: 12, 42: 13},
            drops_by_trigger={7: 3, 42: 1},
            miss_exposure={7: [5, 321.0], 42: [2, 88.5]},
        )
        assert SimStats.from_dict(stats.to_dict()) == stats

    def test_dict_is_json_compatible(self):
        import json

        stats = SimStats(cycles=10, instructions=5)
        stats.launches_by_trigger = {3: 1}
        stats.drops_by_trigger = {3: 2}
        stats.miss_exposure = {3: [1, 2.0]}
        rebuilt = SimStats.from_dict(json.loads(json.dumps(stats.to_dict())))
        assert rebuilt == stats
        assert rebuilt.launches_by_trigger == {3: 1}
        assert rebuilt.drops_by_trigger == {3: 2}
        assert rebuilt.miss_exposure == {3: [1, 2.0]}

    def test_round_trip_preserves_derived_metrics(self):
        stats = SimStats(
            cycles=100,
            instructions=80,
            l2_misses=10,
            misses_fully_covered=4,
            misses_partially_covered=2,
            pthread_launches=5,
            pthread_instructions=40,
        )
        rebuilt = SimStats.from_dict(stats.to_dict())
        assert rebuilt.ipc == stats.ipc
        assert rebuilt.coverage_fraction == stats.coverage_fraction
        assert rebuilt.avg_pthread_length == stats.avg_pthread_length
