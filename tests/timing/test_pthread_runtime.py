"""Tests for the pre-execution runtime inside the timing simulator."""

import pytest

from repro.isa import DataImage, assemble
from repro.memory import CacheConfig, HierarchyConfig
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.pthreads.body import PThreadBody
from repro.pthreads.pthread import PThreadPrediction, StaticPThread
from repro.timing.config import (
    BASELINE,
    LATENCY_ONLY,
    MachineConfig,
    OVERHEAD_EXECUTE,
    OVERHEAD_SEQUENCE,
    PRE_EXECUTION,
)
from repro.timing.core import TimingSimulator

#: A loop striding through a big array — every iteration misses.
STRIDE_SOURCE = """
    addi a0, zero, 0
    addi a1, zero, 400
    addi s0, zero, 1048576
loop:
    bge  a0, a1, done
    lw   t0, 0(s0)
    add  s4, s4, t0
    addi s0, s0, 256
    addi a0, a0, 1
    j    loop
done:
    halt
"""

#: Trigger = the induction (pc 7, 'addi s0, s0, 256'); body skips two
#: iterations ahead and pre-executes the load (pc 4).
LOAD_PC = 4
TRIGGER_PC = 6


def stride_pthread(unroll=4):
    instructions = [
        Instruction(Opcode.ADDI, rd=16, rs1=16, imm=256 * unroll, pc=6),
        Instruction(Opcode.LW, rd=8, rs1=16, imm=0, pc=LOAD_PC),
    ]
    body = PThreadBody(instructions)
    prediction = PThreadPrediction(
        dc_trig=400,
        size=body.size,
        misses_covered=390,
        misses_fully_covered=380,
        lt_agg=27000.0,
        oh_agg=100.0,
    )
    return StaticPThread(
        trigger_pc=TRIGGER_PC,
        body=body,
        target_load_pcs=(LOAD_PC,),
        prediction=prediction,
    )


@pytest.fixture
def program():
    return assemble(STRIDE_SOURCE, data=DataImage())


@pytest.fixture
def rich_hierarchy():
    """Memory system where miss *latency*, not bandwidth, binds —
    so coverage translates into speedup."""
    return HierarchyConfig(
        l1=CacheConfig("L1D", 1024, 32, 2, 2),
        l2=CacheConfig("L2", 4096, 64, 4, 6),
        mem_latency=70,
        mshr_entries=64,
        memory_bus_bytes=64,
        memory_bus_divisor=1,
    )


def run(program, hierarchy, mode, pthreads=None, machine=None, schedule=None):
    sim = TimingSimulator(
        program, hierarchy, machine, pthreads=pthreads, schedule=schedule
    )
    return sim.run(mode)


class TestLaunching:
    def test_pthreads_launch_at_triggers(self, program, tiny_hierarchy):
        stats = run(program, tiny_hierarchy, PRE_EXECUTION, [stride_pthread()])
        assert stats.pthread_launches > 0
        assert stats.launches_by_trigger.get(TRIGGER_PC, 0) > 0
        # launches_by_trigger counts actual launches; drops are tallied
        # separately, and attempts = launches + drops per trigger.
        assert stats.pthread_launches == stats.launches_by_trigger[TRIGGER_PC]
        assert stats.pthread_drops == stats.drops_by_trigger.get(TRIGGER_PC, 0)

    def test_baseline_mode_never_launches(self, program, tiny_hierarchy):
        stats = run(program, tiny_hierarchy, BASELINE, [stride_pthread()])
        assert stats.pthread_launches == 0

    def test_injected_instruction_count(self, program, tiny_hierarchy):
        pthread = stride_pthread()
        stats = run(program, tiny_hierarchy, PRE_EXECUTION, [pthread])
        assert stats.pthread_instructions == (
            stats.pthread_launches * pthread.size
        )

    def test_zero_contexts_drop_everything(self, program, tiny_hierarchy):
        machine = MachineConfig(pthread_contexts=0)
        stats = run(
            program, tiny_hierarchy, PRE_EXECUTION, [stride_pthread()], machine
        )
        assert stats.pthread_launches == 0
        assert stats.pthread_drops > 0

    def test_launches_and_drops_split_by_trigger(self, program, tiny_hierarchy):
        """Regression: a long body on one context keeps it busy across
        triggers, so some launch attempts drop; the per-trigger dicts
        must split exactly into launches vs drops (launches_by_trigger
        used to count *attempts*)."""
        instructions = [
            Instruction(
                Opcode.ADDI, rd=16, rs1=16, imm=256 * (i + 1), pc=6
            )
            for i in range(24)
        ] + [Instruction(Opcode.LW, rd=8, rs1=16, imm=0, pc=LOAD_PC)]
        body = PThreadBody(instructions)
        pthread = StaticPThread(
            trigger_pc=TRIGGER_PC,
            body=body,
            target_load_pcs=(LOAD_PC,),
            prediction=PThreadPrediction(
                dc_trig=400, size=body.size, misses_covered=100,
                misses_fully_covered=50, lt_agg=7000.0, oh_agg=100.0,
            ),
        )
        stats = run(
            program,
            tiny_hierarchy,
            PRE_EXECUTION,
            [pthread],
            MachineConfig(pthread_contexts=1),
        )
        assert stats.pthread_drops > 0
        assert stats.pthread_launches > 0
        assert sum(stats.launches_by_trigger.values()) == stats.pthread_launches
        assert sum(stats.drops_by_trigger.values()) == stats.pthread_drops
        attempts = stats.launches_by_trigger.get(
            TRIGGER_PC, 0
        ) + stats.drops_by_trigger.get(TRIGGER_PC, 0)
        assert attempts == stats.pthread_launches + stats.pthread_drops

    def test_more_contexts_fewer_drops(self, program, tiny_hierarchy):
        few = run(
            program,
            tiny_hierarchy,
            PRE_EXECUTION,
            [stride_pthread()],
            MachineConfig(pthread_contexts=1),
        )
        many = run(
            program,
            tiny_hierarchy,
            PRE_EXECUTION,
            [stride_pthread()],
            MachineConfig(pthread_contexts=8),
        )
        assert many.pthread_drops <= few.pthread_drops


class TestCoverageAndSpeedup:
    def test_pre_execution_covers_and_speeds_up(self, program, rich_hierarchy):
        base = run(program, rich_hierarchy, BASELINE)
        pre = run(program, rich_hierarchy, PRE_EXECUTION, [stride_pthread()])
        assert pre.misses_covered > 0.5 * pre.l2_misses
        assert pre.speedup_over(base) > 0.05

    def test_deeper_unrolling_more_full_coverage(self, program, tiny_hierarchy):
        shallow = run(
            program, tiny_hierarchy, PRE_EXECUTION, [stride_pthread(unroll=1)]
        )
        deep = run(
            program, tiny_hierarchy, PRE_EXECUTION, [stride_pthread(unroll=6)]
        )
        assert deep.misses_fully_covered >= shallow.misses_fully_covered

    def test_latency_only_at_least_as_fast(self, program, tiny_hierarchy):
        pre = run(program, tiny_hierarchy, PRE_EXECUTION, [stride_pthread()])
        free = run(program, tiny_hierarchy, LATENCY_ONLY, [stride_pthread()])
        assert free.cycles <= pre.cycles * 1.05


class TestOverheadModes:
    def test_overhead_modes_never_cover(self, program, tiny_hierarchy):
        for mode in (OVERHEAD_EXECUTE, OVERHEAD_SEQUENCE):
            stats = run(program, tiny_hierarchy, mode, [stride_pthread()])
            assert stats.misses_covered == 0

    def test_overhead_slows_down(self, program, tiny_hierarchy):
        base = run(program, tiny_hierarchy, BASELINE)
        # A fat useless p-thread stealing lots of bandwidth.
        fat_body = PThreadBody(
            [Instruction(Opcode.ADDI, rd=16, rs1=16, imm=1)] * 24
        )
        fat = StaticPThread(
            trigger_pc=TRIGGER_PC,
            body=fat_body,
            target_load_pcs=(LOAD_PC,),
            prediction=PThreadPrediction(400, 24, 0, 0, 0.0, 0.0),
        )
        overhead = run(program, tiny_hierarchy, OVERHEAD_SEQUENCE, [fat])
        # Stolen slots can hide behind memory stalls, so allow noise,
        # but the injected work must be accounted and never *speed up*
        # the program materially.
        assert overhead.pthread_instructions > 1000
        assert overhead.cycles >= 0.98 * base.cycles

    def test_execute_and_sequence_leave_same_cache_state(
        self, program, tiny_hierarchy
    ):
        """The paper's two overhead measurements should agree closely."""
        execute = run(
            program, tiny_hierarchy, OVERHEAD_EXECUTE, [stride_pthread()]
        )
        sequence = run(
            program, tiny_hierarchy, OVERHEAD_SEQUENCE, [stride_pthread()]
        )
        assert execute.l2_misses == sequence.l2_misses
        assert abs(execute.cycles - sequence.cycles) <= 0.05 * sequence.cycles


class TestSchedules:
    def test_region_schedule_limits_launches(self, program, tiny_hierarchy):
        full = run(program, tiny_hierarchy, PRE_EXECUTION, [stride_pthread()])
        # Active only for the first ~quarter of the run.
        schedule = [
            (0, 1000, [stride_pthread()]),
            (1000, 1 << 60, []),
        ]
        partial = run(
            program, tiny_hierarchy, PRE_EXECUTION, schedule=schedule
        )
        assert 0 < partial.pthread_launches < full.pthread_launches

    def test_pthreads_and_schedule_mutually_exclusive(
        self, program, tiny_hierarchy
    ):
        with pytest.raises(ValueError):
            TimingSimulator(
                program,
                tiny_hierarchy,
                pthreads=[stride_pthread()],
                schedule=[(0, 10, [])],
            )
