"""Tests for p-thread bodies and linear-scan dataflow analysis."""

import pytest

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.pthreads.body import PThreadBody, analyze_dataflow


def addi(rd, rs1, imm):
    return Instruction(Opcode.ADDI, rd=rd, rs1=rs1, imm=imm)


def lw(rd, rs1, imm=0):
    return Instruction(Opcode.LW, rd=rd, rs1=rs1, imm=imm)


def sw(rs2, rs1, imm=0):
    return Instruction(Opcode.SW, rs2=rs2, rs1=rs1, imm=imm)


class TestBodyConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PThreadBody([])

    def test_control_flow_rejected(self):
        # A branch is legal only in terminal position (branch
        # pre-execution); jumps and halts are never legal.
        with pytest.raises(ValueError, match="control-less"):
            PThreadBody(
                [
                    Instruction(Opcode.BEQ, rs1=1, rs2=2, target=0),
                    Instruction(Opcode.ADDI, rd=1, rs1=1, imm=1),
                ]
            )
        with pytest.raises(ValueError):
            PThreadBody([Instruction(Opcode.J, target=0)])
        with pytest.raises(ValueError):
            PThreadBody([Instruction(Opcode.HALT)])
        # Terminal branch allowed.
        assert PThreadBody(
            [Instruction(Opcode.BEQ, rs1=1, rs2=2, target=0)]
        ).targets_branch

    def test_size(self):
        body = PThreadBody([addi(1, 2, 3), lw(4, 1)])
        assert body.size == 2 and len(body) == 2

    def test_equality_and_hash(self):
        a = PThreadBody([addi(1, 2, 3)])
        b = PThreadBody([addi(1, 2, 3)])
        assert a == b and hash(a) == hash(b)
        assert a != PThreadBody([addi(1, 2, 4)])


class TestDataflow:
    def test_live_ins_read_before_write(self):
        body = PThreadBody([addi(1, 2, 0), addi(2, 1, 0), addi(3, 2, 0)])
        assert body.live_ins == (2,)

    def test_r0_never_live_in(self):
        body = PThreadBody([addi(1, 0, 5)])
        assert body.live_ins == ()

    def test_reg_deps_most_recent_definition(self):
        body = PThreadBody([addi(1, 2, 0), addi(1, 1, 1), lw(3, 1)])
        assert body.dataflow.reg_deps == ((), (0,), (1,))

    def test_store_load_matching_same_base_and_offset(self):
        body = PThreadBody([addi(1, 2, 0), sw(3, 1, 8), lw(4, 1, 8)])
        assert body.dataflow.mem_deps[2] == 1

    def test_store_load_different_offset_no_match(self):
        body = PThreadBody([addi(1, 2, 0), sw(3, 1, 8), lw(4, 1, 12)])
        assert body.dataflow.mem_deps[2] is None

    def test_store_load_base_redefined_no_match(self):
        body = PThreadBody(
            [addi(1, 2, 0), sw(3, 1, 8), addi(1, 1, 4), lw(4, 1, 8)]
        )
        assert body.dataflow.mem_deps[3] is None

    def test_livein_base_matching(self):
        body = PThreadBody([sw(3, 9, 0), lw(4, 9, 0)])
        assert body.dataflow.mem_deps[1] == 0

    def test_producers_combines_reg_and_mem(self):
        body = PThreadBody([addi(1, 2, 0), sw(3, 1, 8), lw(4, 1, 8)])
        assert body.dataflow.producers(2) == (0, 1)

    def test_problem_load_positions(self):
        body = PThreadBody([sw(3, 9, 0), lw(4, 9, 0), lw(5, 4, 0)])
        # Position 1 is forwarded from the store; position 2 reads memory.
        assert body.problem_load_positions() == [2]
        assert body.loads() == [1, 2]

    def test_render_includes_origin_pcs(self):
        body = PThreadBody([addi(1, 2, 3).with_pc(17)])
        assert "#0017" in body.render()


class TestAnalyzeDataflowFunction:
    def test_defs_recorded(self):
        flow = analyze_dataflow([addi(1, 2, 0), sw(1, 2, 0)])
        assert flow.defs == (1, None)

    def test_duplicate_sources_deduped(self):
        flow = analyze_dataflow(
            [addi(1, 2, 0), Instruction(Opcode.ADD, rd=3, rs1=1, rs2=1)]
        )
        assert flow.reg_deps[1] == (0,)
