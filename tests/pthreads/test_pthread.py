"""Tests for StaticPThread and PThreadPrediction."""

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.pthreads.body import PThreadBody
from repro.pthreads.pthread import PThreadPrediction, StaticPThread


def simple_pthread():
    body = PThreadBody(
        [
            Instruction(Opcode.ADDI, rd=5, rs1=5, imm=16),
            Instruction(Opcode.LW, rd=8, rs1=5, imm=0),
        ]
    )
    prediction = PThreadPrediction(
        dc_trig=100,
        size=2,
        misses_covered=30,
        misses_fully_covered=20,
        lt_agg=240.0,
        oh_agg=25.0,
    )
    return StaticPThread(
        trigger_pc=11,
        body=body,
        target_load_pcs=(9,),
        prediction=prediction,
    )


class TestPrediction:
    def test_adv_agg(self):
        assert simple_pthread().prediction.adv_agg == 215.0

    def test_injected_instructions(self):
        assert simple_pthread().prediction.injected_instructions == 200


class TestStaticPThread:
    def test_size_delegates_to_body(self):
        assert simple_pthread().size == 2

    def test_original_body_defaults_to_body(self):
        pthread = simple_pthread()
        assert pthread.original_body is pthread.body
        assert pthread.original_targets == (1,)

    def test_describe(self):
        text = simple_pthread().describe()
        assert "#0011" in text and "#0009" in text
