"""Tests for p-thread optimization passes.

The load-bearing property is semantics preservation: the optimized body
must compute the same address/value at every target position.  Each
pass is tested directly, and :mod:`tests.property.test_optimizer_props`
fuzzes the whole pipeline with hypothesis.
"""

import pytest

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.pthreads.body import PThreadBody
from repro.pthreads.interp import execute_body
from repro.pthreads.optimizer import (
    eliminate_dead_code,
    eliminate_moves,
    eliminate_store_load_pairs,
    fold_constants,
    optimize_body,
)


def addi(rd, rs1, imm):
    return Instruction(Opcode.ADDI, rd=rd, rs1=rs1, imm=imm)


def mov(rd, rs1):
    return Instruction(Opcode.MOV, rd=rd, rs1=rs1)


def lw(rd, rs1, imm=0):
    return Instruction(Opcode.LW, rd=rd, rs1=rs1, imm=imm)


def sw(rs2, rs1, imm=0):
    return Instruction(Opcode.SW, rs2=rs2, rs1=rs1, imm=imm)


def same_semantics(original, optimized, seeds, memory=None):
    memory = memory or {}
    load = lambda addr: memory.get(addr, addr // 4)
    out_a = execute_body(original, dict(seeds), load)
    out_b = execute_body(optimized, dict(seeds), load)
    return out_a.values[-1] == out_b.values[-1] and (
        out_a.addresses[-1] == out_b.addresses[-1]
    )


class TestFoldConstants:
    def test_induction_chain_folds(self):
        insts = [addi(5, 5, 16), addi(5, 5, 16), lw(8, 5)]
        out, folded, deleted = fold_constants(insts)
        assert folded == 1 and deleted == 0
        assert out[0].imm == 32
        assert len(out) == 2

    def test_multi_link_chain_folds_via_fixpoint(self):
        body = PThreadBody([addi(5, 5, 16)] * 4 + [lw(8, 5)])
        optimized = optimize_body(body).body
        assert optimized.size == 2
        assert optimized.instructions[0].imm == 64

    def test_shared_intermediate_not_folded(self):
        # The first addi's value feeds both the second addi and the load.
        insts = [addi(5, 5, 16), lw(7, 5), addi(5, 5, 16), lw(8, 5)]
        out, folded, _ = fold_constants(insts)
        assert folded == 0

    def test_clobbered_source_not_folded(self):
        # addi r6, r5, 1 ... r5 redefined ... addi r7, r6, 2: folding
        # would read the *new* r5.
        insts = [addi(6, 5, 1), addi(5, 0, 99), addi(7, 6, 2), lw(8, 7)]
        out, folded, _ = fold_constants(insts)
        assert folded == 0

    def test_semantics_preserved(self):
        body = PThreadBody([addi(5, 5, 16)] * 3 + [lw(8, 5)])
        optimized = optimize_body(body).body
        assert same_semantics(body, optimized, {5: 1000})


class TestStoreLoadElimination:
    def test_pair_becomes_move(self):
        insts = [sw(3, 9, 8), lw(4, 9, 8), lw(5, 4, 0)]
        out, eliminated = eliminate_store_load_pairs(insts)
        assert eliminated == 1
        assert out[1].op is Opcode.MOV and out[1].rs1 == 3

    def test_value_register_redefined_blocks_elimination(self):
        insts = [sw(3, 9, 8), addi(3, 3, 1), lw(4, 9, 8)]
        out, eliminated = eliminate_store_load_pairs(insts)
        assert eliminated == 0

    def test_full_pipeline_drops_dead_store(self):
        body = PThreadBody([sw(3, 9, 8), lw(4, 9, 8), lw(5, 4, 0)])
        result = optimize_body(body)
        assert result.report.store_load_pairs_eliminated == 1
        ops = [inst.op for inst in result.body.instructions]
        assert Opcode.SW not in ops

    def test_semantics_preserved(self):
        body = PThreadBody([addi(3, 0, 256), sw(3, 9, 8), lw(4, 9, 8), lw(5, 4, 0)])
        optimized = optimize_body(body).body
        assert same_semantics(body, optimized, {9: 5000})


class TestMoveElimination:
    def test_copy_propagated(self):
        insts = [mov(4, 3), lw(5, 4)]
        out, rewritten = eliminate_moves(insts)
        assert rewritten == 1
        assert out[1].rs1 == 3

    def test_copy_invalidated_by_source_redefinition(self):
        insts = [mov(4, 3), addi(3, 3, 1), lw(5, 4)]
        out, rewritten = eliminate_moves(insts)
        assert out[2].rs1 == 4  # must NOT propagate

    def test_copy_invalidated_by_dest_redefinition(self):
        insts = [mov(4, 3), addi(4, 0, 7), lw(5, 4)]
        out, _ = eliminate_moves(insts)
        assert out[2].rs1 == 4

    def test_pipeline_removes_dead_mov(self):
        body = PThreadBody([mov(4, 3), lw(5, 4)])
        optimized = optimize_body(body).body
        assert optimized.size == 1
        assert optimized.instructions[0].rs1 == 3


class TestDeadCodeElimination:
    def test_unrelated_instruction_removed(self):
        insts = [addi(1, 2, 0), addi(9, 9, 1), lw(3, 1)]
        out, targets, removed = eliminate_dead_code(insts, [2])
        assert removed == 1
        assert targets == [1]
        assert len(out) == 2

    def test_store_feeding_target_kept(self):
        insts = [sw(3, 9, 8), lw(4, 9, 8)]
        out, targets, removed = eliminate_dead_code(insts, [1])
        assert removed == 0

    def test_multiple_targets_all_kept(self):
        insts = [addi(1, 2, 0), lw(3, 1), addi(4, 5, 0), lw(6, 4)]
        out, targets, removed = eliminate_dead_code(insts, [1, 3])
        assert removed == 0
        assert targets == [1, 3]

    def test_bad_targets_rejected(self):
        with pytest.raises(ValueError):
            eliminate_dead_code([addi(1, 2, 0)], [5])
        with pytest.raises(ValueError):
            eliminate_dead_code([addi(1, 2, 0)], [])


class TestOptimizeBody:
    def test_report_totals(self):
        body = PThreadBody(
            [addi(5, 5, 16), addi(5, 5, 16), addi(9, 9, 1), lw(8, 5)]
        )
        result = optimize_body(body)
        assert result.report.original_size == 4
        assert result.report.optimized_size == 2
        assert result.report.removed == 2
        assert result.report.constants_folded == 1
        assert result.report.dead_instructions_removed >= 1

    def test_target_tracked_through_folding(self):
        body = PThreadBody([addi(5, 5, 16)] * 5 + [lw(8, 5)])
        result = optimize_body(body)
        assert result.targets == (result.body.size - 1,)
        assert result.body.instructions[result.targets[0]].is_load

    def test_idempotent(self):
        body = PThreadBody([addi(5, 5, 16)] * 3 + [lw(8, 5)])
        once = optimize_body(body).body
        twice = optimize_body(once).body
        assert once == twice
