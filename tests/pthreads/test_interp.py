"""Tests for the p-thread body reference interpreter."""

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.pthreads.body import PThreadBody
from repro.pthreads.interp import execute_body


def addi(rd, rs1, imm):
    return Instruction(Opcode.ADDI, rd=rd, rs1=rs1, imm=imm)


class TestExecuteBody:
    def test_seeds_feed_computation(self):
        body = PThreadBody([addi(1, 2, 5)])
        out = execute_body(body, {2: 10}, lambda addr: 0)
        assert out.values == [15]

    def test_missing_seed_reads_zero(self):
        body = PThreadBody([addi(1, 2, 5)])
        out = execute_body(body, {}, lambda addr: 0)
        assert out.values == [5]

    def test_r0_stays_zero(self):
        body = PThreadBody([addi(0, 0, 9), addi(1, 0, 1)])
        out = execute_body(body, {}, lambda addr: 0)
        assert out.values == [9, 1]  # value computed, write discarded

    def test_load_reads_program_memory(self):
        body = PThreadBody([Instruction(Opcode.LW, rd=1, rs1=2, imm=4)])
        out = execute_body(body, {2: 100}, lambda addr: addr * 2)
        assert out.addresses == [104]
        assert out.values == [208]
        assert out.forwarded == [False]

    def test_store_forwarding(self):
        body = PThreadBody(
            [
                Instruction(Opcode.SW, rs2=3, rs1=2, imm=0),
                Instruction(Opcode.LW, rd=1, rs1=2, imm=0),
            ]
        )
        out = execute_body(body, {2: 100, 3: 42}, lambda addr: -1)
        assert out.values[1] == 42
        assert out.forwarded == [False, True]

    def test_stores_never_touch_program_memory(self):
        touched = []

        def load(addr):
            touched.append(addr)
            return 0

        body = PThreadBody([Instruction(Opcode.SW, rs2=3, rs1=2, imm=0)])
        execute_body(body, {2: 100}, load)
        assert touched == []

    def test_memory_addresses_excludes_forwarded(self):
        body = PThreadBody(
            [
                Instruction(Opcode.SW, rs2=3, rs1=2, imm=0),
                Instruction(Opcode.LW, rd=1, rs1=2, imm=0),
                Instruction(Opcode.LW, rd=4, rs1=2, imm=8),
            ]
        )
        out = execute_body(body, {2: 100}, lambda addr: 0)
        assert out.memory_addresses() == [108]

    def test_r_format_ops(self):
        body = PThreadBody(
            [
                Instruction(Opcode.MUL, rd=3, rs1=1, rs2=2),
                Instruction(Opcode.XOR, rd=4, rs1=3, rs2=1),
            ]
        )
        out = execute_body(body, {1: 6, 2: 7}, lambda addr: 0)
        assert out.values == [42, 42 ^ 6]
