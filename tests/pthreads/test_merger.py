"""Tests for dataflow-prefix merging."""

import pytest

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.pthreads.body import PThreadBody, VIRTUAL_REG_BASE
from repro.pthreads.interp import execute_body
from repro.pthreads.merger import (
    common_prefix_length,
    merge_pthreads,
    merge_two,
)
from repro.pthreads.pthread import PThreadPrediction, StaticPThread


def addi(rd, rs1, imm, pc=-1):
    return Instruction(Opcode.ADDI, rd=rd, rs1=rs1, imm=imm, pc=pc)


def slli(rd, rs1, imm, pc=-1):
    return Instruction(Opcode.SLLI, rd=rd, rs1=rs1, imm=imm, pc=pc)


def lw(rd, rs1, imm=0, pc=-1):
    return Instruction(Opcode.LW, rd=rd, rs1=rs1, imm=imm, pc=pc)


def make_pthread(trigger, insts, load_pc=9, dc_trig=100, covered=30, lt_agg=240.0):
    body = PThreadBody(insts)
    prediction = PThreadPrediction(
        dc_trig=dc_trig,
        size=body.size,
        misses_covered=covered,
        misses_fully_covered=covered,
        lt_agg=lt_agg,
        oh_agg=dc_trig * body.size * 0.125,
    )
    return StaticPThread(
        trigger_pc=trigger,
        body=body,
        target_load_pcs=(load_pc,),
        prediction=prediction,
    )


#: The paper's two pharmacy p-threads (F and J in Figure 3).
F_INSTS = [addi(5, 5, 16), lw(7, 5, 4), slli(7, 7, 2), addi(7, 7, 8192), lw(8, 7)]
J_INSTS = [addi(5, 5, 16), lw(7, 5, 8), slli(7, 7, 2), addi(7, 7, 8192), lw(8, 7)]


class TestCommonPrefix:
    def test_shared_induction(self):
        assert common_prefix_length(F_INSTS, J_INSTS) == 1

    def test_identical(self):
        assert common_prefix_length(F_INSTS, F_INSTS) == 5

    def test_disjoint(self):
        assert common_prefix_length(F_INSTS, [lw(1, 2)]) == 0


class TestMergeTwo:
    def test_paper_merge_shape(self):
        """F + J merge: shared #11 prefix, both suffixes replicated —
        the paper's six-unique-instruction / nine-total merged p-thread."""
        merged = merge_two(
            make_pthread(11, F_INSTS), make_pthread(11, J_INSTS, covered=10)
        )
        assert merged is not None
        assert merged.body.size == 9
        assert merged.trigger_pc == 11
        assert merged.prediction.misses_covered == 40
        assert merged.prediction.lt_agg == pytest.approx(480.0)

    def test_merged_semantics_per_component(self):
        a, b = make_pthread(11, F_INSTS), make_pthread(11, J_INSTS)
        merged = merge_two(a, b)
        memory = {addr: addr * 3 for addr in range(0, 200000, 4)}
        load = lambda addr: memory.get(addr, 0)
        seeds = {5: 1000}
        out_a = execute_body(a.body, dict(seeds), load)
        out_b = execute_body(b.body, dict(seeds), load)
        out_m = execute_body(merged.body, dict(seeds), load)
        merged_addrs = [
            addr for addr in out_m.addresses if addr is not None
        ]
        assert out_a.addresses[-1] in merged_addrs
        assert out_b.addresses[-1] in merged_addrs

    def test_different_triggers_not_merged(self):
        assert merge_two(make_pthread(11, F_INSTS), make_pthread(12, J_INSTS)) is None

    def test_no_common_prefix_not_merged(self):
        a = make_pthread(11, F_INSTS)
        b = make_pthread(11, [lw(1, 6), lw(2, 1)])
        assert merge_two(a, b) is None

    def test_conflicting_suffix_renamed_to_virtual(self):
        # Suffix A clobbers r5, which suffix B still needs from the seed.
        a_insts = [addi(6, 5, 0), addi(5, 6, 4), lw(8, 5)]
        b_insts = [addi(6, 5, 0), lw(9, 5, 8)]
        a, b = make_pthread(11, a_insts), make_pthread(11, b_insts)
        merged = merge_two(a, b)
        assert merged is not None
        defs = [inst.rd for inst in merged.body.instructions if inst.rd]
        assert any(rd >= VIRTUAL_REG_BASE for rd in defs)
        # Semantics: B's load address must still be seed r5 + 8.
        out = execute_body(merged.body, {5: 1000}, lambda addr: 0)
        assert 1008 in out.addresses

    def test_overhead_recomputed_for_merged_size(self):
        a, b = make_pthread(11, F_INSTS), make_pthread(11, J_INSTS)
        merged = merge_two(a, b)
        expected = 100 * merged.body.size * 0.125
        assert merged.prediction.oh_agg == pytest.approx(expected)
        # Cheaper than two separate p-threads.
        separate = a.prediction.oh_agg + b.prediction.oh_agg
        assert merged.prediction.oh_agg < separate


class TestMergePthreads:
    def test_group_merging(self):
        pthreads = [
            make_pthread(11, F_INSTS),
            make_pthread(11, J_INSTS),
            make_pthread(20, [lw(1, 2)]),
        ]
        merged = merge_pthreads(pthreads)
        assert len(merged) == 2
        triggers = sorted(p.trigger_pc for p in merged)
        assert triggers == [11, 20]

    def test_three_way_merge(self):
        c_insts = [addi(5, 5, 16), lw(6, 5, 0)]
        pthreads = [
            make_pthread(11, F_INSTS),
            make_pthread(11, J_INSTS),
            make_pthread(11, c_insts, load_pc=2),
        ]
        merged = merge_pthreads(pthreads)
        assert len(merged) == 1
        assert set(merged[0].target_load_pcs) == {9, 2}

    def test_empty_input(self):
        assert merge_pthreads([]) == []

    def test_deterministic_order(self):
        pthreads = [
            make_pthread(20, [lw(1, 2)]),
            make_pthread(11, F_INSTS),
        ]
        merged_a = merge_pthreads(pthreads)
        merged_b = merge_pthreads(list(reversed(pthreads)))
        assert [p.trigger_pc for p in merged_a] == [
            p.trigger_pc for p in merged_b
        ]

    def test_unoptimized_merge_keeps_raw_prefix(self):
        long_f = [addi(5, 5, 16)] * 3 + F_INSTS[1:]
        long_j = [addi(5, 5, 16)] * 3 + J_INSTS[1:]
        merged = merge_pthreads(
            [make_pthread(11, long_f), make_pthread(11, long_j)],
            optimize=False,
        )
        assert len(merged) == 1
        # No folding: the three prefix addis survive.
        addis = [
            inst
            for inst in merged[0].body.instructions
            if inst.op is Opcode.ADDI and inst.imm == 16 and inst.rd == 5
        ]
        assert len(addis) >= 3

    def test_optimized_merge_folds_prefix(self):
        long_f = [addi(5, 5, 16)] * 3 + F_INSTS[1:]
        long_j = [addi(5, 5, 16)] * 3 + J_INSTS[1:]
        merged = merge_pthreads(
            [make_pthread(11, long_f), make_pthread(11, long_j)],
            optimize=True,
        )
        assert len(merged) == 1
        assert merged[0].body.size < len(long_f) + len(long_j) - 3
