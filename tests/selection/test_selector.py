"""Tests for per-tree candidate enumeration and overlap-aware selection."""

import pytest

from repro.engine.functional import run_program
from repro.model.params import ModelParams, SelectionConstraints
from repro.selection.selector import (
    enumerate_candidates,
    is_strict_ancestor,
    select_from_tree,
)
from repro.slicing.slice_tree import build_slice_trees
from repro.workloads import pharmacy

PARAMS = ModelParams(bw_seq=8, unassisted_ipc=0.8, mem_latency=70, load_latency=2)


@pytest.fixture(scope="module")
def pharmacy_setup(pharmacy_small, pharmacy_small_run):
    trace = pharmacy_small_run.trace
    trees = build_slice_trees(trace, scope=1024, max_length=48)
    tree = trees[pharmacy.PROBLEM_LOAD_PC]
    counts = trace.static_counts(len(pharmacy_small))
    dc_trig = {pc: int(c) for pc, c in enumerate(counts) if c}
    return pharmacy_small, tree, dc_trig


class TestAncestry:
    def test_parent_is_ancestor(self, pharmacy_setup):
        _, tree, _ = pharmacy_setup
        for node in tree.nodes():
            for child in node.children.values():
                assert is_strict_ancestor(node, child)
                assert not is_strict_ancestor(child, node)

    def test_node_not_its_own_ancestor(self, pharmacy_setup):
        _, tree, _ = pharmacy_setup
        for node in tree.nodes():
            assert not is_strict_ancestor(node, node)

    def test_siblings_not_ancestors(self, pharmacy_setup):
        _, tree, _ = pharmacy_setup
        for node in tree.nodes():
            children = list(node.children.values())
            for i, a in enumerate(children):
                for b in children[i + 1 :]:
                    assert not is_strict_ancestor(a, b)
                    assert not is_strict_ancestor(b, a)


class TestEnumeration:
    def test_root_is_not_a_candidate(self, pharmacy_setup):
        program, tree, dc_trig = pharmacy_setup
        candidates = enumerate_candidates(
            tree, program, dc_trig, PARAMS, SelectionConstraints()
        )
        assert id(tree.root) not in candidates

    def test_length_constraint_enforced(self, pharmacy_setup):
        program, tree, dc_trig = pharmacy_setup
        constraints = SelectionConstraints(max_pthread_length=4, optimize=False)
        candidates = enumerate_candidates(
            tree, program, dc_trig, PARAMS, constraints
        )
        assert all(c.body.size <= 4 for c in candidates.values())

    def test_optimization_admits_longer_raw_slices(self, pharmacy_setup):
        program, tree, dc_trig = pharmacy_setup
        raw = enumerate_candidates(
            tree,
            program,
            dc_trig,
            PARAMS,
            SelectionConstraints(max_pthread_length=8, optimize=False),
        )
        optimized = enumerate_candidates(
            tree,
            program,
            dc_trig,
            PARAMS,
            SelectionConstraints(max_pthread_length=8, optimize=True),
        )
        # Folding induction chains lets deeper tree nodes qualify.
        assert len(optimized) > len(raw)

    def test_min_support_filters(self, pharmacy_setup):
        program, tree, dc_trig = pharmacy_setup
        high = enumerate_candidates(
            tree, program, dc_trig, PARAMS, SelectionConstraints(min_support=50)
        )
        low = enumerate_candidates(
            tree, program, dc_trig, PARAMS, SelectionConstraints(min_support=1)
        )
        assert len(high) < len(low)
        assert all(c.score.dc_pt_cm >= 50 for c in high.values())

    def test_bodies_end_at_problem_load(self, pharmacy_setup):
        program, tree, dc_trig = pharmacy_setup
        candidates = enumerate_candidates(
            tree, program, dc_trig, PARAMS, SelectionConstraints()
        )
        for candidate in candidates.values():
            assert candidate.body.instructions[-1].is_load
            assert candidate.original.instructions[-1].pc == tree.load_pc


class TestSelection:
    def test_selection_nonempty_and_positive(self, pharmacy_setup):
        program, tree, dc_trig = pharmacy_setup
        selection = select_from_tree(
            tree, program, dc_trig, PARAMS, SelectionConstraints()
        )
        assert selection.selected
        for candidate in selection.selected:
            assert candidate.score.adv_agg > 0

    def test_selected_cover_both_arms(self, pharmacy_setup):
        """Both the #04 and #06 computations need a p-thread (or a
        shared ancestor covering both)."""
        program, tree, dc_trig = pharmacy_setup
        selection = select_from_tree(
            tree, program, dc_trig, PARAMS, SelectionConstraints()
        )
        covered = sum(c.score.dc_pt_cm for c in selection.selected)
        assert covered >= 0.9 * tree.total_misses()

    def test_no_duplicate_nodes(self, pharmacy_setup):
        program, tree, dc_trig = pharmacy_setup
        selection = select_from_tree(
            tree, program, dc_trig, PARAMS, SelectionConstraints()
        )
        ids = [id(c.node) for c in selection.selected]
        assert len(ids) == len(set(ids))

    def test_converges(self, pharmacy_setup):
        program, tree, dc_trig = pharmacy_setup
        selection = select_from_tree(
            tree, program, dc_trig, PARAMS, SelectionConstraints()
        )
        assert selection.iterations < 16

    def test_corrected_total_positive(self, pharmacy_setup):
        program, tree, dc_trig = pharmacy_setup
        selection = select_from_tree(
            tree, program, dc_trig, PARAMS, SelectionConstraints()
        )
        assert selection.total_corrected_advantage() > 0

    def test_tight_length_no_selection_when_useless(self, pharmacy_setup):
        """With a 1-instruction limit, no candidate can tolerate latency,
        so nothing should be selected."""
        program, tree, dc_trig = pharmacy_setup
        selection = select_from_tree(
            tree,
            program,
            dc_trig,
            PARAMS,
            SelectionConstraints(max_pthread_length=1, optimize=False),
        )
        assert selection.selected == []

    def test_higher_latency_selects_longer_pthreads(self, pharmacy_setup):
        program, tree, dc_trig = pharmacy_setup
        short = select_from_tree(
            tree, program, dc_trig, PARAMS.with_mem_latency(20),
            SelectionConstraints(),
        )
        long = select_from_tree(
            tree, program, dc_trig, PARAMS.with_mem_latency(140),
            SelectionConstraints(),
        )
        if short.selected and long.selected:
            avg_short = sum(c.node.depth for c in short.selected) / len(
                short.selected
            )
            avg_long = sum(c.node.depth for c in long.selected) / len(
                long.selected
            )
            assert avg_long >= avg_short
