"""Tests for branch pre-execution (the paper's footnote 1 scenario)."""

import pytest

from repro.engine import run_program
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.model import ModelParams, SelectionConstraints
from repro.pthreads.body import PThreadBody
from repro.selection.branch_selection import (
    problem_branches,
    profile_branches,
    select_branch_pthreads,
)
from repro.timing import BASELINE, PRE_EXECUTION, TimingSimulator
from repro.workloads import build

PARAMS = ModelParams(bw_seq=8, unassisted_ipc=0.8, mem_latency=70, load_latency=2)


@pytest.fixture(scope="module")
def vpr_setup():
    workload = build("vpr.p", "train", n_swaps=1500)
    trace = run_program(workload.program, workload.hierarchy)
    return workload, trace


class TestTerminalBranchBodies:
    def test_terminal_branch_allowed(self):
        body = PThreadBody(
            [
                Instruction(Opcode.ADDI, rd=1, rs1=1, imm=1),
                Instruction(Opcode.BEQ, rs1=1, rs2=0, target=0),
            ]
        )
        assert body.targets_branch

    def test_non_terminal_branch_rejected(self):
        with pytest.raises(ValueError):
            PThreadBody(
                [
                    Instruction(Opcode.BEQ, rs1=1, rs2=0, target=0),
                    Instruction(Opcode.ADDI, rd=1, rs1=1, imm=1),
                ]
            )

    def test_load_body_not_branch_targeting(self):
        body = PThreadBody([Instruction(Opcode.LW, rd=1, rs1=2, imm=0)])
        assert not body.targets_branch


class TestProfiling:
    def test_profiles_cover_conditional_branches(self, vpr_setup):
        workload, trace = vpr_setup
        profiles = profile_branches(trace.trace, workload.program)
        # The loop-exit bge and the random accept beq both profiled.
        assert len(profiles) >= 2
        total = sum(p.executions for p in profiles.values())
        assert total > 0

    def test_random_branch_identified_as_problem(self, vpr_setup):
        workload, trace = vpr_setup
        profiles = profile_branches(trace.trace, workload.program)
        problems = problem_branches(profiles)
        assert problems
        worst = problems[0]
        assert worst.rate > 0.3  # the data-dependent accept test
        assert len(worst.mispredicted_indices) == worst.mispredictions

    def test_loop_branch_not_a_problem(self, vpr_setup):
        workload, trace = vpr_setup
        profiles = profile_branches(trace.trace, workload.program)
        problems = {p.pc for p in problem_branches(profiles)}
        predictable = [
            pc
            for pc, profile in profiles.items()
            if profile.rate < 0.02 and profile.executions > 100
        ]
        assert all(pc not in problems for pc in predictable)


class TestBranchSelection:
    def test_selects_branch_targeting_pthreads(self, vpr_setup):
        workload, trace = vpr_setup
        selection = select_branch_pthreads(
            workload.program, trace.trace, PARAMS, SelectionConstraints()
        )
        assert selection.pthreads
        for pthread in selection.pthreads:
            assert pthread.body.targets_branch
            assert pthread.instances_ahead >= 0

    def test_lmem_is_penalty(self, vpr_setup):
        workload, trace = vpr_setup
        selection = select_branch_pthreads(
            workload.program,
            trace.trace,
            PARAMS,
            SelectionConstraints(),
            mispredict_penalty=10,
        )
        assert selection.params.mem_latency == 10
        for pthread in selection.pthreads:
            for score in pthread.components:
                assert score.lt <= 10

    def test_end_to_end_covers_mispredictions(self, vpr_setup):
        workload, trace = vpr_setup
        base = TimingSimulator(workload.program, workload.hierarchy).run(
            BASELINE
        )
        selection = select_branch_pthreads(
            workload.program,
            trace.trace,
            PARAMS.with_ipc(max(base.ipc, 0.05)),
            SelectionConstraints(),
        )
        pre = TimingSimulator(
            workload.program, workload.hierarchy, pthreads=selection.pthreads
        ).run(PRE_EXECUTION)
        assert pre.mispredicts_covered > 0.2 * pre.mispredictions
        assert pre.speedup_over(base) > 0.0

    def test_no_problem_branches_no_pthreads(
        self, pharmacy_small, pharmacy_small_run
    ):
        """Pharmacy's branches follow the coverage codes — somewhat
        predictable; with a high problem threshold nothing qualifies."""
        selection = select_branch_pthreads(
            pharmacy_small,
            pharmacy_small_run.trace,
            PARAMS,
            SelectionConstraints(),
            min_rate=0.95,
        )
        assert selection.pthreads == []
