"""Unit tests for ProgramPrediction arithmetic (no simulation needed)."""

import pytest

from repro.selection.program_selector import ProgramPrediction


def make_prediction(**overrides):
    defaults = dict(
        launches=1000,
        injected_instructions=8000,
        misses_covered=500,
        misses_fully_covered=300,
        lt_agg=35000.0,
        oh_agg=2000.0,
        sample_instructions=100_000,
        sample_l2_misses=800,
        unassisted_ipc=1.0,
        sequencing_width=8,
    )
    defaults.update(overrides)
    return ProgramPrediction(**defaults)


class TestDerivedQuantities:
    def test_adv_agg(self):
        assert make_prediction().adv_agg == 33000.0

    def test_avg_length(self):
        assert make_prediction().avg_pthread_length == 8.0
        assert make_prediction(launches=0).avg_pthread_length == 0.0

    def test_coverage_fractions(self):
        prediction = make_prediction()
        assert prediction.coverage_fraction == 500 / 800
        assert prediction.full_coverage_fraction == 300 / 800
        assert make_prediction(sample_l2_misses=0).coverage_fraction == 0.0


class TestPredictedIpcs:
    def test_basic_speedup(self):
        prediction = make_prediction()
        # base cycles 100k, advantage 33k -> 100k/67k ≈ 1.49x
        assert prediction.predicted_ipc == pytest.approx(100 / 67, rel=1e-3)
        assert prediction.predicted_speedup == pytest.approx(
            100 / 67 - 1, rel=1e-3
        )

    def test_overhead_ipc_below_base(self):
        prediction = make_prediction()
        assert prediction.predicted_overhead_ipc < prediction.unassisted_ipc
        assert prediction.predicted_overhead_ipc == pytest.approx(
            100_000 / 102_000, rel=1e-6
        )

    def test_latency_ipc_above_full(self):
        prediction = make_prediction()
        assert (
            prediction.predicted_latency_ipc
            >= prediction.predicted_ipc
        )

    def test_width_clamp(self):
        """LTagg exceeding base cycles clamps at the sequencing bound
        instead of going negative/infinite (the paper's serialization
        assumption pushed to its limit)."""
        prediction = make_prediction(lt_agg=10_000_000.0)
        assert prediction.predicted_ipc == 8.0
        assert prediction.predicted_latency_ipc == 8.0

    def test_zero_pthreads_prediction_is_identity(self):
        prediction = make_prediction(
            launches=0,
            injected_instructions=0,
            misses_covered=0,
            misses_fully_covered=0,
            lt_agg=0.0,
            oh_agg=0.0,
        )
        assert prediction.predicted_ipc == pytest.approx(1.0)
        assert prediction.predicted_overhead_ipc == pytest.approx(1.0)
        assert prediction.predicted_speedup == pytest.approx(0.0)
