"""Tests for whole-program selection and predictions."""

import pytest

from repro.model.params import ModelParams, SelectionConstraints
from repro.selection.program_selector import select_pthreads
from repro.workloads import pharmacy

PARAMS = ModelParams(bw_seq=8, unassisted_ipc=0.8, mem_latency=70, load_latency=2)


@pytest.fixture(scope="module")
def selection(pharmacy_small, pharmacy_small_run):
    return select_pthreads(
        pharmacy_small, pharmacy_small_run.trace, PARAMS, SelectionConstraints()
    )


class TestSelectPthreads:
    def test_pthreads_selected(self, selection):
        assert selection.pthreads

    def test_merging_collapses_to_shared_trigger(self, selection):
        """With merging on, pharmacy's p-threads share the induction
        trigger and merge down to very few static p-threads."""
        triggers = {p.trigger_pc for p in selection.pthreads}
        assert pharmacy.INDUCTION_PC in triggers
        assert len(selection.pthreads) <= 3

    def test_prediction_totals_consistent(self, selection):
        prediction = selection.prediction
        assert prediction.launches == sum(
            p.prediction.dc_trig for p in selection.pthreads
        )
        assert prediction.misses_covered <= prediction.sample_l2_misses
        assert prediction.misses_fully_covered <= prediction.misses_covered
        assert prediction.adv_agg == pytest.approx(
            prediction.lt_agg - prediction.oh_agg
        )

    def test_coverage_fraction_bounds(self, selection):
        assert 0.0 <= selection.prediction.coverage_fraction <= 1.0
        assert (
            selection.prediction.full_coverage_fraction
            <= selection.prediction.coverage_fraction
        )

    def test_predicted_ipcs_ordered(self, selection):
        prediction = selection.prediction
        # overhead-only <= unassisted <= full <= latency-only
        assert prediction.predicted_overhead_ipc <= PARAMS.unassisted_ipc + 1e-9
        assert prediction.predicted_ipc <= prediction.predicted_latency_ipc + 1e-9

    def test_describe_runs(self, selection):
        text = selection.describe()
        assert "p-thread" in text


class TestRegionRestriction:
    def test_region_uses_region_statistics(
        self, pharmacy_small, pharmacy_small_run
    ):
        trace = pharmacy_small_run.trace
        full = select_pthreads(pharmacy_small, trace, PARAMS)
        half = select_pthreads(
            pharmacy_small, trace, PARAMS, region=(0, len(trace) // 2)
        )
        assert (
            half.prediction.sample_l2_misses
            <= full.prediction.sample_l2_misses
        )
        assert half.prediction.launches <= full.prediction.launches

    def test_empty_region_selects_nothing(
        self, pharmacy_small, pharmacy_small_run
    ):
        selection = select_pthreads(
            pharmacy_small, pharmacy_small_run.trace, PARAMS, region=(0, 10)
        )
        assert selection.pthreads == []
        assert selection.prediction.launches == 0


class TestConstraintEffects:
    def test_no_merge_keeps_separate_pthreads(
        self, pharmacy_small, pharmacy_small_run
    ):
        merged = select_pthreads(
            pharmacy_small,
            pharmacy_small_run.trace,
            PARAMS,
            SelectionConstraints(merge=True),
        )
        unmerged = select_pthreads(
            pharmacy_small,
            pharmacy_small_run.trace,
            PARAMS,
            SelectionConstraints(merge=False),
        )
        assert len(unmerged.pthreads) >= len(merged.pthreads)

    def test_merge_reduces_predicted_launches(
        self, pharmacy_small, pharmacy_small_run
    ):
        merged = select_pthreads(
            pharmacy_small,
            pharmacy_small_run.trace,
            PARAMS,
            SelectionConstraints(merge=True),
        )
        unmerged = select_pthreads(
            pharmacy_small,
            pharmacy_small_run.trace,
            PARAMS,
            SelectionConstraints(merge=False),
        )
        assert merged.prediction.launches <= unmerged.prediction.launches

    def test_relaxed_constraints_raise_full_coverage(
        self, pharmacy_small, pharmacy_small_run
    ):
        """Longer p-threads cover *fewer* misses each (paper §2) but
        tolerate more latency — full coverage grows as constraints
        relax (the Figure 4 trend)."""
        narrow = select_pthreads(
            pharmacy_small,
            pharmacy_small_run.trace,
            PARAMS,
            SelectionConstraints(scope=16, max_pthread_length=8),
        )
        wide = select_pthreads(
            pharmacy_small,
            pharmacy_small_run.trace,
            PARAMS,
            SelectionConstraints(scope=1024, max_pthread_length=32),
        )
        assert (
            wide.prediction.misses_fully_covered
            >= narrow.prediction.misses_fully_covered
        )
        assert wide.prediction.lt_agg >= narrow.prediction.lt_agg
