"""Tests for region-grained selection (Figure 6 machinery)."""

import pytest

from repro.model.params import ModelParams, SelectionConstraints
from repro.selection.granularity import select_by_region

PARAMS = ModelParams(bw_seq=8, unassisted_ipc=0.8, mem_latency=70, load_latency=2)


class TestSelectByRegion:
    def test_regions_tile_the_trace(self, pharmacy_small, pharmacy_small_run):
        trace = pharmacy_small_run.trace
        granular = select_by_region(
            pharmacy_small, trace, PARAMS, region_size=len(trace) // 4
        )
        assert granular.regions[0].start == 0
        assert granular.regions[-1].end == len(trace)
        for previous, current in zip(granular.regions, granular.regions[1:]):
            assert current.start == previous.end

    def test_schedule_matches_regions(self, pharmacy_small, pharmacy_small_run):
        trace = pharmacy_small_run.trace
        granular = select_by_region(
            pharmacy_small, trace, PARAMS, region_size=len(trace) // 3
        )
        schedule = granular.schedule()
        assert len(schedule) == len(granular.regions)
        for (start, end, pthreads), region in zip(schedule, granular.regions):
            assert (start, end) == (region.start, region.end)
            assert pthreads == region.pthreads

    def test_aggregates(self, pharmacy_small, pharmacy_small_run):
        trace = pharmacy_small_run.trace
        granular = select_by_region(
            pharmacy_small, trace, PARAMS, region_size=len(trace) // 2
        )
        assert granular.total_static_pthreads() == sum(
            len(r.pthreads) for r in granular.regions
        )
        assert granular.predicted_launches() >= 0
        assert granular.predicted_covered() >= 0

    def test_invalid_region_size(self, pharmacy_small, pharmacy_small_run):
        with pytest.raises(ValueError):
            select_by_region(
                pharmacy_small, pharmacy_small_run.trace, PARAMS, region_size=0
            )

    def test_single_region_equals_whole_run(
        self, pharmacy_small, pharmacy_small_run
    ):
        from repro.selection.program_selector import select_pthreads

        trace = pharmacy_small_run.trace
        granular = select_by_region(
            pharmacy_small, trace, PARAMS, region_size=len(trace) + 1
        )
        whole = select_pthreads(pharmacy_small, trace, PARAMS)
        assert len(granular.regions) == 1
        assert (
            granular.regions[0].selection.prediction.misses_covered
            == whole.prediction.misses_covered
        )
