"""Unit tests for the serve request/response schema."""

import pytest

from repro.serve.protocol import (
    SERVE_SCHEMA_VERSION,
    ProtocolError,
    error_payload,
    parse_run_request,
    partial_payload,
    request_cache_key,
)
from repro.harness.experiment import PartialExperimentResult


def test_minimal_request_gets_defaults():
    request = parse_run_request({"workload": "mcf"})
    assert request.config.workload == "mcf"
    assert request.config.input_name == "train"
    assert request.config.validate is False
    assert request.budget_seconds is None


def test_full_request_round_trips():
    request = parse_run_request(
        {
            "workload": "vpr.r",
            "input": "ref",
            "validate": True,
            "granularity": 512,
            "budget_seconds": 2,
            "constraints": {"scope": 256, "max_pthread_length": 16},
            "machine": {"bw_seq": 4},
        }
    )
    assert request.config.input_name == "ref"
    assert request.config.validate is True
    assert request.config.granularity == 512
    assert request.config.constraints.scope == 256
    assert request.config.constraints.max_pthread_length == 16
    assert request.config.machine.bw_seq == 4
    assert request.budget_seconds == 2.0


@pytest.mark.parametrize(
    "doc",
    [
        None,
        [],
        "mcf",
        {},  # missing workload
        {"workload": "no-such-benchmark"},
        {"workload": "mcf", "bogus_field": 1},
        {"workload": "mcf", "granularity": "big"},  # wrong type
        {"workload": "mcf", "validate": 1},  # int is not bool here
        {"workload": "mcf", "granularity": True},  # bool is not int here
        {"workload": "mcf", "budget_seconds": 0},
        {"workload": "mcf", "budget_seconds": -1.0},
        {"workload": "mcf", "constraints": 5},
        {"workload": "mcf", "constraints": {"no_such_knob": 1}},
        {"workload": "mcf", "machine": {"no_such_knob": 1}},
    ],
)
def test_malformed_requests_raise(doc):
    with pytest.raises(ProtocolError):
        parse_run_request(doc)


def test_cache_key_ignores_budget():
    base = parse_run_request({"workload": "mcf"})
    budgeted = parse_run_request({"workload": "mcf", "budget_seconds": 0.5})
    other = parse_run_request({"workload": "twolf"})
    assert request_cache_key(base) == request_cache_key(budgeted)
    assert request_cache_key(base) != request_cache_key(other)


def test_partial_payload_shape():
    partial = PartialExperimentResult(
        config=parse_run_request({"workload": "mcf"}).config,
        next_stage="timing",
        stages_completed=["trace", "baseline", "selection"],
        timings={"trace": 0.5},
    )
    payload = partial_payload(partial)
    assert payload["schema"] == SERVE_SCHEMA_VERSION
    assert payload["status"] == "budget_exceeded"
    assert payload["budget_exceeded"] is True
    assert payload["next_stage"] == "timing"
    assert payload["stages_completed"] == ["trace", "baseline", "selection"]
    assert payload["timings"] == {"trace": 0.5}


def test_error_payload_shape():
    payload = error_payload("queue full", status="rejected")
    assert payload == {
        "schema": SERVE_SCHEMA_VERSION,
        "status": "rejected",
        "error": "queue full",
    }
