"""End-to-end tests for the serve daemon.

One in-process daemon (ephemeral port, persistent caches disabled so
the full pipeline actually runs) serves two workloads concurrently; the
payloads are compared bit-for-bit against the offline
:class:`~repro.harness.experiment.ExperimentRunner` building the same
``result_payload`` — excluding ``timings``, the only wall-clock field.
The same daemon then answers a repeat request from the response cache,
a budget-starved request with a truncated-but-well-formed payload, and
a metrics scrape that passes the ``repro obs check`` catalog gate.
Backpressure (503 + ``Retry-After``) is pinned in a second, stalled
daemon whose queue holds a single entry.
"""

import asyncio
import json

import pytest

from repro.harness.experiment import ExperimentRunner
from repro.obs import check_snapshot, reset_registry
from repro.serve import (
    ReproServer,
    ServeClient,
    ServeConfig,
    ServerState,
    parse_run_request,
    result_payload,
)

#: Small instruction cap keeps each full pipeline run test-sized.
MAX_INSTRUCTIONS = 120_000
WORKLOADS = ("mcf", "vpr.r")


def _jsonify(payload):
    """Normalize a Python payload the way the HTTP layer serializes it."""
    return json.loads(json.dumps(payload, sort_keys=True))


def _without_timings(payload):
    clone = dict(payload)
    clone.pop("timings", None)
    return clone


async def _start_daemon(config):
    state = ServerState(config)
    server = ReproServer(state)
    await server.start()
    return state, server


def test_daemon_end_to_end():
    registry = reset_registry()
    config = ServeConfig(
        port=0,
        workers=2,
        no_cache=True,
        max_instructions=MAX_INSTRUCTIONS,
    )

    async def scenario():
        state, server = await _start_daemon(config)
        try:
            host, port = server.address
            clients = [ServeClient(host, port) for _ in WORKLOADS]

            # Two workloads in flight concurrently (satellite: the e2e
            # asyncio test drives >1 submission at once).
            responses = await asyncio.gather(
                *(
                    client.post_json("/v1/run", {"workload": name})
                    for client, name in zip(clients, WORKLOADS)
                )
            )
            for (status, headers, payload), name in zip(responses, WORKLOADS):
                assert status == 200, payload
                assert payload["status"] == "ok"
                assert payload["workload"] == name
                assert headers.get("x-request-id", "").startswith("r")

            # Repeat submission: served from the response cache, byte-
            # identical (timings included — it is the same payload).
            status, headers, repeat = await clients[0].post_json(
                "/v1/run", {"workload": WORKLOADS[0]}
            )
            assert status == 200
            assert repeat == responses[0][2]
            assert headers["x-request-id"] != responses[0][1]["x-request-id"]

            # Span tree of a completed request is queryable by id.
            status, trace = await clients[0].get_json(
                "/trace/" + responses[0][1]["x-request-id"]
            )
            assert status == 200
            assert trace["workload"] == WORKLOADS[0]
            assert trace["spans"]["name"] == "request"
            assert trace["spans"]["children"], "request span has no children"
            status, _ = await clients[0].get_json("/trace/nope")
            assert status == 404

            # Budget-starved request on a *fresh* workload (the response
            # cache would answer a cached one): well-formed truncation.
            status, _, starved = await clients[1].post_json(
                "/v1/run", {"workload": "twolf", "budget_seconds": 1e-9}
            )
            assert status == 200
            assert starved["status"] == "budget_exceeded"
            assert starved["budget_exceeded"] is True
            assert starved["next_stage"] == "trace"
            assert starved["stages_completed"] == []
            assert starved["workload"] == "twolf"

            status, health = await clients[0].get_json("/healthz")
            assert status == 200
            assert health["status"] == "ok"
            assert health["cache_enabled"] is False
            assert health["requests_total"] >= 4

            # The metrics snapshot passes the `repro obs check` gate and
            # the Prometheus exposition carries the serve counters.
            status, snapshot = await clients[0].get_json("/metrics/json")
            assert status == 200
            assert check_snapshot(snapshot) == []
            status, _, prom = await clients[0].get("/metrics")
            assert status == 200
            text = prom.decode("utf-8")
            assert "serve_requests_total" in text
            assert "functional_runs" in text

            for client in clients:
                await client.close()
        finally:
            await server.close()
        return state

    state = asyncio.run(scenario())

    # Offline equivalence: the same configs through a fresh offline
    # runner yield bit-for-bit the served payloads, minus wall-clock.
    offline = ExperimentRunner(
        max_instructions=MAX_INSTRUCTIONS, artifacts=None
    )

    # The daemon is gone, but its response cache holds the exact "ok"
    # payloads it served, keyed by config.
    from repro.serve.protocol import request_cache_key

    for name in WORKLOADS:
        request = parse_run_request({"workload": name})
        cached = state._response_get(request_cache_key(request))
        assert cached is not None, f"no served payload cached for {name}"
        expected = _jsonify(result_payload(offline.run(request.config)))
        assert _without_timings(_jsonify(cached)) == _without_timings(expected)

    assert registry.get("serve.requests.cache_hits").value >= 1
    assert registry.get("serve.requests.budget_exceeded").value >= 1


def test_backpressure_sheds_with_503_and_retry_after():
    reset_registry()
    config = ServeConfig(
        port=0,
        workers=1,
        queue_size=1,
        no_cache=True,
        max_instructions=MAX_INSTRUCTIONS,
    )

    async def scenario():
        state = ServerState(config)
        state.start_workers = lambda: None  # stall: nothing drains the queue
        server = ReproServer(state)
        await server.start()
        blocked = None
        try:
            host, port = server.address
            first = ServeClient(host, port)
            second = ServeClient(host, port)

            # First submission fills the one-slot queue and never
            # completes (no workers); it must not be shed.
            blocked = asyncio.create_task(
                first.post_json("/v1/run", {"workload": "mcf"})
            )
            while state._queue.qsize() == 0:
                await asyncio.sleep(0.01)

            status, headers, payload = await second.post_json(
                "/v1/run", {"workload": "mcf"}
            )
            assert status == 503
            assert headers["retry-after"] == str(config.retry_after_seconds)
            assert payload["status"] == "rejected"
            assert payload["error"] == "request queue full"

            # Malformed documents are a 400, not a shed.
            status, _, payload = await second.post_json(
                "/v1/run", {"workload": "not-a-benchmark"}
            )
            assert status == 400
            assert payload["status"] == "error"

            await second.close()
            await first.close()
        finally:
            if blocked is not None:
                blocked.cancel()
                await asyncio.gather(blocked, return_exceptions=True)
            await server.close()

    asyncio.run(scenario())
