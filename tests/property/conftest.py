"""Shared hypothesis configuration for the property-test suite.

Named profiles replace the per-test ``@settings(...)`` boilerplate:

* ``ci`` (default): no deadline (shared CI runners have noisy clocks)
  and a bumped example count — the thoroughness tier the suite gates
  on.
* ``dev``: a fast iteration tier for local edit-test loops.

Select with ``HYPOTHESIS_PROFILE=dev pytest tests/property``.  Tests
whose generators are markedly heavier (slice-tree construction) or
cheaper (pure parsing) than the default still carry an explicit
``@settings(max_examples=...)`` override; everything else inherits
the profile.  Overrides compose with the profile, so ``deadline=None``
never needs restating.
"""

import os

from hypothesis import settings

settings.register_profile("ci", deadline=None, max_examples=150)
settings.register_profile("dev", deadline=None, max_examples=20)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))
