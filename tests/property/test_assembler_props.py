"""Property-based tests: format/parse round-trips on the ISA."""

from hypothesis import given, settings, strategies as st

from repro.isa.assembler import parse_line
from repro.isa.instruction import Instruction, format_instruction
from repro.isa.opcodes import Format, Opcode, opinfo
from repro.isa.registers import NUM_REGS

registers = st.integers(min_value=0, max_value=NUM_REGS - 1)
immediates = st.integers(min_value=-(1 << 20), max_value=1 << 20)

_R_OPS = [op for op in Opcode if opinfo(op).fmt is Format.R]
_I_OPS = [
    op
    for op in Opcode
    if opinfo(op).fmt is Format.I and op not in (Opcode.MOV, Opcode.LUI)
]


@st.composite
def random_instruction(draw) -> Instruction:
    kind = draw(st.integers(0, 4))
    if kind == 0:
        return Instruction(
            draw(st.sampled_from(_R_OPS)),
            rd=draw(registers),
            rs1=draw(registers),
            rs2=draw(registers),
        )
    if kind == 1:
        return Instruction(
            draw(st.sampled_from(_I_OPS)),
            rd=draw(registers),
            rs1=draw(registers),
            imm=draw(immediates),
        )
    if kind == 2:
        return Instruction(
            Opcode.LW, rd=draw(registers), rs1=draw(registers),
            imm=draw(immediates),
        )
    if kind == 3:
        return Instruction(
            Opcode.SW, rs2=draw(registers), rs1=draw(registers),
            imm=draw(immediates),
        )
    return Instruction(Opcode.MOV, rd=draw(registers), rs1=draw(registers))


@given(inst=random_instruction())
@settings(max_examples=300)
def test_format_parse_round_trip(inst):
    _, parsed = parse_line(format_instruction(inst))
    assert parsed == inst


@given(inst=random_instruction())
def test_abi_format_parses_identically(inst):
    _, parsed = parse_line(format_instruction(inst, abi=True))
    assert parsed == inst
