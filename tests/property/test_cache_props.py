"""Property-based tests on cache and bus invariants."""

from hypothesis import given, strategies as st

from repro.memory.bus import Bus
from repro.memory.cache import Cache, CacheConfig
from repro.memory.mshr import MshrFile

addresses = st.lists(
    st.integers(min_value=0, max_value=1 << 16).map(lambda a: a * 4),
    min_size=1,
    max_size=200,
)


@given(addrs=addresses)
def test_cache_capacity_never_exceeded(addrs):
    cache = Cache(CacheConfig("T", 1024, 32, 2, 1))
    for addr in addrs:
        cache.access(addr)
    assert cache.resident_lines() <= 32  # 1024 / 32


@given(addrs=addresses)
def test_cache_repeat_access_always_hits(addrs):
    cache = Cache(CacheConfig("T", 4096, 32, 4, 1))
    for addr in addrs:
        cache.access(addr)
        assert cache.access(addr)  # immediate re-access must hit


@given(addrs=addresses)
def test_cache_stats_consistent(addrs):
    cache = Cache(CacheConfig("T", 1024, 32, 2, 1))
    for addr in addrs:
        cache.access(addr)
    assert cache.hits + cache.misses == cache.accesses
    assert cache.accesses == len(addrs)


@given(
    requests=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10_000),  # request time
            st.integers(min_value=1, max_value=128),  # bytes
        ),
        min_size=1,
        max_size=100,
    )
)
def test_bus_completion_after_request(requests):
    bus = Bus("b", 32, 4)
    for now, num_bytes in requests:
        done = bus.request(now, num_bytes)
        assert done >= now + bus.transfer_cycles(num_bytes)


@given(
    lines=st.lists(
        st.integers(min_value=0, max_value=50).map(lambda x: x * 64),
        min_size=1,
        max_size=60,
    )
)
def test_mshr_outstanding_bounded(lines):
    mshrs = MshrFile(8)
    now = 0
    for line in lines:
        if mshrs.lookup(line, now) is None:
            mshrs.allocate(line, now, now + 70)
        assert mshrs.outstanding(now) <= 8
        now += 3
