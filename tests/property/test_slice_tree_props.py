"""Property-based tests: slice-tree invariants over random programs.

Random loopy programs with indirect loads are generated, traced, and
sliced; the tree invariants from the paper must hold regardless of
program shape.
"""

from hypothesis import given, settings, strategies as st

from repro.engine.functional import run_program
from repro.isa import DataImage, assemble
from repro.memory.cache import CacheConfig
from repro.memory.hierarchy import HierarchyConfig
from repro.slicing.slice_tree import build_slice_trees

HIERARCHY = HierarchyConfig(
    l1=CacheConfig("L1D", 512, 32, 2, 2),
    l2=CacheConfig("L2", 2048, 64, 4, 6),
    mem_latency=70,
    mshr_entries=8,
)


@st.composite
def indirect_loop_program(draw):
    """A loop loading through an index array with a random path split."""
    iterations = draw(st.integers(min_value=8, max_value=60))
    stride = draw(st.sampled_from([4, 8, 16]))
    split = draw(st.integers(min_value=1, max_value=7))
    source = f"""
        addi a0, zero, 0
        addi a1, zero, {iterations}
        addi s0, zero, 65536
    loop:
        bge  a0, a1, done
        lw   t0, 0(s0)
        andi t1, t0, 7
        addi t2, zero, {split}
        blt  t1, t2, left
        slli t3, t0, 2
        j    merge
    left:
        slli t3, t0, 3
    merge:
        addi t3, t3, 1048576
        lw   t4, 0(t3)
        add  s4, s4, t4
        addi s0, s0, {stride}
        addi a0, a0, 1
        j    loop
    done:
        halt
    """
    seed = draw(st.integers(0, 1 << 30))
    data = DataImage()
    import random

    rng = random.Random(seed)
    for i in range(iterations * (stride // 4) + 4):
        data.store_word(65536 + i * 4, rng.randrange(1 << 14))
    return assemble(source, data=data)


@given(program=indirect_loop_program(), scope=st.sampled_from([32, 128, 1024]))
@settings(max_examples=40)
def test_tree_invariants_hold(program, scope):
    result = run_program(program, HIERARCHY)
    trees = build_slice_trees(result.trace, scope=scope, max_length=24)
    for tree in trees.values():
        tree.check_invariants()


@given(program=indirect_loop_program())
@settings(max_examples=30)
def test_miss_partition(program):
    result = run_program(program, HIERARCHY)
    trees = build_slice_trees(result.trace)
    total = sum(tree.total_misses() for tree in trees.values())
    assert total == len(result.trace.miss_indices(3))


@given(program=indirect_loop_program())
@settings(max_examples=30)
def test_dist_pl_strictly_increases_on_paths(program):
    result = run_program(program, HIERARCHY)
    for tree in build_slice_trees(result.trace).values():
        for node in tree.nodes():
            for child in node.children.values():
                assert child.dist_pl > node.dist_pl
