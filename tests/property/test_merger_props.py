"""Property-based tests: merging preserves every component's semantics.

Random pairs of p-threads sharing a random dataflow prefix are merged;
each component's target value and address, executed via the reference
interpreter, must be reproduced somewhere in the merged body.
"""

from __future__ import annotations

from typing import List

from hypothesis import given, settings, strategies as st

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.pthreads.body import PThreadBody
from repro.pthreads.interp import execute_body
from repro.pthreads.merger import merge_two
from repro.pthreads.pthread import PThreadPrediction, StaticPThread

REGS = list(range(1, 10))


@st.composite
def instruction(draw, allow_load=True) -> Instruction:
    choice = draw(st.integers(0, 2 if allow_load else 1))
    rd = draw(st.sampled_from(REGS))
    rs1 = draw(st.sampled_from(REGS))
    if choice == 0:
        rs2 = draw(st.sampled_from(REGS))
        op = draw(st.sampled_from([Opcode.ADD, Opcode.XOR, Opcode.AND]))
        return Instruction(op, rd=rd, rs1=rs1, rs2=rs2)
    if choice == 1:
        imm = draw(st.integers(-32, 32)) * 4
        return Instruction(Opcode.ADDI, rd=rd, rs1=rs1, imm=imm)
    return Instruction(Opcode.LW, rd=rd, rs1=rs1, imm=draw(st.sampled_from([0, 4, 8])))


@st.composite
def mergeable_pair(draw):
    prefix = draw(st.lists(instruction(), min_size=1, max_size=5))
    suffix_a = draw(st.lists(instruction(), min_size=0, max_size=5))
    suffix_b = draw(st.lists(instruction(), min_size=0, max_size=5))
    final_a = Instruction(
        Opcode.LW, rd=1, rs1=draw(st.sampled_from(REGS)), imm=0
    )
    final_b = Instruction(
        Opcode.LW, rd=2, rs1=draw(st.sampled_from(REGS)), imm=4
    )
    return (
        prefix + suffix_a + [final_a],
        prefix + suffix_b + [final_b],
    )


def make_pthread(insts: List[Instruction]) -> StaticPThread:
    body = PThreadBody(insts)
    return StaticPThread(
        trigger_pc=11,
        body=body,
        target_load_pcs=(9,),
        prediction=PThreadPrediction(100, body.size, 10, 5, 100.0, 10.0),
    )


def memory(addr: int) -> int:
    return (addr * 2654435761) % (1 << 28)


@given(pair=mergeable_pair(), seed=st.integers(0, 1 << 16))
def test_merge_preserves_component_targets(pair, seed):
    insts_a, insts_b = pair
    a, b = make_pthread(insts_a), make_pthread(insts_b)
    merged = merge_two(a, b, optimize=False)
    assert merged is not None  # shared prefix guaranteed by generator

    seeds = {reg: (seed + reg * 97) * 4 for reg in REGS}
    out_a = execute_body(a.body, dict(seeds), memory)
    out_b = execute_body(b.body, dict(seeds), memory)
    out_m = execute_body(merged.body, dict(seeds), memory)

    merged_pairs = list(zip(out_m.addresses, out_m.values))
    assert (out_a.addresses[-1], out_a.values[-1]) in merged_pairs
    assert (out_b.addresses[-1], out_b.values[-1]) in merged_pairs


@given(pair=mergeable_pair())
@settings(max_examples=60)
def test_merge_never_larger_than_concatenation(pair):
    insts_a, insts_b = pair
    merged = merge_two(
        make_pthread(insts_a), make_pthread(insts_b), optimize=False
    )
    assert merged is not None
    assert merged.body.size < len(insts_a) + len(insts_b)
    assert merged.prediction.misses_covered == 20
