"""Property-based tests on the analytical model's invariants."""

from hypothesis import given, settings, strategies as st

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.model.advantage import evaluate_candidate
from repro.model.params import ModelParams
from repro.model.scdh import scdh_input_height, scdh_profile
from repro.pthreads.body import PThreadBody


@st.composite
def linear_computation(draw):
    """A serial computation: SCs increasing, chain dependences."""
    n = draw(st.integers(min_value=1, max_value=12))
    gaps = draw(
        st.lists(
            st.floats(min_value=0.25, max_value=8.0),
            min_size=n,
            max_size=n,
        )
    )
    sc = []
    total = 0.0
    for gap in gaps:
        total += gap
        sc.append(total)
    latencies = draw(
        st.lists(st.integers(1, 4), min_size=n, max_size=n)
    )
    deps = [() if i == 0 else (i - 1,) for i in range(n)]
    return sc, latencies, deps


@given(computation=linear_computation())
def test_scdh_completion_monotone_along_chain(computation):
    sc, latencies, deps = computation
    completion = scdh_profile(sc, latencies, deps)
    assert all(b > a for a, b in zip(completion, completion[1:]))


@given(computation=linear_computation(), scale=st.floats(1.0, 4.0))
def test_scdh_monotone_in_sequencing(computation, scale):
    sc, latencies, deps = computation
    base = scdh_input_height(sc, latencies, deps)
    slower = scdh_input_height([x * scale for x in sc], latencies, deps)
    assert slower >= base


@given(computation=linear_computation())
def test_scdh_height_at_least_sequencing(computation):
    sc, latencies, deps = computation
    assert scdh_input_height(sc, latencies, deps) >= sc[-1]


def chain_candidate(n_addis, mem_latency, dc_trig, dc_ptcm, iteration=12):
    insts = [
        Instruction(Opcode.ADDI, rd=5, rs1=5, imm=16, pc=11)
        for _ in range(n_addis)
    ]
    insts.append(Instruction(Opcode.LW, rd=8, rs1=5, imm=0, pc=9))
    dists = [1.0 + (i + 1) * iteration for i in range(n_addis)]
    dists.append((n_addis * iteration) + 3.0)
    params = ModelParams(
        bw_seq=8, unassisted_ipc=1.0, mem_latency=mem_latency, load_latency=2
    )
    return evaluate_candidate(
        trigger_pc=11,
        load_pc=9,
        depth=len(insts),
        original=insts,
        mt_distances=dists,
        executed_body=PThreadBody(insts),
        dc_trig=dc_trig,
        dc_pt_cm=dc_ptcm,
        params=params,
    )


@given(
    n_addis=st.integers(0, 20),
    mem_latency=st.integers(8, 280),
    dc_trig=st.integers(1, 100_000),
    dc_ptcm=st.integers(0, 100_000),
)
def test_candidate_invariants(n_addis, mem_latency, dc_trig, dc_ptcm):
    dc_ptcm = min(dc_ptcm, dc_trig)
    score = chain_candidate(n_addis, mem_latency, dc_trig, dc_ptcm)
    assert 0.0 <= score.lt <= mem_latency
    assert score.oh >= 0.0
    assert score.lt_agg == score.dc_pt_cm * score.lt
    assert score.oh_agg == score.dc_trig * score.oh
    assert score.adv_agg == score.lt_agg - score.oh_agg


@given(n_addis=st.integers(0, 16))
@settings(max_examples=50)
def test_unrolling_monotone_tolerance(n_addis):
    shallow = chain_candidate(n_addis, 280, 100, 50)
    deeper = chain_candidate(n_addis + 1, 280, 100, 50)
    assert deeper.lt >= shallow.lt
