"""Pipeline-wide verification properties.

Runs every bundled workload through the full construction pipeline
(slice → unroll → optimize → merge) with ``REPRO_VERIFY=1``, so every
transformation's debug post-pass hook is live, and then checks the
finished selection against all PT invariants: anything error- or
warning-severity on the default (optimize+merge) pipeline is a bug.
Deliberately corrupted bodies prove the verifier is not vacuous.
"""

import os

import pytest

from repro.analysis.report import Severity
from repro.analysis.verifier import verify_body, verify_pthread, verify_selection
from repro.engine import run_program
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.model import ModelParams, SelectionConstraints
from repro.pthreads.body import VIRTUAL_REG_BASE, PThreadBody, analyze_dataflow
from repro.pthreads.pthread import PThreadPrediction, StaticPThread
from repro.selection import select_pthreads
from repro.workloads import pharmacy
from repro.workloads.suite import SUITE, build


@pytest.fixture(autouse=True)
def verify_env():
    """Run everything in this module with the verification hooks live."""
    old = os.environ.get("REPRO_VERIFY")
    os.environ["REPRO_VERIFY"] = "1"
    yield
    if old is None:
        del os.environ["REPRO_VERIFY"]
    else:
        os.environ["REPRO_VERIFY"] = old


def select_for(name: str):
    workload = build(name, "train")
    result = run_program(workload.program, workload.hierarchy)
    params = ModelParams(
        bw_seq=8,
        unassisted_ipc=1.0,
        mem_latency=workload.hierarchy.mem_latency,
        load_latency=workload.hierarchy.l1.hit_latency,
    )
    constraints = SelectionConstraints()
    selection = select_pthreads(
        workload.program, result.trace, params, constraints
    )
    return workload, selection, constraints


@pytest.mark.parametrize("name", SUITE + ["pharmacy"])
def test_default_pipeline_selections_verify_clean(name):
    """No PT diagnostic above INFO on any bundled workload.

    The in-pipeline hooks (slicer/optimizer/merger/selector) are armed
    by the ``verify_env`` fixture and raise on any ERROR; afterwards
    the finished selection is re-checked explicitly.  INFO-severity
    PT006 advisories are legitimate: a load on a conditional path is
    covered only on the trigger's path (partial coverage, not a broken
    p-thread).
    """
    workload, selection, constraints = select_for(name)
    diagnostics = verify_selection(
        workload.program, selection.pthreads, constraints
    )
    offenders = [
        d.render() for d in diagnostics if d.severity > Severity.INFO
    ]
    assert offenders == []


def forge_body(instructions):
    """Build a PThreadBody bypassing constructor validation, the way a
    buggy transformation would hand one downstream."""
    body = object.__new__(PThreadBody)
    body.instructions = list(instructions)
    body.dataflow = analyze_dataflow(instructions)
    return body


def make_pthread(trigger_pc, root_pc, body):
    return StaticPThread(
        trigger_pc=trigger_pc,
        body=body,
        target_load_pcs=(root_pc,),
        prediction=PThreadPrediction(
            dc_trig=1,
            size=body.size,
            misses_covered=0,
            misses_fully_covered=0,
            lt_agg=0.0,
            oh_agg=0.0,
        ),
    )


class TestCorruptedBodiesAreCaught:
    """Each PT code fires on a deliberately corrupted body."""

    def test_pt001_smuggled_control_flow(self):
        body = forge_body(
            [
                Instruction(Opcode.J, target=0, pc=1),
                Instruction(Opcode.LW, rd=8, rs1=4, imm=0, pc=2),
            ]
        )
        diags = verify_body(body.instructions)
        assert any(
            d.code == "PT001" and d.severity is Severity.ERROR
            for d in diags
        )

    def test_pt002_unseedable_virtual_live_in(self):
        body = forge_body(
            [Instruction(Opcode.LW, rd=8, rs1=VIRTUAL_REG_BASE + 2, pc=0)]
        )
        diags = verify_body(body.instructions)
        assert any(d.code == "PT002" for d in diags)

    def test_pt003_body_missing_its_target(self):
        body = forge_body(
            [Instruction(Opcode.ADDI, rd=4, rs1=4, imm=4, pc=9)]
        )
        diags = verify_body(body.instructions, target_pcs=[3])
        assert any(
            d.code == "PT003" and d.severity is Severity.ERROR
            for d in diags
        )

    def test_pt004_store_nobody_reads(self):
        body = forge_body(
            [
                Instruction(Opcode.SW, rs2=8, rs1=4, imm=0, pc=1),
                Instruction(Opcode.LW, rd=9, rs1=4, imm=8, pc=2),
            ]
        )
        diags = verify_body(body.instructions, targets=[0, 1])
        assert any(d.code == "PT004" for d in diags)

    def test_pt005_oversized_body(self):
        insts = [
            Instruction(Opcode.ADDI, rd=4, rs1=4, imm=4, pc=0)
            for _ in range(5)
        ] + [Instruction(Opcode.LW, rd=8, rs1=4, imm=0, pc=1)]
        diags = verify_body(forge_body(insts).instructions, max_length=4)
        assert any(
            d.code == "PT005" and d.severity is Severity.ERROR
            for d in diags
        )

    def test_pt006_dangling_trigger(self):
        program = pharmacy.build(
            n_xact=50, n_drugs=1024, hot_drugs=64, hot_fraction=0.4, seed=3
        )
        body = PThreadBody(
            [Instruction(Opcode.LW, rd=8, rs1=4, imm=0, pc=2)]
        )
        pthread = make_pthread(len(program) + 5, 2, body)
        diags = verify_pthread(pthread, program=program)
        assert any(
            d.code == "PT006" and d.severity is Severity.ERROR
            for d in diags
        )


class TestHooksFire:
    """REPRO_VERIFY wires the verifier into the transformations."""

    def test_optimizer_hook_accepts_valid_bodies(self):
        from repro.pthreads.optimizer import optimize_body

        body = PThreadBody(
            [
                Instruction(Opcode.ADDI, rd=4, rs1=4, imm=4, pc=0),
                Instruction(Opcode.ADDI, rd=4, rs1=4, imm=4, pc=0),
                Instruction(Opcode.LW, rd=8, rs1=4, imm=0, pc=1),
            ]
        )
        optimized = optimize_body(body)
        assert optimized.body.size <= body.size

    def test_slicer_hook_runs_on_real_traces(self, pharmacy_small_run):
        from repro.slicing.slicer import Slicer

        trace = pharmacy_small_run.trace
        roots = [int(i) for i in trace.miss_indices(3)][:5]
        assert roots
        slicer = Slicer(trace)
        for root in roots:
            slicer.slice_at(root)  # must not raise under REPRO_VERIFY

    def test_experiment_verify_flag_covers_cached_selections(self):
        from repro.harness.experiment import ExperimentConfig, ExperimentRunner

        runner = ExperimentRunner()
        small = build(
            "pharmacy",
            "train",
            n_xact=500,
            n_drugs=8192,
            hot_drugs=512,
        )
        runner._workloads[("pharmacy", "train", small.hierarchy)] = small
        result = runner.run(ExperimentConfig(workload="pharmacy", verify=True))
        assert result.selection.pthreads
