"""Property test: cross-model timing parity on generated workloads.

Hypothesis drives fuzz-generator workloads through both timing models
across the baseline, pre-execution, and steal-only (overhead-sequence)
variants and asserts the *exact-agreement subset* of the parity
contract: committed architectural state and every exact event count.
The cycle/IPC band is not asserted here — the unit parity suite pins
its semantics — so a future model that legitimately uses the band
cannot turn this property flaky.

Workload construction (generate + functional trace + selection) is
much heavier than the two timing runs, so it is memoized per seed;
hypothesis then explores (seed, mode) combinations cheaply.  Inherits
the ``ci``/``dev`` profiles from ``conftest.py``; the explicit
``max_examples`` override composes with them (the generators here are
markedly heavier than the suite's default).
"""

import functools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.functional import FunctionalSimulator
from repro.fuzz.generator import generate
from repro.model.params import ModelParams, SelectionConstraints
from repro.selection.program_selector import select_pthreads
from repro.timing.config import (
    BASELINE,
    OVERHEAD_SEQUENCE,
    PRE_EXECUTION,
)
from repro.timing.core import TimingSimulator
from repro.timing.eventsim import EventSimulator
from repro.validation.parity import ParityRun, compare_runs

MAX_INSTRUCTIONS = 60_000

MODES = {
    "baseline": BASELINE,
    "pre-exec": PRE_EXECUTION,
    "steal-only": OVERHEAD_SEQUENCE,
}


@functools.lru_cache(maxsize=64)
def workload_and_selection(seed):
    workload = generate(seed)
    func = FunctionalSimulator(workload.program, workload.hierarchy).run(
        max_instructions=MAX_INSTRUCTIONS
    )
    params = ModelParams(
        bw_seq=8,
        unassisted_ipc=1.0,
        mem_latency=workload.hierarchy.mem_latency,
        load_latency=workload.hierarchy.l1.hit_latency,
    )
    selection = select_pthreads(
        workload.program, func.trace, params, SelectionConstraints()
    )
    return workload, tuple(selection.pthreads)


def capture(sim, mode) -> ParityRun:
    stats = sim.run(mode, max_instructions=MAX_INSTRUCTIONS)
    payload = stats.to_dict()
    payload["ipc"] = stats.ipc
    return ParityRun(
        stats=payload,
        registers=list(sim.last_registers),
        memory_words={
            addr: value
            for addr, value in sim.last_memory.snapshot().items()
            if value != 0
        },
    )


@settings(max_examples=25)
@given(
    seed=st.integers(min_value=0, max_value=23),
    mode_name=st.sampled_from(sorted(MODES)),
)
def test_exact_agreement_subset(seed, mode_name):
    workload, pthreads = workload_and_selection(seed)
    mode = MODES[mode_name]
    pts = list(pthreads) if (mode.launch and pthreads) else None
    trace_sim = TimingSimulator(
        workload.program, workload.hierarchy, pthreads=pts, engine="interp"
    )
    event_sim = EventSimulator(
        workload.program, workload.hierarchy, pthreads=pts, engine="interp"
    )
    report = compare_runs(
        capture(trace_sim, mode),
        capture(event_sim, mode),
        workload=workload.name,
        mode=mode.name,
        engine="interp",
    )
    exact_failures = [
        check for check in report.checks
        if check.kind == "exact" and not check.ok
    ]
    assert not exact_failures, report.render()


@settings(max_examples=10)
@given(seed=st.integers(min_value=0, max_value=23))
def test_event_model_engine_seams_agree(seed):
    # The engine seam is pure dispatch strategy: under any generated
    # workload the three seams commit identical runs.
    workload, _ = workload_and_selection(seed)
    reference = None
    for engine in ("interp", "compiled", "tiered"):
        sim = EventSimulator(
            workload.program, workload.hierarchy, engine=engine
        )
        stats = sim.run(BASELINE, max_instructions=MAX_INSTRUCTIONS)
        outcome = (stats.to_dict(), list(sim.last_registers))
        if reference is None:
            reference = outcome
        else:
            assert outcome == reference
