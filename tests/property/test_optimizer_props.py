"""Property-based tests: the optimizer never changes body semantics.

Random straight-line bodies (ALU chains, loads, stores, moves) are
generated, optimized, and executed against random seeds and memory via
the reference interpreter; the target load's address and value must be
identical before and after optimization.
"""

from __future__ import annotations

from typing import List

from hypothesis import given, settings, strategies as st

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.pthreads.body import PThreadBody
from repro.pthreads.interp import execute_body
from repro.pthreads.optimizer import optimize_body

REGS = list(range(1, 12))

_alu_ops = st.sampled_from(
    [Opcode.ADD, Opcode.SUB, Opcode.XOR, Opcode.AND, Opcode.OR]
)
_imm_ops = st.sampled_from([Opcode.ADDI, Opcode.XORI, Opcode.ORI, Opcode.SLLI])


@st.composite
def body_instructions(draw) -> List[Instruction]:
    """A random straight-line body ending in a load."""
    n = draw(st.integers(min_value=0, max_value=14))
    instructions: List[Instruction] = []
    for _ in range(n):
        choice = draw(st.integers(0, 4))
        rd = draw(st.sampled_from(REGS))
        rs1 = draw(st.sampled_from(REGS))
        if choice == 0:
            rs2 = draw(st.sampled_from(REGS))
            op = draw(_alu_ops)
            instructions.append(Instruction(op, rd=rd, rs1=rs1, rs2=rs2))
        elif choice == 1:
            op = draw(_imm_ops)
            imm = draw(st.integers(-64, 64))
            if op is Opcode.SLLI:
                imm = draw(st.integers(0, 5))
            instructions.append(Instruction(op, rd=rd, rs1=rs1, imm=imm))
        elif choice == 2:
            instructions.append(Instruction(Opcode.MOV, rd=rd, rs1=rs1))
        elif choice == 3:
            offset = draw(st.sampled_from([0, 4, 8]))
            instructions.append(
                Instruction(Opcode.SW, rs2=rd, rs1=rs1, imm=offset)
            )
        else:
            offset = draw(st.sampled_from([0, 4, 8]))
            instructions.append(
                Instruction(Opcode.LW, rd=rd, rs1=rs1, imm=offset)
            )
    base = draw(st.sampled_from(REGS))
    instructions.append(Instruction(Opcode.LW, rd=1, rs1=base, imm=0))
    return instructions


@st.composite
def seeds(draw):
    return {
        reg: draw(st.integers(min_value=0, max_value=1 << 20)) * 4
        for reg in REGS
    }


def reference_memory(addr: int) -> int:
    # Deterministic pseudo-contents; word-aligned addresses only matter.
    return (addr * 2654435761) % (1 << 31)


@given(instructions=body_instructions(), seed_values=seeds())
def test_optimizer_preserves_target_semantics(instructions, seed_values):
    body = PThreadBody(instructions)
    optimized = optimize_body(body, assume_no_alias=False)
    original_out = execute_body(body, dict(seed_values), reference_memory)
    optimized_out = execute_body(
        optimized.body, dict(seed_values), reference_memory
    )
    target = optimized.targets[-1]
    assert optimized_out.values[target] == original_out.values[-1]
    # Store-load pair elimination may legally turn a (dynamically
    # forwarded) target load into a register move; when the optimized
    # target is still a load, its address must be unchanged.
    if optimized.body.instructions[target].is_load:
        assert optimized_out.addresses[target] == original_out.addresses[-1]


@given(instructions=body_instructions())
def test_optimizer_never_grows_body(instructions):
    body = PThreadBody(instructions)
    optimized = optimize_body(body)
    assert optimized.body.size <= body.size
    assert optimized.report.optimized_size == optimized.body.size


@given(instructions=body_instructions())
@settings(max_examples=60)
def test_optimizer_idempotent(instructions):
    body = PThreadBody(instructions)
    once = optimize_body(body)
    twice = optimize_body(once.body, targets=once.targets)
    assert twice.body.size == once.body.size
