"""Tests for failure shrinking and corpus persistence.

The repo currently has no real cross-implementation bug to shrink, so
these tests inject synthetic oracle verdicts: a fake oracle that fails
exactly when a marker instruction survives in the source.  That pins
the delta-debugging behaviour — monotone reduction, failure-identity
preservation, label handling — independently of any actual bug.
"""

import sys

import pytest

import repro.fuzz.shrink  # noqa: F401  (the package attr is the function)
from repro.fuzz.generator import generate
from repro.fuzz.oracle import CheckFailure, OracleReport
from repro.fuzz.shrink import (
    FAMILY_LEVEL_IDENTITY,
    _preserves_failure,
    load_reproducer,
    shrink,
    write_reproducer,
)

shrink_module = sys.modules["repro.fuzz.shrink"]


def fake_oracle(marker="lw", family="engine_equivalence", check="functional"):
    """An oracle failing iff any source line contains ``marker``."""

    def run(workload, max_instructions=0):
        report = OracleReport(
            name=workload.name, seed=workload.seed, shape=workload.shape
        )
        report.families_run = [family]
        if any(marker in line for line in workload.source.splitlines()):
            report.failures.append(
                CheckFailure(family, check, f"{marker!r} present")
            )
        return report

    return run


class TestShrink:
    def test_reduces_to_the_marker_line(self, monkeypatch):
        monkeypatch.setattr(shrink_module, "run_oracle", fake_oracle())
        workload = generate(6, "mixed")
        result = shrink(workload, max_instructions=1_000)
        assert result.reduced
        assert result.shrunk_lines == 1
        assert "lw" in result.workload.source
        assert result.workload.program.instructions  # still assembles

    def test_preserved_failure_identity(self, monkeypatch):
        monkeypatch.setattr(shrink_module, "run_oracle", fake_oracle())
        result = shrink(generate(6, "mixed"), max_instructions=1_000)
        assert result.failed_checks == [("engine_equivalence", "functional")]
        assert result.report.failed_checks() == {
            ("engine_equivalence", "functional")
        }

    def test_clean_workload_is_rejected(self, monkeypatch):
        monkeypatch.setattr(
            shrink_module, "run_oracle", fake_oracle(marker="\x00never")
        )
        with pytest.raises(ValueError, match="no failure to shrink"):
            shrink(generate(6), max_instructions=1_000)

    def test_budget_caps_oracle_evaluations(self, monkeypatch):
        monkeypatch.setattr(shrink_module, "run_oracle", fake_oracle())
        result = shrink(generate(6, "mixed"), max_instructions=1_000, budget=5)
        assert result.evaluations <= 5

    def test_deterministic(self, monkeypatch):
        monkeypatch.setattr(shrink_module, "run_oracle", fake_oracle())
        first = shrink(generate(6, "mixed"), max_instructions=1_000)
        second = shrink(generate(6, "mixed"), max_instructions=1_000)
        assert first.workload.source == second.workload.source
        assert first.evaluations == second.evaluations


def drifting_oracle(family, marker="lw"):
    """An oracle whose *check name* drifts as the input shrinks.

    With two or more marker lines it reports ``preexec_registers``;
    with exactly one it reports ``preexec_cycles`` — modelling how a
    parity reduction legitimately moves the first observable
    divergence between checks of the same family.
    """

    def run(workload, max_instructions=0):
        report = OracleReport(
            name=workload.name, seed=workload.seed, shape=workload.shape
        )
        report.families_run = [family]
        hits = sum(
            marker in line for line in workload.source.splitlines()
        )
        if hits >= 2:
            report.failures.append(
                CheckFailure(family, "preexec_registers", "state diverged")
            )
        elif hits == 1:
            report.failures.append(
                CheckFailure(family, "preexec_cycles", "band breached")
            )
        return report

    return run


class TestFailureIdentity:
    def test_preserves_failure_exact_match(self):
        target = {("engine_equivalence", "functional")}
        assert _preserves_failure(target, target)
        assert not _preserves_failure(
            {("engine_equivalence", "timing")}, target
        )
        assert not _preserves_failure(set(), target)

    def test_preserves_failure_relaxes_parity_family_only(self):
        target = {("timing_parity", "preexec_registers")}
        # Same family, different check: preserved for the parity family.
        assert _preserves_failure(
            {("timing_parity", "preexec_cycles")}, target
        )
        # A different family never satisfies the relaxed match.
        assert not _preserves_failure(
            {("engine_equivalence", "preexec_registers")}, target
        )

    def test_parity_family_is_registered_for_relaxed_identity(self):
        assert "timing_parity" in FAMILY_LEVEL_IDENTITY

    def test_parity_shrink_follows_drifting_check_name(self, monkeypatch):
        # The reduction from >=2 marker lines to 1 changes the check
        # name; family-level identity lets the shrinker take it.
        monkeypatch.setattr(
            shrink_module,
            "run_oracle",
            drifting_oracle("timing_parity"),
        )
        result = shrink(generate(6, "mixed"), max_instructions=1_000)
        assert result.shrunk_lines == 1
        assert result.report.failed_checks() == {
            ("timing_parity", "preexec_cycles")
        }

    def test_strict_family_stops_at_the_drift_point(self, monkeypatch):
        # For every other family the identity stays (family, check):
        # the same drifting oracle cannot shrink below two markers,
        # because dropping to one renames the check.
        monkeypatch.setattr(
            shrink_module,
            "run_oracle",
            drifting_oracle("engine_equivalence"),
        )
        result = shrink(generate(6, "mixed"), max_instructions=1_000)
        source_lines = result.workload.source.splitlines()
        assert sum("lw" in line for line in source_lines) == 2
        assert result.report.failed_checks() == {
            ("engine_equivalence", "preexec_registers")
        }


class TestCorpus:
    @pytest.fixture
    def result(self, monkeypatch):
        monkeypatch.setattr(shrink_module, "run_oracle", fake_oracle())
        return shrink(generate(6, "mixed"), max_instructions=1_000)

    def test_write_and_load_round_trip(self, result, tmp_path):
        path = write_reproducer(result, tmp_path / "corpus")
        assert path.name == "fuzz-000006-mixed.json"
        workload = load_reproducer(path)
        assert workload.source == result.workload.source
        assert workload.seed == 6
        assert workload.shape == "mixed"
        assert workload.hierarchy == result.workload.hierarchy
        assert (
            workload.program.data.words == result.workload.program.data.words
        )
        assert workload.metadata["failed_checks"] == [
            ["engine_equivalence", "functional"]
        ]

    def test_reproducer_schema(self, result, tmp_path):
        import json

        path = write_reproducer(result, tmp_path / "corpus")
        payload = json.loads(path.read_text())
        assert set(payload) == {
            "format",
            "name",
            "seed",
            "shape",
            "failed_checks",
            "failures",
            "source",
            "data_words",
            "hierarchy",
            "shrink",
        }
        assert payload["format"] == 1
        assert payload["shrink"]["shrunk_lines"] == 1
        assert payload["shrink"]["original_lines"] > 1
        # data_words are sorted [addr, value] pairs.
        addresses = [pair[0] for pair in payload["data_words"]]
        assert addresses == sorted(addresses)
