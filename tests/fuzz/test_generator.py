"""Tests for the seeded workload generator."""

import pytest

from repro.engine.functional import FunctionalSimulator
from repro.fuzz.generator import FUZZ_HIERARCHIES, SHAPES, generate


class TestDeterminism:
    def test_same_seed_same_workload(self):
        for seed in (0, 7, 123, 99999):
            a = generate(seed)
            b = generate(seed)
            assert a.name == b.name
            assert a.shape == b.shape
            assert a.source == b.source
            assert a.hierarchy == b.hierarchy
            assert a.program.data.words == b.program.data.words
            assert a.metadata == b.metadata

    def test_different_seeds_differ(self):
        # Not guaranteed in principle, but any collision here means the
        # seed is not actually reaching the generator.
        sources = {generate(seed).source for seed in range(12)}
        assert len(sources) == 12

    def test_forced_shape_is_honored(self):
        for shape in SHAPES:
            workload = generate(42, shape)
            assert workload.shape == shape
            assert workload.name == f"fuzz-000042-{shape}"

    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError, match="unknown shape"):
            generate(1, "recursive_descent")


class TestGeneratedPrograms:
    def test_every_shape_halts(self):
        for shape in SHAPES:
            workload = generate(7, shape)
            result = FunctionalSimulator(
                workload.program, workload.hierarchy
            ).run(max_instructions=400_000)
            assert result.halted, shape
            assert result.loads > 0, shape

    def test_seed_sweep_halts_and_loads(self):
        for seed in range(10):
            workload = generate(seed)
            result = FunctionalSimulator(
                workload.program, workload.hierarchy
            ).run(max_instructions=400_000)
            assert result.halted, workload.name
            assert result.instructions > 0

    def test_labels_live_on_their_own_lines(self):
        # The shrinker relies on this: deleting any instruction line
        # can never take a branch target with it.
        for seed in range(10):
            for line in generate(seed).source.splitlines():
                if ":" in line:
                    assert line.rstrip().endswith(":"), line

    def test_hierarchy_comes_from_the_fuzz_set(self):
        assert {generate(seed).hierarchy for seed in range(10)} <= set(
            FUZZ_HIERARCHIES
        )

    def test_metadata_records_kernels(self):
        workload = generate(5, "mixed")
        kernels = workload.metadata["kernels"]
        assert 2 <= len(kernels) <= 3
        assert all("kernel" in meta for meta in kernels)
