"""Tests for the differential oracle."""

import pytest

import repro.fuzz.oracle as oracle_module
from repro.engine.compiler import ENGINE_COMPILED
from repro.fuzz.generator import generate
from repro.fuzz.oracle import CHECK_FAMILIES, CheckFailure, run_oracle


@pytest.fixture(scope="module")
def clean_report():
    return run_oracle(generate(3))


class TestCleanRun:
    def test_clean_workload_passes(self, clean_report):
        assert clean_report.ok, [f.render() for f in clean_report.failures]

    def test_all_seven_families_run(self, clean_report):
        assert clean_report.families_run == list(CHECK_FAMILIES)
        assert "timing_parity" in clean_report.families_run

    def test_stats_describe_the_run(self, clean_report):
        stats = clean_report.stats
        assert stats["instructions"] > 0
        assert stats["loads"] > 0
        assert stats["l1_misses"] >= stats["l2_misses"]

    def test_to_dict_is_json_shaped(self, clean_report):
        payload = clean_report.to_dict()
        assert payload["ok"] is True
        assert payload["failures"] == []
        assert payload["families_run"] == list(CHECK_FAMILIES)
        assert payload["seed"] == 3

    def test_deterministic_verdicts(self, clean_report):
        again = run_oracle(generate(3))
        assert again.to_dict() == clean_report.to_dict()


class TestFailureDetection:
    def test_timing_divergence_is_caught(self, monkeypatch):
        # Inject a one-cycle accounting bug into the compiled timing
        # engine only; the oracle must flag the engine mismatch while
        # still running every family.
        real_run = oracle_module.TimingSimulator.run

        def skewed_run(self, *args, **kwargs):
            stats = real_run(self, *args, **kwargs)
            if self.last_engine == ENGINE_COMPILED:
                stats.cycles += 1
            return stats

        monkeypatch.setattr(
            oracle_module.TimingSimulator, "run", skewed_run
        )
        report = run_oracle(generate(3))
        assert not report.ok
        families = {f.family for f in report.failures}
        assert families == {"engine_equivalence"}
        checks = {f.check for f in report.failures}
        assert "timing_baseline_compiled" in checks
        # The bug was injected into the compiled engine only; the
        # tiered engine must stay clean.
        assert not any(c.endswith("_tiered") for c in checks)
        assert report.families_run == list(CHECK_FAMILIES)

    def test_committed_state_divergence_is_caught(self, monkeypatch):
        # Corrupt the timing simulator's committed register capture:
        # the functional-vs-timing family must see it.
        real_run = oracle_module.TimingSimulator.run

        def corrupting_run(self, *args, **kwargs):
            stats = real_run(self, *args, **kwargs)
            self.last_registers = list(self.last_registers)
            self.last_registers[5] ^= 1
            return stats

        monkeypatch.setattr(
            oracle_module.TimingSimulator, "run", corrupting_run
        )
        report = run_oracle(generate(3))
        checks = report.failed_checks()
        assert ("functional_vs_timing", "baseline_registers") in checks
        assert ("functional_vs_timing", "preexec_registers") in checks

    def test_event_model_cycle_skew_is_caught(self, monkeypatch):
        # Inject a beyond-band cycle skew into the event-driven model
        # only: the timing_parity family must flag the band breach in
        # both variants while every other family stays clean (the
        # trace-driven runs they compare are untouched).
        import repro.timing.eventsim as eventsim_module

        real_run = eventsim_module.EventSimulator.run

        def skewed_run(self, *args, **kwargs):
            stats = real_run(self, *args, **kwargs)
            stats.cycles = stats.cycles * 2 + 1000  # far beyond band
            return stats

        monkeypatch.setattr(
            eventsim_module.EventSimulator, "run", skewed_run
        )
        report = run_oracle(generate(3))
        assert not report.ok
        families = {f.family for f in report.failures}
        assert families == {"timing_parity"}
        checks = {f.check for f in report.failures}
        assert "baseline_cycles" in checks
        assert "preexec_cycles" in checks
        assert report.families_run == list(CHECK_FAMILIES)

    def test_event_model_state_divergence_is_caught(self, monkeypatch):
        # Corrupt the event model's committed register capture: the
        # parity contract's first (state) check must attribute it.
        import repro.timing.eventsim as eventsim_module

        real_run = eventsim_module.EventSimulator.run

        def corrupting_run(self, *args, **kwargs):
            stats = real_run(self, *args, **kwargs)
            self.last_registers = list(self.last_registers)
            self.last_registers[5] ^= 1
            return stats

        monkeypatch.setattr(
            eventsim_module.EventSimulator, "run", corrupting_run
        )
        report = run_oracle(generate(3))
        checks = report.failed_checks()
        assert ("timing_parity", "baseline_registers") in checks
        assert ("timing_parity", "preexec_registers") in checks
        families = {f.family for f in report.failures}
        assert families == {"timing_parity"}

    def test_failure_identity_round_trips(self):
        failure = CheckFailure("memory_sanity", "halted", "did not halt")
        assert failure.to_dict() == {
            "family": "memory_sanity",
            "check": "halted",
            "message": "did not halt",
        }
        assert "memory_sanity/halted" in failure.render()
