"""Unit tests for the correlation summary (synthetic diagnostics)."""

import pytest

import repro.validation.diagnostics as diagnostics_module
from repro.validation.diagnostics import Diagnostic, correlation_summary


def patched_summary(monkeypatch, per_result_diagnostics):
    """Run correlation_summary against synthetic validate_result output."""
    results = list(range(len(per_result_diagnostics)))
    iterator = iter(per_result_diagnostics)
    monkeypatch.setattr(
        diagnostics_module, "validate_result", lambda result: next(iterator)
    )
    return correlation_summary(results)


class TestCorrelationSummary:
    def test_perfect_correlation(self, monkeypatch):
        data = [
            [Diagnostic("launches", 10.0, 10.0)],
            [Diagnostic("launches", 20.0, 20.0)],
            [Diagnostic("launches", 30.0, 30.0)],
        ]
        out = patched_summary(monkeypatch, data)
        assert out["launches"] == pytest.approx(1.0)

    def test_scaled_predictions_still_correlate(self, monkeypatch):
        # Systematic 2x over-prediction: correlation stays 1.0 — the
        # paper's point that orderings matter more than absolutes.
        data = [
            [Diagnostic("ipc", 2.0, 1.0)],
            [Diagnostic("ipc", 4.0, 2.0)],
            [Diagnostic("ipc", 6.0, 3.0)],
        ]
        out = patched_summary(monkeypatch, data)
        assert out["ipc"] == pytest.approx(1.0)

    def test_anti_correlation_detected(self, monkeypatch):
        data = [
            [Diagnostic("cov", 1.0, 3.0)],
            [Diagnostic("cov", 2.0, 2.0)],
            [Diagnostic("cov", 3.0, 1.0)],
        ]
        out = patched_summary(monkeypatch, data)
        assert out["cov"] == pytest.approx(-1.0)

    def test_constant_series_gives_nan(self, monkeypatch):
        data = [
            [Diagnostic("x", 5.0, 1.0)],
            [Diagnostic("x", 5.0, 2.0)],
        ]
        out = patched_summary(monkeypatch, data)
        assert out["x"] != out["x"]  # NaN

    def test_single_sample_gives_nan(self, monkeypatch):
        data = [[Diagnostic("x", 5.0, 1.0)]]
        out = patched_summary(monkeypatch, data)
        assert out["x"] != out["x"]

    def test_non_finite_values_dropped(self, monkeypatch):
        data = [
            [Diagnostic("x", 1.0, 1.0)],
            [Diagnostic("x", float("inf"), 9.0)],
            [Diagnostic("x", 2.0, 2.0)],
            [Diagnostic("x", 3.0, 3.0)],
        ]
        out = patched_summary(monkeypatch, data)
        assert out["x"] == pytest.approx(1.0)
