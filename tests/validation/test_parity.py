"""Tests for the cross-model parity contract.

The contract's value is that every invariant can actually fire and
that a failure names the *first* diverging check in the pinned order.
These tests hand-corrupt one dimension of a real event-model run at a
time and assert the report attributes the divergence to exactly that
check — a mutation test over the whole contract surface.
"""

import copy

import pytest

from repro.fuzz.generator import generate
from repro.timing.config import BASELINE, PRE_EXECUTION
from repro.validation.parity import (
    BAND_STAT_FIELDS,
    EXACT_STAT_FIELDS,
    ParityRun,
    ParityTolerance,
    compare_runs,
    run_parity,
)


@pytest.fixture(scope="module")
def clean_runs():
    """One real run captured as two (equal) ParityRun views."""
    from repro.timing.eventsim import EventSimulator

    workload = generate(7)
    sim = EventSimulator(workload.program, workload.hierarchy)
    stats = sim.run(BASELINE, max_instructions=60_000)
    payload = stats.to_dict()
    payload["ipc"] = stats.ipc
    run = ParityRun(
        stats=payload,
        registers=list(sim.last_registers),
        memory_words={
            a: v
            for a, v in sim.last_memory.snapshot().items()
            if v != 0
        },
    )
    return run


def corrupted(run: ParityRun) -> ParityRun:
    return copy.deepcopy(run)


def compare(reference: ParityRun, value: ParityRun):
    return compare_runs(
        reference, value, workload="t", mode="baseline", engine="interp"
    )


class TestCleanComparison:
    def test_identical_runs_pass_every_check(self, clean_runs):
        report = compare(clean_runs, corrupted(clean_runs))
        assert report.ok
        assert report.first_divergence is None
        assert report.failed_checks() == []
        # Pinned contract size: state (2) + exact counts + band.
        assert len(report.checks) == 2 + len(EXACT_STAT_FIELDS) + len(
            BAND_STAT_FIELDS
        )

    def test_render_and_to_dict(self, clean_runs):
        report = compare(clean_runs, corrupted(clean_runs))
        assert "OK" in report.render()
        payload = report.to_dict()
        assert payload["ok"] is True
        assert payload["first_divergence"] is None
        assert len(payload["checks"]) == len(report.checks)


class TestEveryInvariantFires:
    def test_register_divergence(self, clean_runs):
        bad = corrupted(clean_runs)
        bad.registers[5] ^= 1
        report = compare(clean_runs, bad)
        assert not report.ok
        assert report.first_divergence.name == "registers"
        assert "5" in report.first_divergence.detail

    def test_memory_divergence(self, clean_runs):
        bad = corrupted(clean_runs)
        addr = next(iter(bad.memory_words))
        bad.memory_words[addr] += 1
        report = compare(clean_runs, bad)
        assert report.first_divergence.name == "memory"
        assert str(addr) in report.first_divergence.detail

    def test_extra_memory_word_diverges(self, clean_runs):
        bad = corrupted(clean_runs)
        bad.memory_words[0x7FFF0] = 1
        report = compare(clean_runs, bad)
        assert report.first_divergence.name == "memory"

    @pytest.mark.parametrize("field", EXACT_STAT_FIELDS)
    def test_exact_count_divergence(self, clean_runs, field):
        bad = corrupted(clean_runs)
        value = bad.stats[field]
        if isinstance(value, dict):
            bad.stats[field] = {**value, "999999": 1}
        else:
            bad.stats[field] = value + 1
        report = compare(clean_runs, bad)
        assert not report.ok
        assert report.first_divergence.name == field

    @pytest.mark.parametrize("field", BAND_STAT_FIELDS)
    def test_band_divergence_beyond_tolerance(self, clean_runs, field):
        bad = corrupted(clean_runs)
        bad.stats[field] = bad.stats[field] * 2 + 1000
        report = compare(clean_runs, bad)
        assert not report.ok
        assert report.first_divergence.name == field
        assert report.first_divergence.kind == "band"

    def test_band_tolerates_small_cycle_skew(self, clean_runs):
        # The band is headroom, not an invariant: a skew inside the
        # documented tolerance must not fail the contract.
        bad = corrupted(clean_runs)
        bad.stats["cycles"] = bad.stats["cycles"] + 10  # < abs tol 16
        report = compare(clean_runs, bad)
        assert all(c.ok for c in report.checks if c.name == "cycles")

    def test_first_divergence_respects_pinned_order(self, clean_runs):
        # State checks come before counts before the band: a corrupted
        # register wins even when cycles are also wildly off.
        bad = corrupted(clean_runs)
        bad.stats["cycles"] = 10 * bad.stats["cycles"] + 1000
        bad.stats["instructions"] += 7
        bad.registers[3] ^= 2
        report = compare(clean_runs, bad)
        assert report.first_divergence.name == "registers"
        assert set(report.failed_checks()) == {
            "registers",
            "instructions",
            "cycles",
        }
        assert "DIVERGED at registers" in report.render()


class TestTolerance:
    def test_within_relative(self):
        tol = ParityTolerance(rel=0.02, abs=0.0)
        assert tol.within(1000.0, 1019.0)
        assert not tol.within(1000.0, 1021.0)

    def test_within_absolute_floor(self):
        tol = ParityTolerance(rel=0.0, abs=16.0)
        assert tol.within(10.0, 26.0)
        assert not tol.within(10.0, 27.0)

    def test_strict_tolerance_in_report_payload(self, clean_runs):
        report = compare_runs(
            clean_runs,
            corrupted(clean_runs),
            workload="t",
            mode="baseline",
            engine="interp",
            tolerance=ParityTolerance(rel=0.0, abs=0.0),
        )
        assert report.ok  # identical runs pass even a zero-width band
        assert report.to_dict()["tolerance"] == {"rel": 0.0, "abs": 0.0}


class TestRunParity:
    @pytest.mark.parametrize("mode", [BASELINE, PRE_EXECUTION])
    def test_real_models_agree(self, mode):
        workload = generate(12)  # branchy
        report = run_parity(
            workload.program,
            workload.hierarchy,
            mode,
            max_instructions=60_000,
            workload=workload.name,
        )
        assert report.ok, report.render()
        assert report.mode == mode.name

    def test_parity_metrics_counted(self):
        from repro.obs import get_registry, reset_registry

        reset_registry()
        workload = generate(3)
        run_parity(
            workload.program,
            workload.hierarchy,
            BASELINE,
            max_instructions=20_000,
            workload=workload.name,
        )
        snapshot = get_registry().snapshot()
        assert snapshot["parity.comparisons"]["value"] == 1
        assert "parity.divergences" not in snapshot

    def test_parity_span_emitted(self):
        from repro.obs import get_tracer, reset_tracer

        reset_tracer()
        workload = generate(3)
        run_parity(
            workload.program,
            workload.hierarchy,
            BASELINE,
            max_instructions=20_000,
            workload=workload.name,
        )
        parity_span = get_tracer().root.find("parity")
        assert parity_span is not None
        # Both simulators ran inside the parity span.
        assert parity_span.find("eventsim") is not None
