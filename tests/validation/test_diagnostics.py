"""Tests for the predicted-vs-measured validation machinery."""

import math

import pytest

from repro.harness.experiment import ExperimentConfig, ExperimentRunner
from repro.validation.diagnostics import (
    Diagnostic,
    correlation_summary,
    render_validation,
    validate_result,
)
from repro.workloads.suite import build


@pytest.fixture(scope="module")
def result():
    runner = ExperimentRunner()
    small = build("pharmacy", "train", n_xact=700, n_drugs=16384, hot_drugs=1024)
    runner._workloads[("pharmacy", "train", None)] = small
    runner._workloads[("pharmacy", "train", small.hierarchy)] = small
    return runner.run(ExperimentConfig(workload="pharmacy", validate=True))


class TestDiagnostic:
    def test_ratio(self):
        assert Diagnostic("x", 10, 5).ratio == 0.5

    def test_ratio_zero_zero_is_vacuously_exact(self):
        assert Diagnostic("x", 0, 0).ratio == 1.0

    def test_ratio_zero_prediction_nonzero_measurement_is_inf(self):
        assert Diagnostic("x", 0, 3).ratio == math.inf

    def test_relative_error(self):
        assert Diagnostic("x", 12, 10).relative_error == pytest.approx(0.2)
        assert Diagnostic("x", 0, 0).relative_error == 0.0


class TestValidateResult:
    def test_all_diagnostics_present(self, result):
        names = {d.name for d in validate_result(result)}
        assert names == {
            "launches",
            "insns_per_pthread",
            "misses_covered",
            "misses_fully_covered",
            "ipc",
            "overhead_ipc",
            "latency_ipc",
        }

    def test_launch_prediction_close(self, result):
        """Launch counts are the paper's most reliable diagnostic:
        predictions only err through dropped launches."""
        launches = next(
            d for d in validate_result(result) if d.name == "launches"
        )
        assert launches.measured <= launches.predicted
        assert launches.ratio > 0.5

    def test_pthread_length_self_fulfilling(self, result):
        """The paper: 'Predictions of average p-thread length are
        self-fulfilling.'"""
        length = next(
            d
            for d in validate_result(result)
            if d.name == "insns_per_pthread"
        )
        assert length.ratio == pytest.approx(1.0, abs=0.01)

    def test_overhead_ipc_accurate(self, result):
        overhead = next(
            d for d in validate_result(result) if d.name == "overhead_ipc"
        )
        assert overhead.ratio == pytest.approx(1.0, abs=0.25)

    def test_render(self, result):
        text = render_validation([result])
        assert "predicted" in text and "measured" in text

    def test_correlation_summary_runs(self, result):
        correlations = correlation_summary([result, result])
        assert "launches" in correlations
