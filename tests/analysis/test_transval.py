"""Translation-validator tests: clean codegen validates, mutations fire.

The mutation self-test is the validator's own proof of usefulness:
each test corrupts the *generated block source* the way a real codegen
bug would (wrong register index, dropped memory effect, off-by-one
branch target, reordered side effect) and asserts the matching CG code
fires.  Clean-validation tests pin the absence of false positives on
every variant the simulators actually compile.
"""

import copy

import pytest

from repro.analysis.report import Severity
from repro.analysis.transval import (
    CG_CODES,
    TimingParams,
    TransvalResult,
    fallback_reason,
    validate_functional,
    validate_timing,
)
from repro.engine.compiler import (
    MAX_PROGRAM,
    compile_functional,
    compile_timing,
)
from repro.engine.decode import DecodedProgram
from repro.isa import assemble

MIXED_SOURCE = """
top:
    addi r1, r0, 5
    add  r2, r1, r1
    lw   r3, 0(r1)
    sw   r2, 4(r1)
    beq  r2, r3, top
    halt
"""

FULL_SOURCE = """
    addi r1, r0, 3
    lui  r4, 2
loop:
    addi r2, r2, 10
    lw   r3, 0(r1)
    sw   r2, 4(r1)
    mul  r5, r2, r3
    slt  r6, r5, r2
    srl  r7, r5, r1
    addi r1, r1, -1
    bgt  r1, r0, loop
    jal  ra, fin
    nop
fin:
    jr   ra
"""

TIMING_KW = dict(
    window=64,
    bw_seq=8,
    dispatch_latency=2,
    mispredict_penalty=10,
    forward_latency=1,
    launching=False,
    stealing=False,
    prefetching=False,
    trigger_pcs=frozenset(),
    hinted_pcs=frozenset(),
)


def decoded(source):
    return DecodedProgram(assemble(source))


def mutated(compiled, old, new):
    """Copy ``compiled`` with one textual corruption of its source."""
    assert old in compiled.source, f"mutation anchor not found: {old!r}"
    clone = copy.copy(compiled)
    clone.source = compiled.source.replace(old, new, 1)
    return clone


def codes(result):
    return sorted({d.code for d in result.diagnostics})


@pytest.fixture(scope="module")
def mixed():
    return decoded(MIXED_SOURCE)


@pytest.fixture(scope="module")
def mixed_compiled(mixed):
    return compile_functional(mixed, tracing=True, caching=True)


class TestCleanValidation:
    @pytest.mark.parametrize("tracing", [False, True])
    @pytest.mark.parametrize("caching", [False, True])
    def test_functional_variants_clean(self, tracing, caching):
        program = decoded(FULL_SOURCE)
        compiled = compile_functional(program, tracing, caching)
        result = validate_functional(
            program, compiled, tracing=tracing, caching=caching
        )
        assert result.ok, [d.render() for d in result.diagnostics]
        assert result.blocks_checked > 0
        assert result.blocks_failed == 0
        assert result.blocks_unvalidatable == 0

    def test_timing_baseline_clean(self):
        program = decoded(FULL_SOURCE)
        compiled = compile_timing(program, **TIMING_KW)
        result = validate_timing(program, compiled, TimingParams(**TIMING_KW))
        assert result.ok, [d.render() for d in result.diagnostics]
        assert result.blocks_checked > 0

    def test_timing_full_featured_clean(self):
        # Launching + stealing + prefetching, a non-power-of-two window
        # (so the ring-slot `%` vs `&` shapes genuinely differ), a
        # trigger PC mid-program, and a hinted branch.
        kw = dict(
            TIMING_KW,
            window=48,
            launching=True,
            stealing=True,
            prefetching=True,
            trigger_pcs=frozenset({2}),
            hinted_pcs=frozenset({9}),
        )
        program = decoded(FULL_SOURCE)
        compiled = compile_timing(program, **kw)
        result = validate_timing(program, compiled, TimingParams(**kw))
        assert result.ok, [d.render() for d in result.diagnostics]

    def test_result_merge_accumulates(self, mixed, mixed_compiled):
        one = validate_functional(
            mixed, mixed_compiled, tracing=True, caching=True
        )
        total = TransvalResult()
        total.merge(one)
        total.merge(one)
        assert total.blocks_checked == 2 * one.blocks_checked
        assert total.ok


class TestMutationsFire:
    """Each CG code must be provoked by the bug class it names."""

    def _validate(self, mixed, compiled):
        return validate_functional(
            mixed, compiled, tracing=True, caching=True
        )

    def test_cg001_register_index_swap(self, mixed, mixed_compiled):
        # `add r2, r1, r1` reads r3 instead: register dataflow mismatch.
        bad = mutated(mixed_compiled, "regs[1] + regs[1]", "regs[1] + regs[3]")
        assert "CG001" in codes(self._validate(mixed, bad))

    def test_cg002_dropped_store(self, mixed, mixed_compiled):
        bad = mutated(mixed_compiled, "\n        words[a3] = regs[2]", "")
        result = self._validate(mixed, bad)
        assert "CG002" in codes(result)
        assert result.blocks_failed > 0

    def test_cg003_branch_target_off_by_one(self, mixed, mixed_compiled):
        # The taken successor of `beq` moves from pc 0 to pc 1.  The
        # branch condition is loop-carried and may evaluate one way on
        # every concrete vector, so only arm-by-arm comparison of the
        # successor expression catches this.
        bad = mutated(
            mixed_compiled, "return 0 if t else 5", "return 1 if t else 5"
        )
        assert "CG003" in codes(self._validate(mixed, bad))

    def test_cg004_reordered_trace_effect(self, mixed, mixed_compiled):
        # Swap the first two records inside the block's bulk trace
        # flush: same records, wrong order in the trace stream.
        bad = mutated(
            mixed_compiled,
            "tb_e(((0, -1, 0, lw[0], -1, -1, False), "
            "(1, -1, 0, idx0, idx0, -1, False)",
            "tb_e(((1, -1, 0, idx0, idx0, -1, False), "
            "(0, -1, 0, lw[0], -1, -1, False)",
        )
        assert "CG004" in codes(self._validate(mixed, bad))

    def test_cg004_timing_latency_skew(self):
        program = decoded(FULL_SOURCE)
        compiled = compile_timing(program, **TIMING_KW)
        bad = mutated(compiled, "issue = ready + 1", "issue = ready + 2")
        result = validate_timing(program, bad, TimingParams(**TIMING_KW))
        assert "CG004" in codes(result)

    def test_cg004_timing_mispredict_penalty(self):
        program = decoded(FULL_SOURCE)
        compiled = compile_timing(program, **TIMING_KW)
        bad = mutated(compiled, "complete + 10", "complete + 11")
        result = validate_timing(program, bad, TimingParams(**TIMING_KW))
        assert codes(result) == ["CG004"]

    def test_cg005_unvalidatable_construct(self, mixed, mixed_compiled):
        # A list comprehension is outside the validator's expression
        # language: it must refuse explicitly, never pass silently.
        bad = mutated(
            mixed_compiled,
            "        t = regs[2] == regs[3]",
            "        t = [q for q in (1,)][0] == regs[3]",
        )
        result = self._validate(mixed, bad)
        assert "CG005" in codes(result)
        assert result.blocks_unvalidatable > 0

    def test_cg101_interpreter_fallback_is_advisory(self, mixed):
        result = validate_functional(
            mixed, None, tracing=True, caching=True
        )
        assert codes(result) == ["CG101"]
        assert result.fallbacks == 1
        # Advisory, not an error: REPRO_VERIFY must not reject programs
        # the compiler legitimately declines.
        assert result.ok
        assert all(
            d.severity is Severity.INFO for d in result.diagnostics
        )


class TestDiagnosticsHygiene:
    def test_all_cg_codes_documented(self):
        assert set(CG_CODES) == {
            "CG001", "CG002", "CG003", "CG004", "CG005", "CG101",
        }

    def test_diagnostics_sorted_and_stable(self, mixed, mixed_compiled):
        # Two corruption sites -> several diagnostics; order must be
        # (code, pc, ...) and identical across runs.
        bad = mutated(mixed_compiled, "regs[1] + regs[1]", "regs[1] + regs[3]")
        bad = mutated(bad, "\n        words[a3] = regs[2]", "")
        first = validate_functional(mixed, bad, tracing=True, caching=True)
        second = validate_functional(mixed, bad, tracing=True, caching=True)
        rendered = [d.render() for d in first.diagnostics]
        assert rendered == [d.render() for d in second.diagnostics]
        keys = [
            (d.code, d.pc if d.pc is not None else -1)
            for d in first.diagnostics
        ]
        assert keys == sorted(keys)

    def test_fallback_reason_oversized(self, mixed):
        real_length = len(mixed)
        try:
            mixed.kind.extend([mixed.kind[0]] * MAX_PROGRAM)
            assert "MAX_PROGRAM" in fallback_reason(mixed)
        finally:
            del mixed.kind[real_length:]
