"""Tests for the shared diagnostic-reporting module.

Covers rendering (text and JSON), location formatting, severity
helpers, deterministic sorting, the ``REPRO_VERIFY`` switch, and the
strict/assert paths the pipeline and CLIs lean on.
"""

import json

import pytest

from repro.analysis.report import (
    Diagnostic,
    Severity,
    VerificationError,
    assert_clean,
    errors,
    max_severity,
    render_json,
    render_text,
    sort_diagnostics,
    verification_enabled,
)


def diag(code="PT001", severity=Severity.ERROR, message="boom", **loc):
    return Diagnostic(code, severity, message, **loc)


class TestDiagnostic:
    def test_location_combinations(self):
        assert diag().location() == ""
        assert diag(pc=7).location() == "pc#0007"
        assert diag(line=3).location() == "line 3"
        assert diag(line=3, column=9).location() == "line 3:9"
        assert diag(position=2).location() == "body[2]"
        assert (
            diag(line=1, column=2, pc=3, position=4).location()
            == "line 1:2 pc#0003 body[4]"
        )

    def test_render_with_and_without_location(self):
        assert diag().render() == "error PT001: boom"
        assert diag(pc=12).render() == "error PT001 at pc#0012: boom"
        assert (
            diag(severity=Severity.WARNING).render()
            == "warning PT001: boom"
        )

    def test_to_dict_omits_unset_locations(self):
        payload = diag(pc=5).to_dict()
        assert payload == {
            "code": "PT001",
            "severity": "error",
            "message": "boom",
            "pc": 5,
        }
        assert "line" not in payload
        assert "position" not in payload

    def test_severity_ordering_and_str(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR
        assert str(Severity.INFO) == "info"
        assert str(Severity.ERROR) == "error"


class TestHelpers:
    def test_errors_filters_severity(self):
        mixed = [
            diag(severity=Severity.INFO),
            diag(severity=Severity.ERROR),
            diag(severity=Severity.WARNING),
        ]
        assert [d.severity for d in errors(mixed)] == [Severity.ERROR]

    def test_max_severity(self):
        assert max_severity([]) is None
        assert (
            max_severity([diag(severity=Severity.INFO)]) is Severity.INFO
        )
        assert (
            max_severity(
                [diag(severity=Severity.INFO), diag(severity=Severity.ERROR)]
            )
            is Severity.ERROR
        )

    def test_sort_diagnostics_orders_by_code_then_location(self):
        unsorted = [
            diag(code="PT002", pc=1),
            diag(code="PT001", pc=9),
            diag(code="PT001", pc=2, message="zz"),
            diag(code="PT001", pc=2, message="aa"),
            diag(code="PT001"),
        ]
        ordered = sort_diagnostics(unsorted)
        keys = [
            (d.code, d.pc if d.pc is not None else -1, d.message)
            for d in ordered
        ]
        assert keys == sorted(keys)
        assert ordered[0].pc is None  # unlocated first within a code

    def test_sort_is_stable_presentation_order(self):
        once = sort_diagnostics([diag(pc=3), diag(pc=1), diag(pc=2)])
        twice = sort_diagnostics(list(reversed(once)))
        assert [d.pc for d in once] == [d.pc for d in twice] == [1, 2, 3]


class TestRendering:
    def test_render_text_empty_is_clean(self):
        assert render_text([]) == "  clean (no diagnostics)"
        assert (
            render_text([], title="mcf:")
            == "mcf:\n  clean (no diagnostics)"
        )

    def test_render_text_lists_findings(self):
        out = render_text([diag(), diag(pc=4)], title="head")
        lines = out.split("\n")
        assert lines[0] == "head"
        assert lines[1] == "  error PT001: boom"
        assert lines[2] == "  error PT001 at pc#0004: boom"

    def test_render_json_roundtrip_and_extras(self):
        out = render_json([diag(pc=1)], workload="mcf", input="train")
        payload = json.loads(out)
        assert payload["workload"] == "mcf"
        assert payload["input"] == "train"
        assert payload["diagnostics"] == [diag(pc=1).to_dict()]

    def test_render_json_byte_identical(self):
        diagnostics = [diag(pc=2), diag(code="PL001", pc=1)]
        first = render_json(sort_diagnostics(diagnostics), input="train")
        second = render_json(sort_diagnostics(diagnostics), input="train")
        assert first == second
        # Keys are sorted, so semantically equal payloads serialize
        # identically regardless of construction order.
        assert first == render_json(
            sort_diagnostics(list(reversed(diagnostics))), input="train"
        )


class TestVerificationSwitch:
    @pytest.mark.parametrize("value", ["1", "true", "YES", " on "])
    def test_truthy_values_enable(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_VERIFY", value)
        assert verification_enabled()

    @pytest.mark.parametrize("value", ["", "0", "false", "off", "nope"])
    def test_other_values_disable(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_VERIFY", value)
        assert not verification_enabled()

    def test_unset_disables(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY", raising=False)
        assert not verification_enabled()


class TestAssertClean:
    def test_passes_on_warnings_and_notes(self):
        assert_clean(
            [diag(severity=Severity.INFO), diag(severity=Severity.WARNING)],
            "after optimize",
        )

    def test_raises_on_errors_with_context(self):
        with pytest.raises(VerificationError) as excinfo:
            assert_clean(
                [diag(severity=Severity.WARNING), diag(pc=3)], "after merge"
            )
        error = excinfo.value
        assert error.context == "after merge"
        # Only the fatal findings are carried on the exception.
        assert [d.severity for d in error.diagnostics] == [Severity.ERROR]
        assert "after merge" in str(error)
        assert "pc#0003" in str(error)

    def test_verification_error_is_assertion_error(self):
        # Debug-mode contract: production code that catches
        # AssertionError also catches verification failures.
        assert issubclass(VerificationError, AssertionError)
