"""Tests for the p-thread invariant verifier (PT001–PT006, SL001)."""

import pytest

from repro.analysis.report import (
    Severity,
    VerificationError,
    assert_clean,
    errors,
    verification_enabled,
)
from repro.analysis.verifier import (
    summarize,
    verify_body,
    verify_pthread,
    verify_selection,
    verify_slice,
)
from repro.isa import assemble
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.pthreads.body import VIRTUAL_REG_BASE, PThreadBody
from repro.pthreads.pthread import PThreadPrediction, StaticPThread
from repro.slicing.slicer import DynamicSlice


def addi(rd, rs1, imm, pc=-1):
    return Instruction(Opcode.ADDI, rd=rd, rs1=rs1, imm=imm, pc=pc)


def lw(rd, rs1, imm=0, pc=-1):
    return Instruction(Opcode.LW, rd=rd, rs1=rs1, imm=imm, pc=pc)


def sw(rs2, rs1, imm=0, pc=-1):
    return Instruction(Opcode.SW, rs2=rs2, rs1=rs1, imm=imm, pc=pc)


def codes(diagnostics):
    return sorted({d.code for d in diagnostics})


#: A well-formed address-computation body: pointer bump, then load.
CLEAN_BODY = [addi(5, 5, 8, pc=3), lw(6, 5, 0, pc=4)]


class TestVerifyBody:
    def test_clean_body_has_no_diagnostics(self):
        assert verify_body(CLEAN_BODY) == []

    def test_empty_body_is_pt003(self):
        diags = verify_body([])
        assert codes(diags) == ["PT003"]
        assert diags[0].severity is Severity.ERROR

    def test_pt001_mid_body_branch(self):
        body = [
            addi(5, 5, 8),
            Instruction(Opcode.BNE, rs1=5, rs2=0, target=0),
            lw(6, 5, 0),
        ]
        diags = verify_body(body)
        assert any(
            d.code == "PT001" and d.severity is Severity.ERROR for d in diags
        )

    def test_pt001_jump_and_halt(self):
        for bad in (
            Instruction(Opcode.J, target=0),
            Instruction(Opcode.HALT),
        ):
            diags = verify_body([bad, lw(6, 5, 0)])
            assert "PT001" in codes(diags)

    def test_pt001_terminal_branch_is_legal(self):
        body = [
            addi(5, 5, 8),
            Instruction(Opcode.BNE, rs1=5, rs2=0, target=0),
        ]
        assert verify_body(body) == []

    def test_pt001_terminal_branch_rejected_when_disallowed(self):
        body = [
            addi(5, 5, 8),
            Instruction(Opcode.BNE, rs1=5, rs2=0, target=0),
        ]
        diags = verify_body(body, allow_terminal_branch=False)
        assert "PT001" in codes(diags)

    def test_pt002_virtual_register_read_before_definition(self):
        virtual = VIRTUAL_REG_BASE + 1
        diags = verify_body([lw(6, virtual, 0)])
        assert codes(diags) == ["PT002"]
        assert diags[0].severity is Severity.ERROR

    def test_pt002_virtual_register_defined_upstream_is_fine(self):
        virtual = VIRTUAL_REG_BASE
        body = [addi(virtual, 5, 8), lw(6, virtual, 0)]
        assert verify_body(body) == []

    def test_pt002_missing_source_operand(self):
        broken = Instruction(Opcode.ADD, rd=6, rs1=5, rs2=None)
        diags = verify_body([broken, lw(7, 6, 0)])
        assert "PT002" in codes(diags)

    def test_pt003_target_pc_missing_from_body(self):
        diags = verify_body(CLEAN_BODY, target_pcs=[99])
        pt3 = [d for d in diags if d.code == "PT003"]
        assert pt3 and pt3[0].severity is Severity.ERROR

    def test_pt003_dead_instruction_is_flagged(self):
        body = [
            addi(7, 7, 4, pc=1),  # feeds nothing below
            addi(5, 5, 8, pc=3),
            lw(6, 5, 0, pc=4),
        ]
        diags = verify_body(body)
        dead = [d for d in diags if d.code == "PT003"]
        assert len(dead) == 1
        assert dead[0].position == 0
        assert dead[0].severity is Severity.WARNING

    def test_pt003_final_instruction_not_a_target(self):
        body = [addi(5, 5, 8, pc=3), lw(6, 5, 0, pc=4), addi(7, 6, 1, pc=5)]
        diags = verify_body(body, target_pcs=[4])
        assert any(
            d.code == "PT003" and d.position == 2 for d in diags
        )

    def test_pt003_repeated_target_pc_marks_every_instance(self):
        # Pointer chase: the same static load unrolled twice; both
        # instances are target instances, so neither is "dead".
        body = [lw(5, 5, 0, pc=7), lw(5, 5, 0, pc=7)]
        assert verify_body(body, target_pcs=[7]) == []

    def test_pt004_unconsumed_store(self):
        body = [addi(5, 5, 8), sw(6, 5, 0), lw(7, 5, 4)]
        diags = verify_body(body, targets=[1, 2])
        assert any(
            d.code == "PT004" and d.severity is Severity.WARNING
            for d in diags
        )

    def test_pt004_forwarded_store_is_clean(self):
        body = [addi(5, 5, 8), sw(6, 5, 0), lw(7, 5, 0)]
        assert verify_body(body) == []

    def test_pt005_body_length_limit(self):
        diags = verify_body(CLEAN_BODY, max_length=1)
        assert any(
            d.code == "PT005" and d.severity is Severity.ERROR
            for d in diags
        )
        assert verify_body(CLEAN_BODY, max_length=2) == []


def make_pthread(program, trigger_pc, root_pc, body=None):
    if body is None:
        root = program[root_pc]
        body = PThreadBody(
            [Instruction(root.op, rd=root.rd, rs1=root.rs1,
                         rs2=root.rs2, imm=root.imm, target=root.target,
                         pc=root_pc)]
        )
    prediction = PThreadPrediction(
        dc_trig=1,
        size=body.size,
        misses_covered=0,
        misses_fully_covered=0,
        lt_agg=0.0,
        oh_agg=0.0,
    )
    return StaticPThread(
        trigger_pc=trigger_pc,
        body=body,
        target_load_pcs=(root_pc,),
        prediction=prediction,
    )


class TestVerifyPThread:
    def test_clean_loop_pthread(self):
        program = assemble(
            """
        loop:
            lw   t0, 0(a0)
            addi a0, a0, 4
            bne  t0, zero, loop
            halt
        """
        )
        pthread = make_pthread(program, trigger_pc=1, root_pc=0)
        assert verify_pthread(pthread, program=program) == []

    def test_pt006_trigger_pc_out_of_range(self):
        program = assemble("lw t0, 0(a0)\nhalt")
        pthread = make_pthread(program, trigger_pc=40, root_pc=0)
        diags = verify_pthread(pthread, program=program)
        assert any(
            d.code == "PT006" and d.severity is Severity.ERROR
            for d in diags
        )

    def test_pt006_root_not_load_or_branch(self):
        program = assemble("addi t0, t0, 1\nlw t1, 0(t0)\nhalt")
        pthread = make_pthread(
            program, trigger_pc=1, root_pc=0,
            body=PThreadBody([addi(8, 8, 1, pc=0)]),
        )
        diags = verify_pthread(pthread, program=program)
        assert any(
            d.code == "PT006" and d.severity is Severity.ERROR
            for d in diags
        )

    def test_pt006_root_unreachable_from_trigger(self):
        program = assemble(
            """
            lw   t0, 0(a0)
            addi a0, a0, 4
            halt
        """
        )
        # Trigger after the root, no loop back: no dynamic root
        # instance can ever follow a trigger instance.
        pthread = make_pthread(program, trigger_pc=1, root_pc=0)
        diags = verify_pthread(pthread, program=program)
        assert any(
            d.code == "PT006" and d.severity is Severity.ERROR
            for d in diags
        )

    def test_pt006_partial_coverage_is_advisory_only(self):
        program = assemble(
            """
        start:
            addi a0, zero, 0
        loop:
            beq  a1, zero, skip
            addi a0, a0, 4
        skip:
            lw   t0, 0(a0)
            bne  t0, zero, loop
            halt
        """
        )
        # The trigger (2) sits on a conditional path: some root
        # instances (3) execute without a preceding trigger.
        pthread = make_pthread(program, trigger_pc=2, root_pc=3)
        diags = verify_pthread(pthread, program=program)
        pt6 = [d for d in diags if d.code == "PT006"]
        assert pt6
        assert all(d.severity is Severity.INFO for d in pt6)
        assert errors(diags) == []

    def test_pt005_via_constraints(self):
        from repro.model.params import SelectionConstraints

        program = assemble(
            """
        loop:
            lw   t0, 0(a0)
            addi a0, a0, 4
            bne  t0, zero, loop
            halt
        """
        )
        body = PThreadBody(
            [addi(4, 4, 4, pc=1), addi(4, 4, 4, pc=1), lw(8, 4, 0, pc=0)]
        )
        pthread = make_pthread(program, trigger_pc=1, root_pc=0, body=body)
        constraints = SelectionConstraints(max_pthread_length=2)
        diags = verify_pthread(
            pthread, program=program, constraints=constraints
        )
        assert "PT005" in codes(diags)


class TestVerifySelection:
    def test_aggregates_over_pthreads(self):
        program = assemble(
            """
        loop:
            lw   t0, 0(a0)
            addi a0, a0, 4
            bne  t0, zero, loop
            halt
        """
        )
        good = make_pthread(program, trigger_pc=1, root_pc=0)
        bad = make_pthread(program, trigger_pc=77, root_pc=0)
        diags = verify_selection(program, [good, bad])
        assert summarize(diags).get("PT006") == 1


class TestVerifySlice:
    def test_valid_slice(self):
        s = DynamicSlice(
            root=10, indices=(10, 7, 3), dep_positions=((1,), (2,), ())
        )
        assert verify_slice(s) == []

    def test_root_must_lead(self):
        s = DynamicSlice(root=10, indices=(7, 10), dep_positions=((), ()))
        assert codes(verify_slice(s)) == ["SL001"]

    def test_indices_must_descend(self):
        s = DynamicSlice(
            root=10, indices=(10, 3, 7), dep_positions=((), (), ())
        )
        assert "SL001" in codes(verify_slice(s))

    def test_producers_must_be_older(self):
        s = DynamicSlice(
            root=10, indices=(10, 7), dep_positions=((), (0,))
        )
        assert "SL001" in codes(verify_slice(s))


class TestReporting:
    def test_assert_clean_raises_only_on_errors(self):
        warning = verify_body(
            [addi(7, 7, 4), addi(5, 5, 8), lw(6, 5, 0)]
        )
        assert warning  # dead instruction -> PT003 warning
        assert_clean(warning, "warnings pass")  # no raise
        with pytest.raises(VerificationError) as exc_info:
            assert_clean(verify_body([]), "empty body")
        assert "PT003" in str(exc_info.value)

    def test_verification_enabled_reads_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY", raising=False)
        assert not verification_enabled()
        monkeypatch.setenv("REPRO_VERIFY", "1")
        assert verification_enabled()
        monkeypatch.setenv("REPRO_VERIFY", "0")
        assert not verification_enabled()

    def test_diagnostic_render_and_json(self):
        diags = verify_body([], max_length=None)
        rendered = diags[0].render()
        assert "PT003" in rendered and "error" in rendered
        payload = diags[0].to_dict()
        assert payload["code"] == "PT003"
        assert payload["severity"] == "error"
