"""Tests for workload-level lints (PL001–PL005)."""

from repro.analysis.program_lint import (
    lint_program,
    lint_source,
    lint_workload,
)
from repro.analysis.report import Severity, errors
from repro.isa import DataImage, assemble
from repro.workloads.suite import SUITE


def codes(diagnostics):
    return sorted({d.code for d in diagnostics})


CLEAN = """
start:
    addi a0, zero, 4096
    lw   t0, 0(a0)
    add  s0, s0, t0
    halt
"""


def clean_data() -> DataImage:
    data = DataImage()
    data.store_words(4096, [7])
    return data


class TestLintSource:
    def test_clean_program(self):
        assert lint_source(CLEAN, data=clean_data()) == []

    def test_pl001_syntax_error_with_position(self):
        diags = lint_source("    addi t0, t0, xyz\n")
        assert codes(diags) == ["PL001"]
        d = diags[0]
        assert d.severity is Severity.ERROR
        assert d.line == 1
        assert d.column == 18

    def test_pl001_undefined_label(self):
        diags = lint_source("    j nowhere\n    halt\n")
        assert codes(diags) == ["PL001"] or errors(diags)


class TestLintProgram:
    def test_pl002_unreachable_code(self):
        program = assemble(
            """
            j skip
            addi t0, zero, 1
            addi t1, zero, 2
        skip:
            halt
        """
        )
        diags = lint_program(program)
        pl2 = [d for d in diags if d.code == "PL002"]
        assert len(pl2) == 1  # one run covering both dead instructions
        assert pl2[0].severity is Severity.WARNING
        assert "2 instruction(s)" in pl2[0].message

    def test_pl003_register_never_written(self):
        program = assemble(
            """
            add  t0, t0, s7
            halt
        """
        )
        diags = lint_program(program)
        pl3 = [d for d in diags if d.code == "PL003"]
        assert [d.pc for d in pl3] == [0]
        assert "s7" not in pl3[0].message  # message uses raw r-names
        assert "r23" in pl3[0].message

    def test_pl003_not_fired_for_written_registers(self):
        # Reading a register's initial zero before a later write is
        # idiomatic cheap initialization — not a lint.
        program = assemble(
            """
            add  s0, s0, t0
            addi t0, zero, 1
            halt
        """
        )
        assert [d for d in lint_program(program) if d.code == "PL003"] == []

    def test_pl004_load_from_uninitialized_word(self):
        program = assemble(
            """
            addi a0, zero, 4096
            lw   t0, 0(a0)
            halt
        """
        )  # no data image at all
        diags = lint_program(program)
        pl4 = [d for d in diags if d.code == "PL004"]
        assert len(pl4) == 1
        assert pl4[0].severity is Severity.WARNING

    def test_pl004_satisfied_by_data_image(self):
        program = assemble(
            """
            addi a0, zero, 4096
            lw   t0, 0(a0)
            halt
        """,
            data=clean_data(),
        )
        assert [d for d in lint_program(program) if d.code == "PL004"] == []

    def test_pl004_satisfied_by_region(self):
        data = DataImage()
        data.add_region("arena", 8192, 4)
        program = assemble(
            """
            addi a0, zero, 8192
            lw   t0, 4(a0)
            halt
        """,
            data=data,
        )
        assert [d for d in lint_program(program) if d.code == "PL004"] == []

    def test_pl004_satisfied_by_constant_store(self):
        program = assemble(
            """
            addi a0, zero, 4096
            sw   zero, 0(a0)
            lw   t0, 0(a0)
            halt
        """
        )
        assert [d for d in lint_program(program) if d.code == "PL004"] == []

    def test_pl004_skipped_when_any_store_address_unknown(self):
        # A store through a loaded pointer could write anywhere, so
        # the check must go conservative and stay quiet.
        program = assemble(
            """
            addi a0, zero, 4096
            lw   t0, 0(a0)
            sw   zero, 0(t0)
            lw   t1, 0(a0)
            halt
        """
        )
        assert [d for d in lint_program(program) if d.code == "PL004"] == []

    def test_pl005_fall_off_end(self):
        program = assemble(
            """
            addi t0, zero, 1
            addi t1, zero, 2
        """
        )
        diags = lint_program(program)
        pl5 = [d for d in diags if d.code == "PL005"]
        assert len(pl5) == 1
        assert pl5[0].severity is Severity.ERROR

    def test_pl005_not_fired_for_unreachable_tail(self):
        program = assemble(
            """
            halt
            addi t0, zero, 1
        """
        )
        diags = lint_program(program)
        assert [d for d in diags if d.code == "PL005"] == []
        assert [d.code for d in diags] == ["PL002"]


class TestBundledWorkloads:
    def test_every_bundled_workload_is_clean(self):
        for name in SUITE + ["pharmacy"]:
            diags = lint_workload(name, "train")
            assert diags == [], f"{name}: {[d.render() for d in diags]}"
