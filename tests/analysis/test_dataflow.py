"""Tests for the generic dataflow framework (CFG + worklist solver)."""

import pytest

from repro.analysis.dataflow import (
    ENTRY_DEF,
    ControlFlowGraph,
    constant_registers,
    def_use_chains,
    live_variables,
    reaching_definitions,
)
from repro.isa import assemble
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode


def program(source: str):
    return assemble(source, name="test")


def cfg_of(source: str) -> ControlFlowGraph:
    return ControlFlowGraph.from_program(program(source))


LOOP = """
start:
    addi a0, zero, 0
    addi a1, zero, 10
loop:
    bge  a0, a1, done
    addi a0, a0, 1
    j    loop
done:
    halt
"""


class TestControlFlowGraph:
    def test_straight_line_is_a_chain(self):
        insts = [
            Instruction(Opcode.ADDI, rd=5, rs1=5, imm=4),
            Instruction(Opcode.LW, rd=6, rs1=5, imm=0),
        ]
        cfg = ControlFlowGraph.from_instructions(insts)
        assert cfg.succs == [(1,), ()]
        assert cfg.preds == [(), (0,)]
        # The chain's tail falls off the end (no halt) — callers that
        # care (the program linter) check reachability themselves.
        assert cfg.falls_off_end == {1}

    def test_branch_has_two_successors(self):
        cfg = cfg_of(LOOP)
        # bge at index 2: taken -> 5 (done/halt), fallthrough -> 3.
        assert set(cfg.succs[2]) == {5, 3}

    def test_jump_has_one_successor(self):
        cfg = cfg_of(LOOP)
        assert cfg.succs[4] == (2,)

    def test_halt_has_no_successors(self):
        cfg = cfg_of(LOOP)
        assert cfg.succs[5] == ()
        assert not cfg.falls_off_end

    def test_reachable_excludes_dead_code(self):
        cfg = cfg_of(
            """
            j skip
            addi t0, zero, 1
        skip:
            halt
        """
        )
        assert cfg.reachable() == {0, 2}

    def test_reaches_respects_blocked_nodes(self):
        cfg = cfg_of(LOOP)
        assert cfg.reaches(0, 5)
        assert not cfg.reaches(0, 5, blocked={2})
        # The source itself is never blocked.
        assert cfg.reaches(2, 5, blocked={2})

    def test_zero_length_path_counts(self):
        cfg = cfg_of(LOOP)
        assert cfg.reaches(3, 3)

    def test_dominators_of_loop(self):
        cfg = cfg_of(LOOP)
        # The loop head (2) dominates the body (3) and the exit (5).
        assert cfg.dominates(2, 3)
        assert cfg.dominates(2, 5)
        assert not cfg.dominates(3, 5)

    def test_jr_conservatively_targets_all_labels(self):
        cfg = cfg_of(
            """
        a:
            jr ra
        b:
            halt
        """
        )
        assert set(cfg.succs[0]) == {0, 1}


class TestReachingDefinitions:
    def test_entry_definition_reaches_first_use(self):
        cfg = cfg_of(
            """
            add t0, s0, s1
            halt
        """
        )
        reaching = reaching_definitions(cfg)
        assert reaching[0][17] == frozenset({ENTRY_DEF})  # s1 = r17

    def test_redefinition_kills(self):
        cfg = cfg_of(
            """
            addi t0, zero, 1
            addi t0, zero, 2
            add  t1, t0, t0
            halt
        """
        )
        chains = def_use_chains(cfg)
        assert chains[2][8] == frozenset({1})  # t0 = r8, from index 1

    def test_loop_merges_definitions(self):
        cfg = cfg_of(LOOP)
        chains = def_use_chains(cfg)
        # a0 at the loop-head compare may come from the init (0) or
        # the increment (3).
        assert chains[2][4] == frozenset({0, 3})


class TestLiveVariables:
    def test_dead_after_last_use(self):
        cfg = cfg_of(
            """
            addi t0, zero, 1
            add  t1, t0, t0
            halt
        """
        )
        live = live_variables(cfg)
        assert 8 in live[1]  # t0 live into its use
        assert 8 not in live[2]  # dead after it

    def test_loop_carried_liveness(self):
        cfg = cfg_of(LOOP)
        live = live_variables(cfg)
        # a0 is live around the whole loop, including into the back
        # edge's jump.
        assert 4 in live[4]


class TestConstantPropagation:
    def test_entry_registers_are_zero(self):
        cfg = cfg_of(
            """
            addi t0, s0, 5
            halt
        """
        )
        consts = constant_registers(cfg)
        assert consts[1][8] == 5  # 0 + 5

    def test_load_result_is_not_constant(self):
        cfg = cfg_of(
            """
            lw   t0, 0(zero)
            addi t1, t0, 1
            halt
        """
        )
        consts = constant_registers(cfg)
        assert 8 not in consts[1]

    def test_loop_varying_value_is_not_constant(self):
        cfg = cfg_of(LOOP)
        consts = constant_registers(cfg)
        assert 4 not in consts[2]  # a0 varies around the loop
        assert consts[2][5] == 10  # a1 is loop-invariant

    def test_unreachable_code_has_no_state(self):
        cfg = cfg_of(
            """
            j skip
            addi t0, zero, 1
        skip:
            halt
        """
        )
        consts = constant_registers(cfg)
        assert consts[1] is None


class TestDefUseChains:
    def test_zero_register_is_never_listed(self):
        cfg = cfg_of(
            """
            addi t0, zero, 1
            halt
        """
        )
        chains = def_use_chains(cfg)
        assert chains[0] == {}

    @pytest.mark.parametrize("name", ["pharmacy", "mcf"])
    def test_real_workloads_solve(self, name):
        from repro.workloads import build

        workload = build(name, "test" if name == "mcf" else "train")
        cfg = ControlFlowGraph.from_program(workload.program)
        chains = def_use_chains(cfg)
        assert len(chains) == len(workload.program)
