"""Tests for the persistent artifact cache and perf counters."""

import json

import pytest

from repro.harness.artifacts import (
    ArtifactCache,
    PerfCounters,
    program_digest,
    stable_key,
)
from repro.harness.experiment import ExperimentConfig, ExperimentRunner
from repro.memory.hierarchy import HierarchyConfig
from repro.timing.config import MachineConfig
from repro.timing.stats import SimStats
from repro.workloads.suite import build

SMALL_PHARMACY = dict(n_xact=700, n_drugs=16384, hot_drugs=1024)


def small_runner(cache_dir) -> ExperimentRunner:
    """A cache-backed runner pre-seeded with a small pharmacy build."""
    runner = ExperimentRunner(
        artifacts=ArtifactCache(cache_dir) if cache_dir else None
    )
    for input_name in ("train", "test"):
        small = build("pharmacy", input_name, **SMALL_PHARMACY)
        runner._workloads[
            ("pharmacy", input_name, small.hierarchy)
        ] = small
    return runner


class TestStableKey:
    def test_deterministic(self):
        a = stable_key("trace", workload="mcf", machine=MachineConfig())
        b = stable_key("trace", workload="mcf", machine=MachineConfig())
        assert a == b and len(a) == 64

    def test_sensitive_to_parts(self):
        base = stable_key("trace", workload="mcf", machine=MachineConfig())
        assert base != stable_key(
            "trace", workload="gcc", machine=MachineConfig()
        )
        assert base != stable_key(
            "trace", workload="mcf", machine=MachineConfig(bw_seq=4)
        )
        assert base != stable_key(
            "baseline", workload="mcf", machine=MachineConfig()
        )

    def test_nested_dataclasses_canonicalized(self):
        a = stable_key("baseline", hierarchy=HierarchyConfig())
        b = stable_key("baseline", hierarchy=HierarchyConfig())
        c = stable_key("baseline", hierarchy=HierarchyConfig(mem_latency=140))
        assert a == b
        assert a != c

    def test_rejects_unencodable(self):
        with pytest.raises(TypeError):
            stable_key("trace", payload=object())


class TestProgramDigest:
    def test_same_build_same_digest(self):
        a = build("pharmacy", "train", **SMALL_PHARMACY)
        b = build("pharmacy", "train", **SMALL_PHARMACY)
        assert program_digest(a.program) == program_digest(b.program)

    def test_different_input_different_digest(self):
        a = build("pharmacy", "train", **SMALL_PHARMACY)
        b = build("pharmacy", "train", n_xact=300, n_drugs=16384, hot_drugs=1024)
        assert program_digest(a.program) != program_digest(b.program)

    def test_memoized_on_program(self):
        workload = build("pharmacy", "train", **SMALL_PHARMACY)
        first = program_digest(workload.program)
        assert workload.program._repro_digest == first
        assert program_digest(workload.program) == first


class TestFromEnv:
    def test_default_root(self):
        cache = ArtifactCache.from_env({})
        assert cache is not None
        assert cache.root.name == "repro"

    def test_custom_root(self, tmp_path):
        cache = ArtifactCache.from_env({"REPRO_CACHE_DIR": str(tmp_path)})
        assert cache.root == tmp_path

    @pytest.mark.parametrize("value", ["", "0", "off", "OFF", "none", "disabled"])
    def test_disabled(self, value):
        assert ArtifactCache.from_env({"REPRO_CACHE_DIR": value}) is None


class TestStorage:
    def test_json_round_trip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        stats = SimStats(mode="baseline", cycles=100, instructions=80)
        stats.miss_exposure = {12: [3, 210.0]}
        key = cache.key("baseline", anything=1)
        assert cache.load("baseline", key) is None
        cache.store("baseline", key, stats.to_dict())
        loaded = SimStats.from_dict(cache.load("baseline", key))
        assert loaded == stats

    def test_pickle_round_trip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = cache.key("selection", anything=2)
        cache.store("selection", key, {"pthreads": [1, 2, 3]})
        assert cache.load("selection", key) == {"pthreads": [1, 2, 3]}

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = cache.key("baseline", anything=3)
        cache.store("baseline", key, {"cycles": 1})
        cache.path("baseline", key).write_text("{ not json")
        assert cache.load("baseline", key) is None

    def test_unknown_kind_rejected(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        with pytest.raises(KeyError):
            cache.key("mystery", anything=4)

    def test_entry_count_and_clear(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        for i in range(3):
            cache.store("baseline", cache.key("baseline", i=i), {"i": i})
        cache.store("selection", cache.key("selection", i=0), [0])
        counts = cache.entry_count()
        assert counts["baseline"] == 3
        assert counts["selection"] == 1
        assert cache.size_bytes() > 0
        assert cache.clear() == 4
        assert sum(cache.entry_count().values()) == 0


class TestPerfCounters:
    def test_accumulate_and_merge(self):
        perf = PerfCounters()
        perf.add_time("trace", 1.5)
        perf.miss("trace")
        perf.hit("baseline")
        other = PerfCounters()
        other.add_time("trace", 0.5)
        other.disk_hit("trace")
        perf.merge(other)
        assert perf.stage_seconds["trace"] == 2.0
        assert perf.misses == {"trace": 1}
        assert perf.hits == {"baseline": 1}
        assert perf.disk_hits == {"trace": 1}
        assert perf.computations() == 1

    def test_since_delta(self):
        perf = PerfCounters()
        perf.miss("trace")
        before = perf.snapshot()
        perf.miss("trace")
        perf.hit("trace")
        delta = perf.since(before)
        assert delta.misses == {"trace": 1}
        assert delta.hits == {"trace": 1}

    def test_render_mentions_stages(self):
        perf = PerfCounters()
        perf.add_time("trace", 0.25)
        perf.miss("trace")
        report = perf.render()
        assert "trace" in report
        assert "disk hits" in report


class TestRunnerIntegration:
    def test_warm_cache_rerun_computes_nothing(self, tmp_path):
        config = ExperimentConfig(workload="pharmacy", validate=True)

        cold = small_runner(tmp_path)
        first = cold.run(config)
        assert cold.perf.misses["trace"] == 1
        assert cold.perf.misses["baseline"] == 1
        assert cold.perf.misses["selection"] == 1
        assert cold.perf.misses["perfect_l2"] == 1

        warm = small_runner(tmp_path)
        second = warm.run(config)
        for kind in ("trace", "baseline", "selection", "perfect_l2"):
            assert warm.perf.misses.get(kind, 0) == 0, kind
            assert warm.perf.disk_hits[kind] == 1, kind
        assert second.summary_row() == first.summary_row()
        assert (
            second.validation["perfect_l2"].ipc
            == first.validation["perfect_l2"].ipc
        )

    def test_cache_artifacts_are_content_addressed(self, tmp_path):
        runner = small_runner(tmp_path)
        runner.run(ExperimentConfig(workload="pharmacy"))
        cache = runner.artifacts
        trace_files = list((cache.root / "trace").glob("*/*.json"))
        assert len(trace_files) == 1
        payload = json.loads(trace_files[0].read_text())
        assert payload["instructions"] > 0

    def test_disabled_cache_keeps_everything_in_memory(self, tmp_path):
        runner = small_runner(None)
        runner.run(ExperimentConfig(workload="pharmacy"))
        assert runner.perf.disk_hits == {}
        assert runner.perf.misses["trace"] == 1
