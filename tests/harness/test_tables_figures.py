"""Tests for table/figure generation on a reduced workload set."""

import pytest

from repro.harness.experiment import ExperimentRunner
from repro.harness.figures import (
    FIGURE_METRICS,
    figure4_scope_length,
    figure5_opt_merge,
)
from repro.harness.tables import render_table1, render_table2, table1, table2
from repro.workloads.suite import build


@pytest.fixture(scope="module")
def runner():
    runner = ExperimentRunner()
    small = build("pharmacy", "train", n_xact=700, n_drugs=16384, hot_drugs=1024)
    runner._workloads[("pharmacy", "train", None)] = small
    runner._workloads[("pharmacy", "train", small.hierarchy)] = small
    return runner


class TestTable1:
    def test_rows_and_rendering(self, runner):
        rows = table1(runner, workloads=["pharmacy"])
        assert len(rows) == 1
        row = rows[0]
        assert row.instructions > 0
        assert row.perfect_l2_ipc >= row.ipc
        text = render_table1(rows)
        assert "pharmacy" in text and "perfect-L2" in text


class TestTable2:
    def test_rows_and_rendering(self, runner):
        rows = table2(runner, workloads=["pharmacy"])
        row = rows[0]
        assert row.launches > 0
        assert 0 <= row.covered_pct <= 100
        assert row.full_covered_pct <= row.covered_pct
        assert row.pred_launches >= row.launches  # drops only reduce
        text = render_table2(rows)
        assert "measured" in text and "predicted" in text


class TestFigures:
    def test_figure4_shape(self, runner):
        figure = figure4_scope_length(
            runner, workloads=["pharmacy"], combos=((64, 4), (1024, 32))
        )
        assert figure.bar_labels == ["64/4", "1024/32"]
        for metric in FIGURE_METRICS:
            assert len(figure.series("pharmacy", metric)) == 2
        # Relaxing constraints must not hurt full coverage.
        series = figure.series("pharmacy", "full_coverage_pct")
        assert series[1] >= series[0]
        assert "Figure 4" in figure.render()

    def test_figure5_variants(self, runner):
        figure = figure5_opt_merge(runner, workloads=["pharmacy"])
        assert figure.bar_labels == ["none", "opt", "merge", "opt+merge"]
        launches = figure.series("pharmacy", "launches")
        # Merging reduces launches relative to no merging.
        assert launches[3] <= launches[1]
