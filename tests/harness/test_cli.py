"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import _parse_workloads, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_command_parses(self):
        args = build_parser().parse_args(["run", "pharmacy", "--validate"])
        assert args.workload == "pharmacy"
        assert args.validate

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "spec2077"])

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "8b"])
        assert args.which == "8b"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "9"])

    def test_workloads_filter(self):
        assert _parse_workloads("mcf, vpr.r") == ["mcf", "vpr.r"]
        assert len(_parse_workloads(None)) == 10
        with pytest.raises(SystemExit):
            _parse_workloads("nope")


@pytest.fixture
def hermetic_cli(monkeypatch):
    """Keep CLI execution tests fast and self-contained.

    Shrinks the pharmacy build, pins the sweep to the in-process serial
    path, and disables the persistent cache so tests never touch
    ``~/.cache/repro``.
    """
    from repro.workloads import pharmacy

    monkeypatch.setitem(
        pharmacy.INPUTS,
        "train",
        dict(
            n_xact=500, n_drugs=8192, hot_drugs=512,
            hot_fraction=0.45, seed=11,
        ),
    )
    monkeypatch.setenv("REPRO_JOBS", "1")
    monkeypatch.setenv("REPRO_CACHE_DIR", "off")


class TestExecution:
    def test_run_pharmacy(self, capsys, hermetic_cli):
        assert main(["run", "pharmacy"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "trigger" in out

    def test_table1_single_workload(self, capsys, hermetic_cli):
        assert main(["table1", "--workloads", "pharmacy"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "pharmacy" in out

    def test_run_with_perf_report(self, capsys, hermetic_cli):
        assert main(["run", "pharmacy", "--perf"]) == 0
        out = capsys.readouterr().out
        assert "Harness performance" in out
        assert "disk hits" in out


class TestLintCommand:
    def test_lint_clean_workload_text(self, capsys, hermetic_cli):
        assert main(["lint", "pharmacy"]) == 0
        out = capsys.readouterr().out
        assert "pharmacy (train):" in out
        assert "clean (no diagnostics)" in out

    def test_lint_json_format(self, capsys, hermetic_cli):
        assert main(["lint", "pharmacy", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["input"] == "train"
        assert payload["workloads"] == {"pharmacy": []}

    def test_lint_all_strict_is_clean(self, capsys, hermetic_cli):
        # Every bundled workload must lint clean, so --strict exits 0.
        assert main(["lint", "all", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "mcf (train):" in out
        assert "pharmacy (train):" in out

    def test_lint_strict_propagates_errors(self, capsys, hermetic_cli, monkeypatch):
        from repro.analysis.report import Diagnostic, Severity
        from repro import cli

        def broken(name, input_name):
            return [Diagnostic("PL005", Severity.ERROR, "falls off the end")]

        monkeypatch.setattr(cli, "_pthread_diagnostics", broken)
        # Without --pthreads the injected error never runs: exit 0.
        assert main(["lint", "pharmacy", "--strict"]) == 0
        capsys.readouterr()
        # With it, --strict must surface the error as exit code 1.
        assert main(["lint", "pharmacy", "--strict", "--pthreads"]) == 1
        assert "PL005" in capsys.readouterr().out

    def test_lint_pthreads_verifies_selection(self, capsys, hermetic_cli):
        assert main(["lint", "pharmacy", "--strict", "--pthreads"]) == 0
        capsys.readouterr()

    def test_run_accepts_verify_flag(self, capsys, hermetic_cli, monkeypatch):
        import os

        # setenv (not delenv) so monkeypatch records a restore point:
        # --verify mutates os.environ and must not leak past this test.
        monkeypatch.setenv("REPRO_VERIFY", "0")
        assert main(["run", "pharmacy", "--verify"]) == 0
        # The flag arms the hook environment for worker processes too.
        assert os.environ.get("REPRO_VERIFY") == "1"
        assert "speedup" in capsys.readouterr().out


class TestVerifyCodegenCommand:
    def test_parses_defaults(self):
        args = build_parser().parse_args(["verify-codegen", "all"])
        assert args.workload == "all"
        assert args.variant == "all"
        assert args.format == "text"
        assert not args.strict

    def test_rejects_unknown_variant(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["verify-codegen", "mcf", "--variant", "jit"]
            )

    def test_pharmacy_validates_clean(self, capsys, hermetic_cli):
        assert main(["verify-codegen", "pharmacy", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "functional tracing=1 caching=1" in out
        assert "timing pre-exec launching=1" in out
        assert "0 target(s) with errors" in out

    def test_json_output_is_byte_identical(self, capsys, hermetic_cli):
        # Deterministic diagnostics: two identical invocations must
        # produce byte-identical JSON, so CI diffs are stable.
        assert main(
            ["verify-codegen", "pharmacy", "--variant", "baseline",
             "--format", "json"]
        ) == 0
        first = capsys.readouterr().out
        assert main(
            ["verify-codegen", "pharmacy", "--variant", "baseline",
             "--format", "json"]
        ) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert payload["ok"] is True
        targets = {t["target"] for t in payload["targets"]}
        # 4 functional shapes + 2 baseline timing shapes.
        assert len(payload["targets"]) == 6
        assert any(t.startswith("timing baseline") for t in targets)

    def test_strict_propagates_block_failures(
        self, capsys, hermetic_cli, monkeypatch
    ):
        from repro.analysis.report import Diagnostic, Severity
        from repro.analysis.transval import TransvalResult
        from repro.engine.functional import FunctionalSimulator

        def broken(self, tracing, caching):
            return TransvalResult(
                diagnostics=[
                    Diagnostic("CG001", Severity.ERROR, "injected")
                ],
                blocks_checked=1,
                blocks_failed=1,
            )

        monkeypatch.setattr(
            FunctionalSimulator, "validate_codegen", broken
        )
        assert main(
            ["verify-codegen", "pharmacy", "--variant", "baseline",
             "--strict"]
        ) == 1
        assert "CG001" in capsys.readouterr().out

    def test_lint_json_output_is_byte_identical(self, capsys, hermetic_cli):
        assert main(["lint", "pharmacy", "--format", "json"]) == 0
        first = capsys.readouterr().out
        assert main(["lint", "pharmacy", "--format", "json"]) == 0
        assert first == capsys.readouterr().out


class TestFuzzCommand:
    def test_parses_defaults(self):
        args = build_parser().parse_args(["fuzz"])
        assert args.seeds == 25
        assert args.base_seed == 0
        assert args.shape is None
        assert not args.shrink

    def test_rejects_unknown_shape(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fuzz", "--shape", "spaghetti"])

    def test_campaign_writes_report(self, capsys, tmp_path):
        report = tmp_path / "out" / "FUZZ.json"
        assert (
            main(
                [
                    "fuzz",
                    "--seeds", "2",
                    "--base-seed", "3",
                    "--report", str(report),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "2 seed(s): 2 ok, 0 failed" in out
        payload = json.loads(report.read_text())
        assert payload["seeds_run"] == 2
        assert payload["base_seed"] == 3
        assert payload["failed"] == 0
        assert len(payload["reports"]) == 2

    def test_replay_of_clean_reproducer(self, capsys, tmp_path):
        # Round-trip a (passing) workload through the corpus format and
        # replay it by file.
        from repro.fuzz.generator import generate
        from repro.fuzz.oracle import run_oracle
        from repro.fuzz.shrink import ShrinkResult, write_reproducer

        workload = generate(3)
        result = ShrinkResult(
            workload=workload,
            report=run_oracle(workload),
            failed_checks=[],
            original_lines=10,
            shrunk_lines=10,
            evaluations=0,
        )
        path = write_reproducer(result, tmp_path)
        assert main(["fuzz", "--replay", str(path)]) == 0
        assert "ok" in capsys.readouterr().out


class TestObservability:
    def test_trace_and_metrics_flags_export(
        self, capsys, hermetic_cli, tmp_path
    ):
        trace = tmp_path / "trace_pipeline.json"
        metrics = tmp_path / "metrics_snapshot.json"
        assert (
            main(
                [
                    "run", "pharmacy",
                    "--trace", str(trace),
                    "--metrics", str(metrics),
                ]
            )
            == 0
        )
        capsys.readouterr()
        doc = json.loads(trace.read_text())
        names = [span["name"] for span in doc["spans"]]
        assert "experiment" in names
        snap = json.loads(metrics.read_text())
        launches = snap["metrics"]["timing.pthread.launches"]["value"]
        drops = snap["metrics"]["timing.pthread.drops"]["value"]
        assert (
            snap["metrics"]["timing.pthread.attempts"]["value"]
            == launches + drops
        )

    def test_obs_check_passes_on_pipeline_snapshot(
        self, capsys, hermetic_cli, tmp_path
    ):
        metrics = tmp_path / "metrics_snapshot.json"
        assert main(["run", "pharmacy", "--metrics", str(metrics)]) == 0
        capsys.readouterr()
        assert main(["obs", "check", "--input", str(metrics)]) == 0
        assert "catalog intact" in capsys.readouterr().out

    def test_obs_check_fails_on_missing_catalog_metric(
        self, capsys, hermetic_cli, tmp_path
    ):
        metrics = tmp_path / "metrics_snapshot.json"
        assert main(["run", "pharmacy", "--metrics", str(metrics)]) == 0
        capsys.readouterr()
        doc = json.loads(metrics.read_text())
        del doc["metrics"]["timing.pthread.drops"]
        metrics.write_text(json.dumps(doc))
        assert main(["obs", "check", "--input", str(metrics)]) == 1
        assert "timing.pthread.drops" in capsys.readouterr().err

    def test_obs_report_from_snapshot(self, capsys, hermetic_cli, tmp_path):
        metrics = tmp_path / "metrics_snapshot.json"
        assert main(["run", "pharmacy", "--metrics", str(metrics)]) == 0
        capsys.readouterr()
        assert main(["obs", "report", "--input", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "timing.pthread.launches" in out
        assert main(
            ["obs", "report", "--input", str(metrics), "--format", "prom"]
        ) == 0
        assert "timing_pthread_launches" in capsys.readouterr().out

    def test_fuzz_accepts_trace_flag(self, capsys, tmp_path):
        trace = tmp_path / "fuzz_trace.json"
        assert main(["fuzz", "--seeds", "1", "--trace", str(trace)]) == 0
        capsys.readouterr()
        doc = json.loads(trace.read_text())
        (fuzz,) = doc["spans"]
        assert fuzz["name"] == "fuzz"
        assert [c["name"] for c in fuzz["children"]] == ["seed"]


class TestCacheCommand:
    def test_info_and_clear(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        assert str(tmp_path) in out
        assert main(["cache", "clear"]) == 0
        assert "removed 0" in capsys.readouterr().out

    def test_disabled_cache_reported(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "off")
        assert main(["cache", "info"]) == 0
        assert "disabled" in capsys.readouterr().out
