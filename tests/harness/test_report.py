"""Tests for the plain-text report renderer."""

from repro.harness.report import fmt, render_series, render_table


class TestFmt:
    def test_float_precision(self):
        assert fmt(3.14159, 2) == "3.14"
        assert fmt(3.14159, 0) == "3"

    def test_int_plain(self):
        assert fmt(42) == "42"

    def test_none_blank(self):
        assert fmt(None) == "-"

    def test_nan_blank(self):
        assert fmt(float("nan")) == "-"

    def test_string_passthrough(self):
        assert fmt("abc") == "abc"


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table(
            ["name", "value"],
            [["a", 1.0], ["bb", 22.5]],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[2]
        assert "22.50" in text

    def test_column_width_adapts(self):
        text = render_table(["x"], [["very-long-cell"]])
        header, sep, row = text.splitlines()
        assert len(header) == len(row)

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text


class TestRenderSeries:
    def test_structure(self):
        data = {
            "mcf": {"speedup_pct": [1.0, 2.0], "coverage_pct": [10.0, 20.0]},
        }
        text = render_series(
            "Fig", ["c1", "c2"], ["speedup_pct", "coverage_pct"], data
        )
        assert "Fig" in text
        assert "mcf speedup_pct" in text
        assert "c1" in text and "c2" in text

    def test_missing_metric_skipped(self):
        data = {"mcf": {"speedup_pct": [1.0]}}
        text = render_series("Fig", ["c1"], ["speedup_pct", "nope"], data)
        assert "nope" not in text
