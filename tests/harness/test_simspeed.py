"""Unit tests for the simulation-speed benchmark harness.

Covers the three pieces the CI smoke never isolates: the steady-state
MIPS computation (with a deterministic fake clock), the ``--check``
floor enforcement on both passing and failing payloads, and the
``BENCH_simspeed.json`` schema the results file promises.
"""

import json

import pytest

from repro.engine.compiler import (
    ENGINE_COMPILED,
    ENGINE_INTERP,
    ENGINE_TIERED,
)
from repro.harness import simspeed


class FakeClock:
    """perf_counter stand-in advancing by scripted deltas per call."""

    def __init__(self, deltas):
        self.now = 0.0
        self.deltas = list(deltas)

    def __call__(self):
        value = self.now
        if self.deltas:
            self.now += self.deltas.pop(0)
        return value


class TestSteadyMips:
    def test_best_of_repeats(self, monkeypatch):
        # Three timed runs taking 2s, 1s, 4s -> best is 1s.  Each run
        # consumes two clock reads (start, end); interleaving reads
        # advance by 0 so only the timed window counts.
        deltas = [2.0, 0.0, 1.0, 0.0, 4.0, 0.0]
        monkeypatch.setattr(simspeed.time, "perf_counter", FakeClock(deltas))
        calls = []

        def run():
            calls.append(None)
            return 5_000_000

        mips = simspeed._steady_mips(run, repeats=3)
        assert mips == pytest.approx(5.0)  # 5e6 instructions / 1s / 1e6
        assert len(calls) == 4  # 1 untimed warm-up + 3 timed

    def test_zero_instructions_is_zero(self, monkeypatch):
        monkeypatch.setattr(
            simspeed.time, "perf_counter", FakeClock([1.0, 0.0])
        )
        assert simspeed._steady_mips(lambda: 0, repeats=1) == 0.0

    def test_warmup_not_timed(self, monkeypatch):
        # A slow first (warm-up) call must not affect the result.
        clock = FakeClock([3.0, 0.0])
        monkeypatch.setattr(simspeed.time, "perf_counter", clock)
        first = []

        def run():
            if not first:
                first.append(None)  # warm-up: clock not read around it
            return 3_000_000

        assert simspeed._steady_mips(run, repeats=1) == pytest.approx(1.0)


def _payload(
    exec_ratio=3.0,
    cached_ratio=1.5,
    timing_ratio=1.2,
    tiered_ratio=1.4,
    table2_tiered=1.6,
):
    def summary(ratio, tiered=tiered_ratio):
        return {
            ENGINE_INTERP: 1.0,
            ENGINE_COMPILED: ratio,
            ENGINE_TIERED: tiered,
            "ratio": ratio,
            "tiered_ratio": tiered,
        }

    return {
        "functional_geomean": {
            "exec": summary(exec_ratio),
            "cached": summary(cached_ratio),
            "traced": summary(cached_ratio),
        },
        "timing_baseline_geomean": summary(timing_ratio),
        "table2_cold": {
            "seconds": {
                ENGINE_INTERP: 10.0,
                ENGINE_COMPILED: 10.0 / cached_ratio,
                ENGINE_TIERED: 10.0 / table2_tiered,
            },
            "sim_seconds": {
                ENGINE_INTERP: 3.0,
                ENGINE_COMPILED: 3.0 / cached_ratio,
                ENGINE_TIERED: 3.0 / table2_tiered,
            },
            "speedup": cached_ratio,
            "tiered_speedup": table2_tiered,
            "sim_speedup": cached_ratio,
            "tiered_sim_speedup": table2_tiered,
        },
    }


class TestCheckPayload:
    def test_passes_on_healthy_payload(self):
        assert simspeed.check_payload(_payload()) == []

    def test_fails_below_exec_floor(self):
        problems = simspeed.check_payload(_payload(exec_ratio=1.9))
        assert len(problems) == 1
        assert "exec speedup 1.90x < 2.0x" in problems[0]

    def test_fails_when_compiled_slower_anywhere(self):
        problems = simspeed.check_payload(
            _payload(cached_ratio=0.8, timing_ratio=0.9)
        )
        # cached + traced configs share the ratio, the traced 1.5x floor
        # fires too, and timing adds one more.
        assert len(problems) == 4
        assert any("timing baseline" in p for p in problems)

    def test_fails_when_tiered_slower_anywhere(self):
        problems = simspeed.check_payload(_payload(tiered_ratio=0.9))
        # exec + cached + traced + timing, tiered lane only.
        assert len(problems) == 4
        assert all("tiered slower" in p for p in problems)

    def test_fails_when_tiered_loses_cold_table2(self):
        problems = simspeed.check_payload(_payload(table2_tiered=0.9))
        assert len(problems) == 1
        assert (
            "table2 cold: tiered slower than interpreter end to end "
            "(0.90x)" in problems[0]
        )

    def test_table2_floor_skipped_when_absent(self):
        payload = _payload(table2_tiered=0.9)
        del payload["table2_cold"]
        assert simspeed.check_payload(payload) == []

    def test_exec_floor_and_slower_both_reported(self):
        problems = simspeed.check_payload(
            _payload(exec_ratio=0.5, cached_ratio=2.0)
        )
        assert any("< 2.0x" in p for p in problems)
        assert any("exec: compiled slower" in p for p in problems)


class TestPayloadSchema:
    """The BENCH_simspeed.json schema downstream tooling reads."""

    @pytest.fixture(scope="class")
    def payload(self):
        return simspeed.bench_speed(
            workloads=["pharmacy"],
            repeats=1,
            max_instructions=2_000,
            table2=False,
        )

    def test_top_level_keys(self, payload):
        assert set(payload) == {
            "workloads",
            "repeats",
            "max_instructions",
            "unit",
            "functional",
            "functional_geomean",
            "timing_baseline",
            "timing_baseline_geomean",
        }
        assert payload["workloads"] == ["pharmacy"]
        assert payload["repeats"] == 1

    def test_functional_cells(self, payload):
        assert set(payload["functional"]) == set(simspeed.FUNCTIONAL_CONFIGS)
        for config in simspeed.FUNCTIONAL_CONFIGS:
            cells = payload["functional"][config]
            assert set(cells) == set(simspeed.ENGINES)
            for engine in cells:
                assert set(cells[engine]) == {"pharmacy"}
                assert cells[engine]["pharmacy"] >= 0.0

    def test_geomean_summaries(self, payload):
        expected = {
            ENGINE_INTERP,
            ENGINE_COMPILED,
            ENGINE_TIERED,
            "ratio",
            "tiered_ratio",
        }
        for config, summary in payload["functional_geomean"].items():
            assert set(summary) == expected
        assert set(payload["timing_baseline_geomean"]) == expected

    def test_table2_key_only_when_requested(self, payload):
        assert "table2_cold" not in payload

    def test_render_mentions_every_config(self, payload):
        text = simspeed.render(payload)
        for config in simspeed.FUNCTIONAL_CONFIGS:
            assert f"functional/{config}" in text
        assert "timing/baseline" in text

    def test_write_results_round_trips(self, payload, tmp_path):
        out = tmp_path / "results" / "BENCH_simspeed.json"
        simspeed.write_results(payload, out)
        assert json.loads(out.read_text()) == payload
