"""Tests for the parallel sweep executor.

The serial/parallel equivalence test pins down the guarantee README.md
documents: a sweep run with worker processes produces exactly the same
results as the jobs=1 serial path.
"""

import pytest

from repro.harness.experiment import ExperimentConfig, ExperimentRunner
from repro.harness.artifacts import ArtifactCache
from repro.harness.parallel import (
    CellError,
    SweepError,
    SweepExecutor,
    resolve_jobs,
)
from repro.model.params import SelectionConstraints
from repro.workloads.suite import build

SMALL_PHARMACY = dict(
    n_xact=500, n_drugs=8192, hot_drugs=512, hot_fraction=0.45, seed=11
)


@pytest.fixture
def small_inputs(monkeypatch):
    """Shrink the pharmacy build everywhere — including fork workers."""
    from repro.workloads import pharmacy

    monkeypatch.setitem(pharmacy.INPUTS, "train", dict(SMALL_PHARMACY))


def seeded_runner() -> ExperimentRunner:
    runner = ExperimentRunner()
    small = build("pharmacy", "train", **SMALL_PHARMACY)
    runner._workloads[("pharmacy", "train", small.hierarchy)] = small
    return runner


TWO_CELLS = [
    ExperimentConfig(workload="pharmacy"),
    ExperimentConfig(
        workload="pharmacy",
        constraints=SelectionConstraints(max_pthread_length=16),
    ),
]


class TestResolveJobs:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs() == 5

    def test_cpu_count_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() >= 1

    @pytest.mark.parametrize("jobs", [0, -2])
    def test_rejects_nonpositive(self, jobs):
        with pytest.raises(ValueError):
            resolve_jobs(jobs)


class TestSerialPath:
    def test_empty_sweep(self):
        executor = SweepExecutor(jobs=1, runner=seeded_runner())
        assert executor.map([]) == []

    def test_results_index_aligned(self):
        executor = SweepExecutor(jobs=1, runner=seeded_runner())
        results = executor.run(TWO_CELLS)
        assert [r.config for r in results] == TWO_CELLS

    def test_cell_error_captured(self):
        executor = SweepExecutor(jobs=1, runner=seeded_runner())
        configs = [
            ExperimentConfig(workload="pharmacy"),
            ExperimentConfig(workload="pharmacy", input_name="nope"),
        ]
        outcomes = executor.map(configs)
        assert not isinstance(outcomes[0], CellError)
        assert isinstance(outcomes[1], CellError)
        assert outcomes[1].config is configs[1]
        assert "KeyError" in outcomes[1].error

    def test_run_raises_sweep_error(self):
        executor = SweepExecutor(jobs=1, runner=seeded_runner())
        with pytest.raises(SweepError) as excinfo:
            executor.run([ExperimentConfig(workload="pharmacy", input_name="nope")])
        assert len(excinfo.value.failures) == 1
        assert "nope" in str(excinfo.value)

    def test_single_cell_stays_in_process(self):
        # Even with jobs > 1, one cell runs on the shared runner.
        runner = seeded_runner()
        executor = SweepExecutor(jobs=4, runner=runner)
        executor.run([ExperimentConfig(workload="pharmacy")])
        assert runner.perf.misses["trace"] == 1


class TestParallelPath:
    def test_parallel_matches_serial(self, small_inputs, tmp_path):
        serial = SweepExecutor(jobs=1, runner=seeded_runner())
        expected = [r.summary_row() for r in serial.run(TWO_CELLS)]

        parallel = SweepExecutor(jobs=2, artifacts=ArtifactCache(tmp_path))
        results = parallel.run(TWO_CELLS)
        assert [r.config for r in results] == TWO_CELLS
        assert [r.summary_row() for r in results] == expected

    def test_parallel_merges_worker_perf(self, small_inputs, tmp_path):
        executor = SweepExecutor(jobs=2, artifacts=ArtifactCache(tmp_path))
        executor.run(TWO_CELLS)
        # Both cells ran in workers, and every worker computation was
        # shipped back: exactly two pre-execution timing simulations.
        assert executor.perf.misses["timing"] == 2
        assert executor.perf.misses["selection"] == 2
        assert executor.perf.stage_seconds["timing"] > 0

    def test_parallel_cell_error_does_not_kill_sweep(
        self, small_inputs, tmp_path
    ):
        executor = SweepExecutor(jobs=2, artifacts=ArtifactCache(tmp_path))
        configs = [
            ExperimentConfig(workload="pharmacy"),
            ExperimentConfig(workload="pharmacy", input_name="nope"),
        ]
        outcomes = executor.map(configs)
        assert not isinstance(outcomes[0], CellError)
        assert isinstance(outcomes[1], CellError)
        assert "KeyError" in outcomes[1].error
