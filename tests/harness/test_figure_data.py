"""Unit tests for FigureData bookkeeping (no simulations)."""

from types import SimpleNamespace

from repro.harness.figures import FIGURE_METRICS, FigureData


def fake_result(**metrics):
    row = {
        "base_ipc": 1.0,
        "preexec_ipc": 1.2,
        "speedup_pct": 20.0,
        "coverage_pct": 80.0,
        "full_coverage_pct": 40.0,
        "overhead_pct": 10.0,
        "pthread_len": 8.0,
        "launches": 100.0,
        "static_pthreads": 2.0,
    }
    row.update(metrics)
    return SimpleNamespace(summary_row=lambda: row)


class TestFigureData:
    def test_series_accumulate_in_order(self):
        figure = FigureData(title="T", bar_labels=["a", "b"])
        figure.add("mcf", fake_result(speedup_pct=1.0))
        figure.add("mcf", fake_result(speedup_pct=2.0))
        assert figure.series("mcf", "speedup_pct") == [1.0, 2.0]

    def test_all_summary_metrics_recorded(self):
        figure = FigureData(title="T", bar_labels=["a"])
        figure.add("mcf", fake_result())
        for metric in FIGURE_METRICS:
            assert metric in figure.data["mcf"]
        assert "launches" in figure.data["mcf"]

    def test_render_contains_labels_and_benchmarks(self):
        figure = FigureData(title="My Figure", bar_labels=["x", "y"])
        figure.add("gap", fake_result())
        figure.add("gap", fake_result())
        text = figure.render()
        assert "My Figure" in text
        assert "gap coverage_pct" in text
        assert "x" in text and "y" in text

    def test_results_tracked_per_benchmark(self):
        figure = FigureData(title="T", bar_labels=["a"])
        result = fake_result()
        figure.add("gap", result)
        assert figure.results["gap"] == [result]
