"""Tests for the end-to-end experiment pipeline (on the small pharmacy).

These are integration-grade but kept fast by overriding workload input
parameters through the runner's workload cache.
"""

import pytest

from repro.harness.experiment import ExperimentConfig, ExperimentRunner
from repro.model.params import SelectionConstraints
from repro.timing.config import MachineConfig
from repro.workloads.suite import Workload, build


@pytest.fixture(scope="module")
def runner():
    """A runner whose pharmacy workload is pre-seeded with a small build."""
    runner = ExperimentRunner()
    for input_name in ("train", "test"):
        small = build(
            "pharmacy",
            input_name,
            n_xact=700 if input_name == "train" else 300,
            n_drugs=16384,
            hot_drugs=1024,
        )
        # The runner keys workloads on the *resolved* hierarchy, so one
        # seed covers both the ``hierarchy=None`` and explicit-default
        # spellings.
        runner._workloads[("pharmacy", input_name, small.hierarchy)] = small
    return runner


class TestPipeline:
    def test_basic_run(self, runner):
        result = runner.run(ExperimentConfig(workload="pharmacy"))
        assert result.baseline.ipc > 0
        assert result.preexec.instructions == result.baseline.instructions
        assert result.selection.pthreads
        assert result.preexec.pthread_launches > 0

    def test_speedup_positive_for_pharmacy(self, runner):
        result = runner.run(ExperimentConfig(workload="pharmacy"))
        assert result.speedup > 0.0
        assert result.coverage > 0.5

    def test_validation_modes_present(self, runner):
        result = runner.run(
            ExperimentConfig(workload="pharmacy", validate=True)
        )
        assert set(result.validation) == {
            "overhead_execute",
            "overhead_sequence",
            "latency_only",
            "perfect_l2",
        }
        assert result.validation["perfect_l2"].ipc >= result.baseline.ipc

    def test_summary_row_keys(self, runner):
        row = runner.run(ExperimentConfig(workload="pharmacy")).summary_row()
        for key in (
            "base_ipc",
            "preexec_ipc",
            "speedup_pct",
            "coverage_pct",
            "full_coverage_pct",
            "overhead_pct",
            "pthread_len",
            "launches",
        ):
            assert key in row

    def test_caching_reuses_traces(self, runner):
        runner.run(ExperimentConfig(workload="pharmacy"))
        traces_before = dict(runner._traces)
        runner.run(
            ExperimentConfig(
                workload="pharmacy",
                constraints=SelectionConstraints(max_pthread_length=16),
            )
        )
        for key in traces_before:
            assert runner._traces[key] is traces_before[key]


class TestStageCaching:
    def test_workload_key_resolves_default_hierarchy(self, runner):
        from repro.workloads.common import SUITE_HIERARCHY

        implicit = runner.workload("pharmacy", "train", None)
        explicit = runner.workload("pharmacy", "train", SUITE_HIERARCHY)
        assert implicit is explicit

    def test_one_trace_computation_across_two_cell_sweep(self):
        runner = fresh_small_runner()
        runner.run(ExperimentConfig(workload="pharmacy"))
        runner.run(
            ExperimentConfig(
                workload="pharmacy",
                constraints=SelectionConstraints(max_pthread_length=16),
            )
        )
        # Both cells share (workload, input, hierarchy): the trace and
        # baseline are computed once and hit in memory the second time.
        assert runner.perf.misses["trace"] == 1
        assert runner.perf.hits["trace"] == 1
        assert runner.perf.misses["baseline"] == 1
        assert runner.perf.hits["baseline"] == 1
        # The constraints differ, so selection legitimately reruns.
        assert runner.perf.misses["selection"] == 2

    def test_perfect_l2_cached_like_baseline(self):
        runner = fresh_small_runner()
        runner.run(ExperimentConfig(workload="pharmacy", validate=True))
        runner.run(ExperimentConfig(workload="pharmacy", validate=True))
        assert runner.perf.misses["perfect_l2"] == 1
        assert runner.perf.hits["perfect_l2"] == 1

    def test_timings_recorded_per_stage(self, runner):
        result = runner.run(ExperimentConfig(workload="pharmacy"))
        for stage in ("trace", "baseline", "selection", "timing"):
            assert stage in result.timings
            assert result.timings[stage] >= 0.0


def fresh_small_runner() -> ExperimentRunner:
    """An unshared runner (counter tests need pristine perf state)."""
    runner = ExperimentRunner()
    small = build(
        "pharmacy", "train", n_xact=700, n_drugs=16384, hot_drugs=1024
    )
    runner._workloads[("pharmacy", "train", small.hierarchy)] = small
    return runner


class TestConfigurationKnobs:
    def test_granularity_produces_regions(self, runner):
        result = runner.run(
            ExperimentConfig(workload="pharmacy", granularity=3000)
        )
        assert result.num_regions > 1

    def test_selection_prefix(self, runner):
        result = runner.run(
            ExperimentConfig(workload="pharmacy", selection_prefix=2500)
        )
        assert (
            result.selection.prediction.sample_instructions <= 2500
        )

    def test_selection_on_test_input(self, runner):
        result = runner.run(
            ExperimentConfig(workload="pharmacy", selection_input="test")
        )
        # Measured on train regardless of the selection profile.
        baseline = runner.run(ExperimentConfig(workload="pharmacy")).baseline
        assert result.baseline.instructions == baseline.instructions

    def test_model_latency_override_changes_pthreads(self, runner):
        short = runner.run(
            ExperimentConfig(workload="pharmacy", model_mem_latency=10)
        )
        long = runner.run(
            ExperimentConfig(workload="pharmacy", model_mem_latency=140)
        )
        if short.selection.pthreads and long.selection.pthreads:
            assert (
                long.selection.prediction.avg_pthread_length
                >= short.selection.prediction.avg_pthread_length
            )

    def test_machine_width_flows_to_model(self, runner):
        result = runner.run(
            ExperimentConfig(
                workload="pharmacy", machine=MachineConfig(bw_seq=4)
            )
        )
        assert result.selection.params.bw_seq == 4

    def test_model_width_override(self, runner):
        result = runner.run(
            ExperimentConfig(workload="pharmacy", model_bw_seq=2)
        )
        assert result.selection.params.bw_seq == 2
