"""Tests for the hybrid branch predictor and BTB."""

from repro.frontend.branch_predictor import HybridPredictor, _CounterTable


class TestCounterTable:
    def test_saturates_high(self):
        table = _CounterTable(4)
        for _ in range(10):
            table.update(0, True)
        assert table.counters[0] == 3
        assert table.predict(0)

    def test_saturates_low(self):
        table = _CounterTable(4)
        for _ in range(10):
            table.update(0, False)
        assert table.counters[0] == 0
        assert not table.predict(0)

    def test_index_masking(self):
        table = _CounterTable(2)  # 4 entries
        table.update(5, True)
        table.update(5, True)
        assert table.predict(1)  # 5 & 3 == 1


class TestHybridPredictor:
    def test_learns_always_taken(self):
        predictor = HybridPredictor()
        for _ in range(20):
            predictor.predict_and_update(pc=10, taken=True, target=3)
        before = predictor.mispredictions
        for _ in range(50):
            predictor.predict_and_update(pc=10, taken=True, target=3)
        assert predictor.mispredictions == before

    def test_learns_never_taken(self):
        predictor = HybridPredictor()
        for _ in range(20):
            predictor.predict_and_update(pc=10, taken=False, target=3)
        before = predictor.mispredictions
        for _ in range(50):
            predictor.predict_and_update(pc=10, taken=False, target=3)
        assert predictor.mispredictions == before

    def test_gshare_learns_alternating_pattern(self):
        predictor = HybridPredictor()
        outcomes = [True, False] * 200
        for taken in outcomes:
            predictor.predict_and_update(pc=10, taken=taken, target=3)
        # Re-run the pattern: the history-indexed component should nail it.
        before = predictor.mispredictions
        for taken in [True, False] * 50:
            predictor.predict_and_update(pc=10, taken=taken, target=3)
        assert predictor.mispredictions - before <= 5

    def test_random_pattern_mispredicts_often(self):
        import random

        rng = random.Random(1)
        predictor = HybridPredictor()
        n = 2000
        for _ in range(n):
            predictor.predict_and_update(pc=10, taken=rng.random() < 0.5, target=3)
        assert predictor.misprediction_rate() > 0.3

    def test_btb_miss_counts_as_misprediction(self):
        predictor = HybridPredictor()
        # Train direction as taken; first taken prediction has no BTB entry.
        predictor.predict_and_update(pc=10, taken=True, target=3)
        assert predictor.mispredictions >= 1

    def test_btb_target_change_detected(self):
        predictor = HybridPredictor()
        for _ in range(10):
            predictor.predict_and_update(pc=10, taken=True, target=3)
        before = predictor.mispredictions
        predictor.predict_and_update(pc=10, taken=True, target=99)
        assert predictor.mispredictions == before + 1

    def test_indirect_prediction(self):
        predictor = HybridPredictor()
        assert not predictor.predict_indirect(pc=4, target=7)  # cold
        assert predictor.predict_indirect(pc=4, target=7)  # learned
        assert not predictor.predict_indirect(pc=4, target=9)  # changed

    def test_rate_zero_without_branches(self):
        assert HybridPredictor().misprediction_rate() == 0.0
