"""Tests for register naming and parsing."""

import pytest

from repro.isa.registers import (
    ALIASES,
    NUM_REGS,
    parse_register,
    register_name,
)


class TestParseRegister:
    def test_numeric_names(self):
        assert parse_register("r0") == 0
        assert parse_register("r31") == 31

    def test_aliases(self):
        assert parse_register("zero") == 0
        assert parse_register("ra") == 1
        assert parse_register("t0") == 8
        assert parse_register("s0") == 16

    def test_case_and_whitespace_insensitive(self):
        assert parse_register("  T0 ") == 8
        assert parse_register("ZERO") == 0

    @pytest.mark.parametrize("bad", ["r32", "r-1", "x5", "", "rr1", "r"])
    def test_invalid_names_raise(self, bad):
        with pytest.raises(ValueError):
            parse_register(bad)

    def test_all_aliases_in_range(self):
        assert sorted(ALIASES.values()) == list(range(NUM_REGS))


class TestRegisterName:
    def test_plain_names(self):
        assert register_name(0) == "r0"
        assert register_name(8) == "r8"

    def test_abi_names(self):
        assert register_name(0, abi=True) == "zero"
        assert register_name(8, abi=True) == "t0"

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            register_name(-1)

    def test_virtual_registers_render(self):
        assert register_name(NUM_REGS) == "v0"
        assert register_name(NUM_REGS + 12) == "v12"

    def test_round_trip(self):
        for idx in range(NUM_REGS):
            assert parse_register(register_name(idx)) == idx
            assert parse_register(register_name(idx, abi=True)) == idx
