"""Tests for the Instruction dataclass and dataflow queries."""

from repro.isa.instruction import Instruction, format_instruction
from repro.isa.opcodes import Opcode


def alu(rd=1, rs1=2, rs2=3):
    return Instruction(Opcode.ADD, rd=rd, rs1=rs1, rs2=rs2)


class TestDataflowQueries:
    def test_r_format_sources(self):
        assert alu().sources() == (2, 3)
        assert alu().dest() == 1

    def test_i_format_sources(self):
        inst = Instruction(Opcode.ADDI, rd=4, rs1=5, imm=7)
        assert inst.sources() == (5,)
        assert inst.dest() == 4

    def test_load_sources_and_dest(self):
        inst = Instruction(Opcode.LW, rd=6, rs1=7, imm=8)
        assert inst.sources() == (7,)
        assert inst.dest() == 6
        assert inst.is_load and inst.is_mem

    def test_store_sources_no_dest(self):
        inst = Instruction(Opcode.SW, rs1=7, rs2=6, imm=8)
        assert inst.sources() == (7, 6)
        assert inst.dest() is None
        assert inst.is_store

    def test_branch_sources_no_dest(self):
        inst = Instruction(Opcode.BEQ, rs1=1, rs2=2, target=5)
        assert inst.sources() == (1, 2)
        assert inst.dest() is None
        assert inst.is_branch and inst.is_control

    def test_jump_has_no_operands(self):
        inst = Instruction(Opcode.J, target=0)
        assert inst.sources() == ()
        assert inst.dest() is None

    def test_jal_writes_link_register(self):
        inst = Instruction(Opcode.JAL, rd=1, target=0)
        assert inst.dest() == 1

    def test_jr_reads_register(self):
        inst = Instruction(Opcode.JR, rs1=1)
        assert inst.sources() == (1,)

    def test_halt_flag(self):
        assert Instruction(Opcode.HALT).is_halt


class TestManipulation:
    def test_with_pc_preserves_equality(self):
        a = alu()
        b = a.with_pc(17)
        assert b.pc == 17
        assert a == b  # pc excluded from comparison

    def test_with_target(self):
        inst = Instruction(Opcode.J, target="loop")
        assert inst.with_target(3).target == 3

    def test_renamed_partial(self):
        inst = alu().renamed(rd=9)
        assert (inst.rd, inst.rs1, inst.rs2) == (9, 2, 3)
        inst = alu().renamed(rs1=9, rs2=10)
        assert (inst.rd, inst.rs1, inst.rs2) == (1, 9, 10)

    def test_equality_ignores_pc(self):
        assert alu().with_pc(1) == alu().with_pc(2)


class TestFormatting:
    def test_r_format(self):
        assert str(alu()) == "add r1, r2, r3"

    def test_load_store_format(self):
        assert str(Instruction(Opcode.LW, rd=6, rs1=7, imm=8)) == "lw r6, 8(r7)"
        assert str(Instruction(Opcode.SW, rs1=7, rs2=6, imm=-4)) == "sw r6, -4(r7)"

    def test_branch_format(self):
        assert (
            str(Instruction(Opcode.BNE, rs1=1, rs2=2, target="loop"))
            == "bne r1, r2, loop"
        )

    def test_abi_formatting(self):
        text = format_instruction(
            Instruction(Opcode.ADD, rd=8, rs1=0, rs2=4), abi=True
        )
        assert text == "add t0, zero, a0"
