"""Tests for the two-pass assembler."""

import pytest

from repro.isa.assembler import AssemblerError, assemble, parse_line
from repro.isa.opcodes import Opcode


class TestParseLine:
    def test_comment_only(self):
        assert parse_line("  # nothing") == (None, None)
        assert parse_line("; also nothing") == (None, None)

    def test_label_only(self):
        label, inst = parse_line("loop:")
        assert label == "loop" and inst is None

    def test_label_with_instruction(self):
        label, inst = parse_line("loop: addi r1, r0, 5")
        assert label == "loop"
        assert inst.op is Opcode.ADDI and inst.imm == 5

    def test_hex_and_negative_immediates(self):
        _, inst = parse_line("addi r1, r0, 0xff")
        assert inst.imm == 255
        _, inst = parse_line("addi r1, r0, -16")
        assert inst.imm == -16

    def test_memory_operand(self):
        _, inst = parse_line("lw t0, -8(sp)")
        assert inst.rd == 8 and inst.rs1 == 2 and inst.imm == -8

    def test_mov_two_operands(self):
        _, inst = parse_line("mov t0, t1")
        assert inst.op is Opcode.MOV and inst.rd == 8 and inst.rs1 == 9

    def test_unknown_mnemonic(self):
        with pytest.raises(ValueError):
            parse_line("frobnicate r1, r2")

    def test_wrong_operand_count(self):
        with pytest.raises(ValueError):
            parse_line("add r1, r2")

    def test_bad_memory_operand(self):
        with pytest.raises(ValueError):
            parse_line("lw r1, r2")


class TestAssemble:
    def test_labels_resolve_forward_and_backward(self):
        program = assemble(
            """
            start:
                j end
                addi r1, r0, 1
            end:
                j start
                halt
            """
        )
        assert program[0].target == 2  # 'end'
        assert program[2].target == 0  # 'start'

    def test_pcs_are_sequential(self):
        program = assemble("nop\nnop\nhalt")
        assert [inst.pc for inst in program.instructions] == [0, 1, 2]

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError, match="duplicate"):
            assemble("a:\nnop\na:\nhalt")

    def test_undefined_label_rejected(self):
        with pytest.raises(Exception, match="undefined label"):
            assemble("j nowhere\nhalt")

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblerError, match="line 3"):
            assemble("nop\nnop\nbogus r1\nhalt")

    def test_trailing_label_points_at_last_instruction(self):
        program = assemble(
            """
                j end
                halt
            end:
            """
        )
        assert program.labels["end"] == 1

    def test_branch_all_comparisons(self):
        program = assemble(
            """
            top:
                beq r1, r2, top
                bne r1, r2, top
                blt r1, r2, top
                bge r1, r2, top
                ble r1, r2, top
                bgt r1, r2, top
                halt
            """
        )
        ops = [inst.op for inst in program.instructions[:6]]
        assert ops == [
            Opcode.BEQ,
            Opcode.BNE,
            Opcode.BLT,
            Opcode.BGE,
            Opcode.BLE,
            Opcode.BGT,
        ]

    def test_disassemble_round_trips(self):
        source = """
        loop:
            addi r1, r1, 1
            blt r1, r2, loop
            halt
        """
        program = assemble(source)
        text = program.disassemble()
        assert "addi r1, r1, 1" in text
        assert "loop:" in text

    def test_reassembling_disassembly_gives_same_ops(self):
        program = assemble("addi r1, r0, 1\nslli r2, r1, 3\nhalt")
        lines = []
        for inst in program.instructions:
            lines.append(str(inst))
        again = assemble("\n".join(lines))
        assert [i.op for i in again.instructions] == [
            i.op for i in program.instructions
        ]
