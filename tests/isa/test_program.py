"""Tests for Program linking and DataImage."""

import pytest

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import DataImage, Program, ProgramError


class TestDataImage:
    def test_store_and_load(self):
        image = DataImage()
        image.store_word(64, 42)
        assert image.load_word(64) == 42
        assert image.load_word(68) == 0

    def test_store_words_sequential(self):
        image = DataImage()
        image.store_words(100, [1, 2, 3])
        assert [image.load_word(100 + 4 * i) for i in range(3)] == [1, 2, 3]

    def test_unaligned_rejected(self):
        image = DataImage()
        with pytest.raises(ProgramError):
            image.store_word(3, 1)

    def test_regions(self):
        image = DataImage()
        region = image.add_region("table", 256, 4)
        assert list(region) == [256, 260, 264, 268]
        assert "table" in image.regions

    def test_footprint(self):
        image = DataImage()
        image.store_words(0, range(10))
        assert image.footprint_bytes() == 40


class TestProgram:
    def test_empty_program_rejected(self):
        with pytest.raises(ProgramError):
            Program([])

    def test_unresolved_label_rejected(self):
        inst = Instruction(Opcode.J, target="missing")
        with pytest.raises(ProgramError, match="undefined"):
            Program([inst, Instruction(Opcode.HALT)])

    def test_out_of_range_target_rejected(self):
        inst = Instruction(Opcode.J, target=99)
        with pytest.raises(ProgramError, match="out of range"):
            Program([inst, Instruction(Opcode.HALT)])

    def test_label_resolution(self):
        instructions = [
            Instruction(Opcode.J, target="end"),
            Instruction(Opcode.NOP),
            Instruction(Opcode.HALT),
        ]
        program = Program(instructions, labels={"end": 2})
        assert program[0].target == 2

    def test_static_loads(self):
        instructions = [
            Instruction(Opcode.LW, rd=1, rs1=2, imm=0),
            Instruction(Opcode.ADD, rd=1, rs1=1, rs2=1),
            Instruction(Opcode.LW, rd=3, rs1=2, imm=4),
            Instruction(Opcode.HALT),
        ]
        program = Program(instructions)
        assert [inst.pc for inst in program.static_loads()] == [0, 2]

    def test_label_for_pc(self):
        program = Program(
            [Instruction(Opcode.NOP), Instruction(Opcode.HALT)],
            labels={"start": 0},
        )
        assert program.label_for_pc(0) == "start"
        assert program.label_for_pc(1) is None

    def test_len_and_index(self):
        program = Program([Instruction(Opcode.NOP), Instruction(Opcode.HALT)])
        assert len(program) == 2
        assert program[1].op is Opcode.HALT
