"""Tests for opcode metadata and ALU semantics."""

import pytest

from repro.isa.opcodes import (
    Format,
    MNEMONICS,
    OPINFO,
    Opcode,
    opinfo,
    _to_signed,
)


class TestOpInfoTable:
    def test_every_opcode_has_info(self):
        for op in Opcode:
            assert op in OPINFO

    def test_every_mnemonic_round_trips(self):
        for mnemonic, op in MNEMONICS.items():
            assert op.value == mnemonic

    def test_alu_ops_have_value_functions(self):
        for op, info in OPINFO.items():
            if info.fmt in (Format.R, Format.I):
                assert info.alu is not None, op

    def test_branches_have_predicates(self):
        for op, info in OPINFO.items():
            if info.fmt is Format.BRANCH:
                assert info.branch is not None, op

    def test_load_store_classification(self):
        assert opinfo(Opcode.LW).is_load
        assert opinfo(Opcode.LW).is_mem
        assert not opinfo(Opcode.LW).is_store
        assert opinfo(Opcode.SW).is_store
        assert opinfo(Opcode.SW).is_mem
        assert not opinfo(Opcode.SW).writes_register

    def test_control_classification(self):
        for op in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE):
            assert opinfo(op).is_branch
            assert opinfo(op).is_control
        for op in (Opcode.J, Opcode.JAL, Opcode.JR):
            assert opinfo(op).is_jump
            assert opinfo(op).is_control
        assert not opinfo(Opcode.ADD).is_control

    def test_jal_writes_register(self):
        assert opinfo(Opcode.JAL).writes_register
        assert not opinfo(Opcode.J).writes_register

    def test_mul_is_multicycle(self):
        assert opinfo(Opcode.MUL).latency == 3
        assert opinfo(Opcode.ADD).latency == 1


class TestAluSemantics:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            (Opcode.ADD, 2, 3, 5),
            (Opcode.SUB, 2, 3, -1),
            (Opcode.MUL, -4, 3, -12),
            (Opcode.AND, 0b1100, 0b1010, 0b1000),
            (Opcode.OR, 0b1100, 0b1010, 0b1110),
            (Opcode.XOR, 0b1100, 0b1010, 0b0110),
            (Opcode.SLL, 1, 4, 16),
            (Opcode.SRL, 16, 2, 4),
            (Opcode.SRA, -16, 2, -4),
            (Opcode.SLT, -1, 0, 1),
            (Opcode.SLT, 1, 0, 0),
            (Opcode.SLTU, -1, 0, 0),  # -1 is huge unsigned
        ],
    )
    def test_r_format_values(self, op, a, b, expected):
        assert opinfo(op).alu(a, b) == expected

    def test_mov_copies_first_operand(self):
        assert opinfo(Opcode.MOV).alu(42, 999) == 42

    def test_lui_shifts_immediate(self):
        assert opinfo(Opcode.LUI).alu(0, 5) == 5 << 16

    def test_add_wraps_to_64_bits(self):
        big = (1 << 63) - 1
        assert opinfo(Opcode.ADD).alu(big, 1) == -(1 << 63)

    def test_srl_treats_value_as_unsigned(self):
        assert opinfo(Opcode.SRL).alu(-1, 60) == 15

    def test_to_signed_identity_in_range(self):
        assert _to_signed(123) == 123
        assert _to_signed(-123) == -123

    def test_branch_predicates(self):
        assert opinfo(Opcode.BEQ).branch(3, 3)
        assert not opinfo(Opcode.BEQ).branch(3, 4)
        assert opinfo(Opcode.BNE).branch(3, 4)
        assert opinfo(Opcode.BLT).branch(-1, 0)
        assert opinfo(Opcode.BGE).branch(0, 0)
        assert opinfo(Opcode.BLE).branch(0, 0)
        assert opinfo(Opcode.BGT).branch(1, 0)
