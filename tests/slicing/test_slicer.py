"""Tests for the dynamic backward slicer."""

import numpy as np
import pytest

from repro.engine.functional import run_program
from repro.isa import DataImage, assemble
from repro.slicing.slicer import Slicer


def trace_of(source, data=None):
    return run_program(assemble(source, data=data)).trace


class TestSlicer:
    def test_straight_line_address_chain(self):
        trace = trace_of(
            """
            addi r1, r0, 256     # 0
            slli r2, r1, 2       # 1
            addi r3, r2, 4       # 2
            lw   r4, 0(r3)       # 3
            halt
            """
        )
        dyn_slice = Slicer(trace, scope=100).slice_at(3)
        assert dyn_slice.indices == (3, 2, 1, 0)

    def test_unrelated_instructions_excluded(self):
        trace = trace_of(
            """
            addi r1, r0, 256     # 0: address chain
            addi r9, r0, 7       # 1: unrelated
            addi r8, r9, 1       # 2: unrelated
            lw   r4, 0(r1)       # 3
            halt
            """
        )
        dyn_slice = Slicer(trace, scope=100).slice_at(3)
        assert dyn_slice.indices == (3, 0)

    def test_scope_truncates(self):
        trace = trace_of(
            """
            addi r1, r0, 256
            nop
            nop
            nop
            nop
            lw   r4, 0(r1)
            halt
            """
        )
        full = Slicer(trace, scope=100).slice_at(5)
        assert full.indices == (5, 0)
        narrow = Slicer(trace, scope=3).slice_at(5)
        assert narrow.indices == (5,)  # producer out of scope -> live-in

    def test_memory_dependence_pulls_in_store(self):
        trace = trace_of(
            """
            addi r1, r0, 1024    # 0
            addi r2, r0, 4096    # 1: value (an address)
            sw   r2, 0(r1)       # 2: spill
            lw   r3, 0(r1)       # 3: reload
            lw   r4, 0(r3)       # 4: target
            halt
            """
        )
        dyn_slice = Slicer(trace, scope=100).slice_at(4)
        assert set(dyn_slice.indices) == {4, 3, 2, 1, 0}

    def test_max_length_limits_growth(self):
        lines = ["addi r1, r0, 8192"]
        for _ in range(20):
            lines.append("addi r1, r1, 4")
        lines.append("lw r2, 0(r1)")
        lines.append("halt")
        trace = trace_of("\n".join(lines))
        dyn_slice = Slicer(trace, scope=1000, max_length=5).slice_at(21)
        assert len(dyn_slice) <= 6

    def test_indices_strictly_descending(self, pharmacy_small_run):
        trace = pharmacy_small_run.trace
        slicer = Slicer(trace, scope=512)
        for root in trace.miss_indices(3)[:50]:
            indices = slicer.slice_at(int(root)).indices
            assert all(a > b for a, b in zip(indices, indices[1:]))

    def test_dep_positions_point_backward_in_slice(self, pharmacy_small_run):
        trace = pharmacy_small_run.trace
        slicer = Slicer(trace, scope=512)
        for root in trace.miss_indices(3)[:50]:
            dyn_slice = slicer.slice_at(int(root))
            for position, deps in enumerate(dyn_slice.dep_positions):
                # producers are older => later slice positions
                assert all(dep > position for dep in deps)

    def test_branches_never_in_slices(self, pharmacy_small_run):
        trace = pharmacy_small_run.trace
        slicer = Slicer(trace, scope=512)
        program_pcs = trace.pc
        # pcs 1..14 hold the loop; branches are at pcs 1,3,4 and jumps 6,14.
        branch_pcs = {1, 3, 4, 6, 14}
        for root in trace.miss_indices(3)[:50]:
            dyn_slice = slicer.slice_at(int(root))
            slice_pcs = {int(program_pcs[i]) for i in dyn_slice.indices}
            assert not (slice_pcs & branch_pcs)

    def test_validation(self):
        trace = trace_of("nop\nhalt")
        with pytest.raises(ValueError):
            Slicer(trace, scope=0)
        with pytest.raises(ValueError):
            Slicer(trace, max_length=0)
        with pytest.raises(IndexError):
            Slicer(trace).slice_at(99)
