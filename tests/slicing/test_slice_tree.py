"""Tests for the slice tree — structure, annotations, invariants."""

import pytest

from repro.engine.functional import run_program
from repro.isa import assemble
from repro.slicing.slice_tree import SliceTree, build_slice_trees
from repro.slicing.slicer import Slicer
from repro.workloads import pharmacy


class TestInsertion:
    def test_single_path(self):
        trace = run_program(
            assemble(
                """
                addi r1, r0, 256
                slli r2, r1, 2
                lw   r3, 0(r2)
                halt
                """
            )
        ).trace
        tree = SliceTree(load_pc=2)
        tree.insert(Slicer(trace, scope=10).slice_at(2), trace)
        assert tree.total_misses() == 1
        assert tree.max_depth() == 2
        tree.check_invariants()

    def test_wrong_root_rejected(self):
        trace = run_program(assemble("addi r1, r0, 4\nlw r2, 0(r1)\nhalt")).trace
        tree = SliceTree(load_pc=0)
        with pytest.raises(ValueError):
            tree.insert(Slicer(trace).slice_at(1), trace)

    def test_repeated_paths_share_nodes(self):
        source = """
            addi r1, r0, 4096
            addi r3, r0, 3
        loop:
            slli r2, r1, 0
            lw   r4, 0(r2)
            addi r1, r1, 64
            addi r3, r3, -1
            bgt  r3, r0, loop
            halt
        """
        trace = run_program(assemble(source)).trace
        slicer = Slicer(trace, scope=100)
        tree = SliceTree(load_pc=3)
        load_indices = [i for i in range(len(trace)) if trace.pc[i] == 3]
        for index in load_indices:
            tree.insert(slicer.slice_at(index), trace)
        assert tree.total_misses() == 3
        # First-level child (the slli) is shared by all three paths.
        child = tree.root.children[2]
        assert child.visits == 3
        tree.check_invariants()


class TestPharmacyTree:
    """The tree from the paper's Figure 3, built from real execution."""

    @pytest.fixture(scope="class")
    def tree(self, pharmacy_small_run):
        trees = build_slice_trees(
            pharmacy_small_run.trace, scope=512, max_length=24
        )
        return trees[pharmacy.PROBLEM_LOAD_PC]

    def test_invariants_hold(self, tree):
        tree.check_invariants()

    def test_two_computation_arms(self, tree):
        """Depth 3 must fork into the #04-path and #06-path loads."""
        node = tree.root
        for _ in range(2):  # addi (paper #08), slli (paper #07)
            assert len(node.children) == 1
            node = next(iter(node.children.values()))
        pcs = set(node.children)
        # PCs 5 and 7 are the paper's #04 and #06 loads.
        assert pcs == {5, 7}

    def test_children_visits_sum_to_parent(self, tree):
        for node in tree.nodes():
            if node.children:
                total = sum(c.visits for c in node.children.values())
                assert total + node.truncated == node.visits

    def test_dist_pl_increases_with_depth(self, tree):
        for node in tree.nodes():
            for child in node.children.values():
                assert child.dist_pl > node.dist_pl

    def test_root_dist_pl_zero(self, tree):
        assert tree.root.dist_pl == 0.0

    def test_induction_unrolling_present(self, tree):
        """Deep nodes repeat the induction instruction (paper #11 = pc 12)."""
        induction_depths = [
            node.depth for node in tree.nodes() if node.pc == pharmacy.INDUCTION_PC
        ]
        assert len(induction_depths) >= 3

    def test_path_to_root_lengths(self, tree):
        for node in tree.nodes():
            path = node.path_to_root()
            assert len(path) == node.depth + 1
            assert path[-1] is tree.root

    def test_render_contains_annotations(self, tree, pharmacy_small):
        text = tree.render(pharmacy_small, max_depth=4)
        assert "DCpt-cm" in text
        assert "DISTpl" in text


class TestBuildSliceTrees:
    def test_one_tree_per_static_load(self, pharmacy_small_run):
        trees = build_slice_trees(pharmacy_small_run.trace)
        for load_pc, tree in trees.items():
            assert tree.load_pc == load_pc
            tree.check_invariants()

    def test_total_misses_partition(self, pharmacy_small_run):
        trace = pharmacy_small_run.trace
        trees = build_slice_trees(trace)
        total = sum(tree.total_misses() for tree in trees.values())
        assert total == len(trace.miss_indices(3))

    def test_region_restriction(self, pharmacy_small_run):
        trace = pharmacy_small_run.trace
        half = len(trace) // 2
        trees = build_slice_trees(trace, start=0, end=half)
        total = sum(tree.total_misses() for tree in trees.values())
        assert total == sum(1 for i in trace.miss_indices(3) if i < half)

    def test_miss_level_filter(self, pharmacy_small_run):
        trace = pharmacy_small_run.trace
        l2_up = build_slice_trees(trace, miss_level=2)
        mem_only = build_slice_trees(trace, miss_level=3)
        total_l2 = sum(t.total_misses() for t in l2_up.values())
        total_mem = sum(t.total_misses() for t in mem_only.values())
        assert total_l2 >= total_mem
