"""Tests for slice-tree file I/O (the paper's file-based tool flow)."""

import io

import pytest

from repro.slicing.serialize import (
    SliceTreeFormatError,
    load_slice_trees,
    save_slice_trees,
    tree_from_dict,
    tree_to_dict,
)
from repro.slicing.slice_tree import build_slice_trees


@pytest.fixture(scope="module")
def pharmacy_trees(pharmacy_small, pharmacy_small_run):
    trace = pharmacy_small_run.trace
    trees = build_slice_trees(trace, scope=512, max_length=24)
    counts = trace.static_counts(len(pharmacy_small))
    dc_trig = {pc: int(c) for pc, c in enumerate(counts) if c}
    return trees, dc_trig


class TestRoundTrip:
    def test_tree_dict_round_trip(self, pharmacy_trees):
        trees, _ = pharmacy_trees
        for tree in trees.values():
            clone = tree_from_dict(tree_to_dict(tree))
            assert clone.load_pc == tree.load_pc
            assert clone.total_misses() == tree.total_misses()
            assert clone.num_nodes() == tree.num_nodes()
            assert clone.max_depth() == tree.max_depth()
            clone.check_invariants()

    def test_node_annotations_preserved(self, pharmacy_trees):
        """The canonical (child-sorted) serial form is a fixpoint, so
        annotation equality reduces to dict equality."""
        trees, _ = pharmacy_trees
        tree = next(iter(trees.values()))
        canonical = tree_to_dict(tree)
        clone = tree_from_dict(canonical)
        assert tree_to_dict(clone) == canonical

    def test_file_round_trip(self, pharmacy_trees, tmp_path):
        trees, dc_trig = pharmacy_trees
        path = tmp_path / "trees.json"
        save_slice_trees(path, trees, dc_trig, program_name="pharmacy",
                         sample_instructions=12345)
        loaded = load_slice_trees(path)
        assert loaded.program_name == "pharmacy"
        assert loaded.sample_instructions == 12345
        assert set(loaded.trees) == set(trees)
        assert loaded.dc_trig == dc_trig
        assert loaded.total_misses() == sum(
            t.total_misses() for t in trees.values()
        )

    def test_stream_round_trip(self, pharmacy_trees):
        trees, dc_trig = pharmacy_trees
        buffer = io.StringIO()
        save_slice_trees(buffer, trees, dc_trig)
        buffer.seek(0)
        loaded = load_slice_trees(buffer)
        assert set(loaded.trees) == set(trees)


class TestSelectionFromFile:
    def test_selection_identical_from_file(
        self, pharmacy_trees, pharmacy_small, tmp_path
    ):
        """The paper's point: selection re-runs from the file alone."""
        from repro.model import ModelParams, SelectionConstraints
        from repro.selection.selector import select_from_tree

        trees, dc_trig = pharmacy_trees
        path = tmp_path / "trees.json"
        save_slice_trees(path, trees, dc_trig)
        loaded = load_slice_trees(path)
        params = ModelParams(bw_seq=8, unassisted_ipc=0.8, mem_latency=70,
                             load_latency=2)
        constraints = SelectionConstraints()
        for load_pc, tree in trees.items():
            direct = select_from_tree(
                tree, pharmacy_small, dc_trig, params, constraints
            )
            from_file = select_from_tree(
                loaded.trees[load_pc], pharmacy_small, loaded.dc_trig,
                params, constraints,
            )
            assert len(direct.selected) == len(from_file.selected)
            # Child iteration order differs (file form is pc-sorted),
            # so compare selections as multisets of (score, body).
            direct_set = sorted(
                (round(c.score.adv_agg, 6), c.body.size)
                for c in direct.selected
            )
            file_set = sorted(
                (round(c.score.adv_agg, 6), c.body.size)
                for c in from_file.selected
            )
            assert direct_set == file_set


class TestErrors:
    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(SliceTreeFormatError):
            load_slice_trees(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "repro-slice-trees", "version": 99}')
        with pytest.raises(SliceTreeFormatError):
            load_slice_trees(path)

    def test_malformed_node_rejected(self):
        with pytest.raises(SliceTreeFormatError):
            tree_from_dict({"load_pc": 1, "root": {"visits": "x"}})
