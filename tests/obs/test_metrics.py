"""Metrics registry: instruments, snapshot/diff, worker-merge semantics."""

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    get_registry,
    reset_registry,
    set_registry,
)


def test_counter_increments_and_rejects_negative():
    registry = MetricsRegistry()
    counter = registry.counter("timing.pthread.launches")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_set_and_add():
    registry = MetricsRegistry()
    gauge = registry.gauge("harness.cache.bytes")
    gauge.set(10)
    gauge.add(2.5)
    assert gauge.value == 12.5


def test_histogram_buckets_and_weighted_observe():
    registry = MetricsRegistry()
    hist = registry.histogram("memory.l2.mshr_occupancy", buckets=(1, 4, 16))
    hist.observe(1)          # le=1 bucket (bounds are inclusive)
    hist.observe(3, weight=10)
    hist.observe(100)        # overflows into +Inf
    assert hist.counts == [1, 10, 0, 1]
    assert hist.count == 12
    assert hist.total == 1 + 30 + 100


def test_histogram_default_buckets_and_sorted_check():
    registry = MetricsRegistry()
    hist = registry.histogram("h")
    assert hist.bounds == DEFAULT_BUCKETS
    with pytest.raises(ValueError):
        MetricsRegistry().histogram("bad", buckets=(4, 1))


def test_get_or_create_returns_same_instrument():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")


def test_kind_conflict_raises():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")


def test_snapshot_shape():
    registry = MetricsRegistry()
    registry.counter("c").inc(3)
    registry.gauge("g").set(1.5)
    registry.histogram("h", buckets=(2,)).observe(1)
    snap = registry.snapshot()
    assert snap["c"] == {"type": "counter", "value": 3}
    assert snap["g"] == {"type": "gauge", "value": 1.5}
    assert snap["h"] == {
        "type": "histogram",
        "buckets": [2],
        "counts": [1, 0],
        "count": 1,
        "sum": 1.0,
    }


def test_diff_counters_histograms_delta_gauges_point_in_time():
    registry = MetricsRegistry()
    counter = registry.counter("c")
    gauge = registry.gauge("g")
    hist = registry.histogram("h", buckets=(2,))
    counter.inc(5)
    gauge.set(100)
    hist.observe(1)
    before = registry.snapshot()
    counter.inc(2)
    gauge.set(7)
    hist.observe(3)
    delta = MetricsRegistry.diff(before, registry.snapshot())
    assert delta["c"]["value"] == 2
    assert delta["g"]["value"] == 7  # gauges report the after value
    assert delta["h"]["counts"] == [0, 1]
    assert delta["h"]["count"] == 1
    assert delta["h"]["sum"] == 3.0


def test_diff_handles_metric_absent_from_before():
    registry = MetricsRegistry()
    registry.counter("new").inc(4)
    delta = MetricsRegistry.diff({}, registry.snapshot())
    assert delta["new"]["value"] == 4


def test_merge_snapshot_accumulates_worker_payloads():
    """The sweep coordinator folds per-cell snapshots from workers."""
    worker_a = MetricsRegistry()
    worker_a.counter("timing.pthread.launches").inc(10)
    worker_a.histogram("occ", buckets=(1, 2)).observe(1, weight=3)
    worker_b = MetricsRegistry()
    worker_b.counter("timing.pthread.launches").inc(7)
    worker_b.histogram("occ", buckets=(1, 2)).observe(2, weight=5)

    coordinator = MetricsRegistry()
    coordinator.merge_snapshot(worker_a.snapshot())
    coordinator.merge_snapshot(worker_b.snapshot())

    assert coordinator.counter("timing.pthread.launches").value == 17
    merged = coordinator.get("occ")
    assert merged.counts == [3, 5, 0]
    assert merged.count == 8
    assert merged.total == 13.0


def test_merge_snapshot_gauge_takes_incoming_value():
    coordinator = MetricsRegistry()
    coordinator.gauge("g").set(1)
    coordinator.merge_snapshot({"g": {"type": "gauge", "value": 9.0}})
    assert coordinator.gauge("g").value == 9.0


def test_merge_snapshot_bucket_mismatch_raises():
    coordinator = MetricsRegistry()
    coordinator.histogram("h", buckets=(1, 2))
    with pytest.raises(ValueError):
        coordinator.merge_snapshot(
            {
                "h": {
                    "type": "histogram",
                    "buckets": [1, 4],
                    "counts": [0, 0, 0],
                    "count": 0,
                    "sum": 0.0,
                }
            }
        )


def test_merge_snapshot_unknown_kind_raises():
    with pytest.raises(ValueError):
        MetricsRegistry().merge_snapshot({"x": {"type": "mystery", "value": 0}})


def test_global_registry_reset_and_restore():
    original = get_registry()
    try:
        fresh = reset_registry()
        assert get_registry() is fresh
        assert fresh is not original
        assert fresh.names() == []
    finally:
        set_registry(original)
