"""Thread-safety regressions for the metrics registry.

The serve daemon publishes into one shared registry from concurrent
worker threads.  These tests fail on the pre-lock implementation:
``value += n`` is a load/add/store sequence the interpreter can switch
threads inside, so unsynchronized increments lose updates, and the
unsynchronized get-or-create could build two instruments for one name.
A tiny switch interval makes the races land reliably.
"""

import sys
import threading
import time

import pytest

from repro.obs import MetricsRegistry

THREADS = 8
ROUNDS = 2_000


class _Preemptible(int):
    """Integer whose ``+`` yields the GIL mid read-modify-write.

    ``value += n`` on a plain int compiles to a load/add/store sequence
    with no eval-breaker point inside, so CPython rarely preempts it
    even at a tiny switch interval.  Seeding an instrument with this
    type puts a guaranteed thread-switch point between the load and the
    store — exactly the window the per-instrument locks must close, so
    these tests fail deterministically on the unlocked implementation.
    """

    def __add__(self, other):
        total = int(self) + int(other)
        time.sleep(0)  # a call releases the GIL: forced preemption point
        return _Preemptible(total)

    __radd__ = __add__


def _hammer(work) -> None:
    """Run ``work()`` from THREADS barrier-started threads, racing hard."""
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)
    try:
        barrier = threading.Barrier(THREADS)
        errors = []

        def body():
            try:
                barrier.wait()
                work()
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=body) for _ in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors
    finally:
        sys.setswitchinterval(previous)


def test_counter_concurrent_increments_lose_nothing():
    registry = MetricsRegistry()
    counter = registry.counter("race.counter")
    _hammer(lambda: [counter.inc() for _ in range(ROUNDS)])
    assert counter.value == THREADS * ROUNDS


def test_counter_concurrent_bulk_increments():
    registry = MetricsRegistry()
    counter = registry.counter("race.bulk")
    _hammer(lambda: [counter.inc(3) for _ in range(ROUNDS)])
    assert counter.value == THREADS * ROUNDS * 3


def test_gauge_concurrent_adds():
    registry = MetricsRegistry()
    gauge = registry.gauge("race.gauge")
    _hammer(lambda: [gauge.add(1.0) for _ in range(ROUNDS)])
    assert gauge.value == pytest.approx(THREADS * ROUNDS)


def test_histogram_concurrent_observes():
    registry = MetricsRegistry()
    hist = registry.histogram("race.hist", buckets=(1, 10))
    _hammer(lambda: [hist.observe(5.0) for _ in range(ROUNDS)])
    assert hist.count == THREADS * ROUNDS
    assert sum(hist.counts) == THREADS * ROUNDS
    assert hist.total == pytest.approx(THREADS * ROUNDS * 5.0)


def test_get_or_create_race_yields_one_instrument():
    """Racing ``registry.counter(name)`` must converge on one object."""
    registry = MetricsRegistry()
    _hammer(lambda: [registry.counter("race.shared").inc() for _ in range(ROUNDS)])
    assert registry.names() == ["race.shared"]
    assert registry.get("race.shared").value == THREADS * ROUNDS


def test_counter_increment_is_atomic_under_forced_preemption():
    registry = MetricsRegistry()
    counter = registry.counter("race.preempt.counter")
    counter.value = _Preemptible(0)
    _hammer(lambda: [counter.inc() for _ in range(ROUNDS)])
    assert counter.value == THREADS * ROUNDS


def test_gauge_add_is_atomic_under_forced_preemption():
    registry = MetricsRegistry()
    gauge = registry.gauge("race.preempt.gauge")
    gauge.value = _Preemptible(0)
    _hammer(lambda: [gauge.add(1) for _ in range(ROUNDS)])
    assert gauge.value == THREADS * ROUNDS


def test_histogram_observe_is_atomic_under_forced_preemption():
    registry = MetricsRegistry()
    hist = registry.histogram("race.preempt.hist", buckets=(1, 10))
    hist.counts = [_Preemptible(0)] * len(hist.counts)
    hist.count = _Preemptible(0)
    hist.total = _Preemptible(0)
    _hammer(lambda: [hist.observe(5.0) for _ in range(ROUNDS)])
    assert hist.count == THREADS * ROUNDS
    assert sum(hist.counts) == THREADS * ROUNDS
    assert hist.total == THREADS * ROUNDS * 5


def test_merge_snapshot_races_with_increments():
    """Worker-diff merges interleaved with live increments stay exact."""
    registry = MetricsRegistry()
    counter = registry.counter("race.merged")
    delta = {"race.merged": {"type": "counter", "value": 1}}
    _hammer(
        lambda: [
            (counter.inc(), registry.merge_snapshot(delta))
            for _ in range(ROUNDS)
        ]
    )
    assert counter.value == THREADS * ROUNDS * 2
