"""Context-isolation regressions for the span tracer.

The tracer's open-span stack is a :class:`contextvars.ContextVar`, so
concurrent asyncio tasks and worker threads each see their own stack.
On the pre-fix implementation (one shared stack list) a span opened by
task B while task A's span was still open would nest under A's span —
these tests pin the interleavings that exposed that.
"""

import asyncio
import threading

from repro.obs import Tracer


def test_interleaved_tasks_do_not_nest_under_each_other():
    """B opens its span while A's span is open; both must be root children."""
    tracer = Tracer()

    async def main():
        a_open = asyncio.Event()
        a_release = asyncio.Event()

        async def task_a():
            with tracer.span("a"):
                a_open.set()
                await a_release.wait()

        async def task_b():
            await a_open.wait()
            with tracer.span("b"):
                pass
            a_release.set()

        await asyncio.gather(task_a(), task_b())

    asyncio.run(main())
    assert sorted(span.name for span in tracer.root.children) == ["a", "b"]
    by_name = {span.name: span for span in tracer.root.children}
    assert by_name["a"].children == []
    assert by_name["b"].children == []


def test_concurrent_tasks_keep_their_own_nesting():
    tracer = Tracer()

    async def task(name):
        with tracer.span(name):
            await asyncio.sleep(0)
            with tracer.span(f"{name}.inner"):
                await asyncio.sleep(0)

    async def main():
        await asyncio.gather(task("a"), task("b"))

    asyncio.run(main())
    assert sorted(span.name for span in tracer.root.children) == ["a", "b"]
    for span in tracer.root.children:
        assert [child.name for child in span.children] == [f"{span.name}.inner"]


def test_threads_get_independent_stacks():
    """Two threads hold spans open simultaneously without cross-nesting."""
    tracer = Tracer()
    barrier = threading.Barrier(2)
    errors = []

    def work(name):
        try:
            barrier.wait()
            with tracer.span(name):
                barrier.wait()  # both outer spans are open right now
                with tracer.span(f"{name}.inner"):
                    pass
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [
        threading.Thread(target=work, args=(f"t{index}",)) for index in (0, 1)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors
    assert sorted(span.name for span in tracer.root.children) == ["t0", "t1"]
    for span in tracer.root.children:
        assert [child.name for child in span.children] == [f"{span.name}.inner"]


def test_depth_is_per_context():
    """A worker thread's open span is invisible to the main context."""
    tracer = Tracer()
    opened = threading.Event()
    release = threading.Event()

    def work():
        with tracer.span("worker"):
            opened.set()
            release.wait()

    thread = threading.Thread(target=work)
    thread.start()
    opened.wait()
    try:
        assert tracer.depth == 0
        assert tracer.current is tracer.root
    finally:
        release.set()
        thread.join()
    assert [span.name for span in tracer.root.children] == ["worker"]
