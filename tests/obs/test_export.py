"""Snapshot document schema, Prometheus exposition, catalog check."""

import json

import pytest

from repro.obs import (
    METRIC_CATALOG,
    SNAPSHOT_SCHEMA_VERSION,
    MetricsRegistry,
    check_snapshot,
    load_snapshot,
    render_report,
    snapshot_document,
    to_prometheus,
    write_snapshot,
)


def _registry_with_catalog():
    """A registry holding every catalog metric (as a CI run would)."""
    registry = MetricsRegistry()
    for name, kind in METRIC_CATALOG.items():
        if kind == "counter":
            registry.counter(name).inc(1)
        elif kind == "gauge":
            registry.gauge(name).set(1)
        else:
            registry.histogram(name).observe(1)
    return registry


def test_snapshot_document_shape():
    registry = MetricsRegistry()
    registry.counter("c").inc(2)
    doc = snapshot_document(registry)
    assert doc["schema"] == SNAPSHOT_SCHEMA_VERSION
    assert doc["metrics"]["c"] == {"type": "counter", "value": 2}


def test_write_and_load_roundtrip(tmp_path):
    registry = MetricsRegistry()
    registry.gauge("g").set(3.5)
    path = tmp_path / "results" / "metrics_snapshot.json"
    written = write_snapshot(path, registry)
    loaded = load_snapshot(path)
    assert loaded == written
    assert loaded["metrics"]["g"]["value"] == 3.5


def test_load_rejects_unknown_schema(tmp_path):
    path = tmp_path / "snap.json"
    path.write_text(json.dumps({"schema": 999, "metrics": {}}))
    with pytest.raises(ValueError):
        load_snapshot(path)


def test_prometheus_counter_gauge_names():
    registry = MetricsRegistry()
    registry.counter("timing.pthread.launches").inc(12)
    registry.gauge("harness.cache.bytes").set(42)
    text = to_prometheus(registry.snapshot())
    assert "# TYPE timing_pthread_launches counter" in text
    assert "timing_pthread_launches 12" in text
    assert "harness_cache_bytes 42.0" in text


def test_prometheus_histogram_buckets_are_cumulative():
    registry = MetricsRegistry()
    hist = registry.histogram("occ", buckets=(1, 2))
    hist.observe(1, weight=3)   # le=1
    hist.observe(2, weight=2)   # le=2
    hist.observe(9)             # +Inf
    text = to_prometheus(registry.snapshot())
    assert 'occ_bucket{le="1"} 3' in text
    assert 'occ_bucket{le="2"} 5' in text
    assert 'occ_bucket{le="+Inf"} 6' in text
    assert "occ_count 6" in text
    assert "occ_sum 16.0" in text


def test_render_report_lists_every_metric():
    registry = MetricsRegistry()
    registry.counter("c").inc(7)
    registry.histogram("h", buckets=(4,)).observe(2, weight=3)
    text = render_report(registry.snapshot())
    assert "c" in text and "counter" in text and "7" in text
    assert "count=3" in text and "mean=2.00" in text
    assert render_report({}) == "(no metrics registered)"


def test_check_snapshot_passes_on_full_catalog():
    doc = snapshot_document(_registry_with_catalog())
    assert check_snapshot(doc) == []


def test_check_snapshot_flags_missing_catalog_metric():
    registry = _registry_with_catalog()
    snap = registry.snapshot()
    del snap["timing.pthread.drops"]
    problems = check_snapshot({"schema": 1, "metrics": snap})
    assert any("timing.pthread.drops" in p for p in problems)


def test_check_snapshot_flags_type_change():
    registry = _registry_with_catalog()
    snap = registry.snapshot()
    snap["timing.pthread.launches"] = {"type": "gauge", "value": 1.0}
    problems = check_snapshot({"schema": 1, "metrics": snap})
    assert any(
        "timing.pthread.launches" in p and "type changed" in p
        for p in problems
    )


def test_check_snapshot_allows_extra_names():
    registry = _registry_with_catalog()
    registry.counter("experimental.new.metric").inc()
    assert check_snapshot(snapshot_document(registry)) == []


def test_catalog_split_counters_present():
    """The launches/drops split this PR introduces is pinned by name."""
    assert METRIC_CATALOG["timing.pthread.attempts"] == "counter"
    assert METRIC_CATALOG["timing.pthread.launches"] == "counter"
    assert METRIC_CATALOG["timing.pthread.drops"] == "counter"
    assert METRIC_CATALOG["memory.l2.mshr_occupancy"] == "histogram"
