"""End-to-end observability: real pipeline runs populate the registry,
sweep workers ship spans/metrics back, and the exported snapshot passes
the catalog schema check."""

import pytest

from repro.harness.artifacts import ArtifactCache
from repro.harness.experiment import ExperimentConfig, ExperimentRunner
from repro.harness.parallel import SweepExecutor
from repro.harness.report import publish_harness_metrics
from repro.model.params import SelectionConstraints
from repro.obs import (
    check_snapshot,
    get_registry,
    get_tracer,
    load_snapshot,
    reset_registry,
    reset_tracer,
    write_snapshot,
)
from repro.workloads.suite import build

SMALL_PHARMACY = dict(
    n_xact=500, n_drugs=8192, hot_drugs=512, hot_fraction=0.45, seed=11
)

PIPELINE_STAGES = ("trace", "baseline", "selection", "timing")


@pytest.fixture
def small_inputs(monkeypatch):
    """Shrink the pharmacy build everywhere — including fork workers."""
    from repro.workloads import pharmacy

    monkeypatch.setitem(pharmacy.INPUTS, "train", dict(SMALL_PHARMACY))


@pytest.fixture
def fresh_obs():
    """Fresh global tracer/registry for the test, restored afterwards."""
    from repro.obs import set_registry, set_tracer

    old_tracer = get_tracer()
    old_registry = get_registry()
    tracer = reset_tracer()
    registry = reset_registry()
    yield tracer, registry
    set_tracer(old_tracer)
    set_registry(old_registry)


def seeded_runner() -> ExperimentRunner:
    runner = ExperimentRunner()
    small = build("pharmacy", "train", **SMALL_PHARMACY)
    runner._workloads[("pharmacy", "train", small.hierarchy)] = small
    return runner


def test_experiment_run_emits_nested_spans(fresh_obs):
    tracer, _ = fresh_obs
    seeded_runner().run(ExperimentConfig(workload="pharmacy"))
    (experiment,) = tracer.root.children
    assert experiment.name == "experiment"
    assert experiment.meta["workload"] == "pharmacy"
    names = [child.name for child in experiment.children]
    for stage in PIPELINE_STAGES:
        assert stage in names
    assert experiment.find("slice+select") is not None
    assert all(span.duration >= 0 for span in experiment.walk())


def test_experiment_run_registers_split_pthread_counters(fresh_obs):
    _, registry = fresh_obs
    result = seeded_runner().run(ExperimentConfig(workload="pharmacy"))
    launches = registry.counter("timing.pthread.launches").value
    drops = registry.counter("timing.pthread.drops").value
    attempts = registry.counter("timing.pthread.attempts").value
    assert attempts == launches + drops
    assert launches == result.preexec.pthread_launches
    assert drops == result.preexec.pthread_drops


def test_parallel_sweep_merges_worker_spans_and_metrics(
    small_inputs, tmp_path, fresh_obs
):
    tracer, registry = fresh_obs
    executor = SweepExecutor(jobs=2, artifacts=ArtifactCache(tmp_path))
    configs = [
        ExperimentConfig(workload="pharmacy"),
        ExperimentConfig(
            workload="pharmacy",
            constraints=SelectionConstraints(max_pthread_length=16),
        ),
    ]
    results = executor.run(configs)

    (sweep,) = tracer.root.children
    assert sweep.name == "sweep"
    assert sweep.meta == {"cells": 2, "jobs": 2}
    experiments = [c for c in sweep.children if c.name == "experiment"]
    assert len(experiments) == 2
    # attach() tagged each worker subtree with its cell index, in order.
    assert [e.meta["cell"] for e in experiments] == [0, 1]
    for experiment in experiments:
        for stage in PIPELINE_STAGES:
            assert experiment.find(stage) is not None

    # Worker metric snapshots accumulated into the coordinator registry.
    launches = registry.counter("timing.pthread.launches").value
    drops = registry.counter("timing.pthread.drops").value
    assert launches == sum(r.preexec.pthread_launches for r in results)
    assert drops == sum(r.preexec.pthread_drops for r in results)
    assert registry.counter("timing.runs").value >= 2
    assert registry.get("memory.l2.mshr_occupancy").count > 0


def test_snapshot_of_real_run_passes_catalog_check(tmp_path, fresh_obs):
    """`repro obs check` semantics: a pipeline run + harness publish
    produces every catalog metric with the pinned type."""
    _, registry = fresh_obs
    runner = seeded_runner()
    runner.run(ExperimentConfig(workload="pharmacy"))
    publish_harness_metrics(runner.perf, runner.artifacts)
    path = tmp_path / "metrics_snapshot.json"
    write_snapshot(path, registry)
    assert check_snapshot(load_snapshot(path)) == []
