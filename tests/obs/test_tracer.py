"""Span tracer: nesting, durations, worker attach, render/export."""

import json

from repro.obs import Span, Tracer, get_tracer, reset_tracer, set_tracer
from repro.obs.tracer import SPAN_SCHEMA_VERSION


class FakeClock:
    """Injectable clock: each call advances by a scripted step."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


def test_spans_nest_and_time():
    clock = FakeClock(step=1.0)
    tracer = Tracer(clock=clock)
    with tracer.span("outer", workload="mcf"):
        with tracer.span("inner"):
            pass
    doc = tracer.to_dict()
    assert doc["schema"] == SPAN_SCHEMA_VERSION
    (outer,) = doc["spans"]
    assert outer["name"] == "outer"
    assert outer["meta"] == {"workload": "mcf"}
    (inner,) = outer["children"]
    assert inner["name"] == "inner"
    # Fake clock ticks once per call: inner spans 1 tick, outer spans 3.
    assert inner["duration"] == 1.0
    assert outer["duration"] == 3.0


def test_depth_tracks_open_spans():
    tracer = Tracer()
    assert tracer.depth == 0
    with tracer.span("a"):
        assert tracer.depth == 1
        with tracer.span("b"):
            assert tracer.depth == 2
    assert tracer.depth == 0


def test_span_reenter_accumulates_duration():
    clock = FakeClock(step=1.0)
    tracer = Tracer(clock=clock)
    with tracer.span("stage") as span:
        pass
    span.duration += 5.0
    assert span.duration == 6.0


def test_exception_still_closes_span():
    tracer = Tracer()
    try:
        with tracer.span("fails"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert tracer.depth == 0
    assert tracer.root.children[0].name == "fails"


def test_attach_worker_payload_under_open_span():
    """A worker subtree (durations only) attaches without clock alignment."""
    worker = Tracer(clock=FakeClock(step=0.5))
    with worker.span("experiment", workload="vpr.r"):
        with worker.span("trace"):
            pass
    payload = {"spans": worker.to_dict()["spans"]}

    coordinator = Tracer(clock=FakeClock(step=1.0))
    with coordinator.span("sweep", cells=1) as sweep:
        attached = coordinator.attach(payload)
    for span in attached:
        span.meta.setdefault("cell", 0)

    (experiment,) = sweep.children
    assert experiment.name == "experiment"
    assert experiment.meta == {"workload": "vpr.r", "cell": 0}
    assert experiment.duration == 1.5  # worker clock, not coordinator's
    assert experiment.children[0].name == "trace"


def test_attach_single_span_dict():
    tracer = Tracer()
    tracer.attach({"name": "orphan", "duration": 2.0})
    assert tracer.root.children[0].name == "orphan"
    assert tracer.root.children[0].duration == 2.0


def test_find_and_walk():
    tracer = Tracer()
    with tracer.span("a"):
        with tracer.span("b"):
            with tracer.span("c"):
                pass
    assert tracer.root.find("c").name == "c"
    assert tracer.root.find("nope") is None
    assert [s.name for s in tracer.root.walk()] == ["root", "a", "b", "c"]


def test_roundtrip_through_dict():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("outer", k=1):
        with tracer.span("inner"):
            pass
    restored = Span.from_dict(tracer.to_dict()["spans"][0])
    assert restored.name == "outer"
    assert restored.meta == {"k": 1}
    assert restored.children[0].name == "inner"


def test_export_writes_json(tmp_path):
    tracer = Tracer(clock=FakeClock())
    with tracer.span("pipeline"):
        pass
    out = tmp_path / "nested" / "trace.json"
    tracer.export(out)
    doc = json.loads(out.read_text())
    assert doc["schema"] == SPAN_SCHEMA_VERSION
    assert doc["spans"][0]["name"] == "pipeline"


def test_render_indents_children():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("sweep", jobs=2):
        with tracer.span("experiment"):
            pass
    text = tracer.render()
    lines = text.splitlines()
    assert lines[0].startswith("sweep")
    assert "jobs=2" in lines[0]
    assert lines[1].startswith("  experiment")


def test_global_tracer_reset_and_restore():
    original = get_tracer()
    try:
        fresh = reset_tracer()
        assert get_tracer() is fresh
        assert fresh is not original
        assert fresh.root.children == []
    finally:
        set_tracer(original)
