"""Shared fixtures: small programs, caches, and a cached pharmacy run."""

from __future__ import annotations

import pytest

from repro.engine import run_program
from repro.isa import DataImage, assemble
from repro.memory import CacheConfig, HierarchyConfig
from repro.workloads import pharmacy

#: A small hierarchy so tiny test programs still see L2 misses.
TINY_HIERARCHY = HierarchyConfig(
    l1=CacheConfig(name="L1D", size_bytes=1024, line_bytes=32, assoc=2, hit_latency=2),
    l2=CacheConfig(name="L2", size_bytes=4096, line_bytes=64, assoc=4, hit_latency=6),
    mem_latency=70,
    mshr_entries=8,
)


@pytest.fixture
def tiny_hierarchy() -> HierarchyConfig:
    return TINY_HIERARCHY


@pytest.fixture
def sum_loop_program():
    """A 100-iteration array-sum loop with data attached."""
    source = """
        addi a0, zero, 0
        addi a1, zero, 100
        addi t0, zero, 4096
    loop:
        bge  a0, a1, done
        slli t1, a0, 2
        add  t1, t1, t0
        lw   t2, 0(t1)
        add  s0, s0, t2
        addi a0, a0, 1
        j    loop
    done:
        halt
    """
    data = DataImage()
    data.store_words(4096, range(100))
    return assemble(source, data=data, name="sum_loop")


@pytest.fixture(scope="session")
def pharmacy_small():
    """A small pharmacy build (shared across the session)."""
    return pharmacy.build(
        n_xact=600, n_drugs=16384, hot_drugs=1024, hot_fraction=0.45, seed=7
    )


@pytest.fixture(scope="session")
def pharmacy_small_run(pharmacy_small):
    """Functional trace of the small pharmacy program."""
    return run_program(pharmacy_small, TINY_HIERARCHY)
