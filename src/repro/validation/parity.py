"""Cross-model parity contract between the two timing simulators.

The repo carries two independently written timing models of the same
machine: the trace-driven :class:`repro.timing.core.TimingSimulator`
(a per-instruction loop carrying cycle arithmetic in locals) and the
discrete-event :class:`repro.timing.eventsim.EventSimulator` (a typed
event heap).  They share the decoded program, the memory hierarchy,
the branch predictor, and the statistics container — but none of the
pipeline/scheduling loop code, which is where timing-model bugs live.
This module pins what the two must agree on.

**Exact checks** (bit-for-bit equality, in a pinned order):

- committed architectural state: the register file and every non-zero
  committed memory word,
- instruction, load, store, and branch counts,
- branch mispredictions and hint-covered mispredictions,
- per-level miss counts (L1, original-program L2, fully/partially
  covered L2 misses), and
- p-thread launch/drop/instruction counts, per-trigger.

These are exact because both models implement the *same machine
definition*: fetch consumes bandwidth minus stolen slots at a single
well-defined cycle, retirement is in program order, p-thread launches
happen at the trigger's dispatch cycle.  Any formulation of that
definition — loop or event heap — must produce the same committed
state and the same event counts; a mismatch is a model bug, never
noise.  In practice the two models are cycle-identical too, so the
**band checks** (total cycles and IPC within ``rel`` / ``abs``
tolerance, default 2% / 16 cycles) exist as documented headroom for
future models that relax event ordering, not as an escape hatch:
``--strict`` keeps the band at its defaults rather than widening it.

:class:`ParityReport` keeps every comparison; on failure,
:attr:`ParityReport.first_divergence` names the first diverging check
in the pinned order (the earliest observable consequence of the bug,
e.g. ``registers`` before any derived count).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.obs import get_registry as obs_registry, get_tracer

#: Default tolerance band for the cycle-level checks.
DEFAULT_REL_TOL = 0.02
DEFAULT_ABS_TOL = 16.0

#: Pinned order of the exact SimStats fields (after the architectural
#: state checks, which always come first).
EXACT_STAT_FIELDS = (
    "instructions",
    "loads",
    "stores",
    "branches",
    "mispredictions",
    "mispredicts_covered",
    "l1_misses",
    "l2_misses",
    "misses_fully_covered",
    "misses_partially_covered",
    "pthread_launches",
    "pthread_drops",
    "pthread_instructions",
    "pthread_l2_misses",
    "launches_by_trigger",
    "drops_by_trigger",
)

#: Cycle-level fields compared within the tolerance band.
BAND_STAT_FIELDS = ("cycles", "ipc")


@dataclass(frozen=True)
class ParityTolerance:
    """Tolerance band for the non-exact (cycle-level) checks."""

    rel: float = DEFAULT_REL_TOL
    abs: float = DEFAULT_ABS_TOL

    def within(self, reference: float, value: float) -> bool:
        return abs(value - reference) <= max(
            self.rel * abs(reference), self.abs
        )


@dataclass
class ParityCheck:
    """One named comparison between the two models."""

    name: str
    kind: str  # "exact" | "band"
    reference: object  # trace-driven model's value
    value: object  # event-driven model's value
    ok: bool
    detail: str = ""  # e.g. first differing keys of a state diff

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "reference": _jsonable(self.reference),
            "value": _jsonable(self.value),
            "ok": self.ok,
            "detail": self.detail,
        }

    def render(self) -> str:
        status = "ok" if self.ok else "DIVERGED"
        text = (
            f"{self.name} [{self.kind}] {status}: "
            f"trace={self.reference!r} event={self.value!r}"
        )
        if self.detail:
            text += f" ({self.detail})"
        return text


@dataclass
class ParityRun:
    """One model's observable outcome, as the contract sees it."""

    stats: Dict[str, object]
    registers: List[int]
    memory_words: Dict[int, int]


@dataclass
class ParityReport:
    """Outcome of one cross-model parity comparison.

    ``checks`` holds every comparison in the pinned contract order;
    :attr:`first_divergence` is the earliest failing one — for an
    architectural-state bug that is ``registers``/``memory`` before
    any derived count, so the report points at the first observable
    consequence of the divergence.
    """

    workload: str
    mode: str
    engine: str
    tolerance: ParityTolerance = field(default_factory=ParityTolerance)
    checks: List[ParityCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    @property
    def first_divergence(self) -> Optional[ParityCheck]:
        for check in self.checks:
            if not check.ok:
                return check
        return None

    def failed_checks(self) -> List[str]:
        return [check.name for check in self.checks if not check.ok]

    def to_dict(self) -> Dict[str, object]:
        first = self.first_divergence
        return {
            "workload": self.workload,
            "mode": self.mode,
            "engine": self.engine,
            "ok": self.ok,
            "tolerance": {"rel": self.tolerance.rel, "abs": self.tolerance.abs},
            "first_divergence": first.name if first else None,
            "checks": [check.to_dict() for check in self.checks],
        }

    def render(self) -> str:
        head = f"parity {self.workload} [{self.mode}/{self.engine}]"
        if self.ok:
            return f"{head}: OK ({len(self.checks)} checks)"
        first = self.first_divergence
        assert first is not None
        lines = [
            f"{head}: DIVERGED at {first.name}",
            f"  first divergence: {first.render()}",
        ]
        for check in self.checks:
            if not check.ok and check is not first:
                lines.append(f"  also: {check.render()}")
        return "\n".join(lines)


def _jsonable(value: object) -> object:
    if isinstance(value, dict):
        return {str(k): v for k, v in value.items()}
    return value


def _preview_diff(
    reference: Dict[object, object], value: Dict[object, object], limit: int = 4
) -> str:
    """First few differing keys of two dicts, for check payloads."""
    diffs = []
    for key in sorted(set(reference) | set(value), key=repr):
        left, right = reference.get(key), value.get(key)
        if left != right:
            diffs.append(f"{key}: {left!r} != {right!r}")
            if len(diffs) >= limit:
                diffs.append("...")
                break
    return "; ".join(diffs)


def compare_runs(
    trace: ParityRun,
    event: ParityRun,
    workload: str,
    mode: str,
    engine: str,
    tolerance: Optional[ParityTolerance] = None,
) -> ParityReport:
    """Apply the pinned parity contract to two model outcomes."""
    tolerance = tolerance or ParityTolerance()
    report = ParityReport(
        workload=workload, mode=mode, engine=engine, tolerance=tolerance
    )
    checks = report.checks

    # 1. Committed architectural state, before any derived count.
    regs_ok = trace.registers == event.registers
    checks.append(
        ParityCheck(
            "registers",
            "exact",
            len(trace.registers),
            len(event.registers),
            regs_ok,
            detail="" if regs_ok else _preview_diff(
                dict(enumerate(trace.registers)),
                dict(enumerate(event.registers)),
            ),
        )
    )
    mem_ok = trace.memory_words == event.memory_words
    checks.append(
        ParityCheck(
            "memory",
            "exact",
            len(trace.memory_words),
            len(event.memory_words),
            mem_ok,
            detail="" if mem_ok else _preview_diff(
                dict(trace.memory_words), dict(event.memory_words)
            ),
        )
    )

    # 2. Exact event counts, pinned order.
    for name in EXACT_STAT_FIELDS:
        left, right = trace.stats.get(name), event.stats.get(name)
        checks.append(
            ParityCheck(name, "exact", left, right, left == right)
        )

    # 3. Cycle-level band.
    for name in BAND_STAT_FIELDS:
        left, right = trace.stats.get(name), event.stats.get(name)
        ok = (
            isinstance(left, (int, float))
            and isinstance(right, (int, float))
            and tolerance.within(float(left), float(right))
        )
        checks.append(ParityCheck(name, "band", left, right, ok))

    return report


def _capture(sim, mode, max_instructions: int) -> ParityRun:
    stats = sim.run(mode, max_instructions=max_instructions)
    payload = stats.to_dict()
    payload["ipc"] = stats.ipc
    memory = sim.last_memory
    words = memory.snapshot() if memory is not None else {}
    return ParityRun(
        stats=payload,
        registers=list(sim.last_registers),
        memory_words={a: v for a, v in words.items() if v != 0},
    )


def run_parity(
    program,
    hierarchy_config,
    mode,
    pthreads: Optional[Sequence] = None,
    machine=None,
    engine: Optional[str] = None,
    max_instructions: int = 120_000,
    workload: str = "?",
    tolerance: Optional[ParityTolerance] = None,
) -> ParityReport:
    """Run both timing models on one configuration and compare.

    Both models run under the same instruction cap so the committed
    state they are compared on is well-defined even for workloads that
    do not halt within the cap.  Emits a ``parity`` span and folds
    verdict counters into the metrics registry (auxiliary names, not
    in the stable catalog).
    """
    from repro.timing.core import TimingSimulator
    from repro.timing.eventsim import EventSimulator

    mode_name = getattr(mode, "name", str(mode))
    with get_tracer().span(
        "parity", workload=workload, mode=mode_name
    ):
        trace_sim = TimingSimulator(
            program, hierarchy_config, machine=machine,
            pthreads=list(pthreads) if pthreads else None, engine=engine,
        )
        event_sim = EventSimulator(
            program, hierarchy_config, machine=machine,
            pthreads=list(pthreads) if pthreads else None, engine=engine,
        )
        trace_run = _capture(trace_sim, mode, max_instructions)
        event_run = _capture(event_sim, mode, max_instructions)
        report = compare_runs(
            trace_run,
            event_run,
            workload=workload,
            mode=mode_name,
            engine=str(event_sim.last_engine),
            tolerance=tolerance,
        )
    registry = obs_registry()
    registry.counter("parity.comparisons").inc()
    if not report.ok:
        registry.counter("parity.divergences").inc()
    return report
