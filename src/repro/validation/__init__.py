"""Model validation utilities."""

from repro.validation.diagnostics import (
    Diagnostic,
    correlation_summary,
    render_validation,
    validate_result,
)

__all__ = [
    "Diagnostic",
    "correlation_summary",
    "render_validation",
    "validate_result",
]
