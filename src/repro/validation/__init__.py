"""Model validation utilities."""

from repro.validation.diagnostics import (
    Diagnostic,
    correlation_summary,
    render_validation,
    validate_result,
)
from repro.validation.parity import (
    ParityCheck,
    ParityReport,
    ParityRun,
    ParityTolerance,
    compare_runs,
    run_parity,
)

__all__ = [
    "Diagnostic",
    "ParityCheck",
    "ParityReport",
    "ParityRun",
    "ParityTolerance",
    "compare_runs",
    "correlation_summary",
    "render_validation",
    "run_parity",
    "validate_result",
]
