"""Model validation: framework predictions vs. simulated measurements.

The paper's argument (§4.3): the optimizer provably finds good
solutions *of its objective*; what needs checking is whether the
objective — aggregate advantage — models reality.  So the framework's
implicit diagnostic predictions (launch counts, p-thread lengths,
overhead-only IPC, miss coverage, end IPC) are compared against the
corresponding simulations, individually for overhead and latency
tolerance so inaccuracies can be localized.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.harness.experiment import ExperimentResult
from repro.harness.report import render_table


@dataclass(frozen=True)
class Diagnostic:
    """One predicted/measured pair."""

    name: str
    predicted: float
    measured: float

    @property
    def ratio(self) -> float:
        """measured / predicted (1.0 = perfect).

        Zero cases are explicit: predicting zero and measuring zero is
        a vacuously exact prediction (1.0); predicting zero while
        measuring something is an unbounded miss (``inf``, which the
        correlation summary masks as non-finite).
        """
        if self.predicted == 0:
            if self.measured == 0:
                return 1.0
            return math.inf
        return self.measured / self.predicted

    @property
    def relative_error(self) -> float:
        """(predicted - measured) / measured; positive = overestimate."""
        if self.measured == 0:
            return float("nan") if self.predicted else 0.0
        return (self.predicted - self.measured) / self.measured


def validate_result(result: ExperimentResult) -> List[Diagnostic]:
    """All Table 2 diagnostics for one experiment.

    Requires the experiment to have been run with ``validate=True`` for
    the overhead/latency IPC diagnostics (they are skipped otherwise).
    """
    prediction = result.selection.prediction
    stats = result.preexec
    diagnostics = [
        Diagnostic("launches", prediction.launches, stats.pthread_launches),
        Diagnostic(
            "insns_per_pthread",
            prediction.avg_pthread_length,
            stats.avg_pthread_length,
        ),
        Diagnostic(
            "misses_covered", prediction.misses_covered, stats.misses_covered
        ),
        Diagnostic(
            "misses_fully_covered",
            prediction.misses_fully_covered,
            stats.misses_fully_covered,
        ),
        Diagnostic("ipc", prediction.predicted_ipc, stats.ipc),
    ]
    overhead = result.validation.get("overhead_sequence")
    if overhead is not None:
        diagnostics.append(
            Diagnostic(
                "overhead_ipc", prediction.predicted_overhead_ipc, overhead.ipc
            )
        )
    latency = result.validation.get("latency_only")
    if latency is not None:
        diagnostics.append(
            Diagnostic(
                "latency_ipc", prediction.predicted_latency_ipc, latency.ipc
            )
        )
    return diagnostics


def correlation_summary(
    results: Sequence[ExperimentResult],
) -> Dict[str, float]:
    """Pearson correlation of predicted vs. measured, per diagnostic.

    This is the cross-benchmark fidelity measure the paper's validation
    argues from: high correlation means solutions good in model space
    are good in the real world, even when absolute values drift.
    """
    by_name: Dict[str, List[Diagnostic]] = {}
    for result in results:
        for diagnostic in validate_result(result):
            by_name.setdefault(diagnostic.name, []).append(diagnostic)
    correlations: Dict[str, float] = {}
    for name, diagnostics in by_name.items():
        predicted = np.array([d.predicted for d in diagnostics], dtype=float)
        measured = np.array([d.measured for d in diagnostics], dtype=float)
        mask = np.isfinite(predicted) & np.isfinite(measured)
        predicted, measured = predicted[mask], measured[mask]
        if len(predicted) < 2 or predicted.std() == 0 or measured.std() == 0:
            correlations[name] = float("nan")
            continue
        correlations[name] = float(np.corrcoef(predicted, measured)[0, 1])
    return correlations


def render_validation(
    results: Sequence[ExperimentResult],
    diagnostics_of_interest: Optional[Sequence[str]] = None,
) -> str:
    """Tabulate predicted vs. measured per benchmark per diagnostic."""
    rows = []
    for result in results:
        for diagnostic in validate_result(result):
            if (
                diagnostics_of_interest is not None
                and diagnostic.name not in diagnostics_of_interest
            ):
                continue
            rows.append(
                [
                    result.workload.name,
                    diagnostic.name,
                    diagnostic.predicted,
                    diagnostic.measured,
                    diagnostic.ratio,
                ]
            )
    return render_table(
        ["benchmark", "diagnostic", "predicted", "measured", "meas/pred"],
        rows,
        title="Model validation: predicted vs. measured",
    )
