"""Minimal asyncio HTTP/1.1 client for the serve daemon.

Used by the ``repro bench serve`` load harness and the e2e tests; it
speaks just enough HTTP for the daemon's five routes (keep-alive,
``Content-Length`` bodies) with no external dependency.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple


class ServeClient:
    """One keep-alive connection to a running daemon."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._reader = None
        self._writer = None

    async def request(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One round trip; reconnects once if the link had gone stale."""
        for attempt in (0, 1):
            if self._writer is None:
                await self._connect()
            try:
                return await self._round_trip(method, path, body)
            except (ConnectionError, asyncio.IncompleteReadError, OSError):
                await self.close()
                if attempt:
                    raise
        raise RuntimeError("unreachable")

    async def _round_trip(
        self, method: str, path: str, body: Optional[bytes]
    ) -> Tuple[int, Dict[str, str], bytes]:
        assert self._reader is not None and self._writer is not None
        payload = body or b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Content-Type: application/json\r\n"
            f"Connection: keep-alive\r\n\r\n"
        ).encode("latin-1")
        self._writer.write(head + payload)
        await self._writer.drain()
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        parts = status_line.decode("latin-1").split(" ", 2)
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if not line:
                raise ConnectionError("truncated response headers")
            if line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        data = await self._reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            await self.close()
        return status, headers, data

    async def get(self, path: str) -> Tuple[int, Dict[str, str], bytes]:
        return await self.request("GET", path)

    async def get_json(self, path: str) -> Tuple[int, Any]:
        status, _, data = await self.request("GET", path)
        return status, json.loads(data) if data else None

    async def post_json(
        self, path: str, doc: Any
    ) -> Tuple[int, Dict[str, str], Any]:
        status, headers, data = await self.request(
            "POST", path, json.dumps(doc).encode("utf-8")
        )
        return status, headers, json.loads(data) if data else None
