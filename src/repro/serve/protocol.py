"""Request/response schema for the serve daemon.

One schema version covers both directions.  Requests are small JSON
documents naming a workload plus the experiment knobs the HTTP API
exposes; responses are built from the exact same objects the offline
pipeline produces (:class:`~repro.harness.experiment.ExperimentResult`),
so a served payload is bit-for-bit the payload an offline
:class:`~repro.harness.experiment.ExperimentRunner` run would yield for
the same configuration — the serve e2e test pins that equivalence.

A request that exhausts its soft budget mid-pipeline still gets a
well-formed JSON payload (``status: "budget_exceeded"``) describing the
stages that did complete; see
:class:`~repro.harness.experiment.PartialExperimentResult`.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional

from repro.harness.experiment import (
    ExperimentConfig,
    ExperimentResult,
    PartialExperimentResult,
)
from repro.model.params import SelectionConstraints
from repro.timing.config import MachineConfig
from repro.workloads.suite import SUITE

SERVE_SCHEMA_VERSION = 1

#: Request keys accepted at the top level, besides the nested objects.
_SCALAR_KEYS = {
    "workload": str,
    "input": str,
    "validate": bool,
    "verify": bool,
    "selection_input": str,
    "selection_prefix": int,
    "granularity": int,
    "effective_latency": bool,
    "model_mem_latency": int,
    "model_bw_seq": int,
    "budget_seconds": (int, float),
}


class ProtocolError(ValueError):
    """A malformed or unsupported request document (HTTP 400)."""


@dataclasses.dataclass(frozen=True)
class RunRequest:
    """A validated submission: the experiment cell plus its soft budget."""

    config: ExperimentConfig
    budget_seconds: Optional[float] = None


def _nested(doc: Dict[str, Any], key: str, cls):
    """Build a dataclass from a nested request object, field-checked."""
    raw = doc.get(key)
    if raw is None:
        return None
    if not isinstance(raw, dict):
        raise ProtocolError(f"{key!r} must be an object")
    allowed = {f.name for f in dataclasses.fields(cls)}
    unknown = set(raw) - allowed
    if unknown:
        raise ProtocolError(
            f"unknown {key} field(s): {sorted(unknown)} "
            f"(allowed: {sorted(allowed)})"
        )
    try:
        return cls(**raw)
    except (TypeError, ValueError) as error:
        raise ProtocolError(f"invalid {key}: {error}") from None


def parse_run_request(doc: Any) -> RunRequest:
    """Validate a ``POST /v1/run`` JSON body into a :class:`RunRequest`."""
    if not isinstance(doc, dict):
        raise ProtocolError("request body must be a JSON object")
    unknown = set(doc) - set(_SCALAR_KEYS) - {"constraints", "machine"}
    if unknown:
        raise ProtocolError(f"unknown request field(s): {sorted(unknown)}")
    for key, types in _SCALAR_KEYS.items():
        value = doc.get(key)
        if value is not None and not isinstance(value, types):
            # bool is an int subclass; reject it for the numeric keys.
            if not (isinstance(value, bool) and types is bool):
                raise ProtocolError(f"{key!r} has the wrong type")
        if isinstance(value, bool) and types is not bool:
            raise ProtocolError(f"{key!r} has the wrong type")
    workload = doc.get("workload")
    if not workload:
        raise ProtocolError("missing required field 'workload'")
    known = set(SUITE) | {"pharmacy"}
    if workload not in known:
        raise ProtocolError(
            f"unknown workload {workload!r} (known: {sorted(known)})"
        )
    budget = doc.get("budget_seconds")
    if budget is not None and budget <= 0:
        raise ProtocolError("'budget_seconds' must be positive")
    constraints = _nested(doc, "constraints", SelectionConstraints)
    machine = _nested(doc, "machine", MachineConfig)
    kwargs: Dict[str, Any] = {
        "workload": workload,
        "input_name": doc.get("input", "train"),
        "validate": bool(doc.get("validate", False)),
        "verify": bool(doc.get("verify", False)),
        "selection_input": doc.get("selection_input"),
        "selection_prefix": doc.get("selection_prefix"),
        "granularity": doc.get("granularity"),
        "effective_latency": bool(doc.get("effective_latency", False)),
        "model_mem_latency": doc.get("model_mem_latency"),
        "model_bw_seq": doc.get("model_bw_seq"),
    }
    if constraints is not None:
        kwargs["constraints"] = constraints
    if machine is not None:
        kwargs["machine"] = machine
    try:
        config = ExperimentConfig(**kwargs)
    except (TypeError, ValueError) as error:
        raise ProtocolError(f"invalid request: {error}") from None
    return RunRequest(
        config=config,
        budget_seconds=float(budget) if budget is not None else None,
    )


def request_cache_key(request: RunRequest) -> str:
    """Canonical identity of a request's *result* (budget excluded).

    Two submissions asking for the same experiment cell produce the
    same payload no matter their budgets, so the response cache keys on
    the config alone.
    """
    from repro.harness.artifacts import stable_key

    return stable_key("serve-request", config=request.config)


def _selection_payload(result: ExperimentResult) -> Dict[str, Any]:
    prediction = result.selection.prediction
    return {
        "num_pthreads": len(result.selection.pthreads),
        "triggers": [p.trigger_pc for p in result.selection.pthreads],
        "lengths": [len(p.body) for p in result.selection.pthreads],
        "description": result.selection.describe(),
        "prediction": {
            "predicted_ipc": prediction.predicted_ipc,
            "predicted_speedup": prediction.predicted_speedup,
            "coverage_fraction": prediction.coverage_fraction,
            "full_coverage_fraction": prediction.full_coverage_fraction,
            "launches": prediction.launches,
            "avg_pthread_length": prediction.avg_pthread_length,
        },
    }


def result_payload(result: ExperimentResult) -> Dict[str, Any]:
    """The complete JSON document for a finished experiment.

    ``summary`` is exactly the row the table/figure builders consume
    (:meth:`ExperimentResult.summary_row`), so clients can assemble
    Table 2 / figure series from served responses.
    """
    return {
        "schema": SERVE_SCHEMA_VERSION,
        "status": "ok",
        "workload": result.config.workload,
        "input": result.config.input_name,
        "summary": result.summary_row(),
        "speedup": result.speedup,
        "coverage": result.coverage,
        "full_coverage": result.full_coverage,
        "selection": _selection_payload(result),
        "stats": {
            "baseline": result.baseline.to_dict(),
            "preexec": result.preexec.to_dict(),
            "validation": {
                name: stats.to_dict()
                for name, stats in sorted(result.validation.items())
            },
        },
        "num_regions": result.num_regions,
        "timings": dict(result.timings),
    }


def partial_payload(partial: PartialExperimentResult) -> Dict[str, Any]:
    """Truncated-but-well-formed document for a budget-cut experiment."""
    return {
        "schema": SERVE_SCHEMA_VERSION,
        "status": "budget_exceeded",
        "budget_exceeded": True,
        "workload": partial.config.workload,
        "input": partial.config.input_name,
        "next_stage": partial.next_stage,
        "stages_completed": list(partial.stages_completed),
        "timings": dict(partial.timings),
    }


def error_payload(message: str, status: str = "error") -> Dict[str, Any]:
    return {
        "schema": SERVE_SCHEMA_VERSION,
        "status": status,
        "error": message,
    }
