"""Minimal asyncio HTTP/1.1 front end for the serve daemon.

Hand-rolled on :func:`asyncio.start_server` — the repository has no web
framework dependency and the API surface is five routes:

================  ======  =============================================
``/v1/run``       POST    submit a workload/scenario JSON document
``/healthz``      GET     liveness + queue depth
``/metrics``      GET     Prometheus text exposition (repro.obs)
``/metrics/json`` GET     metrics snapshot document (``repro obs check``)
``/trace/<id>``   GET     span tree of a completed request
================  ======  =============================================

``POST /v1/run`` answers 200 with the experiment payload (the request
id travels in the ``X-Request-Id`` header so the body stays bit-for-bit
identical to the offline pipeline's payload), 400 on a malformed
document, and 503 + ``Retry-After`` when the bounded queue sheds load.
Connections are keep-alive; a ``Connection: close`` header or protocol
error closes them.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from repro.obs import get_registry, snapshot_document, to_prometheus
from repro.serve.protocol import (
    ProtocolError,
    error_payload,
    parse_run_request,
)
from repro.serve.state import QueueFullError, ServeConfig, ServerState

_MAX_LINE = 8192
_MAX_HEADERS = 64

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

_PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
_JSON_CONTENT_TYPE = "application/json"


def _json_bytes(payload: Dict[str, Any]) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


class ReproServer:
    """Owns the listening socket and routes requests into the state."""

    def __init__(self, state: ServerState) -> None:
        self.state = state
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def address(self) -> Tuple[str, int]:
        assert self._server is not None, "server not started"
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> None:
        self.state.start_workers()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.state.config.host,
            port=self.state.config.port,
        )

    async def serve_forever(self) -> None:
        assert self._server is not None, "server not started"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.state.close()

    # -- connection handling -------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                keep_alive = await self._handle_one(reader, writer)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        request_line = await reader.readline()
        if not request_line or len(request_line) > _MAX_LINE:
            return False
        try:
            method, target, version = (
                request_line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            await self._respond(
                writer, 400, _json_bytes(error_payload("malformed request line"))
            )
            return False
        headers: Dict[str, str] = {}
        for _ in range(_MAX_HEADERS):
            line = await reader.readline()
            if not line or len(line) > _MAX_LINE:
                return False
            if line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            await self._respond(
                writer, 400, _json_bytes(error_payload("too many headers"))
            )
            return False
        keep_alive = (
            headers.get("connection", "keep-alive").lower() != "close"
            and version != "HTTP/1.0"
        )
        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                nbytes = int(length)
            except ValueError:
                await self._respond(
                    writer, 400,
                    _json_bytes(error_payload("bad content-length")),
                )
                return False
            if nbytes > self.state.config.max_body_bytes:
                await self._respond(
                    writer, 413,
                    _json_bytes(error_payload("request body too large")),
                )
                return False
            if nbytes:
                body = await reader.readexactly(nbytes)
        status, payload_bytes, content_type, extra = await self._route(
            method, target, body
        )
        await self._respond(
            writer, status, payload_bytes, content_type, extra, keep_alive
        )
        return keep_alive

    async def _route(
        self, method: str, target: str, body: bytes
    ) -> Tuple[int, bytes, str, Dict[str, str]]:
        path = target.split("?", 1)[0]
        if path == "/v1/run":
            if method != "POST":
                return (
                    405,
                    _json_bytes(error_payload("use POST")),
                    _JSON_CONTENT_TYPE,
                    {"Allow": "POST"},
                )
            return await self._route_run(body)
        if method != "GET":
            return (
                405,
                _json_bytes(error_payload("use GET")),
                _JSON_CONTENT_TYPE,
                {"Allow": "GET"},
            )
        if path == "/healthz":
            return (
                200,
                _json_bytes(self.state.health()),
                _JSON_CONTENT_TYPE,
                {},
            )
        if path == "/metrics":
            doc = snapshot_document(get_registry())
            text = to_prometheus(doc["metrics"])
            return 200, text.encode("utf-8"), _PROM_CONTENT_TYPE, {}
        if path == "/metrics/json":
            doc = snapshot_document(get_registry())
            return (
                200,
                (json.dumps(doc, indent=2, sort_keys=True) + "\n").encode(),
                _JSON_CONTENT_TYPE,
                {},
            )
        if path.startswith("/trace/"):
            request_id = path[len("/trace/"):]
            record = self.state.trace_record(request_id)
            if record is None:
                return (
                    404,
                    _json_bytes(
                        error_payload(f"no trace for request {request_id!r}")
                    ),
                    _JSON_CONTENT_TYPE,
                    {},
                )
            return 200, _json_bytes(record), _JSON_CONTENT_TYPE, {}
        return (
            404,
            _json_bytes(error_payload(f"no route {path!r}")),
            _JSON_CONTENT_TYPE,
            {},
        )

    async def _route_run(
        self, body: bytes
    ) -> Tuple[int, bytes, str, Dict[str, str]]:
        try:
            doc = json.loads(body.decode("utf-8")) if body else None
            request = parse_run_request(doc)
        except (ValueError, UnicodeDecodeError) as error:
            return (
                400,
                _json_bytes(error_payload(str(error))),
                _JSON_CONTENT_TYPE,
                {},
            )
        try:
            request_id, payload = await self.state.submit(request)
        except QueueFullError as shed:
            return (
                503,
                _json_bytes(
                    error_payload("request queue full", status="rejected")
                ),
                _JSON_CONTENT_TYPE,
                {"Retry-After": str(shed.retry_after)},
            )
        except Exception as error:
            return (
                500,
                _json_bytes(error_payload(f"experiment failed: {error}")),
                _JSON_CONTENT_TYPE,
                {},
            )
        return (
            200,
            _json_bytes(payload),
            _JSON_CONTENT_TYPE,
            {"X-Request-Id": request_id},
        )

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        content_type: str = _JSON_CONTENT_TYPE,
        extra_headers: Optional[Dict[str, str]] = None,
        keep_alive: bool = False,
    ) -> None:
        lines = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()


async def run_server(config: ServeConfig, ready=None) -> None:
    """Build state + server, announce readiness, serve until cancelled."""
    state = ServerState(config)
    server = ReproServer(state)
    await server.start()
    host, port = server.address
    if ready is not None:
        ready(host, port)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.close()
