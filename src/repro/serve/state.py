"""Shared warm state and request execution for the serve daemon.

One :class:`ServerState` owns everything that makes the daemon faster
than one-shot CLI runs:

* a single shared :class:`~repro.harness.experiment.ExperimentRunner`
  whose in-memory stage caches (workloads, traces, baselines,
  selections) and the process-wide compile memo behind it stay warm
  across requests, backed by the persistent
  :class:`~repro.harness.artifacts.ArtifactCache`/``CodeCache``;
* a bounded submission queue — when it is full the daemon sheds load
  (HTTP 503 + ``Retry-After``) instead of queueing without bound;
* worker coroutines that drain the queue in small batches and execute
  them through :meth:`SweepExecutor.run_one` on a thread pool, so the
  event loop never blocks on a simulation;
* a bounded response cache keyed on the canonical request config, so a
  repeat submission is answered without re-entering the pipeline;
* a bounded span-tree history backing ``/trace/<id>``.

Every request carries a soft budget (its own ``budget_seconds`` or the
server default): the deadline is only consulted between pipeline
stages, and an expired budget yields a truncated-but-well-formed
payload rather than an error (see :mod:`repro.serve.protocol`).
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.harness.artifacts import ArtifactCache
from repro.harness.experiment import ExperimentResult, ExperimentRunner
from repro.harness.parallel import SweepExecutor
from repro.harness.report import publish_harness_metrics
from repro.obs import get_registry, get_tracer
from repro.serve.protocol import (
    RunRequest,
    partial_payload,
    request_cache_key,
    result_payload,
)

#: Latency buckets in seconds for the serve.request.seconds histogram.
LATENCY_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10)


@dataclass(frozen=True)
class ServeConfig:
    """Daemon knobs (CLI flags map 1:1 onto these)."""

    host: str = "127.0.0.1"
    port: int = 8421
    workers: int = 2
    queue_size: int = 32
    batch_max: int = 4
    max_instructions: int = 10_000_000
    default_budget_seconds: Optional[float] = None
    response_cache_size: int = 256
    trace_history: int = 256
    max_body_bytes: int = 1 << 20
    retry_after_seconds: int = 1
    no_cache: bool = False


class QueueFullError(RuntimeError):
    """Submission rejected because the bounded queue is at capacity."""

    def __init__(self, retry_after: int) -> None:
        super().__init__("request queue full")
        self.retry_after = retry_after


@dataclass
class _Job:
    request_id: str
    request: RunRequest
    future: "asyncio.Future[Dict[str, Any]]"
    loop: asyncio.AbstractEventLoop


class ServerState:
    """Warm caches, the bounded queue, and the worker pool."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        artifacts = None if self.config.no_cache else ArtifactCache.from_env()
        self.runner = ExperimentRunner(
            max_instructions=self.config.max_instructions, artifacts=artifacts
        )
        # jobs=1: cells run in-process on the shared runner, which is
        # exactly what keeps its caches warm across requests.  The
        # thread pool below provides the request-level concurrency.
        self.executor = SweepExecutor(
            jobs=1, runner=self.runner, artifacts=artifacts
        )
        self.started = time.monotonic()
        self._seq = 0
        self._seq_lock = threading.Lock()
        self._queue: "asyncio.Queue[_Job]" = asyncio.Queue(
            maxsize=max(1, self.config.queue_size)
        )
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, self.config.workers),
            thread_name_prefix="repro-serve",
        )
        self._workers: List[asyncio.Task] = []
        self._records: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._records_lock = threading.Lock()
        self._responses: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._responses_lock = threading.Lock()
        self._register_metrics()

    # -- metrics --------------------------------------------------------

    def _register_metrics(self) -> None:
        registry = get_registry()
        for name in (
            "serve.requests.total",
            "serve.requests.ok",
            "serve.requests.errors",
            "serve.requests.rejected",
            "serve.requests.budget_exceeded",
            "serve.requests.cache_hits",
        ):
            registry.counter(name)
        registry.gauge("serve.queue.depth")
        registry.histogram("serve.batch.size")
        registry.histogram("serve.request.seconds", buckets=LATENCY_BUCKETS)

    def _count(self, name: str, amount: int = 1) -> None:
        get_registry().counter(name).inc(amount)

    # -- lifecycle ------------------------------------------------------

    def start_workers(self) -> None:
        if self._workers:
            return
        for index in range(max(1, self.config.workers)):
            self._workers.append(
                asyncio.get_running_loop().create_task(
                    self._worker_loop(index), name=f"serve-worker-{index}"
                )
            )

    async def close(self) -> None:
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._workers = []
        self._pool.shutdown(wait=False, cancel_futures=True)

    # -- submission -----------------------------------------------------

    def next_request_id(self) -> str:
        with self._seq_lock:
            self._seq += 1
            return f"r{self._seq:06d}"

    async def submit(self, request: RunRequest) -> Tuple[str, Dict[str, Any]]:
        """Queue one request; returns ``(request_id, payload)``.

        Raises :class:`QueueFullError` when the bounded queue sheds the
        submission.  A response-cache hit is answered immediately and
        never touches the queue.
        """
        request_id = self.next_request_id()
        self._count("serve.requests.total")
        cached = self._response_get(request_cache_key(request))
        if cached is not None:
            self._count("serve.requests.cache_hits")
            self._count("serve.requests.ok")
            self._record(request_id, request, cached, spans=None, cached=True)
            return request_id, cached
        loop = asyncio.get_running_loop()
        job = _Job(
            request_id=request_id,
            request=request,
            future=loop.create_future(),
            loop=loop,
        )
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            self._count("serve.requests.rejected")
            raise QueueFullError(self.config.retry_after_seconds) from None
        get_registry().gauge("serve.queue.depth").set(self._queue.qsize())
        return request_id, await job.future

    # -- worker loop ----------------------------------------------------

    async def _worker_loop(self, index: int) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = [await self._queue.get()]
            while len(batch) < max(1, self.config.batch_max):
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            registry = get_registry()
            registry.gauge("serve.queue.depth").set(self._queue.qsize())
            registry.histogram("serve.batch.size").observe(len(batch))
            try:
                await loop.run_in_executor(
                    self._pool, self._run_batch, batch
                )
            except Exception as error:  # pool torn down mid-flight
                for job in batch:
                    if not job.future.done():
                        job.future.set_exception(error)
            finally:
                for _ in batch:
                    self._queue.task_done()

    def _run_batch(self, batch: List[_Job]) -> None:
        """Execute one drained batch on the shared runner (worker thread).

        Each job gets its own ``request`` span; the contextvars-scoped
        tracer keeps concurrent batches' spans from nesting under each
        other.  Failures resolve the job's future with the exception —
        one bad request never poisons its batchmates.
        """
        tracer = get_tracer()
        for job in batch:
            start = time.perf_counter()
            try:
                with tracer.span(
                    "request",
                    id=job.request_id,
                    workload=job.request.config.workload,
                ) as span:
                    payload = self._execute(job.request)
                spans = span.to_dict()
                tracer.root.children.remove(span)
            except Exception as error:
                self._count("serve.requests.errors")
                job.loop.call_soon_threadsafe(
                    _resolve, job.future, None, error
                )
                continue
            elapsed = time.perf_counter() - start
            registry = get_registry()
            registry.histogram(
                "serve.request.seconds", buckets=LATENCY_BUCKETS
            ).observe(elapsed)
            if payload["status"] == "ok":
                self._count("serve.requests.ok")
            else:
                self._count("serve.requests.budget_exceeded")
            self._record(job.request_id, job.request, payload, spans)
            # Publish harness/cache gauges *before* resolving the future:
            # a client scraping /metrics right after its response must
            # see a snapshot that passes the catalog check.
            publish_harness_metrics(self.runner.perf, self.runner.artifacts)
            job.loop.call_soon_threadsafe(_resolve, job.future, payload, None)

    def _execute(self, request: RunRequest) -> Dict[str, Any]:
        budget = (
            request.budget_seconds
            if request.budget_seconds is not None
            else self.config.default_budget_seconds
        )
        deadline = time.monotonic() + budget if budget is not None else None
        outcome = self.executor.run_one(request.config, deadline=deadline)
        if isinstance(outcome, ExperimentResult):
            payload = result_payload(outcome)
            self._response_put(request_cache_key(request), payload)
            return payload
        return partial_payload(outcome)

    # -- response cache -------------------------------------------------

    def _response_get(self, key: str) -> Optional[Dict[str, Any]]:
        with self._responses_lock:
            payload = self._responses.get(key)
            if payload is not None:
                self._responses.move_to_end(key)
            return payload

    def _response_put(self, key: str, payload: Dict[str, Any]) -> None:
        with self._responses_lock:
            self._responses[key] = payload
            self._responses.move_to_end(key)
            while len(self._responses) > self.config.response_cache_size:
                self._responses.popitem(last=False)

    # -- trace records --------------------------------------------------

    def _record(
        self,
        request_id: str,
        request: RunRequest,
        payload: Dict[str, Any],
        spans: Optional[Dict[str, Any]],
        cached: bool = False,
    ) -> None:
        record = {
            "id": request_id,
            "workload": request.config.workload,
            "input": request.config.input_name,
            "status": payload.get("status"),
            "cached": cached,
            "spans": spans,
        }
        with self._records_lock:
            self._records[request_id] = record
            while len(self._records) > self.config.trace_history:
                self._records.popitem(last=False)

    def trace_record(self, request_id: str) -> Optional[Dict[str, Any]]:
        with self._records_lock:
            record = self._records.get(request_id)
            return dict(record) if record is not None else None

    # -- health ---------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        registry = get_registry()
        return {
            "status": "ok",
            "uptime_seconds": round(time.monotonic() - self.started, 3),
            "queue_depth": self._queue.qsize(),
            "queue_size": self.config.queue_size,
            "workers": self.config.workers,
            "requests_total": registry.counter("serve.requests.total").value,
            "cache_enabled": self.runner.artifacts is not None,
        }


def _resolve(future: "asyncio.Future", payload, error) -> None:
    if future.done():
        return
    if error is not None:
        future.set_exception(error)
    else:
        future.set_result(payload)
