"""``repro bench serve`` — load harness for the serve daemon.

Two measurements per workload:

1. **Cold CLI reference** — a fresh subprocess runs
   ``python -m repro run <workload> --no-cache`` with every persistent
   cache disabled, exactly what a one-shot user pays.  The span tree it
   exports yields the simulation-stage seconds (trace + baseline +
   timing).
2. **Served load phase** — an in-process daemon is primed with one
   request per workload (the cold in-server run), then ``--requests``
   submissions fan out over ``--concurrency`` keep-alive connections.
   Warm requests are answered from the shared runner caches and the
   response cache, so their end-to-end latency *is* an upper bound on
   their sim-stage latency.

``--check`` enforces the floors the issue pins: zero request failures
at the smoke concurrency level, and per workload the cold CLI
sim-stage time must be at least :data:`MIN_WARM_SPEEDUP` times the
warm-request p50 latency — the daemon's entire reason to exist.

The payload mirrors ``results/BENCH_simspeed.json`` conventions and is
written to ``results/BENCH_serve.json``.
"""

from __future__ import annotations

import asyncio
import json
import os
import subprocess
import sys
import tempfile
import time
from collections import deque
from pathlib import Path
from typing import Any, Dict, List, Sequence

SERVE_BENCH_SCHEMA = 1

#: Warm-request p50 latency must beat the cold CLI sim-stage time by
#: at least this factor.
MIN_WARM_SPEEDUP = 5.0

#: Pipeline stages whose span durations count as "simulation time",
#: matching repro.harness.simspeed's cold Table 2 accounting.
_SIM_STAGES = frozenset({"trace", "baseline", "timing"})

DEFAULT_RESULTS_PATH = "results/BENCH_serve.json"


def _stage_seconds(span: Dict[str, Any], names: frozenset) -> float:
    total = 0.0
    if span.get("name") in names:
        total += span.get("duration", 0.0)
    for child in span.get("children", ()):
        total += _stage_seconds(child, names)
    return total


def _percentile(samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile; 0.0 for an empty sample set."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _cold_reference(workload: str) -> Dict[str, float]:
    """One fully cold CLI run of ``workload`` in a fresh subprocess."""
    import repro

    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = "off"
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir + os.pathsep + existing if existing else src_dir
    )
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "trace.json"
        start = time.perf_counter()
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "run", workload,
                "--no-cache", "--trace", str(trace_path),
            ],
            env=env,
            capture_output=True,
            text=True,
        )
        wall = time.perf_counter() - start
        if proc.returncode != 0:
            raise RuntimeError(
                f"cold reference run of {workload!r} failed:\n{proc.stderr}"
            )
        doc = json.loads(trace_path.read_text())
    sim = sum(_stage_seconds(span, _SIM_STAGES) for span in doc["spans"])
    return {"cold_wall_seconds": wall, "cold_sim_seconds": sim}


async def _load_phase(
    workloads: Sequence[str],
    requests: int,
    concurrency: int,
    workers: int,
) -> Dict[str, Any]:
    """Prime the daemon, then drive the measured request storm."""
    from repro.serve.client import ServeClient
    from repro.serve.http import ReproServer
    from repro.serve.state import ServeConfig, ServerState

    config = ServeConfig(
        host="127.0.0.1",
        port=0,
        workers=max(1, workers),
        # Floors require zero shed requests at smoke concurrency, so
        # the queue is sized to hold the entire storm.
        queue_size=max(64, requests + concurrency),
    )
    state = ServerState(config)
    server = ReproServer(state)
    await server.start()
    host, port = server.address
    priming: Dict[str, float] = {}
    latencies: Dict[str, List[float]] = {name: [] for name in workloads}
    failures: List[str] = []
    try:
        primer = ServeClient(host, port)
        for name in workloads:
            start = time.perf_counter()
            status, _, payload = await primer.post_json(
                "/v1/run", {"workload": name}
            )
            priming[name] = time.perf_counter() - start
            if status != 200 or payload.get("status") != "ok":
                failures.append(
                    f"priming {name}: HTTP {status} {payload.get('status')}"
                )
        await primer.close()

        pending = deque(
            workloads[index % len(workloads)] for index in range(requests)
        )

        async def drive(client: ServeClient) -> None:
            while True:
                try:
                    name = pending.popleft()
                except IndexError:
                    return
                start = time.perf_counter()
                try:
                    status, _, payload = await client.post_json(
                        "/v1/run", {"workload": name}
                    )
                except Exception as error:
                    failures.append(f"{name}: {error}")
                    continue
                elapsed = time.perf_counter() - start
                if status != 200 or payload.get("status") != "ok":
                    failures.append(
                        f"{name}: HTTP {status} {payload.get('status')}"
                    )
                else:
                    latencies[name].append(elapsed)

        clients = [
            ServeClient(host, port) for _ in range(max(1, concurrency))
        ]
        storm_start = time.perf_counter()
        await asyncio.gather(*(drive(client) for client in clients))
        storm_elapsed = time.perf_counter() - storm_start
        for client in clients:
            await client.close()
        health = state.health()
    finally:
        await server.close()
    return {
        "priming_seconds": priming,
        "latencies": latencies,
        "failures": failures,
        "elapsed_seconds": storm_elapsed,
        "health": health,
    }


def bench_serve(
    workloads: Sequence[str],
    requests: int = 24,
    concurrency: int = 4,
    workers: int = 2,
) -> Dict[str, Any]:
    """Run the full benchmark; returns the JSON-ready payload."""
    cold = {name: _cold_reference(name) for name in workloads}
    load = asyncio.run(
        _load_phase(workloads, requests, concurrency, workers)
    )
    per_workload: Dict[str, Dict[str, float]] = {}
    all_warm: List[float] = []
    for name in workloads:
        warm = load["latencies"][name]
        all_warm.extend(warm)
        p50 = _percentile(warm, 0.50)
        entry: Dict[str, float] = {
            "cold_wall_seconds": cold[name]["cold_wall_seconds"],
            "cold_sim_seconds": cold[name]["cold_sim_seconds"],
            "priming_seconds": load["priming_seconds"].get(name, 0.0),
            "warm_requests": float(len(warm)),
            "warm_p50_seconds": p50,
            "warm_p99_seconds": _percentile(warm, 0.99),
        }
        entry["warm_speedup"] = (
            cold[name]["cold_sim_seconds"] / p50 if p50 > 0 else 0.0
        )
        per_workload[name] = entry
    elapsed = load["elapsed_seconds"]
    return {
        "schema": SERVE_BENCH_SCHEMA,
        "config": {
            "workloads": list(workloads),
            "requests": requests,
            "concurrency": concurrency,
            "workers": workers,
        },
        "workloads": per_workload,
        "load": {
            "requests": requests,
            "failures": len(load["failures"]),
            "failure_detail": load["failures"][:20],
            "elapsed_seconds": elapsed,
            "requests_per_second": (
                requests / elapsed if elapsed > 0 else 0.0
            ),
            "p50_seconds": _percentile(all_warm, 0.50),
            "p99_seconds": _percentile(all_warm, 0.99),
        },
        "floors": {"min_warm_speedup": MIN_WARM_SPEEDUP},
    }


def check_payload(payload: Dict[str, Any]) -> List[str]:
    """Regression gates over a serve benchmark payload."""
    problems: List[str] = []
    failures = payload["load"]["failures"]
    if failures:
        detail = "; ".join(payload["load"].get("failure_detail", []))
        problems.append(f"{failures} request failure(s): {detail}")
    floor = payload.get("floors", {}).get(
        "min_warm_speedup", MIN_WARM_SPEEDUP
    )
    for name, entry in sorted(payload["workloads"].items()):
        if not entry["warm_requests"]:
            problems.append(f"{name}: no warm requests were measured")
            continue
        if entry["warm_speedup"] < floor:
            problems.append(
                f"{name}: warm p50 {entry['warm_p50_seconds']:.4f}s is only "
                f"{entry['warm_speedup']:.1f}x faster than the cold CLI "
                f"sim stages ({entry['cold_sim_seconds']:.3f}s); "
                f"floor is {floor:.0f}x"
            )
    return problems


def render(payload: Dict[str, Any]) -> str:
    """Fixed-width summary of a serve benchmark payload."""
    title = "Serve daemon latency (warm requests vs cold CLI)"
    lines = [title, "=" * len(title)]
    for name, entry in sorted(payload["workloads"].items()):
        lines.append(
            f"{name:<10} cold sim {entry['cold_sim_seconds']:7.3f}s  "
            f"prime {entry['priming_seconds']:7.3f}s  "
            f"warm p50 {entry['warm_p50_seconds'] * 1e3:8.2f}ms "
            f"p99 {entry['warm_p99_seconds'] * 1e3:8.2f}ms  "
            f"({entry['warm_speedup']:7.1f}x)"
        )
    load = payload["load"]
    lines.append(
        f"\n{load['requests']} request(s) in {load['elapsed_seconds']:.2f}s "
        f"= {load['requests_per_second']:.1f} req/s, "
        f"{load['failures']} failure(s); overall p50 "
        f"{load['p50_seconds'] * 1e3:.2f}ms p99 "
        f"{load['p99_seconds'] * 1e3:.2f}ms"
    )
    return "\n".join(lines)


def write_results(payload: Dict[str, Any], path=DEFAULT_RESULTS_PATH) -> None:
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


__all__ = [
    "MIN_WARM_SPEEDUP",
    "SERVE_BENCH_SCHEMA",
    "bench_serve",
    "check_payload",
    "render",
    "write_results",
]
