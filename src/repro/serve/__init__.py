"""``repro serve`` — long-lived selection/simulation daemon.

An asyncio HTTP/JSON service over the experiment pipeline: submit a
workload/scenario, get the selection, measured statistics, and
table/figure payloads, with warm in-process state (compile memo,
artifact/code caches, runner stage caches) shared across requests.

Layout:

- :mod:`repro.serve.protocol` — request/response schema;
- :mod:`repro.serve.state` — warm caches, bounded queue, worker pool;
- :mod:`repro.serve.http` — the asyncio HTTP/1.1 front end;
- :mod:`repro.serve.client` — the minimal client (bench + tests);
- :mod:`repro.serve.bench` — the ``repro bench serve`` load harness.
"""

from .protocol import (
    SERVE_SCHEMA_VERSION,
    ProtocolError,
    RunRequest,
    error_payload,
    parse_run_request,
    partial_payload,
    result_payload,
)
from .state import QueueFullError, ServeConfig, ServerState
from .http import ReproServer, run_server
from .client import ServeClient

__all__ = [
    "ProtocolError",
    "QueueFullError",
    "ReproServer",
    "RunRequest",
    "SERVE_SCHEMA_VERSION",
    "ServeClient",
    "ServeConfig",
    "ServerState",
    "error_payload",
    "parse_run_request",
    "partial_payload",
    "result_payload",
    "run_server",
]
