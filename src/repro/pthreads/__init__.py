"""P-threads: bodies, optimization, merging, and the reference interpreter."""

from repro.pthreads.body import (
    BodyDataflow,
    PThreadBody,
    VIRTUAL_REG_BASE,
    analyze_dataflow,
)
from repro.pthreads.interp import BodyExecution, execute_body
from repro.pthreads.merger import (
    common_prefix_length,
    merge_pthreads,
    merge_two,
)
from repro.pthreads.optimizer import (
    OptimizationReport,
    OptimizedBody,
    eliminate_dead_code,
    eliminate_moves,
    eliminate_store_load_pairs,
    fold_constants,
    optimize_body,
)
from repro.pthreads.pthread import PThreadPrediction, StaticPThread

__all__ = [
    "BodyDataflow",
    "BodyExecution",
    "OptimizationReport",
    "OptimizedBody",
    "PThreadBody",
    "PThreadPrediction",
    "StaticPThread",
    "VIRTUAL_REG_BASE",
    "analyze_dataflow",
    "common_prefix_length",
    "eliminate_dead_code",
    "eliminate_moves",
    "eliminate_store_load_pairs",
    "execute_body",
    "fold_constants",
    "merge_pthreads",
    "merge_two",
    "optimize_body",
]
