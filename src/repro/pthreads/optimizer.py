"""P-thread optimization: specialization of straight-line bodies.

The paper: "P-thread optimization is both easier and more productive
than full program optimization.  First, since p-threads are
control-less, traditional control-flow and iterative data-flow analyses
are replaced by a simple linear scan.  Second, only optimizations that
are enabled by the highly specialized nature of the p-thread need be
considered.  We have found that store-load pair elimination and
constant folding capture most p-thread optimization opportunities."

Passes implemented (each a linear scan, iterated to a fixpoint):

* **register-move elimination** — copy propagation of ``mov`` results
  into later uses (the paper notes this has almost no impact, and that
  matches our measurements, but it feeds the other passes);
* **store-load pair elimination** — a load whose value provably comes
  from an earlier body store is replaced by a ``mov`` from the stored
  value; the store then usually dies;
* **constant folding** — collapsing chains of immediate additions
  (``addi r5, r5, 16; addi r5, r5, 16`` → ``addi r5, r5, 32``), the
  idiom created by induction unrolling, plus immediate-operand
  simplifications;
* **dead-code elimination** — instructions whose results do not reach
  any target load are dropped.

All passes preserve the value computed at every *target* position
(by default the final problem load); tests verify this by executing
original and optimized bodies on randomized seeds and memory.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.pthreads.body import PThreadBody, analyze_dataflow

#: Opcodes that are pure immediate additions (foldable chains).
_ADDITIVE = (Opcode.ADDI,)


@dataclass(frozen=True)
class OptimizationReport:
    """What the optimizer did to one body."""

    original_size: int
    optimized_size: int
    moves_eliminated: int = 0
    store_load_pairs_eliminated: int = 0
    constants_folded: int = 0
    dead_instructions_removed: int = 0

    @property
    def removed(self) -> int:
        return self.original_size - self.optimized_size


def _target_positions(
    body_len: int, targets: Optional[Sequence[int]]
) -> List[int]:
    if targets is None:
        return [body_len - 1]
    positions = sorted(set(targets))
    if not positions:
        raise ValueError("at least one target position is required")
    if positions[0] < 0 or positions[-1] >= body_len:
        raise ValueError(f"target positions out of range: {positions}")
    return positions


def eliminate_moves(
    instructions: List[Instruction],
) -> Tuple[List[Instruction], int]:
    """Copy-propagate ``mov rd, rs`` into later uses.

    The mov itself is left in place for DCE to collect (it may still
    feed positions we cannot rewrite).
    """
    # copies: destination register -> source register currently valid
    copies: Dict[int, int] = {}
    rewritten = 0
    out: List[Instruction] = []
    for inst in instructions:
        changed = {}
        for field_name in ("rs1", "rs2"):
            src = getattr(inst, field_name)
            if src is not None and src in copies:
                changed[field_name] = copies[src]
        if changed:
            inst = inst.renamed(
                rs1=changed.get("rs1"), rs2=changed.get("rs2")
            )
            rewritten += 1
        dest = inst.dest()
        if dest is not None and dest != 0:
            # Any copy *of* dest or *through* dest is invalidated.
            copies.pop(dest, None)
            for key in [k for k, v in copies.items() if v == dest]:
                copies.pop(key)
            if inst.op is Opcode.MOV and inst.rs1 not in (None, dest):
                copies[dest] = inst.rs1
        out.append(inst)
    return out, rewritten


def eliminate_store_load_pairs(
    instructions: List[Instruction],
) -> Tuple[List[Instruction], int]:
    """Replace loads forwarded from body stores with register moves.

    A load is rewritten when (a) static dataflow matches it to an
    earlier store at the same base definition + displacement, and
    (b) the stored value's register still holds that value at the load.
    """
    dataflow = analyze_dataflow(instructions)
    last_def_at: List[Dict[int, int]] = []
    last_def: Dict[int, int] = {}
    for position, inst in enumerate(instructions):
        last_def_at.append(dict(last_def))
        dest = inst.dest()
        if dest is not None and dest != 0:
            last_def[dest] = position
    eliminated = 0
    out = list(instructions)
    for position, inst in enumerate(instructions):
        store_pos = dataflow.mem_deps[position]
        if store_pos is None or not inst.is_load:
            continue
        store = instructions[store_pos]
        value_reg = store.rs2
        if value_reg is None:
            continue
        # The value register must not have been redefined between the
        # store and the load.
        def_at_store = last_def_at[store_pos].get(value_reg)
        def_at_load = last_def_at[position].get(value_reg)
        if def_at_store != def_at_load:
            continue
        out[position] = Instruction(
            Opcode.MOV, rd=inst.rd, rs1=value_reg, pc=inst.pc
        )
        eliminated += 1
    return out, eliminated


def fold_constants(
    instructions: List[Instruction],
    protected: Optional[Set[int]] = None,
) -> Tuple[List[Instruction], int, Optional[int]]:
    """Collapse one immediate-add chain link (induction-unrolling idiom).

    ``addi rX, rY, c1`` followed by ``addi rZ, rX, c2`` — where the
    intermediate value has no other consumer — becomes
    ``addi rZ, rY, c1 + c2`` and the first instruction is removed.
    At most one link is folded per call; the optimizer's fixpoint loop
    drives chains of any depth (the producer must be deleted in the
    same step, otherwise a surviving self-chain ``addi r5, r5, 16``
    would be applied twice).

    Args:
        protected: positions that must not be deleted (optimization
            targets).

    Returns:
        ``(instructions, links_folded, deleted_position)`` — callers
        must shift any position bookkeeping past ``deleted_position``.
    """
    if protected is None:
        protected = set()
    dataflow = analyze_dataflow(instructions)
    use_counts = [0] * len(instructions)
    for position in range(len(instructions)):
        for producer in dataflow.reg_deps[position]:
            use_counts[producer] += 1
        mem = dataflow.mem_deps[position]
        if mem is not None:
            use_counts[mem] += 1
    for position, inst in enumerate(instructions):
        if inst.op not in _ADDITIVE:
            continue
        producers = dataflow.reg_deps[position]
        if len(producers) != 1:
            continue
        producer_pos = producers[0]
        if producer_pos in protected:
            continue
        producer = instructions[producer_pos]
        if producer.op not in _ADDITIVE:
            continue
        if use_counts[producer_pos] != 1:
            continue
        if producer.rs1 is None:
            continue
        # Safety: the producer's *input* value must still be in
        # producer.rs1 at `position` once the producer is deleted — no
        # other instruction in between may define that register.
        clobbered = any(
            instructions[k].dest() == producer.rs1
            for k in range(producer_pos + 1, position)
        )
        if clobbered:
            continue
        out = list(instructions)
        out[position] = replace(
            inst, rs1=producer.rs1, imm=inst.imm + producer.imm
        )
        del out[producer_pos]
        return out, 1, producer_pos
    return list(instructions), 0, None


def eliminate_dead_code(
    instructions: List[Instruction],
    targets: Sequence[int],
    assume_no_alias: bool = True,
) -> Tuple[List[Instruction], List[int], int]:
    """Keep only instructions whose results reach a target position.

    Returns the surviving instructions, the new positions of the
    targets, and the number of instructions removed.

    Stores need care: static store/load matching is a *must*-alias
    analysis, so a load with no static producer may still be forwarded
    from an earlier store at run time.  With ``assume_no_alias`` (the
    default) such stores are deleted anyway — the slicer recorded the
    load's dynamic memory producer, so an unmatched load demonstrably
    read program memory in the profiled executions, and p-threads are
    speculative prefetchers in any case.  Pass ``False`` for strictly
    semantics-preserving dead-code elimination (used by tests and any
    caller without profile evidence).
    """
    targets = _target_positions(len(instructions), targets)
    dataflow = analyze_dataflow(instructions)
    live: Set[int] = set()
    work = list(targets)

    def add_live(position: int) -> None:
        if position in live:
            return
        live.add(position)
        work.extend(dataflow.reg_deps[position])
        mem = dataflow.mem_deps[position]
        if mem is not None:
            work.append(mem)

    while work:
        add_live(work.pop())
        if work or assume_no_alias:
            continue
        # Conservative mode fixpoint: pull in stores that may alias a
        # live unknown-source load occurring after them.
        unknown_loads = [
            position
            for position in live
            if instructions[position].is_load
            and dataflow.mem_deps[position] is None
        ]
        if unknown_loads:
            for position, inst in enumerate(instructions):
                if (
                    position not in live
                    and inst.is_store
                    and any(position < load for load in unknown_loads)
                ):
                    work.append(position)
    keep = sorted(live)
    remap = {old: new for new, old in enumerate(keep)}
    survivors = [instructions[old] for old in keep]
    new_targets = [remap[t] for t in targets]
    return survivors, new_targets, len(instructions) - len(survivors)


@dataclass(frozen=True)
class OptimizedBody:
    """Result of :func:`optimize_body`."""

    body: PThreadBody
    targets: Tuple[int, ...]
    report: OptimizationReport


# Memoization of optimize_body: selection sweeps (notably the
# region-granularity experiment) re-optimize identical tree paths many
# thousands of times.  The key includes instruction PCs (excluded from
# Instruction equality) because body provenance matters downstream.
_MEMO: Dict[tuple, OptimizedBody] = {}
_MEMO_LIMIT = 1 << 16


def _memo_key(body: PThreadBody, targets, assume_no_alias: bool) -> tuple:
    return (
        tuple(
            (inst.op, inst.rd, inst.rs1, inst.rs2, inst.imm, inst.pc)
            for inst in body.instructions
        ),
        tuple(targets) if targets is not None else None,
        assume_no_alias,
    )


def optimize_body(
    body: PThreadBody,
    targets: Optional[Sequence[int]] = None,
    max_passes: int = 64,
    assume_no_alias: bool = True,
) -> OptimizedBody:
    """Optimize a p-thread body, preserving all target values.

    Args:
        body: the body to optimize.
        targets: positions whose computed values (for loads: addresses
            and values) must be preserved; defaults to the final
            instruction (the problem load).
        max_passes: fixpoint iteration bound.
        assume_no_alias: delete stores not statically matched to a
            surviving load (see :func:`eliminate_dead_code`); the
            paper-faithful default for profile-derived slices.
    """
    key = _memo_key(body, targets, assume_no_alias)
    cached = _MEMO.get(key)
    if cached is not None:
        return cached
    instructions = list(body.instructions)
    target_list = _target_positions(len(instructions), targets)
    moves = pairs = folds = dead = 0
    for _ in range(max_passes):
        before = list(instructions)
        instructions, n_moves = eliminate_moves(instructions)
        moves += n_moves
        instructions, n_pairs = eliminate_store_load_pairs(instructions)
        pairs += n_pairs
        instructions, n_folds, deleted = fold_constants(
            instructions, protected=set(target_list)
        )
        folds += n_folds
        if deleted is not None:
            target_list = [
                t - 1 if t > deleted else t for t in target_list
            ]
        instructions, target_list, n_dead = eliminate_dead_code(
            instructions, target_list, assume_no_alias=assume_no_alias
        )
        dead += n_dead
        if instructions == before:
            break
    report = OptimizationReport(
        original_size=body.size,
        optimized_size=len(instructions),
        moves_eliminated=moves,
        store_load_pairs_eliminated=pairs,
        constants_folded=folds,
        dead_instructions_removed=dead,
    )
    result = OptimizedBody(
        body=PThreadBody(instructions),
        targets=tuple(target_list),
        report=report,
    )
    # Debug-mode post-pass: static verification supplements the
    # randomized-execution oracle the optimizer tests use (lazy import:
    # repro.analysis imports this module).
    from repro.analysis.report import assert_clean, verification_enabled

    if verification_enabled():
        from repro.analysis.verifier import verify_body

        assert_clean(
            verify_body(result.body.instructions, targets=result.targets),
            f"optimize_body({body.size} -> {result.body.size} insts)",
        )
    if len(_MEMO) >= _MEMO_LIMIT:
        _MEMO.clear()
    _MEMO[key] = result
    return result
