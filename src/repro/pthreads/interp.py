"""Reference interpreter for p-thread bodies.

Executes a body the way the pre-execution runtime does: seeds come from
a register snapshot, body stores forward to body loads through a local
store buffer (speculative stores never commit to program memory), and
other loads read program memory.  Used by tests to prove optimizer and
merger transformations semantics-preserving, and as the reference for
the timing simulator's faster inline executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.isa.opcodes import Format
from repro.pthreads.body import PThreadBody


@dataclass
class BodyExecution:
    """Trace of one dynamic body execution.

    Attributes:
        values: per position, the produced value (stores/branchless
            positions produce ``None`` → 0 placeholder for stores).
        addresses: per position, effective address for loads/stores
            (``None`` otherwise).
        forwarded: per position, True when a load was satisfied from
            the local store buffer rather than program memory.
    """

    values: List[int] = field(default_factory=list)
    addresses: List[Optional[int]] = field(default_factory=list)
    forwarded: List[bool] = field(default_factory=list)
    is_load: List[bool] = field(default_factory=list)

    def memory_addresses(self) -> List[int]:
        """Addresses of loads that reached program memory."""
        return [
            addr
            for addr, fwd, load in zip(
                self.addresses, self.forwarded, self.is_load
            )
            if load and addr is not None and not fwd
        ]


def execute_body(
    body: PThreadBody,
    seeds: Dict[int, int],
    load_word: Callable[[int], int],
) -> BodyExecution:
    """Execute ``body`` with ``seeds`` against program memory.

    Args:
        body: the body to run.
        seeds: live-in register values (missing registers read as 0).
        load_word: reads a word of program memory at a byte address.

    Returns:
        A :class:`BodyExecution` with per-position results.
    """
    regs: Dict[int, int] = dict(seeds)
    regs[0] = 0
    store_buffer: Dict[int, int] = {}
    result = BodyExecution()

    def read(reg: Optional[int]) -> int:
        if reg is None or reg == 0:
            return 0
        return regs.get(reg, 0)

    def write(reg: Optional[int], value: int) -> None:
        if reg is not None and reg != 0:
            regs[reg] = value

    for inst in body.instructions:
        fmt = inst.info.fmt
        value: int = 0
        address: Optional[int] = None
        forwarded = False
        if fmt is Format.R:
            value = inst.info.alu(read(inst.rs1), read(inst.rs2))
            write(inst.rd, value)
        elif fmt is Format.I:
            value = inst.info.alu(read(inst.rs1), inst.imm)
            write(inst.rd, value)
        elif fmt is Format.LOAD:
            address = read(inst.rs1) + inst.imm
            if address in store_buffer:
                value = store_buffer[address]
                forwarded = True
            else:
                value = load_word(address)
            write(inst.rd, value)
        elif fmt is Format.STORE:
            address = read(inst.rs1) + inst.imm
            store_buffer[address] = read(inst.rs2)
            value = store_buffer[address]
        else:  # pragma: no cover - bodies are control-less by type
            raise AssertionError(f"unexpected body instruction {inst}")
        result.values.append(value)
        result.addresses.append(address)
        result.forwarded.append(forwarded)
        result.is_load.append(fmt is Format.LOAD)
    return result
