"""Static p-thread type: trigger + body + model predictions.

A static p-thread is a trigger/body pair (paper §2).  The trigger is a
PC in the main program; whenever the main thread renames an instance of
that PC, a dynamic p-thread — a copy of the body seeded with live-in
register values — is launched.

The framework's diagnostic predictions ride along on the p-thread so
the validation machinery can compare them against simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Tuple

from repro.pthreads.body import PThreadBody

if TYPE_CHECKING:  # avoid a circular import with repro.model
    from repro.model.advantage import CandidateScore


@dataclass(frozen=True)
class PThreadPrediction:
    """Framework predictions for one static p-thread.

    Attributes:
        dc_trig: predicted dynamic launches (trigger executions).
        size: instructions per dynamic p-thread.
        misses_covered: dynamic misses attacked (``DCpt-cm`` summed
            over components).
        misses_fully_covered: of those, misses whose full latency the
            model expects to hide (``LT == Lmem``).
        lt_agg / oh_agg / adv_agg: aggregate cycles of latency
            tolerance, overhead, and net advantage.
    """

    dc_trig: int
    size: int
    misses_covered: int
    misses_fully_covered: int
    lt_agg: float
    oh_agg: float

    @property
    def adv_agg(self) -> float:
        return self.lt_agg - self.oh_agg

    @property
    def injected_instructions(self) -> int:
        """Predicted total p-thread instructions sequenced."""
        return self.dc_trig * self.size


@dataclass(frozen=True)
class StaticPThread:
    """A selected static p-thread.

    Attributes:
        trigger_pc: main-program PC whose rename launches the body.
        body: the executed body (optimized and possibly merged).
        target_load_pcs: problem-load PCs this p-thread covers.
        prediction: aggregate model predictions.
        components: the per-slice-tree candidate scores this p-thread
            was assembled from (one per merge component).
    """

    trigger_pc: int
    body: PThreadBody
    target_load_pcs: Tuple[int, ...]
    prediction: PThreadPrediction
    components: Tuple["CandidateScore", ...] = field(default=())
    #: Unoptimized body, the form the merger matches prefixes on.
    original_body: PThreadBody = None  # type: ignore[assignment]
    #: Positions of the component problem loads in ``original_body``.
    original_targets: Tuple[int, ...] = ()
    #: How many trigger instances ahead the body's target lies — the
    #: induction-unroll depth (copies of the trigger instruction in the
    #: unoptimized body).  Branch pre-execution uses it to tag outcome
    #: hints with the dynamic branch instance they resolve.
    instances_ahead: int = 0

    def __post_init__(self) -> None:
        if self.original_body is None:
            object.__setattr__(self, "original_body", self.body)
        if not self.original_targets:
            object.__setattr__(
                self,
                "original_targets",
                (self.original_body.size - 1,),
            )

    @property
    def size(self) -> int:
        return self.body.size

    def describe(self) -> str:
        targets = ",".join(f"#{pc:04d}" for pc in self.target_load_pcs)
        return (
            f"p-thread trigger=#{self.trigger_pc:04d} -> loads {targets} "
            f"size={self.size} DCtrig={self.prediction.dc_trig} "
            f"covered={self.prediction.misses_covered} "
            f"ADVagg={self.prediction.adv_agg:.1f}"
        )
