"""Merging of partially redundant p-threads.

The paper: "Rather than execute two separate p-threads ... we create a
single p-thread ... that captures both computations.  A merged p-thread
achieves the same latency tolerance as separate instances of each of
the original p-threads and incurs less overhead.  Our merging algorithm
merges p-threads with matching data-flow prefixes ... with register
renaming and code duplication performed as needed to preserve the
computational semantics of each of the original component p-threads."

For slice-tree-derived p-threads, a matching dataflow prefix is exactly
a shared tree path below the common trigger, which in body (execution)
order is a shared *leading* sequence of instructions.  Merging operates
on the **unoptimized** bodies — two arms of a slice tree share their
raw induction prefix even when per-arm optimization would fold it to
different constants — and the merged body is re-optimized afterwards
with every component's problem load as a protected target.

The merged body is ``prefix + suffix_A + suffix_B``: the suffixes are
replicated (the paper's #07/#08/#09 example) and executed back to back.
Renaming with virtual registers (indices ≥ 32, legal inside a
p-thread's private renamed context) is applied when an earlier suffix
defines a register a later suffix still needs from the prefix or seeds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.isa.instruction import Instruction
from repro.pthreads.body import PThreadBody, VIRTUAL_REG_BASE
from repro.pthreads.optimizer import optimize_body
from repro.pthreads.pthread import PThreadPrediction, StaticPThread


def common_prefix_length(a: Sequence[Instruction], b: Sequence[Instruction]) -> int:
    """Length of the matching leading instruction sequence."""
    n = 0
    for inst_a, inst_b in zip(a, b):
        if inst_a != inst_b:
            break
        n += 1
    return n


def _defined_registers(instructions: Sequence[Instruction]) -> Set[int]:
    defs = set()
    for inst in instructions:
        dest = inst.dest()
        if dest is not None and dest != 0:
            defs.add(dest)
    return defs


def _reads_before_writes(instructions: Sequence[Instruction]) -> Set[int]:
    """Registers a sequence reads before (re)defining them."""
    reads: Set[int] = set()
    written: Set[int] = set()
    for inst in instructions:
        for src in inst.sources():
            if src not in written and src != 0:
                reads.add(src)
        dest = inst.dest()
        if dest is not None and dest != 0:
            written.add(dest)
    return reads


def _rename_suffix(
    suffix: Sequence[Instruction],
    conflicts: Set[int],
    next_virtual: int,
) -> Tuple[List[Instruction], int]:
    """Rename every definition of a conflicting register to a virtual
    register, rewriting internal uses downstream of each renamed def."""
    mapping: Dict[int, int] = {}
    out: List[Instruction] = []
    for inst in suffix:
        rs1 = mapping.get(inst.rs1, inst.rs1) if inst.rs1 is not None else None
        rs2 = mapping.get(inst.rs2, inst.rs2) if inst.rs2 is not None else None
        rd = inst.rd
        dest = inst.dest()
        if dest is not None and dest != 0 and dest in conflicts:
            virtual = next_virtual
            next_virtual += 1
            mapping[dest] = virtual
            rd = virtual
        elif dest is not None and dest != 0:
            # A non-conflicting redefinition ends any prior mapping.
            mapping.pop(dest, None)
        out.append(inst.renamed(rd=rd, rs1=rs1, rs2=rs2))
    return out, next_virtual


def _max_virtual(instructions: Sequence[Instruction]) -> int:
    """Offset past any virtual registers already present."""
    highest = -1
    for inst in instructions:
        for reg in (inst.rd, inst.rs1, inst.rs2):
            if reg is not None and reg >= VIRTUAL_REG_BASE:
                highest = max(highest, reg - VIRTUAL_REG_BASE)
    return highest + 1


def _overhead_charge(pthreads: Sequence[StaticPThread]) -> float:
    """Recover the model's per-instruction overhead charge.

    Every p-thread carries ``oh_agg = dc_trig * size * charge``; any one
    with a nonzero denominator yields the charge (all were scored with
    the same parameters).
    """
    for p in pthreads:
        denom = p.prediction.dc_trig * p.prediction.size
        if denom:
            return p.prediction.oh_agg / denom
    return 0.0


def merge_two(
    a: StaticPThread, b: StaticPThread, optimize: bool = True
) -> Optional[StaticPThread]:
    """Merge two p-threads with the same trigger, if profitable.

    Returns the merged p-thread, or ``None`` when the pair has no
    matching dataflow prefix (merging would only concatenate).
    """
    if a.trigger_pc != b.trigger_pc:
        return None
    insts_a = a.original_body.instructions
    insts_b = b.original_body.instructions
    prefix_len = common_prefix_length(insts_a, insts_b)
    if prefix_len == 0:
        return None
    prefix = list(insts_a[:prefix_len])
    suffix_a = list(insts_a[prefix_len:])
    suffix_b = list(insts_b[prefix_len:])

    # Registers suffix B needs from the prefix/seeds must survive
    # suffix A; rename suffix A's clobbering definitions.
    needed_by_b = _reads_before_writes(suffix_b)
    clobbered_by_a = _defined_registers(suffix_a)
    conflicts = needed_by_b & clobbered_by_a
    next_virtual = VIRTUAL_REG_BASE + _max_virtual(insts_a + insts_b)
    renamed_a, _ = _rename_suffix(suffix_a, conflicts, next_virtual)

    merged_original = PThreadBody(prefix + renamed_a + suffix_b)
    # Component target positions: A's positions are unchanged (its body
    # is a prefix of the merged layout); B's suffix positions shift
    # past suffix A.
    targets = sorted(
        set(a.original_targets)
        | {
            t if t < prefix_len else t + len(suffix_a)
            for t in b.original_targets
        }
    )
    # Debug-mode post-pass: the merged layout must preserve each
    # component's computation (lazy import: repro.analysis imports us).
    from repro.analysis.report import assert_clean, verification_enabled

    if verification_enabled():
        from repro.analysis.verifier import verify_body

        assert_clean(
            verify_body(merged_original.instructions, targets=targets),
            f"merge_two(trigger=#{a.trigger_pc:04d}, "
            f"prefix={prefix_len})",
        )
    if optimize:
        final_body = optimize_body(merged_original, targets=targets).body
    else:
        final_body = merged_original

    dc_trig = max(a.prediction.dc_trig, b.prediction.dc_trig)
    charge = _overhead_charge([a, b])
    prediction = PThreadPrediction(
        dc_trig=dc_trig,
        size=final_body.size,
        misses_covered=(
            a.prediction.misses_covered + b.prediction.misses_covered
        ),
        misses_fully_covered=(
            a.prediction.misses_fully_covered
            + b.prediction.misses_fully_covered
        ),
        lt_agg=a.prediction.lt_agg + b.prediction.lt_agg,
        oh_agg=dc_trig * final_body.size * charge,
    )
    return StaticPThread(
        trigger_pc=a.trigger_pc,
        body=final_body,
        target_load_pcs=tuple(
            dict.fromkeys(a.target_load_pcs + b.target_load_pcs)
        ),
        prediction=prediction,
        components=a.components + b.components,
        original_body=merged_original,
        original_targets=tuple(targets),
        instances_ahead=max(a.instances_ahead, b.instances_ahead),
    )


def merge_pthreads(
    pthreads: Sequence[StaticPThread], optimize: bool = True
) -> List[StaticPThread]:
    """Greedily merge all p-threads sharing triggers and prefixes.

    P-threads are grouped by trigger PC; within a group, pairs with the
    longest matching dataflow prefix merge first, repeating until no
    pair shares a prefix.  The result order is deterministic (by
    trigger PC, then target loads).

    Args:
        optimize: re-optimize merged bodies (matches the selection
            configuration's optimization setting).
    """
    by_trigger: Dict[int, List[StaticPThread]] = {}
    for pthread in pthreads:
        by_trigger.setdefault(pthread.trigger_pc, []).append(pthread)

    merged_all: List[StaticPThread] = []
    for trigger_pc in sorted(by_trigger):
        group = list(by_trigger[trigger_pc])
        changed = True
        while changed and len(group) > 1:
            changed = False
            best: Optional[Tuple[int, int, int]] = None  # (prefix, i, j)
            for i in range(len(group)):
                for j in range(i + 1, len(group)):
                    prefix = common_prefix_length(
                        group[i].original_body.instructions,
                        group[j].original_body.instructions,
                    )
                    if prefix > 0 and (best is None or prefix > best[0]):
                        best = (prefix, i, j)
            if best is not None:
                _, i, j = best
                merged = merge_two(group[i], group[j], optimize=optimize)
                if merged is not None:
                    group = (
                        group[:i] + group[i + 1 : j] + group[j + 1 :] + [merged]
                    )
                    changed = True
        merged_all.extend(
            sorted(group, key=lambda p: (p.target_load_pcs, p.size))
        )
    return merged_all
