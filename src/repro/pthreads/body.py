"""P-thread bodies: straight-line instruction sequences with dataflow.

A p-thread body is control-less straight-line code (the paper's
sequencing model), so its dataflow can be recovered by a single linear
scan: each instruction's register producers are the most recent earlier
definitions, values read before any definition are **seed live-ins**
(copied from the main thread at launch), and a load's value producer is
the most recent earlier store to a statically identical address
(same base definition, same displacement).

Bodies may use *virtual* register indices at and above
:data:`VIRTUAL_REG_BASE`; the merger introduces these when duplicating
a shared suffix.  They never collide with architectural state because
p-threads execute in their own renamed context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.instruction import Instruction
from repro.isa.registers import NUM_REGS

#: First register index reserved for merger-introduced virtual registers.
VIRTUAL_REG_BASE = NUM_REGS

#: Sentinel base key for an unknown (non-static) store address base.
_UNKNOWN = ("unknown",)


@dataclass(frozen=True)
class BodyDataflow:
    """Dataflow facts of a body, produced by :func:`analyze_dataflow`.

    Attributes:
        reg_deps: per position, positions of register producers.
        mem_deps: per position, position of the forwarding store for a
            load (``None`` when the load reads program memory).
        live_ins: register indices read before any body definition,
            i.e. the seed values the launch mechanism must copy.
        defs: per position, the register defined (``None`` for stores,
            branches — though bodies should not contain branches).
    """

    reg_deps: Tuple[Tuple[int, ...], ...]
    mem_deps: Tuple[Optional[int], ...]
    live_ins: Tuple[int, ...]
    defs: Tuple[Optional[int], ...]

    def producers(self, position: int) -> Tuple[int, ...]:
        """All producers (register and memory) of ``position``."""
        deps = self.reg_deps[position]
        mem = self.mem_deps[position]
        if mem is None:
            return deps
        return tuple(sorted(set(deps) | {mem}))


def _base_key(
    base_reg: int, last_def: Dict[int, int], position_salt: int = 0
) -> Tuple:
    """Key identifying a memory base: producing position or live-in reg."""
    if base_reg in last_def:
        return ("def", last_def[base_reg])
    return ("livein", base_reg)


def analyze_dataflow(instructions: Sequence[Instruction]) -> BodyDataflow:
    """Linear-scan dataflow analysis of a straight-line body."""
    last_def: Dict[int, int] = {}
    live_ins: List[int] = []
    seen_live_ins = set()
    reg_deps: List[Tuple[int, ...]] = []
    mem_deps: List[Optional[int]] = []
    defs: List[Optional[int]] = []
    # (base_key, offset) -> store position
    stores: Dict[Tuple, int] = {}

    for position, inst in enumerate(instructions):
        deps = []
        for src in inst.sources():
            if src == 0:
                continue  # r0 reads are constant zero
            if src in last_def:
                deps.append(last_def[src])
            elif src not in seen_live_ins:
                seen_live_ins.add(src)
                live_ins.append(src)
        reg_deps.append(tuple(sorted(set(deps))))

        mem_dep: Optional[int] = None
        if inst.is_load:
            key = (_base_key(inst.rs1, last_def), inst.imm)
            mem_dep = stores.get(key)
        elif inst.is_store:
            key = (_base_key(inst.rs1, last_def), inst.imm)
            stores[key] = position
        mem_deps.append(mem_dep)

        dest = inst.dest()
        if dest is not None and dest != 0:
            last_def[dest] = position
            defs.append(dest)
        else:
            defs.append(None)

    return BodyDataflow(
        reg_deps=tuple(reg_deps),
        mem_deps=tuple(mem_deps),
        live_ins=tuple(live_ins),
        defs=tuple(defs),
    )


class PThreadBody:
    """An immutable p-thread body with cached dataflow.

    Args:
        instructions: straight-line instructions, oldest first.  The
            final instruction is conventionally the targeted problem
            load (after merging there may be several problem loads in
            the body).  For *branch pre-execution* (the paper's
            footnote 1 scenario) the final instruction may instead be
            the targeted conditional branch: the p-thread computes its
            outcome early rather than prefetching a line.

    Raises:
        ValueError: if the body is empty or contains control flow
            anywhere but a terminal conditional branch — p-thread
            *sequencing* is control-less by the paper's model (a
            terminal branch is never followed, only evaluated).
    """

    def __init__(self, instructions: Sequence[Instruction]) -> None:
        instructions = list(instructions)
        if not instructions:
            raise ValueError("p-thread body cannot be empty")
        for position, inst in enumerate(instructions):
            terminal_branch = (
                inst.is_branch and position == len(instructions) - 1
            )
            if (inst.is_control or inst.is_halt) and not terminal_branch:
                raise ValueError(
                    f"p-thread bodies are control-less; got {inst}"
                )
        self.instructions: List[Instruction] = instructions
        self.dataflow: BodyDataflow = analyze_dataflow(instructions)

    @property
    def size(self) -> int:
        """Number of instructions (the paper's ``SIZEpt``)."""
        return len(self.instructions)

    @property
    def live_ins(self) -> Tuple[int, ...]:
        """Seed registers the launch must copy from the main thread."""
        return self.dataflow.live_ins

    @property
    def targets_branch(self) -> bool:
        """True for a branch-pre-execution body (terminal branch)."""
        return self.instructions[-1].is_branch

    def loads(self) -> List[int]:
        """Positions of load instructions."""
        return [i for i, inst in enumerate(self.instructions) if inst.is_load]

    def problem_load_positions(self) -> List[int]:
        """Positions of loads not forwarded from a body store."""
        return [
            i
            for i in self.loads()
            if self.dataflow.mem_deps[i] is None
        ]

    def render(self) -> str:
        """Multi-line assembly rendering."""
        lines = []
        for position, inst in enumerate(self.instructions):
            origin = f"  ; from #{inst.pc:04d}" if inst.pc >= 0 else ""
            lines.append(f"  [{position}] {inst}{origin}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.instructions)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PThreadBody):
            return NotImplemented
        return self.instructions == other.instructions

    def __hash__(self) -> int:
        return hash(tuple(self.instructions))
