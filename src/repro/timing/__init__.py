"""Timing simulation: SMT core model with pre-execution runtime."""

from repro.timing.config import (
    BASELINE,
    LATENCY_ONLY,
    MachineConfig,
    OVERHEAD_EXECUTE,
    OVERHEAD_SEQUENCE,
    PERFECT_L2,
    PRE_EXECUTION,
    SimMode,
)
from repro.timing.core import Schedule, TimingSimulator
from repro.timing.eventsim import EventHeap, EventSimulator
from repro.timing.stats import SimStats

__all__ = [
    "BASELINE",
    "EventHeap",
    "EventSimulator",
    "LATENCY_ONLY",
    "MachineConfig",
    "OVERHEAD_EXECUTE",
    "OVERHEAD_SEQUENCE",
    "PERFECT_L2",
    "PRE_EXECUTION",
    "Schedule",
    "SimMode",
    "SimStats",
    "TimingSimulator",
]
