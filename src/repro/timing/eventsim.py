"""Discrete-event timing simulator: the independent second model.

This module is the re-implementation half of the dual-model parity
harness (see DESIGN.md §10 and :mod:`repro.validation.parity`).  It
consumes exactly the same inputs as the trace-driven
:class:`repro.timing.core.TimingSimulator` — a
:class:`~repro.engine.decode.DecodedProgram`, a
:class:`~repro.memory.hierarchy.HierarchyConfig`, a
:class:`~repro.timing.config.MachineConfig`, and a p-thread selection
or schedule — and produces the same :class:`~repro.timing.stats.SimStats`,
but it shares **none** of the trace-driven loop code.  Where the trace
model advances one instruction per loop iteration and carries cycle
arithmetic in local variables, this model advances a priority queue of
typed events:

``FETCH``
    One event per fetch attempt.  The handler applies the window and
    sequencing-bandwidth constraints *at the event's cycle* (stolen
    slots are consulted only for the current cycle, so p-thread burst
    events are always ordered before the fetches they displace),
    functionally executes one instruction, and schedules the
    instruction's ``ISSUE`` and ``RETIRE`` milestones plus the next
    ``FETCH``.
``ISSUE``
    Dispatch milestone at ``fetch + dispatch_latency``; drives the
    in-flight occupancy accounting and the event journal.
``CACHE_FILL`` / ``MSHR_RELEASE``
    Memory-system milestones scheduled when an access misses a cache
    level: the fill landing in the hierarchy and the MSHR entry
    retiring.  They drive the outstanding-miss gauges.
``PTHREAD_LAUNCH``
    A p-thread launch attempt at the trigger's dispatch cycle.
    Dispatched *inline* (a zero-latency event) so the body's cache
    accesses interleave with main-thread accesses in commit order,
    exactly like the trace-driven model's synchronous launch.
``PTHREAD_BURST``
    One event per injection burst; writes the stolen-slot table the
    ``FETCH`` handler reads.
``RETIRE``
    In-order commit marker at the instruction's retirement cycle; the
    handler asserts the commit order the heap reconstructs matches
    program order.

The heap orders events by ``(time, insertion sequence)`` — ties break
on insertion order, which the front end relies on (same-cycle fetches
stay in program order; bursts precede the fetches they displace).

The *engine seam* mirrors the repo-wide ``REPRO_ENGINE`` switch in a
form that fits an event loop: instruction execution is performed by
per-kind kernel functions, and the engine decides how the kind
dispatch is resolved.  ``interp`` looks the kernel up by opcode kind on
every fetch; ``compiled`` pre-resolves the dispatch into a per-PC
kernel table at startup (threaded code); ``tiered`` starts on the
interpreted lookup and promotes a PC into the table once it proves
hot.  All three produce bit-identical results by construction — the
parity suite pins that.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.compiler import (
    ENGINE_COMPILED,
    ENGINE_INTERP,
    ENGINE_TIERED,
    resolve_engine,
)
from repro.engine.decode import (
    DecodedProgram,
    K_ALU_I,
    K_ALU_R,
    K_BRANCH,
    K_HALT,
    K_JAL,
    K_JR,
    K_JUMP,
    K_LOAD,
    K_STORE,
)
from repro.frontend.branch_predictor import HybridPredictor
from repro.isa.opcodes import Format
from repro.isa.program import Program
from repro.isa.registers import NUM_REGS
from repro.memory.hierarchy import HierarchyConfig, TimedHierarchy
from repro.memory.main_memory import MainMemory
from repro.obs import get_registry as obs_registry, get_tracer
from repro.pthreads.pthread import StaticPThread
from repro.timing.config import BASELINE, MachineConfig, SimMode
from repro.timing.core import Schedule
from repro.timing.stats import SimStats

# Typed events, in documentation order.
EV_FETCH = 0
EV_ISSUE = 1
EV_CACHE_FILL = 2
EV_MSHR_RELEASE = 3
EV_PTHREAD_LAUNCH = 4
EV_PTHREAD_BURST = 5
EV_RETIRE = 6

EVENT_NAMES: Dict[int, str] = {
    EV_FETCH: "fetch",
    EV_ISSUE: "issue",
    EV_CACHE_FILL: "cache_fill",
    EV_MSHR_RELEASE: "mshr_release",
    EV_PTHREAD_LAUNCH: "pthread_launch",
    EV_PTHREAD_BURST: "pthread_burst",
    EV_RETIRE: "retire",
}

#: How many leading events the journal keeps (diagnostics only).
JOURNAL_LIMIT = 512

#: Tiered-seam promotion threshold: a PC's kind dispatch is pre-resolved
#: into the step table after this many interpreted executions.
TIER_PROMOTE_AFTER = 8


class EventHeap:
    """Priority queue of ``(time, seq, kind, payload)`` events.

    Orders by time first; equal-time events pop in **insertion order**
    (``seq`` is a monotonically increasing push counter).  Tracks depth
    statistics for the event-queue observability metrics.
    """

    __slots__ = ("_heap", "_seq", "pushes", "pops", "max_depth")

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, int, object]] = []
        self._seq = 0
        self.pushes = 0
        self.pops = 0
        self.max_depth = 0

    def push(self, time: int, kind: int, payload: object = None) -> int:
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, seq, kind, payload))
        self.pushes += 1
        depth = len(self._heap)
        if depth > self.max_depth:
            self.max_depth = depth
        return seq

    def pop(self) -> Tuple[int, int, int, object]:
        self.pops += 1
        return heapq.heappop(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class _BodyImage:
    """Pre-decoded p-thread body, event-model edition.

    Independent twin of the trace model's body pre-decode: same burst
    schedule semantics (``pthread_burst`` instructions injected every
    ``pthread_burst_period`` cycles), derived from the
    :class:`StaticPThread` alone.
    """

    __slots__ = (
        "size",
        "kind",
        "rd",
        "rs1",
        "rs2",
        "imm",
        "alu",
        "branch",
        "pcs",
        "latency",
        "live_ins",
        "bursts",
        "busy_cycles",
    )

    def __init__(self, pthread: StaticPThread, machine: MachineConfig) -> None:
        body = pthread.body
        self.size = body.size
        self.kind: List[int] = []
        self.rd: List[int] = []
        self.rs1: List[int] = []
        self.rs2: List[int] = []
        self.imm: List[int] = []
        self.alu: List[Optional[Callable[[int, int], int]]] = []
        self.branch: List[Optional[Callable[[int, int], bool]]] = []
        self.pcs: List[int] = []
        self.latency: List[int] = []
        kind_of = {
            Format.R: K_ALU_R,
            Format.I: K_ALU_I,
            Format.LOAD: K_LOAD,
            Format.BRANCH: K_BRANCH,
        }
        for inst in body.instructions:
            self.kind.append(kind_of.get(inst.info.fmt, K_STORE))
            self.rd.append(inst.rd if inst.rd is not None else 0)
            self.rs1.append(inst.rs1 if inst.rs1 is not None else 0)
            self.rs2.append(inst.rs2 if inst.rs2 is not None else 0)
            self.imm.append(inst.imm)
            self.alu.append(inst.info.alu)
            self.branch.append(inst.info.branch)
            self.pcs.append(inst.pc)
            self.latency.append(inst.info.latency)
        self.live_ins = body.live_ins
        # (cycle offset, first instruction index, count) per burst.
        self.bursts: List[Tuple[int, int, int]] = []
        start, offset = 0, 0
        while start < self.size:
            count = min(machine.pthread_burst, self.size - start)
            self.bursts.append((offset, start, count))
            start += count
            offset += machine.pthread_burst_period
        # Context occupancy: launch cycle + last burst offset + 1.
        self.busy_cycles = (self.bursts[-1][0] if self.bursts else 0) + 1


class _EvState:
    """All mutable state of one event-driven run."""

    __slots__ = (
        "pc",
        "executed",
        "committed",
        "fetch_cycle",
        "cap_used",
        "last_retire",
        "halted",
        "stop",
        "limit",
        "regs",
        "reg_ready",
        "ring",
        "stolen",
        "store_queue",
        "contexts",
        "branch_hints",
        "branch_counts",
        "launching",
        "mode",
        "stats",
        "predictor",
        "prefetcher",
        "hierarchy",
        "memory",
        "region_index",
        "region_end",
        "triggers",
        "heap",
        "journal",
        "inflight_fills",
        "inflight_mshrs",
        "max_inflight_fills",
        "issued",
    )


class EventSimulator:
    """Event-driven timing model of the SMT pre-execution machine.

    Drop-in parity twin of :class:`repro.timing.core.TimingSimulator`:
    same constructor shape, same :meth:`run` contract, same
    :class:`SimStats` output, same ``last_registers`` / ``last_memory``
    committed-state capture.  See the module docstring for the event
    formulation and the engine seam.

    Attributes:
        last_registers: committed register file after the latest run.
        last_memory: committed :class:`MainMemory` after the latest run.
        last_engine: the dispatch seam the latest run used.
        last_event_count: events processed by the latest run.
        last_heap_max_depth: peak event-queue depth of the latest run.
        last_journal: the first :data:`JOURNAL_LIMIT` events of the
            latest run as ``(time, kind name, detail)`` tuples.
    """

    def __init__(
        self,
        program: Program,
        hierarchy_config: HierarchyConfig,
        machine: Optional[MachineConfig] = None,
        pthreads: Optional[Sequence[StaticPThread]] = None,
        schedule: Optional[Schedule] = None,
        engine: Optional[str] = None,
    ) -> None:
        if pthreads is not None and schedule is not None:
            raise ValueError("pass either pthreads or schedule, not both")
        self.program = program
        self.decoded = DecodedProgram(program)
        self.hierarchy_config = hierarchy_config
        self.machine = machine or MachineConfig()
        if schedule is None:
            schedule = [(0, 1 << 62, list(pthreads or []))]
        self.schedule: Schedule = [
            (start, end, list(pts)) for start, end, pts in schedule
        ]
        self._bodies: Dict[int, _BodyImage] = {}
        for _, _, pts in self.schedule:
            for pthread in pts:
                if id(pthread) not in self._bodies:
                    self._bodies[id(pthread)] = _BodyImage(
                        pthread, self.machine
                    )
        self._hinted_pcs = frozenset(
            pt.body.instructions[-1].pc
            for _, _, pts in self.schedule
            for pt in pts
            if pt.body.targets_branch
        )
        self.engine = resolve_engine(engine)
        self.last_engine: Optional[str] = None
        self.last_registers: List[int] = []
        self.last_memory: Optional[MainMemory] = None
        self.last_event_count = 0
        self.last_heap_max_depth = 0
        self.last_journal: List[Tuple[int, str, object]] = []
        # Engine seam state: per-kind kernels, plus the per-PC resolved
        # step table ("compiled": filled eagerly; "tiered": on heat).
        self._kernels: Dict[
            int, Callable[[_EvState, int, int, int], Tuple[int, int]]
        ] = {
            K_ALU_R: self._k_alu_r,
            K_ALU_I: self._k_alu_i,
            K_LOAD: self._k_load,
            K_STORE: self._k_store,
            K_BRANCH: self._k_branch,
            K_JUMP: self._k_jump,
            K_JAL: self._k_jal,
            K_JR: self._k_jr,
            K_HALT: self._k_halt,
        }
        self._steps: Dict[
            int, Callable[[_EvState, int, int, int], Tuple[int, int]]
        ] = {}
        self._heat: Dict[int, int] = {}

    # -- engine seam ---------------------------------------------------

    def _resolve_steps(self) -> None:
        """Pre-resolve the kind dispatch for the compiled seam."""
        if self._steps:
            return
        kernels = self._kernels
        nop = self._k_nop
        for pc, k in enumerate(self.decoded.kind):
            self._steps[pc] = kernels.get(k, nop)

    def _step_for(
        self, pc: int
    ) -> Callable[[_EvState, int, int, int], Tuple[int, int]]:
        """The execution kernel for ``pc`` under the active seam."""
        engine = self.engine
        if engine == ENGINE_INTERP:
            return self._kernels.get(self.decoded.kind[pc], self._k_nop)
        step = self._steps.get(pc)
        if step is not None:
            return step
        # Tiered: count interpreted visits, promote hot PCs.
        step = self._kernels.get(self.decoded.kind[pc], self._k_nop)
        heat = self._heat.get(pc, 0) + 1
        if heat >= TIER_PROMOTE_AFTER:
            self._steps[pc] = step
            self._heat.pop(pc, None)
        else:
            self._heat[pc] = heat
        return step

    # -- run -----------------------------------------------------------

    def run(
        self,
        mode: SimMode = BASELINE,
        max_instructions: int = 50_000_000,
    ) -> SimStats:
        """Simulate to ``halt`` (or an instruction cap); returns stats."""
        machine = self.machine
        st = _EvState()
        st.pc = 0
        st.executed = 0
        st.committed = 0
        st.fetch_cycle = 0
        st.cap_used = 0
        st.last_retire = 0
        st.halted = False
        st.stop = False
        st.limit = max_instructions
        st.regs = [0] * NUM_REGS
        st.reg_ready = [0] * NUM_REGS
        st.ring = [0] * machine.window
        st.stolen = {}
        st.store_queue = {}
        st.contexts = [0] * machine.pthread_contexts
        st.branch_hints = {}
        st.branch_counts = {}
        st.launching = mode.launch and any(pts for _, _, pts in self.schedule)
        st.mode = mode
        st.stats = SimStats(mode=mode.name)
        st.predictor = HybridPredictor()
        st.prefetcher = None
        if machine.stride_prefetch:
            from repro.memory.prefetcher import StridePrefetcher

            st.prefetcher = StridePrefetcher(degree=machine.stride_degree)
        st.hierarchy = TimedHierarchy(
            self.hierarchy_config, perfect_l2=mode.perfect_l2
        )
        st.memory = MainMemory(self.program.data)
        st.region_index = 0
        st.region_end = self.schedule[0][1]
        st.triggers = (
            self._triggers_for(self.schedule[0]) if st.launching else {}
        )
        st.heap = EventHeap()
        st.journal = []
        st.inflight_fills = 0
        st.inflight_mshrs = 0
        st.max_inflight_fills = 0
        st.issued = 0

        self.last_engine = self.engine
        self._heat.clear()
        if self.engine == ENGINE_COMPILED:
            self._resolve_steps()
        elif self.engine == ENGINE_INTERP:
            self._steps.clear()

        handlers: Dict[int, Callable[[_EvState, int, object], None]] = {
            EV_FETCH: self._on_fetch,
            EV_ISSUE: self._on_issue,
            EV_CACHE_FILL: self._on_cache_fill,
            EV_MSHR_RELEASE: self._on_mshr_release,
            EV_PTHREAD_LAUNCH: self._on_pthread_launch,
            EV_PTHREAD_BURST: self._on_pthread_burst,
            EV_RETIRE: self._on_retire,
        }
        heap = st.heap
        heap.push(0, EV_FETCH, None)
        with get_tracer().span(
            "eventsim", program=self.program.name, mode=mode.name
        ):
            while heap:
                time_, _seq, kind_, payload = heap.pop()
                if len(st.journal) < JOURNAL_LIMIT:
                    st.journal.append(
                        (time_, EVENT_NAMES[kind_], payload)
                    )
                handlers[kind_](st, time_, payload)
                if st.stop:
                    break

        stats = st.stats
        hierarchy = st.hierarchy
        stats.instructions = st.executed
        stats.cycles = max(st.last_retire, st.fetch_cycle)
        stats.misses_fully_covered = hierarchy.full_covered
        stats.misses_partially_covered = hierarchy.partial_covered
        stats.partial_covered_cycles = hierarchy.partial_covered_cycles
        stats.prefetches_evicted = hierarchy.evicted_prefetches
        stats.prefetches_unclaimed = hierarchy.unclaimed_prefetches()
        stats.pthread_l2_misses = hierarchy.pt_l2_misses
        stats.l2_misses = (
            hierarchy.mt_l2_misses
            + hierarchy.full_covered
            + hierarchy.partial_covered
        )
        self.last_registers = list(st.regs)
        self.last_memory = st.memory
        self.last_event_count = heap.pops
        self.last_heap_max_depth = heap.max_depth
        self.last_journal = st.journal
        self._publish_metrics(st)
        return stats

    @staticmethod
    def _publish_metrics(st: _EvState) -> None:
        """Fold the run's event-queue totals into the metrics registry.

        These names are deliberately *not* in the stable catalog (the
        CI schema check requires catalog names in a pipeline snapshot,
        and pipelines do not run the event model); they are listed in
        :data:`repro.obs.export.AUXILIARY_METRICS` so their types are
        still pinned when present.
        """
        registry = obs_registry()
        registry.counter("eventsim.runs").inc()
        registry.counter("eventsim.instructions").inc(st.executed)
        registry.counter("eventsim.events").inc(st.heap.pops)
        depth = registry.gauge("eventsim.heap.max_depth")
        if st.heap.max_depth > depth.value:
            depth.set(st.heap.max_depth)
        registry.histogram("eventsim.heap.depth").observe(st.heap.max_depth)
        fills = registry.gauge("eventsim.fills.max_outstanding")
        if st.max_inflight_fills > fills.value:
            fills.set(st.max_inflight_fills)

    # -- schedule regions ----------------------------------------------

    @staticmethod
    def _triggers_for(
        region: Tuple[int, int, List[StaticPThread]]
    ) -> Dict[int, List[StaticPThread]]:
        triggers: Dict[int, List[StaticPThread]] = {}
        for pthread in region[2]:
            triggers.setdefault(pthread.trigger_pc, []).append(pthread)
        return triggers

    def _advance_region(self, st: _EvState) -> None:
        schedule = self.schedule
        index = st.region_index
        while (
            index + 1 < len(schedule)
            and st.executed >= schedule[index][1]
        ):
            index += 1
        st.region_index = index
        st.triggers = self._triggers_for(schedule[index])
        st.region_end = schedule[index][1]

    # -- event handlers ------------------------------------------------

    def _on_fetch(self, st: _EvState, t: int, _payload: object) -> None:
        """Fetch (and execute) one instruction at cycle ``t``.

        The bandwidth check consults stolen slots only for the current
        cycle; advancing to a later cycle reschedules the event so
        every ``PTHREAD_BURST`` for that cycle has fired first.
        """
        if st.halted or st.executed >= st.limit:
            st.stop = True
            return
        if st.launching and st.executed >= st.region_end:
            self._advance_region(st)

        machine = self.machine
        window = machine.window
        heap = st.heap

        nxt = st.executed + 1
        slot = nxt % window
        window_stall = st.ring[slot]
        if window_stall > st.fetch_cycle:
            st.fetch_cycle = window_stall
            st.cap_used = 0
        if st.fetch_cycle > t:
            heap.push(st.fetch_cycle, EV_FETCH, None)
            return
        if st.cap_used >= machine.bw_seq - st.stolen.get(t, 0):
            st.fetch_cycle = t + 1
            st.cap_used = 0
            heap.push(t + 1, EV_FETCH, None)
            return

        pc = st.pc
        st.executed = nxt
        f = st.fetch_cycle
        st.cap_used += 1
        disp = f + machine.dispatch_latency
        heap.push(disp, EV_ISSUE, nxt)

        complete, next_pc = self._step_for(pc)(st, pc, f, disp)
        if st.halted:
            st.stop = True
            return

        # In-order retirement frontier.
        if complete < st.last_retire:
            complete = st.last_retire
        st.last_retire = complete
        st.ring[slot] = complete
        heap.push(complete, EV_RETIRE, nxt)

        # P-thread launch attempts at the trigger's dispatch.
        if st.launching:
            waiting = st.triggers.get(pc)
            if waiting is not None:
                for pthread in waiting:
                    if len(st.journal) < JOURNAL_LIMIT:
                        st.journal.append(
                            (disp, EVENT_NAMES[EV_PTHREAD_LAUNCH],
                             pthread.trigger_pc)
                        )
                    self._on_pthread_launch(st, disp, pthread)

        # Drop stale stolen-slot entries periodically (unobservable:
        # fetch cycles are monotonic).
        if not st.executed & 0xFFFF and st.stolen:
            for cycle in [c for c in st.stolen if c < st.fetch_cycle]:
                del st.stolen[cycle]

        st.pc = next_pc
        heap.push(st.fetch_cycle, EV_FETCH, None)

    def _on_issue(self, st: _EvState, t: int, payload: object) -> None:
        """Dispatch milestone: in-flight occupancy bookkeeping."""
        st.issued += 1

    def _on_retire(self, st: _EvState, t: int, payload: object) -> None:
        """In-order commit marker.

        The heap must reconstruct program order from ``(time, seq)``
        alone: retirement frontiers are monotone and retire events are
        pushed in program order, so the next committed index is always
        exactly ``committed + 1``.
        """
        index = payload
        assert index == st.committed + 1, (
            f"out-of-order retire: event #{index} after {st.committed}"
        )
        st.committed = index  # type: ignore[assignment]

    def _on_cache_fill(self, st: _EvState, t: int, payload: object) -> None:
        """A miss's fill landed: outstanding-fill accounting."""
        st.inflight_fills -= 1

    def _on_mshr_release(self, st: _EvState, t: int, payload: object) -> None:
        """An MSHR entry retired with its fill."""
        st.inflight_mshrs -= 1

    def _on_pthread_burst(self, st: _EvState, t: int, payload: object) -> None:
        """One injection burst steals sequencing slots at cycle ``t``."""
        st.stolen[t] = st.stolen.get(t, 0) + payload  # type: ignore[operator]

    def _track_fill(
        self, st: _EvState, level: int, addr: int, ready: int
    ) -> None:
        """Schedule the memory-system milestones of a missing access."""
        if level == 1:
            return
        st.inflight_fills += 1
        if st.inflight_fills > st.max_inflight_fills:
            st.max_inflight_fills = st.inflight_fills
        st.heap.push(ready, EV_CACHE_FILL, (addr, level))
        if level == 3:
            st.inflight_mshrs += 1
            st.heap.push(ready, EV_MSHR_RELEASE, addr)

    # -- instruction kernels (the engine seam's unit of dispatch) ------

    def _k_alu_r(
        self, st: _EvState, pc: int, f: int, disp: int
    ) -> Tuple[int, int]:
        d = self.decoded
        rs1, rs2 = d.rs1[pc], d.rs2[pc]
        value = d.alu[pc](st.regs[rs1], st.regs[rs2])
        ready = max(st.reg_ready[rs1], st.reg_ready[rs2], disp)
        complete = ready + d.latency[pc]
        rd = d.rd[pc]
        if rd:
            st.regs[rd] = value
            st.reg_ready[rd] = complete
        return complete, pc + 1

    def _k_alu_i(
        self, st: _EvState, pc: int, f: int, disp: int
    ) -> Tuple[int, int]:
        d = self.decoded
        rs1 = d.rs1[pc]
        value = d.alu[pc](st.regs[rs1], d.imm[pc])
        ready = max(st.reg_ready[rs1], disp)
        complete = ready + d.latency[pc]
        rd = d.rd[pc]
        if rd:
            st.regs[rd] = value
            st.reg_ready[rd] = complete
        return complete, pc + 1

    def _k_load(
        self, st: _EvState, pc: int, f: int, disp: int
    ) -> Tuple[int, int]:
        d = self.decoded
        st.stats.loads += 1
        rs1 = d.rs1[pc]
        addr = st.regs[rs1] + d.imm[pc]
        value = st.memory.load(addr)
        issue = max(st.reg_ready[rs1], disp) + 1  # address generation
        forwarded = st.store_queue.get(addr)
        if forwarded is not None:
            complete = (
                max(issue, forwarded[0]) + self.machine.store_forward_latency
            )
        else:
            level, complete = st.hierarchy.mt_access_fast(addr, issue)
            if level != 1:
                st.stats.l1_misses += 1
                self._track_fill(st, level, addr, complete)
            if level == 3:
                exposure = st.stats.miss_exposure.get(pc)
                if exposure is None:
                    exposure = [0, 0]
                    st.stats.miss_exposure[pc] = exposure
                exposure[0] += 1
                exposed = complete - st.last_retire
                if exposed > 0:
                    exposure[1] += exposed
            if st.prefetcher is not None:
                for target in st.prefetcher.observe(pc, addr):
                    _lv, ready = st.hierarchy.pt_access_fast(target, issue)
                    self._track_fill(st, _lv, target, ready)
        rd = d.rd[pc]
        if rd:
            st.regs[rd] = value
            st.reg_ready[rd] = complete
        return complete, pc + 1

    def _k_store(
        self, st: _EvState, pc: int, f: int, disp: int
    ) -> Tuple[int, int]:
        d = self.decoded
        st.stats.stores += 1
        rs1, rs2 = d.rs1[pc], d.rs2[pc]
        addr = st.regs[rs1] + d.imm[pc]
        st.memory.store(addr, st.regs[rs2])
        complete = max(st.reg_ready[rs1], disp) + 1
        # The write drains in the background but still probes the
        # hierarchy; its misses count like load misses.
        level, ready = st.hierarchy.mt_access_fast(addr, complete, True)
        if level != 1:
            st.stats.l1_misses += 1
            self._track_fill(st, level, addr, ready)
        # Bounded store queue, MRU refresh on re-store.
        queue = st.store_queue
        if addr in queue:
            del queue[addr]
        queue[addr] = (max(complete, st.reg_ready[rs2]), st.regs[rs2])
        if len(queue) > 64:
            del queue[next(iter(queue))]
        return complete, pc + 1

    def _k_branch(
        self, st: _EvState, pc: int, f: int, disp: int
    ) -> Tuple[int, int]:
        d = self.decoded
        st.stats.branches += 1
        rs1, rs2 = d.rs1[pc], d.rs2[pc]
        taken = d.branch[pc](st.regs[rs1], st.regs[rs2])
        ready = max(st.reg_ready[rs1], st.reg_ready[rs2], disp)
        complete = ready + 1
        next_pc = d.target[pc] if taken else pc + 1
        correct = st.predictor.predict_and_update(pc, taken, d.target[pc])
        hint = None
        if pc in self._hinted_pcs:
            instance = st.branch_counts.get(pc, 0)
            st.branch_counts[pc] = instance + 1
            per_pc = st.branch_hints.get(pc)
            if per_pc is not None:
                hint = per_pc.pop(instance, None)
        if not correct:
            st.stats.mispredictions += 1
            if hint is not None and hint[0] <= f and hint[1] == int(taken):
                # A p-thread resolved this branch before fetch: the
                # front end follows the hint, no redirect.
                st.stats.mispredicts_covered += 1
            else:
                st.fetch_cycle = complete + self.machine.mispredict_penalty
                st.cap_used = 0
        return complete, next_pc

    def _k_jump(
        self, st: _EvState, pc: int, f: int, disp: int
    ) -> Tuple[int, int]:
        st.stats.branches += 1
        return disp, self.decoded.target[pc]

    def _k_jal(
        self, st: _EvState, pc: int, f: int, disp: int
    ) -> Tuple[int, int]:
        d = self.decoded
        st.stats.branches += 1
        rd = d.rd[pc]
        if rd:
            st.regs[rd] = pc + 1
            st.reg_ready[rd] = disp
        return disp, d.target[pc]

    def _k_jr(
        self, st: _EvState, pc: int, f: int, disp: int
    ) -> Tuple[int, int]:
        d = self.decoded
        st.stats.branches += 1
        rs1 = d.rs1[pc]
        complete = max(st.reg_ready[rs1], disp) + 1
        next_pc = st.regs[rs1]
        if not st.predictor.predict_indirect(pc, next_pc):
            st.stats.mispredictions += 1
            st.fetch_cycle = complete + self.machine.mispredict_penalty
            st.cap_used = 0
        return complete, next_pc

    def _k_halt(
        self, st: _EvState, pc: int, f: int, disp: int
    ) -> Tuple[int, int]:
        complete = disp
        if complete > st.last_retire:
            st.last_retire = complete
        st.ring[st.executed % self.machine.window] = st.last_retire
        st.halted = True
        return complete, pc

    def _k_nop(
        self, st: _EvState, pc: int, f: int, disp: int
    ) -> Tuple[int, int]:
        return disp, pc + 1

    # -- p-thread launch + body ----------------------------------------

    def _on_pthread_launch(
        self, st: _EvState, t: int, payload: object
    ) -> None:
        """One launch attempt at cycle ``t`` (the trigger's dispatch).

        Dispatched inline from the fetch handler so the body's cache
        accesses keep their commit-order position between the trigger
        and the next main-thread instruction; the steal side effects go
        through future-dated ``PTHREAD_BURST`` events.
        """
        pthread = payload
        assert isinstance(pthread, StaticPThread)
        body = self._bodies[id(pthread)]
        stats = st.stats
        trigger = pthread.trigger_pc

        slot = -1
        for index, busy_until in enumerate(st.contexts):
            if busy_until <= t:
                slot = index
                break
        if slot < 0:
            stats.pthread_drops += 1
            stats.drops_by_trigger[trigger] = (
                stats.drops_by_trigger.get(trigger, 0) + 1
            )
            return
        st.contexts[slot] = t + body.busy_cycles
        stats.pthread_launches += 1
        stats.launches_by_trigger[trigger] = (
            stats.launches_by_trigger.get(trigger, 0) + 1
        )
        stats.pthread_instructions += body.size

        mode = st.mode
        if mode.steal:
            for offset, _start, count in body.bursts:
                st.heap.push(t + offset, EV_PTHREAD_BURST, count)
        if not mode.execute:
            return
        self._run_body(st, pthread, body, t)

    def _run_body(
        self,
        st: _EvState,
        pthread: StaticPThread,
        body: _BodyImage,
        launch_time: int,
    ) -> None:
        """Execute a launched body with trigger-time seed values."""
        values: Dict[int, int] = {0: 0}
        ready: Dict[int, int] = {0: 0}
        for reg in body.live_ins:
            if reg < NUM_REGS:
                values[reg] = st.regs[reg]
                ready[reg] = st.reg_ready[reg]
            else:  # virtual register with no seed: reads as zero
                values[reg] = 0
                ready[reg] = 0

        mode = st.mode
        forward_latency = self.machine.store_forward_latency
        store_buffer: Dict[int, Tuple[int, int]] = {}
        bursts = body.bursts
        burst_index = 0
        for j in range(body.size):
            while (
                burst_index + 1 < len(bursts)
                and j >= bursts[burst_index + 1][1]
            ):
                burst_index += 1
            inject = launch_time + bursts[burst_index][0]
            k = body.kind[j]
            rs1 = body.rs1[j]
            in_ready = max(ready.get(rs1, 0), inject + 1)
            if k == K_ALU_I:
                value = body.alu[j](values.get(rs1, 0), body.imm[j])
                complete = in_ready + body.latency[j]
            elif k == K_ALU_R:
                rs2 = body.rs2[j]
                in_ready = max(in_ready, ready.get(rs2, 0))
                value = body.alu[j](
                    values.get(rs1, 0), values.get(rs2, 0)
                )
                complete = in_ready + body.latency[j]
            elif k == K_LOAD:
                addr = values.get(rs1, 0) + body.imm[j]
                issue = in_ready + 1
                buffered = store_buffer.get(addr)
                if buffered is not None:
                    data_ready, value = buffered
                    complete = max(issue, data_ready) + forward_latency
                else:
                    value = st.memory.load(addr)
                    if mode.prefetch:
                        level, complete = st.hierarchy.pt_access_fast(
                            addr, issue
                        )
                        self._track_fill(st, level, addr, complete)
                    else:
                        complete = st.hierarchy.phantom_access_fast(
                            addr, issue
                        )[1]
            elif k == K_BRANCH:
                # Terminal branch of a branch-pre-execution body: post
                # its early outcome as a fetch hint for the dynamic
                # instance `instances_ahead` trigger iterations out.
                rs2 = body.rs2[j]
                in_ready = max(in_ready, ready.get(rs2, 0))
                branch_fn = body.branch[j]
                assert branch_fn is not None
                taken = branch_fn(values.get(rs1, 0), values.get(rs2, 0))
                if mode.prefetch:
                    branch_pc = body.pcs[j]
                    seen = st.branch_counts.get(branch_pc, 0)
                    offset = pthread.instances_ahead
                    if pthread.trigger_pc > branch_pc:
                        offset -= 1
                    per_pc = st.branch_hints.setdefault(branch_pc, {})
                    per_pc[seen + max(0, offset)] = (
                        in_ready + 1,
                        int(taken),
                    )
                    if len(per_pc) > 64:
                        for stale in [
                            key for key in per_pc if key < seen
                        ]:
                            del per_pc[stale]
                continue
            else:  # K_STORE: private buffer only; never commits
                rs2 = body.rs2[j]
                in_ready = max(in_ready, ready.get(rs2, 0))
                addr = values.get(rs1, 0) + body.imm[j]
                store_buffer[addr] = (in_ready + 1, values.get(rs2, 0))
                continue
            rd = body.rd[j]
            if rd:
                values[rd] = value
                ready[rd] = complete
