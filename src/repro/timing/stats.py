"""Timing-simulation statistics.

:class:`SimStats` is the measured half of the paper's Table 2: IPC,
p-thread launch counts and lengths, and L2-miss coverage classified by
the cache-block timestamping scheme (fully covered / partially covered
/ evicted-before-use).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class SimStats:
    """Counters produced by one timing-simulation run."""

    mode: str = "baseline"
    cycles: int = 0
    instructions: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    mispredictions: int = 0
    #: Mispredictions whose redirect penalty a branch p-thread's early
    #: outcome hint suppressed (branch pre-execution).
    mispredicts_covered: int = 0
    # Main-thread memory behaviour.  ``l2_misses`` counts accesses the
    # *unassisted* program would have missed — i.e. covered misses are
    # still counted, then classified below.
    l1_misses: int = 0
    l2_misses: int = 0
    misses_fully_covered: int = 0
    misses_partially_covered: int = 0
    partial_covered_cycles: int = 0
    prefetches_evicted: int = 0
    prefetches_unclaimed: int = 0
    # P-thread activity.
    pthread_launches: int = 0
    pthread_drops: int = 0
    pthread_instructions: int = 0
    pthread_l2_misses: int = 0
    #: Per trigger PC: *actual* launches (a context was free).  Dropped
    #: attempts are tallied separately in :attr:`drops_by_trigger`; the
    #: per-trigger attempt count is the sum of the two.
    launches_by_trigger: Dict[int, int] = field(default_factory=dict)
    drops_by_trigger: Dict[int, int] = field(default_factory=dict)
    #: Per static load PC: [miss count, exposed stall cycles].  The
    #: exposed cycles are a critical-path estimate: how far each miss's
    #: completion reached past the in-order retirement frontier.  Used
    #: by the effective-latency selection refinement (the paper's
    #: "critical path model" future-work direction).
    miss_exposure: Dict[int, list] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        if not self.cycles:
            return 0.0
        return self.instructions / self.cycles

    @property
    def misses_covered(self) -> int:
        """Misses covered at all (fully or partially)."""
        return self.misses_fully_covered + self.misses_partially_covered

    @property
    def coverage_fraction(self) -> float:
        if not self.l2_misses:
            return 0.0
        return self.misses_covered / self.l2_misses

    @property
    def full_coverage_fraction(self) -> float:
        if not self.l2_misses:
            return 0.0
        return self.misses_fully_covered / self.l2_misses

    @property
    def avg_pthread_length(self) -> float:
        if not self.pthread_launches:
            return 0.0
        return self.pthread_instructions / self.pthread_launches

    @property
    def instruction_overhead(self) -> float:
        """P-thread instructions per retired main-thread instruction."""
        if not self.instructions:
            return 0.0
        return self.pthread_instructions / self.instructions

    @property
    def misprediction_rate(self) -> float:
        if not self.branches:
            return 0.0
        return self.mispredictions / self.branches

    def effective_latency(self, pc: int, default: float) -> float:
        """Average *exposed* miss latency of static load ``pc``.

        Misses that complete behind the retirement frontier (because
        they overlapped other misses or useful work) expose only part
        of the memory latency; this is what latency tolerance can
        actually buy back.  Returns ``default`` for loads with no
        recorded misses.
        """
        entry = self.miss_exposure.get(pc)
        if not entry or not entry[0]:
            return default
        return entry[1] / entry[0]

    def speedup_over(self, baseline: "SimStats") -> float:
        """Fractional IPC improvement over a baseline run.

        An empty baseline (nothing simulated at all) legitimately has
        no speedup and returns ``0.0``.  A baseline that *ran* but
        retired no instructions — or burned no cycles while claiming to
        retire some — has a broken IPC; treating it as "no speedup"
        would silently mask the breakage, so it raises instead.
        """
        if not baseline.cycles and not baseline.instructions:
            return 0.0
        if baseline.ipc <= 0:
            raise ValueError(
                f"broken baseline [{baseline.mode}]: "
                f"{baseline.instructions} instructions in "
                f"{baseline.cycles} cycles gives non-positive IPC"
            )
        return self.ipc / baseline.ipc - 1.0

    def to_dict(self) -> dict:
        """Serialize to a JSON-compatible dict (see :meth:`from_dict`)."""
        return {
            "mode": self.mode,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "loads": self.loads,
            "stores": self.stores,
            "branches": self.branches,
            "mispredictions": self.mispredictions,
            "mispredicts_covered": self.mispredicts_covered,
            "l1_misses": self.l1_misses,
            "l2_misses": self.l2_misses,
            "misses_fully_covered": self.misses_fully_covered,
            "misses_partially_covered": self.misses_partially_covered,
            "partial_covered_cycles": self.partial_covered_cycles,
            "prefetches_evicted": self.prefetches_evicted,
            "prefetches_unclaimed": self.prefetches_unclaimed,
            "pthread_launches": self.pthread_launches,
            "pthread_drops": self.pthread_drops,
            "pthread_instructions": self.pthread_instructions,
            "pthread_l2_misses": self.pthread_l2_misses,
            "launches_by_trigger": {
                str(pc): count
                for pc, count in sorted(self.launches_by_trigger.items())
            },
            "drops_by_trigger": {
                str(pc): count
                for pc, count in sorted(self.drops_by_trigger.items())
            },
            "miss_exposure": {
                str(pc): list(entry)
                for pc, entry in sorted(self.miss_exposure.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimStats":
        """Rebuild from :meth:`to_dict` output."""
        fields_ = dict(data)
        launches = fields_.pop("launches_by_trigger", {})
        drops = fields_.pop("drops_by_trigger", {})
        exposure = fields_.pop("miss_exposure", {})
        stats = cls(**fields_)
        stats.launches_by_trigger = {
            int(pc): int(count) for pc, count in launches.items()
        }
        stats.drops_by_trigger = {
            int(pc): int(count) for pc, count in drops.items()
        }
        stats.miss_exposure = {
            int(pc): list(entry) for pc, entry in exposure.items()
        }
        return stats

    def describe(self) -> str:
        return (
            f"[{self.mode}] cycles={self.cycles} insns={self.instructions} "
            f"IPC={self.ipc:.3f} l2m={self.l2_misses} "
            f"covered={self.misses_covered} (full {self.misses_fully_covered}) "
            f"launches={self.pthread_launches} (dropped {self.pthread_drops}) "
            f"pt-insns={self.pthread_instructions}"
        )
