"""Trace-driven timing simulator with SMT pre-execution support.

The simulator executes the program functionally (correct path, program
order) while computing a cycle-level timing model alongside:

* **Sequencing**: the main thread fetches ``bw_seq`` instructions per
  cycle, minus slots stolen by p-thread injection bursts.  This shared
  sequencing bandwidth is the paper's overhead mechanism, and the
  validation experiments confirm it is the dominant cost.
* **Window**: at most ``window`` instructions in flight; fetch stalls
  until the instruction ``window`` back has retired.
* **Dataflow issue**: each instruction starts when its operands are
  ready and it has been dispatched; completion adds its latency (loads
  go through the timed memory hierarchy with MSHRs and bus occupancy).
* **Control**: a hybrid predictor decides which dynamic branches
  redirect fetch; mispredictions restart fetch after resolution plus a
  front-end refill penalty.  Wrong-path instructions are not executed
  (the paper observes wrong-path p-thread launches do not measurably
  change overhead; see DESIGN.md).
* **P-threads**: a dynamic p-thread launches when the main thread
  dispatches its trigger, occupies one of the extra thread contexts,
  and is injected in bursts (8 instructions every 8 cycles by default).
  Bodies execute with seed values captured at the trigger — value
  availability follows the producing main-thread instruction's
  completion, exactly like a physical-register handoff.  Body stores
  forward through a private store buffer and never commit.  Body loads
  prefetch into the L2 only.

Like the functional simulator, two engines produce bit-identical
:class:`~repro.timing.stats.SimStats` (see DESIGN.md): the resumable
interpreter in :meth:`TimingSimulator._interp`, and compiled
basic-block functions from :mod:`repro.engine.compiler` driven by
:meth:`TimingSimulator._run_compiled`.  The dispatcher leans on the
interpreter for block tails, computed-jump entries, and the
instructions around schedule region boundaries (which are dynamic
instruction counts, not PCs, so compiled blocks cannot observe them).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import assert_clean, verification_enabled
from repro.engine.compiler import (
    ENGINE_COMPILED,
    ENGINE_INTERP,
    ENGINE_TIERED,
    TIER_SLICE,
    CompiledBlocks,
    compile_timing,
    discover_blocks,
    register_engine_metrics,
    resolve_engine,
    tier_threshold,
)
from repro.engine.decode import (
    DecodedProgram,
    K_ALU_I,
    K_ALU_R,
    K_BRANCH,
    K_HALT,
    K_JAL,
    K_JR,
    K_JUMP,
    K_LOAD,
    K_STORE,
)
from repro.frontend.branch_predictor import HybridPredictor
from repro.isa.opcodes import Format
from repro.isa.program import Program
from repro.isa.registers import NUM_REGS
from repro.memory.hierarchy import HierarchyConfig, TimedHierarchy
from repro.memory.main_memory import MainMemory
from repro.obs import get_registry as obs_registry, get_tracer
from repro.pthreads.pthread import StaticPThread
from repro.timing.config import BASELINE, MachineConfig, SimMode
from repro.timing.stats import SimStats

#: Activation schedule: (start_instruction, end_instruction, p-threads).
Schedule = List[Tuple[int, int, List[StaticPThread]]]


def _store_queue_put(
    queue: Dict[int, Tuple[int, int]],
    addr: int,
    entry: Tuple[int, int],
    limit: int = 64,
) -> None:
    """Insert ``addr`` into the bounded store queue at MRU position.

    Python dicts preserve insertion order, so eviction pops the oldest
    key; re-storing an existing address must delete-and-reinsert to
    refresh its recency, otherwise a hot address keeps its stale
    insertion slot and is evicted while colder entries survive.  The
    compiled engine inlines these exact operations per store; the
    differential equivalence suite pins the two together.
    """
    if addr in queue:
        del queue[addr]
    queue[addr] = entry
    if len(queue) > limit:
        del queue[next(iter(queue))]


class _DecodedBody:
    """Pre-decoded p-thread body for fast repeated execution."""

    __slots__ = (
        "size",
        "kind",
        "rd",
        "rs1",
        "rs2",
        "imm",
        "alu",
        "branch",
        "pcs",
        "latency",
        "live_ins",
        "bursts",
        "last_burst_offset",
    )

    def __init__(self, pthread: StaticPThread, machine: MachineConfig) -> None:
        body = pthread.body
        n = body.size
        self.size = n
        self.kind: List[int] = []
        self.rd: List[int] = []
        self.rs1: List[int] = []
        self.rs2: List[int] = []
        self.imm: List[int] = []
        self.alu: List[Optional[Callable[[int, int], int]]] = []
        self.branch: List[Optional[Callable[[int, int], bool]]] = []
        self.pcs: List[int] = []
        self.latency: List[int] = []
        for inst in body.instructions:
            fmt = inst.info.fmt
            if fmt is Format.R:
                self.kind.append(K_ALU_R)
            elif fmt is Format.I:
                self.kind.append(K_ALU_I)
            elif fmt is Format.LOAD:
                self.kind.append(K_LOAD)
            elif fmt is Format.BRANCH:
                # Terminal branch of a branch-pre-execution body: its
                # early outcome is posted as a fetch hint.
                self.kind.append(K_BRANCH)
            else:  # store
                self.kind.append(K_STORE)
            self.rd.append(inst.rd if inst.rd is not None else 0)
            self.rs1.append(inst.rs1 if inst.rs1 is not None else 0)
            self.rs2.append(inst.rs2 if inst.rs2 is not None else 0)
            self.imm.append(inst.imm)
            self.alu.append(inst.info.alu)
            self.branch.append(inst.info.branch)
            self.pcs.append(inst.pc)
            self.latency.append(inst.info.latency)
        self.live_ins = body.live_ins
        # Injection bursts: (cycle offset, first insn, count).
        burst, period = machine.pthread_burst, machine.pthread_burst_period
        self.bursts: List[Tuple[int, int, int]] = []
        start = 0
        offset = 0
        while start < n:
            count = min(burst, n - start)
            self.bursts.append((offset, start, count))
            start += count
            offset += period
        self.last_burst_offset = self.bursts[-1][0] if self.bursts else 0


class _TimingState:
    """Mutable run state shared between interpreter and dispatcher.

    The compiled dispatcher and the resumable interpreter hand
    execution back and forth (tails, computed-jump entries, region
    boundaries); everything either side reads or writes lives here so
    the hand-off is exact.
    """

    __slots__ = (
        "pc",
        "executed",
        "fetch_cycle",
        "cap_used",
        "last_retire",
        "halted",
        "region_index",
        "region_end",
        "triggers",
        "trig",
        "regs",
        "reg_ready",
        "retire_ring",
        "stolen",
        "store_queue",
        "contexts",
        "branch_hints",
        "branch_counts",
        "hinted_pcs",
        "launching",
        "mode",
        "stats",
        "predictor",
        "prefetcher",
        "hierarchy",
        "memory",
        "mem_load",
        "mem_store",
        "miss_exposure",
        "tallies",
    )


class TimingSimulator:
    """Execution-driven timing model of the SMT pre-execution machine.

    Args:
        program: the program to run.
        hierarchy_config: memory-system geometry and latency.
        machine: core parameters.
        pthreads: static p-threads active for the whole run (mutually
            exclusive with ``schedule``).
        schedule: region-based p-thread activation for granularity
            experiments.
        engine: ``"compiled"`` / ``"interp"``; ``None`` defers to the
            ``REPRO_ENGINE`` environment variable (default compiled).

    Attributes:
        last_registers: committed register file after the most recent
            :meth:`run` (empty before the first run).
        last_memory: committed :class:`MainMemory` after the most
            recent :meth:`run` (``None`` before the first run).
            P-thread stores stay in the speculative store buffer and
            never commit, so in every mode this state must equal the
            functional simulator's — the differential oracle checks it.
        last_engine: the engine the most recent :meth:`run` actually
            used (``"interp"`` also when the compiled engine fell back).
    """

    def __init__(
        self,
        program: Program,
        hierarchy_config: HierarchyConfig,
        machine: Optional[MachineConfig] = None,
        pthreads: Optional[Sequence[StaticPThread]] = None,
        schedule: Optional[Schedule] = None,
        engine: Optional[str] = None,
    ) -> None:
        if pthreads is not None and schedule is not None:
            raise ValueError("pass either pthreads or schedule, not both")
        self.program = program
        self.decoded = DecodedProgram(program)
        self.hierarchy_config = hierarchy_config
        self.machine = machine or MachineConfig()
        if schedule is None:
            schedule = [(0, 1 << 62, list(pthreads or []))]
        self.schedule: Schedule = [
            (start, end, list(pts)) for start, end, pts in schedule
        ]
        self._decoded_bodies: Dict[int, _DecodedBody] = {}
        for _, _, pts in self.schedule:
            for pthread in pts:
                if id(pthread) not in self._decoded_bodies:
                    self._decoded_bodies[id(pthread)] = _DecodedBody(
                        pthread, self.machine
                    )
        self.engine = resolve_engine(engine)
        self.last_engine: Optional[str] = None
        self.last_tier: Optional[dict] = None
        self.last_registers: List[int] = []
        self.last_memory: Optional[MainMemory] = None
        self._compiled: Dict[tuple, Optional[CompiledBlocks]] = {}
        # Static over all regions: the PCs where launches can ever
        # trigger (compiled blocks embed the launch check there) and
        # the branch PCs that hints can ever target.
        self._trigger_union = frozenset(
            pt.trigger_pc for _, _, pts in self.schedule for pt in pts
        )
        self._hinted_pcs = frozenset(
            pt.body.instructions[-1].pc
            for _, _, pts in self.schedule
            for pt in pts
            if pt.body.targets_branch
        )

    # ------------------------------------------------------------------

    def _triggers_for(
        self, region: Tuple[int, int, List[StaticPThread]]
    ) -> Dict[int, List[StaticPThread]]:
        triggers: Dict[int, List[StaticPThread]] = {}
        for pthread in region[2]:
            triggers.setdefault(pthread.trigger_pc, []).append(pthread)
        return triggers

    def _compiled_variant(
        self, launching: bool, stealing: bool, prefetching: bool
    ) -> Optional[CompiledBlocks]:
        """The compiled variant for a mode shape, memoized per instance."""
        key = (launching, stealing, prefetching)
        if key not in self._compiled:
            machine = self.machine
            compiled = compile_timing(
                self.decoded,
                window=machine.window,
                bw_seq=machine.bw_seq,
                dispatch_latency=machine.dispatch_latency,
                mispredict_penalty=machine.mispredict_penalty,
                forward_latency=machine.store_forward_latency,
                launching=launching,
                stealing=stealing,
                prefetching=prefetching,
                trigger_pcs=self._trigger_union,
                hinted_pcs=self._hinted_pcs,
            )
            if verification_enabled() and not (
                compiled is not None and compiled.validated
            ):
                # Debug-mode translation validation: statically prove
                # the generated block functions equivalent to the
                # timing-loop semantics before trusting them with a run.
                # Cache-loaded modules whose bytes already validated
                # clean carry ``validated`` and skip the re-proof.
                from repro.analysis.transval import (
                    TimingParams,
                    validate_timing,
                )

                params = TimingParams(
                    window=machine.window,
                    bw_seq=machine.bw_seq,
                    dispatch_latency=machine.dispatch_latency,
                    mispredict_penalty=machine.mispredict_penalty,
                    forward_latency=machine.store_forward_latency,
                    launching=launching,
                    stealing=stealing,
                    prefetching=prefetching,
                    trigger_pcs=self._trigger_union,
                    hinted_pcs=self._hinted_pcs,
                )
                result = validate_timing(self.decoded, compiled, params)
                assert_clean(
                    result.diagnostics,
                    f"codegen validation (timing, launching={launching}, "
                    f"stealing={stealing}, prefetching={prefetching})",
                )
                if compiled is not None:
                    compiled.validated = True
                    from repro.engine.codecache import get_code_cache

                    cache = get_code_cache()
                    if cache is not None:
                        cache.mark_validated(compiled)
            self._compiled[key] = compiled
        return self._compiled[key]

    def _tiered_variant(
        self,
        launching: bool,
        stealing: bool,
        prefetching: bool,
        hot: tuple,
    ) -> Optional[CompiledBlocks]:
        """The compiled hot-subset variant for tiered runs, memoized.

        ``hot`` is the sorted tuple of hot block-leader PCs; the module
        covers exactly those blocks.  Under ``REPRO_VERIFY`` the subset
        is translation-validated like a full compilation (the
        structural partition check runs in subset mode).
        """
        key = ("tiered", launching, stealing, prefetching, hot)
        if key not in self._compiled:
            machine = self.machine
            compiled = compile_timing(
                self.decoded,
                window=machine.window,
                bw_seq=machine.bw_seq,
                dispatch_latency=machine.dispatch_latency,
                mispredict_penalty=machine.mispredict_penalty,
                forward_latency=machine.store_forward_latency,
                launching=launching,
                stealing=stealing,
                prefetching=prefetching,
                trigger_pcs=self._trigger_union,
                hinted_pcs=self._hinted_pcs,
                only_blocks=hot,
            )
            if (
                compiled is not None
                and verification_enabled()
                and not compiled.validated
            ):
                from repro.analysis.transval import (
                    TimingParams,
                    validate_timing,
                )

                params = TimingParams(
                    window=machine.window,
                    bw_seq=machine.bw_seq,
                    dispatch_latency=machine.dispatch_latency,
                    mispredict_penalty=machine.mispredict_penalty,
                    forward_latency=machine.store_forward_latency,
                    launching=launching,
                    stealing=stealing,
                    prefetching=prefetching,
                    trigger_pcs=self._trigger_union,
                    hinted_pcs=self._hinted_pcs,
                )
                result = validate_timing(
                    self.decoded, compiled, params, only_blocks=hot
                )
                assert_clean(
                    result.diagnostics,
                    f"codegen validation (timing tiered, "
                    f"launching={launching}, stealing={stealing}, "
                    f"prefetching={prefetching}, blocks={len(hot)})",
                )
                # The memoized compilation remembers it proved
                # clean even when no persistent cache is enabled.
                compiled.validated = True
                from repro.engine.codecache import get_code_cache

                cache = get_code_cache()
                if cache is not None:
                    cache.mark_validated(compiled)
            self._compiled[key] = compiled
        return self._compiled[key]

    def validate_codegen(
        self, launching: bool, stealing: bool, prefetching: bool
    ):
        """Translation-validate one compiled variant without running it.

        Compiles the (launching, stealing, prefetching) mode shape with
        this simulator's machine parameters and trigger/hint sets and
        returns the :class:`repro.analysis.transval.TransvalResult` of
        checking it against the timing-loop semantics.  Static: no
        cycle is simulated.  Used by ``repro verify-codegen`` and the
        fuzz oracle's ``codegen_transval`` family.
        """
        from repro.analysis.transval import TimingParams, validate_timing

        machine = self.machine
        compiled = compile_timing(
            self.decoded,
            window=machine.window,
            bw_seq=machine.bw_seq,
            dispatch_latency=machine.dispatch_latency,
            mispredict_penalty=machine.mispredict_penalty,
            forward_latency=machine.store_forward_latency,
            launching=launching,
            stealing=stealing,
            prefetching=prefetching,
            trigger_pcs=self._trigger_union,
            hinted_pcs=self._hinted_pcs,
        )
        params = TimingParams(
            window=machine.window,
            bw_seq=machine.bw_seq,
            dispatch_latency=machine.dispatch_latency,
            mispredict_penalty=machine.mispredict_penalty,
            forward_latency=machine.store_forward_latency,
            launching=launching,
            stealing=stealing,
            prefetching=prefetching,
            trigger_pcs=frozenset(self._trigger_union),
            hinted_pcs=frozenset(self._hinted_pcs),
        )
        return validate_timing(self.decoded, compiled, params)

    def run(
        self,
        mode: SimMode = BASELINE,
        max_instructions: int = 50_000_000,
    ) -> SimStats:
        """Simulate to ``halt`` (or an instruction cap); returns stats."""
        machine = self.machine
        memory = MainMemory(self.program.data)
        hierarchy = TimedHierarchy(
            self.hierarchy_config, perfect_l2=mode.perfect_l2
        )
        stats = SimStats(mode=mode.name)
        prefetcher = None
        if machine.stride_prefetch:
            from repro.memory.prefetcher import StridePrefetcher

            prefetcher = StridePrefetcher(degree=machine.stride_degree)

        st = _TimingState()
        st.pc = 0
        st.executed = 0
        st.fetch_cycle = 0
        st.cap_used = 0
        st.last_retire = 0
        st.halted = False
        st.regs = [0] * NUM_REGS
        st.reg_ready = [0] * NUM_REGS
        st.retire_ring = [0] * machine.window
        st.stolen = {}
        st.store_queue = {}
        st.contexts = [0] * machine.pthread_contexts
        # Branch hints from branch-pre-execution p-threads, tagged with
        # the dynamic branch instance they resolve:
        # branch pc -> {instance number -> (outcome ready cycle, outcome)}.
        st.branch_hints = {}
        # Dynamic instance counters for hinted branch PCs.
        st.branch_counts = {}
        st.hinted_pcs = self._hinted_pcs
        st.launching = mode.launch and any(pts for _, _, pts in self.schedule)
        st.mode = mode
        st.stats = stats
        st.predictor = HybridPredictor()
        st.prefetcher = prefetcher
        st.hierarchy = hierarchy
        st.memory = memory
        st.mem_load = memory.load
        st.mem_store = memory.store
        st.miss_exposure = stats.miss_exposure
        st.region_index = 0
        region = self.schedule[0]
        st.triggers = self._triggers_for(region) if st.launching else {}
        st.region_end = region[1]
        st.trig = [st.triggers]
        # Rare-event tallies for the compiled engine (the interpreter
        # writes `stats` directly): [l1 misses, mispredictions,
        # mispredicts covered by hints].
        st.tallies = [0, 0, 0]

        register_engine_metrics()
        compiled = None
        if self.engine == ENGINE_COMPILED:
            compiled = self._compiled_variant(
                launching=st.launching,
                stealing=st.launching and mode.steal,
                prefetching=prefetcher is not None,
            )
        if compiled is not None:
            self.last_engine = ENGINE_COMPILED
            self._run_compiled(compiled, st, max_instructions)
        elif self.engine == ENGINE_TIERED:
            self.last_engine = ENGINE_TIERED
            self._run_tiered(st, max_instructions, prefetcher is not None)
        else:
            self.last_engine = ENGINE_INTERP
            self._interp(st, max_instructions)

        stats.l1_misses += st.tallies[0]
        stats.mispredictions += st.tallies[1]
        stats.mispredicts_covered += st.tallies[2]
        stats.instructions = st.executed
        stats.cycles = max(st.last_retire, st.fetch_cycle)
        stats.misses_fully_covered = hierarchy.full_covered
        stats.misses_partially_covered = hierarchy.partial_covered
        stats.partial_covered_cycles = hierarchy.partial_covered_cycles
        stats.prefetches_evicted = hierarchy.evicted_prefetches
        stats.prefetches_unclaimed = hierarchy.unclaimed_prefetches()
        stats.pthread_l2_misses = hierarchy.pt_l2_misses
        # Misses the unassisted program would have taken: actual misses
        # plus misses converted to hits by coverage.
        stats.l2_misses = (
            hierarchy.mt_l2_misses
            + hierarchy.full_covered
            + hierarchy.partial_covered
        )
        self.last_registers = list(st.regs)
        self.last_memory = memory
        self._publish_metrics(stats, hierarchy)
        return stats

    @staticmethod
    def _publish_metrics(stats: SimStats, hierarchy: TimedHierarchy) -> None:
        """Fold this run's totals into the global metrics registry.

        Published once per run (never from the hot loop); names are part
        of the stable catalog in :mod:`repro.obs.export`.
        """
        registry = obs_registry()
        registry.counter("timing.runs").inc()
        registry.counter("timing.instructions").inc(stats.instructions)
        registry.counter("timing.cycles").inc(stats.cycles)
        registry.counter("timing.l1.misses").inc(stats.l1_misses)
        registry.counter("timing.l2.misses").inc(stats.l2_misses)
        registry.counter("timing.l2.covered_full").inc(stats.misses_fully_covered)
        registry.counter("timing.l2.covered_partial").inc(
            stats.misses_partially_covered
        )
        registry.counter("timing.branch.mispredictions").inc(stats.mispredictions)
        registry.counter("timing.branch.mispredicts_covered").inc(
            stats.mispredicts_covered
        )
        registry.counter("timing.pthread.attempts").inc(
            stats.pthread_launches + stats.pthread_drops
        )
        registry.counter("timing.pthread.launches").inc(stats.pthread_launches)
        registry.counter("timing.pthread.drops").inc(stats.pthread_drops)
        registry.counter("timing.pthread.instructions").inc(
            stats.pthread_instructions
        )
        registry.counter("timing.pthread.l2_misses").inc(stats.pthread_l2_misses)
        hierarchy.publish_metrics(registry)

    # ------------------------------------------------------------------

    def _advance_region(self, st: _TimingState, executed: int) -> None:
        """Advance (or refresh) the active schedule region."""
        schedule = self.schedule
        region_index = st.region_index
        while (
            region_index + 1 < len(schedule)
            and executed >= schedule[region_index][1]
        ):
            region_index += 1
        region = schedule[region_index]
        st.region_index = region_index
        st.triggers = self._triggers_for(region)
        st.region_end = region[1]
        st.trig[0] = st.triggers

    def _interp(
        self,
        st: _TimingState,
        limit: int,
        stop_pcs: Optional[dict] = None,
        entry_counts: Optional[Dict[int, int]] = None,
    ) -> None:
        """Interpret from ``st`` until halt, ``limit`` instructions, or
        a PC in ``stop_pcs`` (checked before executing — callers enter
        with ``st.pc`` outside the set).

        With ``entry_counts``, every control-flow transfer target is
        counted (``{next_pc: entries}``); the tiered engine scans the
        counts for block leaders worth compiling.
        """
        machine = self.machine
        decoded = self.decoded
        kind = decoded.kind
        rd_arr = decoded.rd
        rs1_arr = decoded.rs1
        rs2_arr = decoded.rs2
        imm_arr = decoded.imm
        target_arr = decoded.target
        alu_arr = decoded.alu
        branch_arr = decoded.branch
        lat_arr = decoded.latency

        mode = st.mode
        stats = st.stats
        hierarchy = st.hierarchy
        predictor = st.predictor
        prefetcher = st.prefetcher
        miss_exposure = st.miss_exposure

        bw = machine.bw_seq
        dispatch_latency = machine.dispatch_latency
        window = machine.window
        mispredict_penalty = machine.mispredict_penalty
        forward_latency = machine.store_forward_latency

        regs = st.regs
        reg_ready = st.reg_ready
        retire_ring = st.retire_ring
        stolen = st.stolen
        stolen_get = stolen.get
        store_queue = st.store_queue
        contexts = st.contexts
        branch_hints = st.branch_hints
        branch_counts = st.branch_counts
        hinted_pcs = st.hinted_pcs
        launching = st.launching
        trig = st.trig
        schedule = self.schedule

        mem_load = st.mem_load
        mem_store = st.mem_store
        mt_access = hierarchy.mt_access_fast
        pt_access = hierarchy.pt_access_fast
        predict = predictor.predict_and_update
        predict_indirect = predictor.predict_indirect

        pc = st.pc
        executed = st.executed
        fetch_cycle = st.fetch_cycle
        cap_used = st.cap_used
        last_retire = st.last_retire
        region_index = st.region_index
        region_end = st.region_end
        triggers = st.triggers
        halted = False
        counting = entry_counts is not None

        while executed < limit:
            if stop_pcs is not None and pc in stop_pcs:
                break
            if launching and executed >= region_end:
                while (
                    region_index + 1 < len(schedule)
                    and executed >= schedule[region_index][1]
                ):
                    region_index += 1
                region = schedule[region_index]
                triggers = self._triggers_for(region)
                region_end = region[1]
                trig[0] = triggers

            k = kind[pc]
            executed += 1

            # ---- fetch: bandwidth (minus stolen slots) and window ----
            ring_slot = executed % window
            window_stall = retire_ring[ring_slot]
            if window_stall > fetch_cycle:
                fetch_cycle = window_stall
                cap_used = 0
            while cap_used >= bw - stolen_get(fetch_cycle, 0):
                fetch_cycle += 1
                cap_used = 0
            f = fetch_cycle
            cap_used += 1
            disp = f + dispatch_latency
            next_pc = pc + 1

            # ---- execute / time ----
            if k == K_ALU_R:
                rs1 = rs1_arr[pc]
                rs2 = rs2_arr[pc]
                value = alu_arr[pc](regs[rs1], regs[rs2])
                ready = reg_ready[rs1]
                r2 = reg_ready[rs2]
                if r2 > ready:
                    ready = r2
                if disp > ready:
                    ready = disp
                complete = ready + lat_arr[pc]
                rd = rd_arr[pc]
                if rd:
                    regs[rd] = value
                    reg_ready[rd] = complete
            elif k == K_ALU_I:
                rs1 = rs1_arr[pc]
                value = alu_arr[pc](regs[rs1], imm_arr[pc])
                ready = reg_ready[rs1]
                if disp > ready:
                    ready = disp
                complete = ready + lat_arr[pc]
                rd = rd_arr[pc]
                if rd:
                    regs[rd] = value
                    reg_ready[rd] = complete
            elif k == K_LOAD:
                stats.loads += 1
                rs1 = rs1_arr[pc]
                addr = regs[rs1] + imm_arr[pc]
                value = mem_load(addr)
                ready = reg_ready[rs1]
                if disp > ready:
                    ready = disp
                issue = ready + 1  # address generation
                forwarded = store_queue.get(addr)
                if forwarded is not None:
                    data_ready = forwarded[0]
                    complete = (
                        max(issue, data_ready) + forward_latency
                    )
                else:
                    level, complete = mt_access(addr, issue)
                    if level != 1:
                        stats.l1_misses += 1
                    if level == 3:
                        exposure = miss_exposure.get(pc)
                        if exposure is None:
                            exposure = [0, 0]
                            miss_exposure[pc] = exposure
                        exposure[0] += 1
                        exposed = complete - last_retire
                        if exposed > 0:
                            exposure[1] += exposed
                    if prefetcher is not None:
                        for target in prefetcher.observe(pc, addr):
                            pt_access(target, issue)
                rd = rd_arr[pc]
                if rd:
                    regs[rd] = value
                    reg_ready[rd] = complete
            elif k == K_STORE:
                stats.stores += 1
                rs1 = rs1_arr[pc]
                rs2 = rs2_arr[pc]
                addr = regs[rs1] + imm_arr[pc]
                mem_store(addr, regs[rs2])
                ready = reg_ready[rs1]
                if disp > ready:
                    ready = disp
                complete = ready + 1
                # Stores complete independent of the memory access (the
                # write drains in the background) but still probe the
                # hierarchy — count their L1 misses like load misses so
                # stats.l1_misses covers every access, matching the
                # functional model and the l2 <= l1 invariant.
                level, _ = mt_access(addr, complete, True)
                if level != 1:
                    stats.l1_misses += 1
                _store_queue_put(
                    store_queue,
                    addr,
                    (max(complete, reg_ready[rs2]), regs[rs2]),
                )
            elif k == K_BRANCH:
                stats.branches += 1
                rs1 = rs1_arr[pc]
                rs2 = rs2_arr[pc]
                taken = branch_arr[pc](regs[rs1], regs[rs2])
                ready = reg_ready[rs1]
                r2 = reg_ready[rs2]
                if r2 > ready:
                    ready = r2
                if disp > ready:
                    ready = disp
                complete = ready + 1
                target = target_arr[pc]
                if taken:
                    next_pc = target
                correct = predict(pc, taken, target)
                hint = None
                if pc in hinted_pcs:
                    instance = branch_counts.get(pc, 0)
                    branch_counts[pc] = instance + 1
                    per_pc = branch_hints.get(pc)
                    if per_pc is not None:
                        hint = per_pc.pop(instance, None)
                if not correct:
                    stats.mispredictions += 1
                    if (
                        hint is not None
                        and hint[0] <= f
                        and hint[1] == int(taken)
                    ):
                        # A p-thread resolved this branch before fetch:
                        # the front end follows the hint, no redirect.
                        stats.mispredicts_covered += 1
                    else:
                        fetch_cycle = complete + mispredict_penalty
                        cap_used = 0
                if counting:
                    entry_counts[next_pc] = entry_counts.get(next_pc, 0) + 1
            elif k == K_JUMP:
                stats.branches += 1
                complete = disp
                next_pc = target_arr[pc]
                if counting:
                    entry_counts[next_pc] = entry_counts.get(next_pc, 0) + 1
            elif k == K_JAL:
                stats.branches += 1
                complete = disp
                rd = rd_arr[pc]
                if rd:
                    regs[rd] = pc + 1
                    reg_ready[rd] = complete
                next_pc = target_arr[pc]
                if counting:
                    entry_counts[next_pc] = entry_counts.get(next_pc, 0) + 1
            elif k == K_JR:
                stats.branches += 1
                rs1 = rs1_arr[pc]
                ready = reg_ready[rs1]
                if disp > ready:
                    ready = disp
                complete = ready + 1
                next_pc = regs[rs1]
                correct = predict_indirect(pc, next_pc)
                if not correct:
                    stats.mispredictions += 1
                    fetch_cycle = complete + mispredict_penalty
                    cap_used = 0
                if counting:
                    entry_counts[next_pc] = entry_counts.get(next_pc, 0) + 1
            elif k == K_HALT:
                complete = disp
                last_retire = max(last_retire, complete)
                retire_ring[ring_slot] = last_retire
                halted = True
                break
            else:  # K_NOP
                complete = disp

            # ---- in-order retirement ----
            if complete < last_retire:
                complete_retire = last_retire
            else:
                complete_retire = complete
            last_retire = complete_retire
            retire_ring[ring_slot] = complete_retire

            # ---- p-thread launch at trigger dispatch ----
            if launching:
                waiting = triggers.get(pc)
                if waiting is not None:
                    for pthread in waiting:
                        self._launch(
                            pthread,
                            disp,
                            mode,
                            contexts,
                            stolen,
                            regs,
                            reg_ready,
                            mem_load,
                            hierarchy,
                            stats,
                            branch_hints,
                            branch_counts,
                        )
            # Periodically drop stale stolen-slot entries (in place:
            # the dict is closed over by compiled blocks and p-thread
            # launches, so it must never be rebound).
            if not executed & 0xFFFF and stolen:
                for cycle in [c for c in stolen if c < fetch_cycle]:
                    del stolen[cycle]

            pc = next_pc

        st.pc = pc
        st.executed = executed
        st.fetch_cycle = fetch_cycle
        st.cap_used = cap_used
        st.last_retire = last_retire
        st.region_index = region_index
        st.region_end = region_end
        st.triggers = triggers
        if halted:
            st.halted = True

    def _run_compiled(
        self, compiled: CompiledBlocks, st: _TimingState, limit: int
    ) -> None:
        """Drive the compiled block table; interpret the gaps.

        Compiled blocks cannot observe dynamic-instruction milestones
        mid-block, so the dispatcher only runs a block when at least
        ``max_len`` instructions remain before the next schedule region
        boundary and before the run limit; the interpreter carries
        execution across those edges (and across computed-jump entries
        that land mid-block).  Static per-block load/store/branch
        counts fold in from block execution counts at the end.
        """
        hierarchy = st.hierarchy
        mode = st.mode
        contexts = st.contexts
        stolen = st.stolen
        regs = st.regs
        rdy = st.reg_ready
        launch_one = self._launch

        def launch(waiting: List[StaticPThread], disp: int) -> None:
            for pthread in waiting:
                launch_one(
                    pthread,
                    disp,
                    mode,
                    contexts,
                    stolen,
                    regs,
                    rdy,
                    st.mem_load,
                    hierarchy,
                    st.stats,
                    st.branch_hints,
                    st.branch_counts,
                )

        ctx = {
            "ring": st.retire_ring,
            "store_queue": st.store_queue,
            "predict": st.predictor.predict_and_update,
            "predict_ind": st.predictor.predict_indirect,
            "mt_access": hierarchy.mt_access_fast,
            "pt_access": hierarchy.pt_access_fast,
            "mem_load": st.mem_load,
            "mem_store": st.mem_store,
            "words": st.memory.raw_words(),
            "miss_exposure": st.miss_exposure,
            "tallies": st.tallies,
            "stolen": stolen,
            "trig": st.trig,
            "launch": launch,
            "branch_hints": st.branch_hints,
            "branch_counts": st.branch_counts,
            "observe": (
                st.prefetcher.observe if st.prefetcher is not None else None
            ),
        }
        table = compiled.bind(ctx)
        table_get = table.get
        counts = [0] * compiled.num_blocks
        max_len = compiled.max_len
        launching = st.launching
        last_region = len(self.schedule) - 1
        cleanup_mark = 0

        while not st.halted and st.executed < limit:
            executed = st.executed
            if (
                launching
                and executed >= st.region_end
                and st.region_index < last_region
            ):
                self._advance_region(st, executed)
            cap = limit
            if (
                launching
                and st.region_index < last_region
                and st.region_end < cap
            ):
                cap = st.region_end
            if executed > cap - max_len:
                # Approaching the region boundary or the run limit:
                # single-step across it with the interpreter.
                self._interp(st, cap)
                continue
            entry = table_get(st.pc)
            if entry is None:
                # Mid-block entry (computed jump): interpret until the
                # next block leader.
                self._interp(st, cap, stop_pcs=table)
                continue
            fn, length, index = entry
            (
                st.pc,
                st.executed,
                st.fetch_cycle,
                st.cap_used,
                st.last_retire,
            ) = fn(
                executed, st.fetch_cycle, st.cap_used, st.last_retire, regs, rdy
            )
            counts[index] += 1
            if st.pc == -1:
                st.halted = True
                break
            # Periodic stale stolen-slot cleanup, mirroring the
            # interpreter's (cleanup timing is unobservable: fetch
            # cycles are monotonic).
            if st.executed - cleanup_mark >= 0x10000:
                cleanup_mark = st.executed
                if stolen:
                    fc = st.fetch_cycle
                    for cycle in [c for c in stolen if c < fc]:
                        del stolen[cycle]

        stats = st.stats
        block_loads = compiled.loads
        block_stores = compiled.stores
        block_branches = compiled.branches
        for index, count in enumerate(counts):
            if count:
                stats.loads += count * block_loads[index]
                stats.stores += count * block_stores[index]
                stats.branches += count * block_branches[index]

    def _run_tiered(
        self, st: _TimingState, limit: int, prefetching: bool
    ) -> None:
        """Interpret first; compile blocks once they prove hot.

        The timing twin of
        :meth:`repro.engine.functional.FunctionalSimulator._run_tiered`:
        starts in the resumable interpreter with block-entry counting
        on, scans the counts every ``TIER_SLICE`` instructions, and
        batch-compiles all block leaders past :func:`tier_threshold`
        entries.  Compiled blocks run under the same region-boundary
        and limit discipline as :meth:`_run_compiled`; dispatch misses
        on cold leaders keep counting so late-blooming blocks still
        tier up.  Cycle counts are bit-identical to both other engines.
        """
        launching = st.launching
        stealing = launching and st.mode.steal
        threshold = tier_threshold()
        leaders = frozenset(
            start
            for start, _end in discover_blocks(
                self.decoded,
                extra_leaders=(
                    sorted(self._trigger_union) if launching else ()
                ),
            )
        )
        entry_counts: Dict[int, int] = {}
        attempted: set = set()
        rejected: set = set()
        tier_ups = 0

        hierarchy = st.hierarchy
        mode = st.mode
        contexts = st.contexts
        stolen = st.stolen
        regs = st.regs
        rdy = st.reg_ready
        launch_one = self._launch

        def launch(waiting: List[StaticPThread], disp: int) -> None:
            for pthread in waiting:
                launch_one(
                    pthread,
                    disp,
                    mode,
                    contexts,
                    stolen,
                    regs,
                    rdy,
                    st.mem_load,
                    hierarchy,
                    st.stats,
                    st.branch_hints,
                    st.branch_counts,
                )

        ctx = {
            "ring": st.retire_ring,
            "store_queue": st.store_queue,
            "predict": st.predictor.predict_and_update,
            "predict_ind": st.predictor.predict_indirect,
            "mt_access": hierarchy.mt_access_fast,
            "pt_access": hierarchy.pt_access_fast,
            "mem_load": st.mem_load,
            "mem_store": st.mem_store,
            "words": st.memory.raw_words(),
            "miss_exposure": st.miss_exposure,
            "tallies": st.tallies,
            "stolen": stolen,
            "trig": st.trig,
            "launch": launch,
            "branch_hints": st.branch_hints,
            "branch_counts": st.branch_counts,
            "observe": (
                st.prefetcher.observe if st.prefetcher is not None else None
            ),
        }
        compiled: Optional[CompiledBlocks] = None
        table: dict = {}
        table_get = table.get
        counts: List[int] = []
        max_len = 0
        last_region = len(self.schedule) - 1
        cleanup_mark = 0
        next_scan = TIER_SLICE

        while not st.halted and st.executed < limit:
            if compiled is not None:
                executed = st.executed
                if (
                    launching
                    and executed >= st.region_end
                    and st.region_index < last_region
                ):
                    self._advance_region(st, executed)
                cap = limit
                if (
                    launching
                    and st.region_index < last_region
                    and st.region_end < cap
                ):
                    cap = st.region_end
                if executed > cap - max_len:
                    # Approaching the region boundary or the run
                    # limit: single-step across it exactly.
                    self._interp(st, cap)
                    continue
                entry = table_get(st.pc)
                if entry is not None:
                    fn, length, index = entry
                    (
                        st.pc,
                        st.executed,
                        st.fetch_cycle,
                        st.cap_used,
                        st.last_retire,
                    ) = fn(
                        executed,
                        st.fetch_cycle,
                        st.cap_used,
                        st.last_retire,
                        regs,
                        rdy,
                    )
                    counts[index] += 1
                    if st.pc == -1:
                        st.halted = True
                        break
                    # Periodic stale stolen-slot cleanup, mirroring
                    # the interpreter's (cleanup timing is
                    # unobservable: fetch cycles are monotonic).
                    if st.executed - cleanup_mark >= 0x10000:
                        cleanup_mark = st.executed
                        if stolen:
                            fc = st.fetch_cycle
                            for cycle in [c for c in stolen if c < fc]:
                                del stolen[cycle]
                    continue
                # Cold (or mid-block) entry from compiled code: count
                # it and let the interpreter take over.
                pc = st.pc
                if pc in leaders:
                    entry_counts[pc] = entry_counts.get(pc, 0) + 1

            if st.executed >= next_scan:
                next_scan = st.executed + TIER_SLICE
                fresh = [
                    p
                    for p, c in entry_counts.items()
                    if c >= threshold
                    and p in leaders
                    and p not in attempted
                    and p not in rejected
                ]
                if fresh:
                    hot = tuple(sorted(attempted.union(fresh)))
                    with get_tracer().span(
                        "tier_up",
                        program=self.program.name,
                        blocks=len(hot),
                    ):
                        new = self._tiered_variant(
                            launching, stealing, prefetching, hot
                        )
                    if new is None:
                        # Subset failed to compile; never retry it.
                        rejected.update(fresh)
                    else:
                        if compiled is not None:
                            self._fold_tiered_counts(compiled, counts, st)
                        attempted.update(fresh)
                        tier_ups += 1
                        compiled = new
                        table = compiled.bind(ctx)
                        table_get = table.get
                        counts = [0] * compiled.num_blocks
                        max_len = compiled.max_len
                        continue

            end = min(st.executed + TIER_SLICE, limit)
            self._interp(
                st,
                end,
                stop_pcs=table if compiled is not None else None,
                entry_counts=entry_counts,
            )

        if compiled is not None:
            self._fold_tiered_counts(compiled, counts, st)
        interp_blocks = sum(
            1 for p in entry_counts if p in leaders and p not in attempted
        )
        compiled_blocks = compiled.num_blocks if compiled is not None else 0
        registry = obs_registry()
        registry.counter("engine.tier.compiled_blocks").inc(compiled_blocks)
        registry.counter("engine.tier.interp_blocks").inc(interp_blocks)
        self.last_tier = {
            "tier_ups": tier_ups,
            "compiled_blocks": compiled_blocks,
            "interp_blocks": interp_blocks,
            "hot": tuple(sorted(attempted)),
        }

    @staticmethod
    def _fold_tiered_counts(
        compiled: CompiledBlocks, counts: List[int], st: _TimingState
    ) -> None:
        """Fold static per-block event counts into the run stats."""
        stats = st.stats
        block_loads = compiled.loads
        block_stores = compiled.stores
        block_branches = compiled.branches
        for index, count in enumerate(counts):
            if count:
                stats.loads += count * block_loads[index]
                stats.stores += count * block_stores[index]
                stats.branches += count * block_branches[index]

    # ------------------------------------------------------------------

    def _launch(
        self,
        pthread: StaticPThread,
        launch_time: int,
        mode: SimMode,
        contexts: List[int],
        stolen: Dict[int, int],
        main_regs: List[int],
        main_ready: List[int],
        mem_load: Callable[[int], int],
        hierarchy: TimedHierarchy,
        stats: SimStats,
        branch_hints: Optional[Dict[int, Dict[int, Tuple[int, int]]]] = None,
        branch_counts: Optional[Dict[int, int]] = None,
    ) -> None:
        """Launch one dynamic p-thread at ``launch_time``."""
        body = self._decoded_bodies[id(pthread)]
        trigger = pthread.trigger_pc

        # Context allocation: drop the launch if none is free.
        slot = -1
        for index, busy_until in enumerate(contexts):
            if busy_until <= launch_time:
                slot = index
                break
        if slot < 0:
            stats.pthread_drops += 1
            stats.drops_by_trigger[trigger] = (
                stats.drops_by_trigger.get(trigger, 0) + 1
            )
            return
        contexts[slot] = launch_time + body.last_burst_offset + 1
        stats.pthread_launches += 1
        stats.launches_by_trigger[trigger] = (
            stats.launches_by_trigger.get(trigger, 0) + 1
        )
        stats.pthread_instructions += body.size

        if mode.steal:
            for offset, _, count in body.bursts:
                cycle = launch_time + offset
                stolen[cycle] = stolen.get(cycle, 0) + count
        if not mode.execute:
            return

        # Seed the body's live-ins from the architectural state at the
        # trigger; availability follows the producer's completion.
        values: Dict[int, int] = {0: 0}
        ready: Dict[int, int] = {0: 0}
        for reg in body.live_ins:
            if reg < NUM_REGS:
                values[reg] = main_regs[reg]
                ready[reg] = main_ready[reg]
            else:  # virtual register with no seed: reads as zero
                values[reg] = 0
                ready[reg] = 0

        store_buffer: Dict[int, Tuple[int, int]] = {}
        kind = body.kind
        rd_arr = body.rd
        rs1_arr = body.rs1
        rs2_arr = body.rs2
        imm_arr = body.imm
        alu_arr = body.alu
        lat_arr = body.latency
        pt_access = hierarchy.pt_access_fast
        phantom_access = hierarchy.phantom_access_fast
        burst_index = 0
        bursts = body.bursts

        for j in range(body.size):
            while (
                burst_index + 1 < len(bursts)
                and j >= bursts[burst_index + 1][1]
            ):
                burst_index += 1
            inject = launch_time + bursts[burst_index][0]
            k = kind[j]
            rs1 = rs1_arr[j]
            in_ready = ready.get(rs1, 0)
            if inject + 1 > in_ready:
                in_ready = inject + 1
            if k == K_ALU_I:
                value = alu_arr[j](values.get(rs1, 0), imm_arr[j])
                complete = in_ready + lat_arr[j]
            elif k == K_ALU_R:
                rs2 = rs2_arr[j]
                r2 = ready.get(rs2, 0)
                if r2 > in_ready:
                    in_ready = r2
                value = alu_arr[j](values.get(rs1, 0), values.get(rs2, 0))
                complete = in_ready + lat_arr[j]
            elif k == K_LOAD:
                addr = values.get(rs1, 0) + imm_arr[j]
                issue = in_ready + 1
                buffered = store_buffer.get(addr)
                if buffered is not None:
                    data_ready, value = buffered
                    complete = (
                        max(issue, data_ready)
                        + self.machine.store_forward_latency
                    )
                else:
                    value = mem_load(addr)
                    if mode.prefetch:
                        complete = pt_access(addr, issue)[1]
                    else:
                        complete = phantom_access(addr, issue)[1]
            elif k == K_BRANCH:
                # Terminal branch: compute the outcome and post it as a
                # fetch hint tagged with the dynamic instance it
                # resolves — `instances_ahead` trigger iterations from
                # now (minus one when the trigger sits after the branch
                # in loop order, because that instance already ran).
                rs2 = rs2_arr[j]
                r2 = ready.get(rs2, 0)
                if r2 > in_ready:
                    in_ready = r2
                taken = body.branch[j](
                    values.get(rs1, 0), values.get(rs2, 0)
                )
                if mode.prefetch and branch_hints is not None:
                    branch_pc = body.pcs[j]
                    seen = (
                        branch_counts.get(branch_pc, 0)
                        if branch_counts is not None
                        else 0
                    )
                    offset = pthread.instances_ahead
                    if pthread.trigger_pc > branch_pc:
                        offset -= 1
                    per_pc = branch_hints.setdefault(branch_pc, {})
                    per_pc[seen + max(0, offset)] = (
                        in_ready + 1,
                        int(taken),
                    )
                    if len(per_pc) > 64:
                        for stale in [
                            key for key in per_pc if key < seen
                        ]:
                            del per_pc[stale]
                continue
            else:  # K_STORE: private buffer only; never commits
                rs2 = rs2_arr[j]
                r2 = ready.get(rs2, 0)
                if r2 > in_ready:
                    in_ready = r2
                addr = values.get(rs1, 0) + imm_arr[j]
                store_buffer[addr] = (in_ready + 1, values.get(rs2, 0))
                continue
            rd = rd_arr[j]
            if rd:
                values[rd] = value
                ready[rd] = complete
