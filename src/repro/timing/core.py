"""Trace-driven timing simulator with SMT pre-execution support.

The simulator executes the program functionally (correct path, program
order) while computing a cycle-level timing model alongside:

* **Sequencing**: the main thread fetches ``bw_seq`` instructions per
  cycle, minus slots stolen by p-thread injection bursts.  This shared
  sequencing bandwidth is the paper's overhead mechanism, and the
  validation experiments confirm it is the dominant cost.
* **Window**: at most ``window`` instructions in flight; fetch stalls
  until the instruction ``window`` back has retired.
* **Dataflow issue**: each instruction starts when its operands are
  ready and it has been dispatched; completion adds its latency (loads
  go through the timed memory hierarchy with MSHRs and bus occupancy).
* **Control**: a hybrid predictor decides which dynamic branches
  redirect fetch; mispredictions restart fetch after resolution plus a
  front-end refill penalty.  Wrong-path instructions are not executed
  (the paper observes wrong-path p-thread launches do not measurably
  change overhead; see DESIGN.md).
* **P-threads**: a dynamic p-thread launches when the main thread
  dispatches its trigger, occupies one of the extra thread contexts,
  and is injected in bursts (8 instructions every 8 cycles by default).
  Bodies execute with seed values captured at the trigger — value
  availability follows the producing main-thread instruction's
  completion, exactly like a physical-register handoff.  Body stores
  forward through a private store buffer and never commit.  Body loads
  prefetch into the L2 only.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.decode import (
    DecodedProgram,
    K_ALU_I,
    K_ALU_R,
    K_BRANCH,
    K_HALT,
    K_JAL,
    K_JR,
    K_JUMP,
    K_LOAD,
    K_STORE,
)
from repro.frontend.branch_predictor import HybridPredictor
from repro.isa.opcodes import Format
from repro.isa.program import Program
from repro.isa.registers import NUM_REGS
from repro.memory.hierarchy import HierarchyConfig, MemoryLevel, TimedHierarchy
from repro.memory.main_memory import MainMemory
from repro.pthreads.pthread import StaticPThread
from repro.timing.config import BASELINE, MachineConfig, SimMode
from repro.timing.stats import SimStats

#: Activation schedule: (start_instruction, end_instruction, p-threads).
Schedule = List[Tuple[int, int, List[StaticPThread]]]


class _DecodedBody:
    """Pre-decoded p-thread body for fast repeated execution."""

    __slots__ = (
        "size",
        "kind",
        "rd",
        "rs1",
        "rs2",
        "imm",
        "alu",
        "branch",
        "pcs",
        "latency",
        "live_ins",
        "bursts",
        "last_burst_offset",
    )

    def __init__(self, pthread: StaticPThread, machine: MachineConfig) -> None:
        body = pthread.body
        n = body.size
        self.size = n
        self.kind: List[int] = []
        self.rd: List[int] = []
        self.rs1: List[int] = []
        self.rs2: List[int] = []
        self.imm: List[int] = []
        self.alu: List[Optional[Callable[[int, int], int]]] = []
        self.branch: List[Optional[Callable[[int, int], bool]]] = []
        self.pcs: List[int] = []
        self.latency: List[int] = []
        for inst in body.instructions:
            fmt = inst.info.fmt
            if fmt is Format.R:
                self.kind.append(K_ALU_R)
            elif fmt is Format.I:
                self.kind.append(K_ALU_I)
            elif fmt is Format.LOAD:
                self.kind.append(K_LOAD)
            elif fmt is Format.BRANCH:
                # Terminal branch of a branch-pre-execution body: its
                # early outcome is posted as a fetch hint.
                self.kind.append(K_BRANCH)
            else:  # store
                self.kind.append(K_STORE)
            self.rd.append(inst.rd if inst.rd is not None else 0)
            self.rs1.append(inst.rs1 if inst.rs1 is not None else 0)
            self.rs2.append(inst.rs2 if inst.rs2 is not None else 0)
            self.imm.append(inst.imm)
            self.alu.append(inst.info.alu)
            self.branch.append(inst.info.branch)
            self.pcs.append(inst.pc)
            self.latency.append(inst.info.latency)
        self.live_ins = body.live_ins
        # Injection bursts: (cycle offset, first insn, count).
        burst, period = machine.pthread_burst, machine.pthread_burst_period
        self.bursts: List[Tuple[int, int, int]] = []
        start = 0
        offset = 0
        while start < n:
            count = min(burst, n - start)
            self.bursts.append((offset, start, count))
            start += count
            offset += period
        self.last_burst_offset = self.bursts[-1][0] if self.bursts else 0


class TimingSimulator:
    """Execution-driven timing model of the SMT pre-execution machine.

    Args:
        program: the program to run.
        hierarchy_config: memory-system geometry and latency.
        machine: core parameters.
        pthreads: static p-threads active for the whole run (mutually
            exclusive with ``schedule``).
        schedule: region-based p-thread activation for granularity
            experiments.
    """

    def __init__(
        self,
        program: Program,
        hierarchy_config: HierarchyConfig,
        machine: Optional[MachineConfig] = None,
        pthreads: Optional[Sequence[StaticPThread]] = None,
        schedule: Optional[Schedule] = None,
    ) -> None:
        if pthreads is not None and schedule is not None:
            raise ValueError("pass either pthreads or schedule, not both")
        self.program = program
        self.decoded = DecodedProgram(program)
        self.hierarchy_config = hierarchy_config
        self.machine = machine or MachineConfig()
        if schedule is None:
            schedule = [(0, 1 << 62, list(pthreads or []))]
        self.schedule: Schedule = [
            (start, end, list(pts)) for start, end, pts in schedule
        ]
        self._decoded_bodies: Dict[int, _DecodedBody] = {}
        for _, _, pts in self.schedule:
            for pthread in pts:
                if id(pthread) not in self._decoded_bodies:
                    self._decoded_bodies[id(pthread)] = _DecodedBody(
                        pthread, self.machine
                    )

    # ------------------------------------------------------------------

    def _triggers_for(
        self, region: Tuple[int, int, List[StaticPThread]]
    ) -> Dict[int, List[StaticPThread]]:
        triggers: Dict[int, List[StaticPThread]] = {}
        for pthread in region[2]:
            triggers.setdefault(pthread.trigger_pc, []).append(pthread)
        return triggers

    def run(
        self,
        mode: SimMode = BASELINE,
        max_instructions: int = 50_000_000,
    ) -> SimStats:
        """Simulate to ``halt`` (or an instruction cap); returns stats."""
        machine = self.machine
        decoded = self.decoded
        kind = decoded.kind
        rd_arr = decoded.rd
        rs1_arr = decoded.rs1
        rs2_arr = decoded.rs2
        imm_arr = decoded.imm
        target_arr = decoded.target
        alu_arr = decoded.alu
        branch_arr = decoded.branch
        lat_arr = decoded.latency

        memory = MainMemory(self.program.data)
        hierarchy = TimedHierarchy(
            self.hierarchy_config, perfect_l2=mode.perfect_l2
        )
        predictor = HybridPredictor()
        stats = SimStats(mode=mode.name)
        prefetcher = None
        if machine.stride_prefetch:
            from repro.memory.prefetcher import StridePrefetcher

            prefetcher = StridePrefetcher(degree=machine.stride_degree)
        miss_exposure = stats.miss_exposure

        bw = machine.bw_seq
        dispatch_latency = machine.dispatch_latency
        window = machine.window
        mispredict_penalty = machine.mispredict_penalty
        forward_latency = machine.store_forward_latency

        regs = [0] * NUM_REGS
        reg_ready = [0] * NUM_REGS
        retire_ring = [0] * window
        last_retire = 0
        fetch_cycle = 0
        cap_used = 0
        stolen: Dict[int, int] = {}
        # Store queue: address -> (data ready time, value); bounded.
        store_queue: Dict[int, Tuple[int, int]] = {}
        store_queue_limit = 64

        contexts: List[int] = [0] * machine.pthread_contexts
        # Branch hints from branch-pre-execution p-threads, tagged with
        # the dynamic branch instance they resolve:
        # branch pc -> {instance number -> (outcome ready cycle, outcome)}.
        branch_hints: Dict[int, Dict[int, Tuple[int, int]]] = {}
        # Dynamic instance counters for hinted branch PCs.
        branch_counts: Dict[int, int] = {}
        hinted_pcs = frozenset(
            pt.body.instructions[-1].pc
            for _, _, pts in self.schedule
            for pt in pts
            if pt.body.targets_branch
        )
        launching = mode.launch and any(pts for _, _, pts in self.schedule)
        region_index = 0
        region = self.schedule[0]
        triggers = self._triggers_for(region) if launching else {}
        region_end = region[1]

        mem_load = memory.load
        mem_store = memory.store
        mt_access = hierarchy.mt_access

        pc = 0
        executed = 0

        while executed < max_instructions:
            if launching and executed >= region_end:
                while (
                    region_index + 1 < len(self.schedule)
                    and executed >= self.schedule[region_index][1]
                ):
                    region_index += 1
                region = self.schedule[region_index]
                triggers = self._triggers_for(region)
                region_end = region[1]

            k = kind[pc]
            executed += 1

            # ---- fetch: bandwidth (minus stolen slots) and window ----
            ring_slot = executed % window
            window_stall = retire_ring[ring_slot]
            if window_stall > fetch_cycle:
                fetch_cycle = window_stall
                cap_used = 0
            while cap_used >= bw - stolen.get(fetch_cycle, 0):
                fetch_cycle += 1
                cap_used = 0
            f = fetch_cycle
            cap_used += 1
            disp = f + dispatch_latency
            next_pc = pc + 1

            # ---- execute / time ----
            if k == K_ALU_R:
                rs1 = rs1_arr[pc]
                rs2 = rs2_arr[pc]
                value = alu_arr[pc](regs[rs1], regs[rs2])
                ready = reg_ready[rs1]
                r2 = reg_ready[rs2]
                if r2 > ready:
                    ready = r2
                if disp > ready:
                    ready = disp
                complete = ready + lat_arr[pc]
                rd = rd_arr[pc]
                if rd:
                    regs[rd] = value
                    reg_ready[rd] = complete
            elif k == K_ALU_I:
                rs1 = rs1_arr[pc]
                value = alu_arr[pc](regs[rs1], imm_arr[pc])
                ready = reg_ready[rs1]
                if disp > ready:
                    ready = disp
                complete = ready + lat_arr[pc]
                rd = rd_arr[pc]
                if rd:
                    regs[rd] = value
                    reg_ready[rd] = complete
            elif k == K_LOAD:
                stats.loads += 1
                rs1 = rs1_arr[pc]
                addr = regs[rs1] + imm_arr[pc]
                value = mem_load(addr)
                ready = reg_ready[rs1]
                if disp > ready:
                    ready = disp
                issue = ready + 1  # address generation
                forwarded = store_queue.get(addr)
                if forwarded is not None:
                    data_ready = forwarded[0]
                    complete = (
                        max(issue, data_ready) + forward_latency
                    )
                else:
                    outcome = mt_access(addr, issue)
                    if outcome.level != MemoryLevel.L1:
                        stats.l1_misses += 1
                    complete = outcome.complete
                    if outcome.level == MemoryLevel.MEM:
                        exposure = miss_exposure.get(pc)
                        if exposure is None:
                            exposure = [0, 0]
                            miss_exposure[pc] = exposure
                        exposure[0] += 1
                        exposed = complete - last_retire
                        if exposed > 0:
                            exposure[1] += exposed
                    if prefetcher is not None:
                        for target in prefetcher.observe(pc, addr):
                            hierarchy.pt_access(target, issue)
                rd = rd_arr[pc]
                if rd:
                    regs[rd] = value
                    reg_ready[rd] = complete
            elif k == K_STORE:
                stats.stores += 1
                rs1 = rs1_arr[pc]
                rs2 = rs2_arr[pc]
                addr = regs[rs1] + imm_arr[pc]
                mem_store(addr, regs[rs2])
                ready = reg_ready[rs1]
                if disp > ready:
                    ready = disp
                complete = ready + 1
                mt_access(addr, complete, is_write=True)
                store_queue[addr] = (max(complete, reg_ready[rs2]), regs[rs2])
                if len(store_queue) > store_queue_limit:
                    store_queue.pop(next(iter(store_queue)))
            elif k == K_BRANCH:
                stats.branches += 1
                rs1 = rs1_arr[pc]
                rs2 = rs2_arr[pc]
                taken = branch_arr[pc](regs[rs1], regs[rs2])
                ready = reg_ready[rs1]
                r2 = reg_ready[rs2]
                if r2 > ready:
                    ready = r2
                if disp > ready:
                    ready = disp
                complete = ready + 1
                target = target_arr[pc]
                if taken:
                    next_pc = target
                correct = predictor.predict_and_update(pc, taken, target)
                hint = None
                if pc in hinted_pcs:
                    instance = branch_counts.get(pc, 0)
                    branch_counts[pc] = instance + 1
                    per_pc = branch_hints.get(pc)
                    if per_pc is not None:
                        hint = per_pc.pop(instance, None)
                if not correct:
                    stats.mispredictions += 1
                    if (
                        hint is not None
                        and hint[0] <= f
                        and hint[1] == int(taken)
                    ):
                        # A p-thread resolved this branch before fetch:
                        # the front end follows the hint, no redirect.
                        stats.mispredicts_covered += 1
                    else:
                        fetch_cycle = complete + mispredict_penalty
                        cap_used = 0
            elif k == K_JUMP:
                stats.branches += 1
                complete = disp
                next_pc = target_arr[pc]
            elif k == K_JAL:
                stats.branches += 1
                complete = disp
                rd = rd_arr[pc]
                if rd:
                    regs[rd] = pc + 1
                    reg_ready[rd] = complete
                next_pc = target_arr[pc]
            elif k == K_JR:
                stats.branches += 1
                rs1 = rs1_arr[pc]
                ready = reg_ready[rs1]
                if disp > ready:
                    ready = disp
                complete = ready + 1
                next_pc = regs[rs1]
                correct = predictor.predict_indirect(pc, next_pc)
                if not correct:
                    stats.mispredictions += 1
                    fetch_cycle = complete + mispredict_penalty
                    cap_used = 0
            elif k == K_HALT:
                complete = disp
                last_retire = max(last_retire, complete)
                retire_ring[ring_slot] = last_retire
                break
            else:  # K_NOP
                complete = disp

            # ---- in-order retirement ----
            if complete < last_retire:
                complete_retire = last_retire
            else:
                complete_retire = complete
            last_retire = complete_retire
            retire_ring[ring_slot] = complete_retire

            # ---- p-thread launch at trigger dispatch ----
            if launching:
                waiting = triggers.get(pc)
                if waiting is not None:
                    for pthread in waiting:
                        self._launch(
                            pthread,
                            disp,
                            mode,
                            contexts,
                            stolen,
                            regs,
                            reg_ready,
                            mem_load,
                            hierarchy,
                            stats,
                            branch_hints,
                            branch_counts,
                        )
            # Periodically drop stale stolen-slot entries.
            if not executed & 0xFFFF:
                stolen = {
                    cycle: count
                    for cycle, count in stolen.items()
                    if cycle >= fetch_cycle
                }

            pc = next_pc

        stats.instructions = executed
        stats.cycles = max(last_retire, fetch_cycle)
        stats.misses_fully_covered = hierarchy.full_covered
        stats.misses_partially_covered = hierarchy.partial_covered
        stats.partial_covered_cycles = hierarchy.partial_covered_cycles
        stats.prefetches_evicted = hierarchy.evicted_prefetches
        stats.prefetches_unclaimed = hierarchy.unclaimed_prefetches()
        stats.pthread_l2_misses = hierarchy.pt_l2_misses
        # Misses the unassisted program would have taken: actual misses
        # plus misses converted to hits by coverage.
        stats.l2_misses = (
            hierarchy.mt_l2_misses
            + hierarchy.full_covered
            + hierarchy.partial_covered
        )
        return stats

    # ------------------------------------------------------------------

    def _launch(
        self,
        pthread: StaticPThread,
        launch_time: int,
        mode: SimMode,
        contexts: List[int],
        stolen: Dict[int, int],
        main_regs: List[int],
        main_ready: List[int],
        mem_load: Callable[[int], int],
        hierarchy: TimedHierarchy,
        stats: SimStats,
        branch_hints: Optional[Dict[int, Dict[int, Tuple[int, int]]]] = None,
        branch_counts: Optional[Dict[int, int]] = None,
    ) -> None:
        """Launch one dynamic p-thread at ``launch_time``."""
        body = self._decoded_bodies[id(pthread)]
        trigger = pthread.trigger_pc
        stats.launches_by_trigger[trigger] = (
            stats.launches_by_trigger.get(trigger, 0) + 1
        )

        # Context allocation: drop the launch if none is free.
        slot = -1
        for index, busy_until in enumerate(contexts):
            if busy_until <= launch_time:
                slot = index
                break
        if slot < 0:
            stats.pthread_drops += 1
            return
        contexts[slot] = launch_time + body.last_burst_offset + 1
        stats.pthread_launches += 1
        stats.pthread_instructions += body.size

        if mode.steal:
            for offset, _, count in body.bursts:
                cycle = launch_time + offset
                stolen[cycle] = stolen.get(cycle, 0) + count
        if not mode.execute:
            return

        # Seed the body's live-ins from the architectural state at the
        # trigger; availability follows the producer's completion.
        values: Dict[int, int] = {0: 0}
        ready: Dict[int, int] = {0: 0}
        for reg in body.live_ins:
            if reg < NUM_REGS:
                values[reg] = main_regs[reg]
                ready[reg] = main_ready[reg]
            else:  # virtual register with no seed: reads as zero
                values[reg] = 0
                ready[reg] = 0

        store_buffer: Dict[int, Tuple[int, int]] = {}
        kind = body.kind
        rd_arr = body.rd
        rs1_arr = body.rs1
        rs2_arr = body.rs2
        imm_arr = body.imm
        alu_arr = body.alu
        lat_arr = body.latency
        burst_index = 0
        bursts = body.bursts

        for j in range(body.size):
            while (
                burst_index + 1 < len(bursts)
                and j >= bursts[burst_index + 1][1]
            ):
                burst_index += 1
            inject = launch_time + bursts[burst_index][0]
            k = kind[j]
            rs1 = rs1_arr[j]
            in_ready = ready.get(rs1, 0)
            if inject + 1 > in_ready:
                in_ready = inject + 1
            if k == K_ALU_I:
                value = alu_arr[j](values.get(rs1, 0), imm_arr[j])
                complete = in_ready + lat_arr[j]
            elif k == K_ALU_R:
                rs2 = rs2_arr[j]
                r2 = ready.get(rs2, 0)
                if r2 > in_ready:
                    in_ready = r2
                value = alu_arr[j](values.get(rs1, 0), values.get(rs2, 0))
                complete = in_ready + lat_arr[j]
            elif k == K_LOAD:
                addr = values.get(rs1, 0) + imm_arr[j]
                issue = in_ready + 1
                buffered = store_buffer.get(addr)
                if buffered is not None:
                    data_ready, value = buffered
                    complete = (
                        max(issue, data_ready)
                        + self.machine.store_forward_latency
                    )
                else:
                    value = mem_load(addr)
                    if mode.prefetch:
                        outcome = hierarchy.pt_access(addr, issue)
                    else:
                        outcome = hierarchy.phantom_access(addr, issue)
                    complete = outcome.complete
            elif k == K_BRANCH:
                # Terminal branch: compute the outcome and post it as a
                # fetch hint tagged with the dynamic instance it
                # resolves — `instances_ahead` trigger iterations from
                # now (minus one when the trigger sits after the branch
                # in loop order, because that instance already ran).
                rs2 = rs2_arr[j]
                r2 = ready.get(rs2, 0)
                if r2 > in_ready:
                    in_ready = r2
                taken = body.branch[j](
                    values.get(rs1, 0), values.get(rs2, 0)
                )
                if mode.prefetch and branch_hints is not None:
                    branch_pc = body.pcs[j]
                    seen = (
                        branch_counts.get(branch_pc, 0)
                        if branch_counts is not None
                        else 0
                    )
                    offset = pthread.instances_ahead
                    if pthread.trigger_pc > branch_pc:
                        offset -= 1
                    per_pc = branch_hints.setdefault(branch_pc, {})
                    per_pc[seen + max(0, offset)] = (
                        in_ready + 1,
                        int(taken),
                    )
                    if len(per_pc) > 64:
                        for stale in [
                            key for key in per_pc if key < seen
                        ]:
                            del per_pc[stale]
                continue
            else:  # K_STORE: private buffer only; never commits
                rs2 = rs2_arr[j]
                r2 = ready.get(rs2, 0)
                if r2 > in_ready:
                    in_ready = r2
                addr = values.get(rs1, 0) + imm_arr[j]
                store_buffer[addr] = (in_ready + 1, values.get(rs2, 0))
                continue
            rd = rd_arr[j]
            if rd:
                values[rd] = value
                ready[rd] = complete
