"""Timing-model configuration and simulation modes.

The machine defaults follow the paper's base configuration: an 8-wide
dynamically-scheduled processor, 14-stage pipeline, 128 instructions in
flight, three extra thread contexts for p-threads, and bursty p-thread
injection of 8 instructions every 8 cycles per active p-thread.

:class:`SimMode` captures the paper's validation methodology as flag
combinations — the *overhead-only* implementations (execute-but-don't-
fill and sequence-only), the *latency-tolerance-only* implementation
(p-threads ride free), and the perfect-L2 limit used in Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class MachineConfig:
    """Processor core parameters for the timing model.

    Attributes:
        bw_seq: sequencing (fetch/rename) width in instructions/cycle.
        window: maximum instructions in flight.
        dispatch_latency: cycles from fetch to rename/dispatch.
        mispredict_penalty: fetch-redirect penalty after a resolved
            branch misprediction (front-end refill).
        store_forward_latency: store-queue forwarding latency.
        pthread_contexts: thread contexts available to p-threads.
        pthread_burst: p-thread instructions injected per burst.
        pthread_burst_period: cycles between bursts per active p-thread.
        stride_prefetch: enable the conventional PC-indexed stride
            prefetcher (the comparator of the paper's opening claim;
            prefetches fill the L2 only, like p-thread loads).
        stride_degree: lines prefetched ahead when confident.
    """

    bw_seq: int = 8
    window: int = 128
    dispatch_latency: int = 2
    mispredict_penalty: int = 10
    store_forward_latency: int = 2
    pthread_contexts: int = 3
    pthread_burst: int = 8
    pthread_burst_period: int = 8
    stride_prefetch: bool = False
    stride_degree: int = 2

    def __post_init__(self) -> None:
        if self.bw_seq < 1:
            raise ValueError("bw_seq must be >= 1")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.pthread_contexts < 0:
            raise ValueError("pthread_contexts must be >= 0")
        if self.pthread_burst < 1 or self.pthread_burst_period < 1:
            raise ValueError("p-thread burst parameters must be >= 1")

    def with_width(self, width: int) -> "MachineConfig":
        """Copy with a different sequencing width (width sweeps)."""
        return replace(self, bw_seq=width)


@dataclass(frozen=True)
class SimMode:
    """What the p-thread machinery is allowed to do in a run.

    Attributes:
        name: label used in reports.
        launch: p-threads are launched at triggers.
        execute: p-thread bodies execute (compute addresses, time their
            loads); with ``execute=False`` injected instructions are
            discarded immediately after consuming sequencing slots.
        steal: p-thread injection consumes main-thread sequencing slots.
        prefetch: p-thread loads fill the L2 (the pre-execution effect);
            with ``prefetch=False`` loads are timed against a phantom
            lookup and leave no state behind.
        perfect_l2: main-thread L2 misses are charged an L2 hit time
            (the perfect-L2 limit; implies no p-threads).
    """

    name: str
    launch: bool
    execute: bool
    steal: bool
    prefetch: bool
    perfect_l2: bool = False


#: No p-threads: the unassisted program.
BASELINE = SimMode("baseline", launch=False, execute=False, steal=False, prefetch=False)
#: Full pre-execution.
PRE_EXECUTION = SimMode("pre-exec", launch=True, execute=True, steal=True, prefetch=True)
#: Overhead only, execute flavour: p-threads run but never fill caches.
OVERHEAD_EXECUTE = SimMode(
    "overhead-execute", launch=True, execute=True, steal=True, prefetch=False
)
#: Overhead only, sequence flavour: slots are stolen, instructions discarded.
OVERHEAD_SEQUENCE = SimMode(
    "overhead-sequence", launch=True, execute=False, steal=True, prefetch=False
)
#: Latency tolerance only: p-threads prefetch but ride free.
LATENCY_ONLY = SimMode(
    "latency-only", launch=True, execute=True, steal=False, prefetch=True
)
#: Perfect L2: every main-thread L2 miss becomes an L2 hit.
PERFECT_L2 = SimMode(
    "perfect-l2", launch=False, execute=False, steal=False, prefetch=False,
    perfect_l2=True,
)
