"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's artifacts::

    python -m repro run pharmacy          # full pipeline on one workload
    python -m repro table1                # benchmark characterization
    python -m repro table2 --workloads mcf,vpr.r
    python -m repro figure 4              # scope x length sweep
    python -m repro branches vpr.p        # branch pre-execution

Sweeps accept ``--workloads`` to restrict the suite.  Everything prints
to stdout in the same fixed-width format the benches write to
``results/``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.harness.experiment import ExperimentConfig, ExperimentRunner
from repro.harness.figures import (
    figure4_scope_length,
    figure5_opt_merge,
    figure6_granularity,
    figure7_input_sets,
    figure8_memory_latency,
    figure8b_processor_width,
)
from repro.harness.tables import render_table1, render_table2, table1, table2
from repro.workloads.suite import SUITE

_FIGURES = {
    "4": figure4_scope_length,
    "5": figure5_opt_merge,
    "6": figure6_granularity,
    "7": figure7_input_sets,
    "8": figure8_memory_latency,
    "8b": figure8b_processor_width,
}


def _parse_workloads(text: Optional[str]) -> List[str]:
    if not text:
        return list(SUITE)
    names = [name.strip() for name in text.split(",") if name.strip()]
    unknown = set(names) - set(SUITE) - {"pharmacy"}
    if unknown:
        raise SystemExit(f"unknown workloads: {sorted(unknown)}")
    return names


def _cmd_run(args: argparse.Namespace) -> None:
    runner = ExperimentRunner()
    result = runner.run(
        ExperimentConfig(workload=args.workload, validate=args.validate)
    )
    print(result.selection.describe())
    for pthread in result.selection.pthreads:
        print(f"\ntrigger #{pthread.trigger_pc:04d}:")
        print(pthread.body.render())
    print()
    print(result.baseline.describe())
    print(result.preexec.describe())
    for stats in result.validation.values():
        print(stats.describe())
    print(
        f"\nspeedup {result.speedup:+.1%}  coverage {result.coverage:.1%} "
        f"(full {result.full_coverage:.1%})"
    )


def _cmd_table(args: argparse.Namespace) -> None:
    runner = ExperimentRunner()
    workloads = _parse_workloads(args.workloads)
    if args.which == "1":
        print(render_table1(table1(runner, workloads=workloads)))
    else:
        print(render_table2(table2(runner, workloads=workloads)))


def _cmd_figure(args: argparse.Namespace) -> None:
    runner = ExperimentRunner()
    workloads = _parse_workloads(args.workloads)
    figure_fn = _FIGURES.get(args.which)
    if figure_fn is None:
        raise SystemExit(
            f"unknown figure {args.which!r}; known: {sorted(_FIGURES)}"
        )
    print(figure_fn(runner, workloads=workloads).render())


def _cmd_branches(args: argparse.Namespace) -> None:
    from repro.engine import run_program
    from repro.model import ModelParams, SelectionConstraints
    from repro.selection import select_branch_pthreads
    from repro.timing import BASELINE, PRE_EXECUTION, TimingSimulator
    from repro.workloads import build

    workload = build(args.workload, "train")
    trace = run_program(workload.program, workload.hierarchy)
    base = TimingSimulator(workload.program, workload.hierarchy).run(BASELINE)
    params = ModelParams(
        bw_seq=8,
        unassisted_ipc=max(base.ipc, 0.05),
        mem_latency=workload.hierarchy.mem_latency,
        load_latency=workload.hierarchy.l1.hit_latency,
    )
    selection = select_branch_pthreads(
        workload.program, trace.trace, params, SelectionConstraints()
    )
    print(selection.describe())
    pre = TimingSimulator(
        workload.program, workload.hierarchy, pthreads=selection.pthreads
    ).run(PRE_EXECUTION)
    print(base.describe())
    print(pre.describe())
    print(
        f"mispredictions {pre.mispredictions}, suppressed "
        f"{pre.mispredicts_covered}; speedup {pre.speedup_over(base):+.1%}"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Automated pre-execution thread selection (Roth & Sohi 2002) "
            "— pipeline driver"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="full pipeline on one workload")
    run_parser.add_argument("workload", choices=SUITE + ["pharmacy"])
    run_parser.add_argument(
        "--validate", action="store_true",
        help="also run overhead-only / latency-only / perfect-L2 modes",
    )
    run_parser.set_defaults(func=_cmd_run)

    for which in ("1", "2"):
        table_parser = sub.add_parser(
            f"table{which}", help=f"regenerate Table {which}"
        )
        table_parser.add_argument("--workloads", default=None)
        table_parser.set_defaults(func=_cmd_table, which=which)

    figure_parser = sub.add_parser("figure", help="regenerate a figure")
    figure_parser.add_argument("which", choices=sorted(_FIGURES))
    figure_parser.add_argument("--workloads", default=None)
    figure_parser.set_defaults(func=_cmd_figure)

    branch_parser = sub.add_parser(
        "branches", help="branch pre-execution on one workload"
    )
    branch_parser.add_argument("workload", choices=SUITE + ["pharmacy"])
    branch_parser.set_defaults(func=_cmd_branches)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    args.func(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
