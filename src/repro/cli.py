"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's artifacts::

    python -m repro run pharmacy          # full pipeline on one workload
    python -m repro table1                # benchmark characterization
    python -m repro table2 --workloads mcf,vpr.r
    python -m repro figure 4              # scope x length sweep
    python -m repro figure 4 -j 4         # ... across 4 processes
    python -m repro branches vpr.p        # branch pre-execution
    python -m repro cache info            # persistent-cache contents
    python -m repro lint all --strict     # static lints, all workloads
    python -m repro lint mcf --pthreads   # ... plus p-thread verification
    python -m repro verify-codegen all --strict   # translation-validate codegen
    python -m repro bench speed           # engine throughput benchmark
    python -m repro serve --port 8421     # HTTP/JSON selection daemon
    python -m repro bench serve --check   # daemon load harness + floors
    python -m repro fuzz --seeds 25       # differential fuzzing campaign
    python -m repro fuzz --replay corpus/fuzz-000042-stride.json
    python -m repro obs report            # metrics registry report
    python -m repro obs check --input results/metrics_snapshot.json

Sweeps accept ``--workloads`` to restrict the suite, ``--jobs/-j`` to
fan cells out over worker processes (default ``REPRO_JOBS``, then the
CPU count), ``--no-cache`` to skip the persistent artifact cache,
``--engine compiled|interp`` to pick the simulation engine (default
compiled; also via ``REPRO_ENGINE``), and ``--perf`` to append a
stage-timing / cache-effectiveness report.
Every pipeline command also takes ``--trace PATH`` (write the
invocation's nested span tree as JSON) and ``--metrics PATH`` (write a
metrics snapshot as JSON) — see DESIGN.md's Observability section.
Everything prints to stdout in the same fixed-width format the benches
write to ``results/``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.harness.artifacts import ArtifactCache
from repro.harness.experiment import ExperimentConfig, ExperimentRunner
from repro.harness.figures import (
    figure4_scope_length,
    figure5_opt_merge,
    figure6_granularity,
    figure7_input_sets,
    figure8_memory_latency,
    figure8b_processor_width,
)
from repro.harness.parallel import SweepExecutor
from repro.harness.report import publish_harness_metrics
from repro.harness.tables import render_table1, render_table2, table1, table2
from repro.obs import (
    check_snapshot,
    get_registry,
    get_tracer,
    load_snapshot,
    render_report,
    reset_registry,
    reset_tracer,
    snapshot_document,
    to_prometheus,
    write_snapshot,
)
from repro.workloads.suite import SUITE

_FIGURES = {
    "4": figure4_scope_length,
    "5": figure5_opt_merge,
    "6": figure6_granularity,
    "7": figure7_input_sets,
    "8": figure8_memory_latency,
    "8b": figure8b_processor_width,
}


def _parse_workloads(text: Optional[str]) -> List[str]:
    if not text:
        return list(SUITE)
    names = [name.strip() for name in text.split(",") if name.strip()]
    unknown = set(names) - set(SUITE) - {"pharmacy"}
    if unknown:
        raise SystemExit(f"unknown workloads: {sorted(unknown)}")
    return names


def _artifacts(args: argparse.Namespace) -> Optional[ArtifactCache]:
    if getattr(args, "no_cache", False):
        return None
    return ArtifactCache.from_env()


def _executor(args: argparse.Namespace) -> SweepExecutor:
    try:
        return SweepExecutor(jobs=args.jobs, artifacts=_artifacts(args))
    except ValueError as error:
        raise SystemExit(f"error: {error}")


def _print_perf(args: argparse.Namespace, executor: SweepExecutor) -> None:
    if getattr(args, "perf", False):
        print()
        print(executor.perf.render())


def _publish_harness(perf, artifacts) -> None:
    """Fold harness counters into the global registry (export surface)."""
    publish_harness_metrics(perf, artifacts)


def _export_observability(args: argparse.Namespace) -> None:
    """Write the span tree / metrics snapshot the flags asked for."""
    trace_path = getattr(args, "trace", None)
    if trace_path:
        get_tracer().export(trace_path)
        print(f"wrote {trace_path}")
    metrics_path = getattr(args, "metrics", None)
    if metrics_path:
        write_snapshot(metrics_path, get_registry())
        print(f"wrote {metrics_path}")


def _apply_engine(args: argparse.Namespace) -> None:
    """Turn ``--engine`` into the ``REPRO_ENGINE`` environment switch.

    Like ``--verify``, the environment variable is what parallel sweep
    workers inherit, so the choice covers every simulation in the
    invocation.
    """
    engine = getattr(args, "engine", None)
    if engine:
        from repro.engine.compiler import ENGINE_ENV

        os.environ[ENGINE_ENV] = engine


def _apply_verify(args: argparse.Namespace) -> None:
    """Turn ``--verify`` into the ``REPRO_VERIFY`` environment switch.

    The environment variable (rather than a parameter threaded through
    every stage) is what parallel sweep workers inherit, so ``--verify``
    covers them too.
    """
    if getattr(args, "verify", False):
        from repro.analysis.report import VERIFY_ENV

        os.environ[VERIFY_ENV] = "1"


def _cmd_run(args: argparse.Namespace) -> None:
    _apply_verify(args)
    _apply_engine(args)
    runner = ExperimentRunner(artifacts=_artifacts(args))
    result = runner.run(
        ExperimentConfig(
            workload=args.workload,
            validate=args.validate,
            verify=args.verify,
        )
    )
    print(result.selection.describe())
    for pthread in result.selection.pthreads:
        print(f"\ntrigger #{pthread.trigger_pc:04d}:")
        print(pthread.body.render())
    print()
    print(result.baseline.describe())
    print(result.preexec.describe())
    for stats in result.validation.values():
        print(stats.describe())
    print(
        f"\nspeedup {result.speedup:+.1%}  coverage {result.coverage:.1%} "
        f"(full {result.full_coverage:.1%})"
    )
    if getattr(args, "perf", False):
        print()
        print(runner.perf.render())
    _publish_harness(runner.perf, runner.artifacts)


def _cmd_table(args: argparse.Namespace) -> None:
    _apply_verify(args)
    _apply_engine(args)
    executor = _executor(args)
    workloads = _parse_workloads(args.workloads)
    if args.which == "1":
        print(render_table1(table1(workloads=workloads, executor=executor)))
    else:
        print(render_table2(table2(workloads=workloads, executor=executor)))
    _print_perf(args, executor)
    _publish_harness(executor.perf, executor.artifacts)


def _cmd_figure(args: argparse.Namespace) -> None:
    _apply_verify(args)
    _apply_engine(args)
    executor = _executor(args)
    workloads = _parse_workloads(args.workloads)
    figure_fn = _FIGURES.get(args.which)
    if figure_fn is None:
        raise SystemExit(
            f"unknown figure {args.which!r}; known: {sorted(_FIGURES)}"
        )
    print(figure_fn(workloads=workloads, executor=executor).render())
    _print_perf(args, executor)
    _publish_harness(executor.perf, executor.artifacts)


def _cmd_cache(args: argparse.Namespace) -> None:
    cache = ArtifactCache.from_env()
    if cache is None:
        print("persistent cache disabled (REPRO_CACHE_DIR is off)")
        return
    kind = args.kind
    if args.action == "clear":
        try:
            removed = cache.clear(kind)
        except KeyError:
            raise SystemExit(f"unknown artifact kind: {kind}")
        what = f"{kind} artifact(s)" if kind else "artifact(s)"
        print(f"removed {removed} {what} from {cache.root}")
        return
    counts = cache.entry_count()
    print(f"cache root: {cache.root}")
    for name in sorted(counts):
        size = cache.size_bytes(name) / 1024.0
        print(f"  {name:<11} {counts[name]:>5} artifact(s)  {size:9.1f} KiB")
    print(f"  total size  {cache.size_bytes() / 1024.0:.1f} KiB")


def _select_for(name: str, input_name: str):
    """Trace + select p-threads for ``name`` with a fixed unassisted IPC.

    The fixed IPC skips the expensive baseline timing simulation: both
    callers (p-thread verification, pre-exec codegen validation) need a
    structurally representative selection, not the model's tuned one.
    Returns ``(workload, constraints, selection)``.
    """
    from repro.engine import run_program
    from repro.model import ModelParams, SelectionConstraints
    from repro.selection import select_pthreads
    from repro.workloads import build

    workload = build(name, input_name)
    trace = run_program(workload.program, workload.hierarchy)
    params = ModelParams(
        bw_seq=8,
        unassisted_ipc=1.0,
        mem_latency=workload.hierarchy.mem_latency,
        load_latency=workload.hierarchy.l1.hit_latency,
    )
    constraints = SelectionConstraints()
    selection = select_pthreads(
        workload.program, trace.trace, params, constraints
    )
    return workload, constraints, selection


def _pthread_diagnostics(name: str, input_name: str):
    """Trace + select ``name`` and verify the resulting p-threads."""
    from repro.analysis.verifier import verify_selection

    workload, constraints, selection = _select_for(name, input_name)
    return verify_selection(
        workload.program, selection.pthreads, constraints
    )


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import (
        Severity,
        lint_workload,
        render_text,
        sort_diagnostics,
    )

    names = (
        SUITE + ["pharmacy"] if args.workload == "all" else [args.workload]
    )
    worst: Optional[Severity] = None
    per_workload = {}
    for name in names:
        diagnostics = lint_workload(name, args.input)
        if args.pthreads:
            diagnostics = diagnostics + _pthread_diagnostics(
                name, args.input
            )
        per_workload[name] = sort_diagnostics(diagnostics)
        for diagnostic in diagnostics:
            if worst is None or diagnostic.severity > worst:
                worst = diagnostic.severity
    if args.format == "json":
        payload = {
            "input": args.input,
            "workloads": {
                name: [d.to_dict() for d in diags]
                for name, diags in per_workload.items()
            },
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for name, diags in per_workload.items():
            print(render_text(diags, title=f"{name} ({args.input}):"))
    if args.strict and worst is Severity.ERROR:
        return 1
    return 0


def _cmd_parity(args: argparse.Namespace) -> int:
    from repro.harness.parity import parity_suite, render_parity

    names = (
        SUITE + ["pharmacy"] if args.workload == "all" else [args.workload]
    )
    reports = parity_suite(
        names,
        input_name=args.input,
        engine=args.engine,
        max_instructions=args.max_instructions,
    )
    if args.format == "json":
        payload = {
            "input": args.input,
            "max_instructions": args.max_instructions,
            "ok": all(report.ok for report in reports),
            "reports": [report.to_dict() for report in reports],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_parity(reports))
    if args.strict and not all(report.ok for report in reports):
        return 1
    return 0


#: Timing mode shapes each verify-codegen variant must validate:
#: (launching, stealing, prefetching) triples matching what
#: TimingSimulator.run() compiles for the paper's simulation modes.
_CODEGEN_TIMING_SHAPES = {
    # BASELINE / PERFECT_L2 (no p-threads), without and with the
    # stride-prefetcher machine configuration.
    "baseline": ((False, False, False), (False, False, True)),
    # PRE_EXECUTION / OVERHEAD_* (steal=True) and LATENCY_ONLY
    # (steal=False), launching at the selection's trigger PCs.
    "pre-exec": ((True, True, False), (True, False, False)),
}


def _cmd_verify_codegen(args: argparse.Namespace) -> int:
    from repro.analysis import Severity
    from repro.engine.functional import FunctionalSimulator
    from repro.timing import TimingSimulator
    from repro.workloads import build

    names = (
        SUITE + ["pharmacy"] if args.workload == "all" else [args.workload]
    )
    variants = (
        ["baseline", "pre-exec"]
        if args.variant == "all"
        else [args.variant]
    )
    rows = []  # (workload, target, TransvalResult)
    for name in names:
        workload = build(name, args.input)
        fsim = FunctionalSimulator(workload.program, workload.hierarchy)
        for tracing in (False, True):
            for caching in (False, True):
                rows.append((
                    name,
                    f"functional tracing={int(tracing)} "
                    f"caching={int(caching)}",
                    fsim.validate_codegen(tracing, caching),
                ))
        for variant in variants:
            if variant == "pre-exec":
                _, _, selection = _select_for(name, args.input)
                tsim = TimingSimulator(
                    workload.program,
                    workload.hierarchy,
                    pthreads=selection.pthreads,
                )
            else:
                tsim = TimingSimulator(workload.program, workload.hierarchy)
            for launching, stealing, prefetching in _CODEGEN_TIMING_SHAPES[
                variant
            ]:
                rows.append((
                    name,
                    f"timing {variant} launching={int(launching)} "
                    f"stealing={int(stealing)} "
                    f"prefetching={int(prefetching)}",
                    tsim.validate_codegen(launching, stealing, prefetching),
                ))

    failed = sum(
        1
        for _, _, result in rows
        if any(d.severity is Severity.ERROR for d in result.diagnostics)
    )
    if args.format == "json":
        payload = {
            "input": args.input,
            "variant": args.variant,
            "ok": failed == 0,
            "targets": [
                {
                    "workload": name,
                    "target": target,
                    "blocks_checked": result.blocks_checked,
                    "blocks_failed": result.blocks_failed,
                    "blocks_unvalidatable": result.blocks_unvalidatable,
                    "fallbacks": result.fallbacks,
                    "diagnostics": [
                        d.to_dict() for d in result.diagnostics
                    ],
                }
                for name, target, result in rows
            ],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        width = max(len(target) for _, target, _ in rows)
        for name, target, result in rows:
            status = "ok" if not result.blocks_failed else "FAILED"
            if result.fallbacks:
                status = "fallback"
            print(
                f"{name:<10} {target:<{width}}  "
                f"blocks={result.blocks_checked:<4} "
                f"failed={result.blocks_failed} "
                f"unvalidatable={result.blocks_unvalidatable}  {status}"
            )
            for diagnostic in result.diagnostics:
                print(f"    {diagnostic.render()}")
        blocks = sum(result.blocks_checked for _, _, result in rows)
        print(
            f"\n{len(rows)} target(s), {blocks} block(s) validated, "
            f"{failed} target(s) with errors"
        )
    if args.strict and failed:
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.what == "serve":
        return _cmd_bench_serve(args)
    from repro.harness import simspeed

    if args.what != "speed":  # pragma: no cover - argparse enforces
        raise SystemExit(f"unknown bench {args.what!r}")
    workloads = _parse_workloads(args.workloads)
    payload = simspeed.bench_speed(
        workloads=workloads,
        repeats=args.repeats,
        table2=not args.no_table2,
    )
    print(simspeed.render(payload))
    if args.output:
        simspeed.write_results(payload, args.output)
        print(f"\nwrote {args.output}")
    if args.check:
        problems = simspeed.check_payload(payload)
        if problems:
            for problem in problems:
                print(f"CHECK FAILED: {problem}", file=sys.stderr)
            return 1
        print("all speed checks passed")
    return 0


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    from repro.serve import bench as serve_bench

    workloads = _parse_workloads(args.workloads or "mcf,vpr.r")
    payload = serve_bench.bench_serve(
        workloads=workloads,
        requests=args.requests,
        concurrency=args.concurrency,
        workers=args.workers,
    )
    print(serve_bench.render(payload))
    output = args.output or serve_bench.DEFAULT_RESULTS_PATH
    serve_bench.write_results(payload, output)
    print(f"\nwrote {output}")
    if args.check:
        problems = serve_bench.check_payload(payload)
        if problems:
            for problem in problems:
                print(f"CHECK FAILED: {problem}", file=sys.stderr)
            return 1
        print("all serve checks passed")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import ServeConfig
    from repro.serve.http import run_server

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_size=args.queue_size,
        batch_max=args.batch_max,
        max_instructions=args.max_instructions,
        default_budget_seconds=args.budget,
        no_cache=getattr(args, "no_cache", False),
    )

    def ready(host: str, port: int) -> None:
        print(f"repro serve listening on http://{host}:{port}", flush=True)

    try:
        asyncio.run(run_server(config, ready=ready))
    except KeyboardInterrupt:
        print("\nshutting down")
    return 0


def _fuzz_shapes() -> Sequence[str]:
    from repro.fuzz.generator import SHAPES

    return SHAPES


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import load_reproducer, run_campaign, run_oracle

    if args.replay:
        rc = 0
        for path in args.replay:
            workload = load_reproducer(path)
            report = run_oracle(
                workload, max_instructions=args.max_instructions
            )
            print(report.render())
            if not report.ok:
                rc = 1
        return rc

    summary = run_campaign(
        seeds=args.seeds,
        base_seed=args.base_seed,
        shape=args.shape,
        budget_seconds=args.budget,
        do_shrink=args.shrink,
        corpus_dir=args.corpus,
        max_instructions=args.max_instructions,
        log=print,
    )
    print(
        f"\n{summary['seeds_run']} seed(s): {summary['ok']} ok, "
        f"{summary['failed']} failed "
        f"({summary['elapsed_seconds']:.1f}s)"
    )
    if args.report:
        out = Path(args.report)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.report}")
    return 1 if summary["failed"] else 0


def _cmd_obs(args: argparse.Namespace) -> int:
    if args.action == "check":
        if not args.input:
            raise SystemExit("obs check requires --input SNAPSHOT.json")
        doc = load_snapshot(args.input)
        problems = check_snapshot(doc)
        if problems:
            for problem in problems:
                print(f"SCHEMA CHECK FAILED: {problem}", file=sys.stderr)
            return 1
        print(f"{args.input}: metric catalog intact")
        return 0

    if args.input:
        doc = load_snapshot(args.input)
        metrics = doc["metrics"]
    else:
        # No snapshot given: run a small pipeline so the report shows
        # live numbers from every registered subsystem.
        runner = ExperimentRunner(artifacts=_artifacts(args))
        runner.run(ExperimentConfig(workload=args.workload))
        _publish_harness(runner.perf, runner.artifacts)
        doc = snapshot_document(get_registry())
        metrics = doc["metrics"]
    if args.format == "json":
        print(json.dumps(doc, indent=2, sort_keys=True))
    elif args.format == "prom":
        print(to_prometheus(metrics))
    else:
        print(render_report(metrics))
    return 0


def _cmd_branches(args: argparse.Namespace) -> None:
    from repro.engine import run_program
    from repro.model import ModelParams, SelectionConstraints
    from repro.selection import select_branch_pthreads
    from repro.timing import BASELINE, PRE_EXECUTION, TimingSimulator
    from repro.workloads import build

    workload = build(args.workload, "train")
    trace = run_program(workload.program, workload.hierarchy)
    base = TimingSimulator(workload.program, workload.hierarchy).run(BASELINE)
    params = ModelParams(
        bw_seq=8,
        unassisted_ipc=max(base.ipc, 0.05),
        mem_latency=workload.hierarchy.mem_latency,
        load_latency=workload.hierarchy.l1.hit_latency,
    )
    selection = select_branch_pthreads(
        workload.program, trace.trace, params, SelectionConstraints()
    )
    print(selection.describe())
    pre = TimingSimulator(
        workload.program, workload.hierarchy, pthreads=selection.pthreads
    ).run(PRE_EXECUTION)
    print(base.describe())
    print(pre.describe())
    print(
        f"mispredictions {pre.mispredictions}, suppressed "
        f"{pre.mispredicts_covered}; speedup {pre.speedup_over(base):+.1%}"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Automated pre-execution thread selection (Roth & Sohi 2002) "
            "— pipeline driver"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser, jobs: bool = True) -> None:
        p.add_argument(
            "--no-cache", action="store_true",
            help="skip the persistent artifact cache for this invocation",
        )
        p.add_argument(
            "--perf", action="store_true",
            help="append a stage-timing / cache hit-miss report",
        )
        p.add_argument(
            "--engine", choices=["tiered", "compiled", "interp"],
            default=None,
            help=(
                "simulation engine: tiered (default; interpret, then "
                "compile hot blocks), compiled basic blocks, or the "
                "reference interpreter (sets REPRO_ENGINE)"
            ),
        )
        p.add_argument(
            "--verify", action="store_true",
            help=(
                "statically verify p-thread invariants after every "
                "transformation (sets REPRO_VERIFY=1)"
            ),
        )
        add_observability(p)
        if jobs:
            p.add_argument(
                "--jobs", "-j", type=int, default=None,
                help="worker processes (default REPRO_JOBS, then CPU count)",
            )

    def add_observability(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--trace", default=None, metavar="PATH",
            help="write this invocation's span tree as JSON to PATH",
        )
        p.add_argument(
            "--metrics", default=None, metavar="PATH",
            help="write a metrics snapshot as JSON to PATH",
        )

    run_parser = sub.add_parser("run", help="full pipeline on one workload")
    run_parser.add_argument("workload", choices=SUITE + ["pharmacy"])
    run_parser.add_argument(
        "--validate", action="store_true",
        help="also run overhead-only / latency-only / perfect-L2 modes",
    )
    add_common(run_parser, jobs=False)
    run_parser.set_defaults(func=_cmd_run)

    for which in ("1", "2"):
        table_parser = sub.add_parser(
            f"table{which}", help=f"regenerate Table {which}"
        )
        table_parser.add_argument("--workloads", default=None)
        add_common(table_parser)
        table_parser.set_defaults(func=_cmd_table, which=which)

    figure_parser = sub.add_parser("figure", help="regenerate a figure")
    figure_parser.add_argument("which", choices=sorted(_FIGURES))
    figure_parser.add_argument("--workloads", default=None)
    add_common(figure_parser)
    figure_parser.set_defaults(func=_cmd_figure)

    cache_parser = sub.add_parser(
        "cache", help="inspect or clear the persistent artifact cache"
    )
    cache_parser.add_argument("action", choices=["info", "clear"])
    cache_parser.add_argument(
        "--kind", default=None,
        help=(
            "restrict clear to one artifact kind "
            "(e.g. codegen, trace, selection)"
        ),
    )
    cache_parser.set_defaults(func=_cmd_cache)

    branch_parser = sub.add_parser(
        "branches", help="branch pre-execution on one workload"
    )
    branch_parser.add_argument("workload", choices=SUITE + ["pharmacy"])
    branch_parser.set_defaults(func=_cmd_branches)

    bench_parser = sub.add_parser(
        "bench", help="performance benchmarks of the simulators themselves"
    )
    bench_parser.add_argument("what", choices=["speed", "serve"])
    bench_parser.add_argument(
        "--workloads", default=None,
        help=(
            "comma-separated workload subset (default: the full suite "
            "for speed, mcf,vpr.r for serve)"
        ),
    )
    bench_parser.add_argument(
        "--repeats", type=int, default=3,
        help="timed repetitions per cell, best-of (default 3; speed only)",
    )
    bench_parser.add_argument(
        "--no-table2", action="store_true",
        help="skip the cold end-to-end Table 2 wall-clock measurement",
    )
    bench_parser.add_argument(
        "--output", default=None,
        help=(
            "also write the JSON payload to this path (serve writes "
            "results/BENCH_serve.json by default)"
        ),
    )
    bench_parser.add_argument(
        "--requests", type=int, default=24,
        help="serve: measured requests in the load phase (default 24)",
    )
    bench_parser.add_argument(
        "--concurrency", type=int, default=4,
        help="serve: concurrent client connections (default 4)",
    )
    bench_parser.add_argument(
        "--workers", type=int, default=2,
        help="serve: daemon worker threads (default 2)",
    )
    bench_parser.add_argument(
        "--check", action="store_true",
        help=(
            "exit non-zero unless the floors hold (speed: engine "
            "throughput/cold-start floors; serve: warm p50 >=5x faster "
            "than the cold CLI sim stages and zero request failures)"
        ),
    )
    bench_parser.set_defaults(func=_cmd_bench)

    serve_parser = sub.add_parser(
        "serve",
        help=(
            "long-lived HTTP/JSON daemon: submit workloads, get "
            "selections and stats from warm in-process caches"
        ),
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    serve_parser.add_argument(
        "--port", type=int, default=8421,
        help="TCP port (default 8421; 0 picks an ephemeral port)",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=2,
        help="worker threads executing experiment batches (default 2)",
    )
    serve_parser.add_argument(
        "--queue-size", type=int, default=32,
        help=(
            "bounded submission queue; a full queue sheds load with "
            "503 + Retry-After (default 32)"
        ),
    )
    serve_parser.add_argument(
        "--batch-max", type=int, default=4,
        help="max requests drained into one worker batch (default 4)",
    )
    serve_parser.add_argument(
        "--budget", type=float, default=None, metavar="SECONDS",
        help=(
            "default per-request soft budget; requests may override "
            "with 'budget_seconds' (default: none)"
        ),
    )
    serve_parser.add_argument(
        "--max-instructions", type=int, default=10_000_000,
        help="per-experiment instruction cap (default 10000000)",
    )
    serve_parser.add_argument(
        "--no-cache", action="store_true",
        help="skip the persistent artifact cache for this daemon",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    fuzz_parser = sub.add_parser(
        "fuzz",
        help=(
            "differential fuzzing: generate seeded workloads and "
            "cross-check engines, simulators, verifier, and model"
        ),
    )
    fuzz_parser.add_argument(
        "--seeds", type=int, default=25,
        help="number of seeds to run (default 25)",
    )
    fuzz_parser.add_argument(
        "--base-seed", type=int, default=0,
        help="first seed of the range (default 0)",
    )
    fuzz_parser.add_argument(
        "--shape", choices=list(_fuzz_shapes()), default=None,
        help="fix every workload to one generator shape",
    )
    fuzz_parser.add_argument(
        "--budget", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget; stops between seeds once exceeded",
    )
    fuzz_parser.add_argument(
        "--shrink", action="store_true",
        help="minimize failures and write reproducers to the corpus",
    )
    fuzz_parser.add_argument(
        "--corpus", default="corpus",
        help="reproducer directory (default corpus/)",
    )
    fuzz_parser.add_argument(
        "--report", default=None, metavar="PATH",
        help="also write the JSON campaign summary to this path",
    )
    fuzz_parser.add_argument(
        "--max-instructions", type=int, default=400_000,
        help="per-simulation instruction cap (default 400000)",
    )
    fuzz_parser.add_argument(
        "--replay", nargs="+", default=None, metavar="FILE",
        help="replay corpus reproducer file(s) instead of generating",
    )
    add_observability(fuzz_parser)
    fuzz_parser.set_defaults(func=_cmd_fuzz)

    obs_parser = sub.add_parser(
        "obs", help="observability: metric reports and snapshot checks"
    )
    obs_parser.add_argument(
        "action", choices=["report", "check"],
        help=(
            "report: print the metrics registry (populated by a pipeline "
            "run unless --input names a snapshot); check: validate a "
            "snapshot file against the metric catalog"
        ),
    )
    obs_parser.add_argument(
        "--input", default=None, metavar="PATH",
        help="read metrics from a snapshot file instead of running",
    )
    obs_parser.add_argument(
        "--workload", default="pharmacy", choices=SUITE + ["pharmacy"],
        help=(
            "workload the report runs to populate the registry when no "
            "--input is given (default pharmacy)"
        ),
    )
    obs_parser.add_argument(
        "--format", choices=["table", "json", "prom"], default="table",
        help="report output format (default table)",
    )
    add_observability(obs_parser)
    obs_parser.set_defaults(func=_cmd_obs)

    lint_parser = sub.add_parser(
        "lint", help="static lints and p-thread verification reports"
    )
    lint_parser.add_argument(
        "workload", choices=SUITE + ["pharmacy", "all"],
        help="workload to lint, or 'all' for the whole bundle",
    )
    lint_parser.add_argument(
        "--input", default="train", help="input set to build (default train)"
    )
    lint_parser.add_argument(
        "--format", choices=["text", "json"], default="text",
    )
    lint_parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero if any error-severity diagnostic is found",
    )
    lint_parser.add_argument(
        "--pthreads", action="store_true",
        help="also run selection and verify the resulting p-threads",
    )
    lint_parser.set_defaults(func=_cmd_lint)

    parity_parser = sub.add_parser(
        "parity",
        help=(
            "cross-check the trace-driven and discrete-event timing "
            "models under the pinned parity contract"
        ),
    )
    parity_parser.add_argument(
        "workload", choices=SUITE + ["pharmacy", "all"],
        help="workload to compare, or 'all' for the whole bundle",
    )
    parity_parser.add_argument(
        "--input", default="train", help="input set to build (default train)"
    )
    parity_parser.add_argument(
        "--engine", choices=["interp", "compiled", "tiered"], default=None,
        help="engine seam both models run under (default: REPRO_ENGINE)",
    )
    parity_parser.add_argument(
        "--max-instructions", type=int, default=120_000,
        help="shared per-run instruction cap (default 120000)",
    )
    parity_parser.add_argument(
        "--format", choices=["text", "json"], default="text",
    )
    parity_parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on any parity divergence",
    )
    add_observability(parity_parser)
    parity_parser.set_defaults(func=_cmd_parity)

    transval_parser = sub.add_parser(
        "verify-codegen",
        help=(
            "translation-validate the compiled engine: prove every "
            "generated basic block equivalent to the interpreter "
            "semantics (CG diagnostics)"
        ),
    )
    transval_parser.add_argument(
        "workload", choices=SUITE + ["pharmacy", "all"],
        help="workload to validate, or 'all' for the whole bundle",
    )
    transval_parser.add_argument(
        "--input", default="train", help="input set to build (default train)"
    )
    transval_parser.add_argument(
        "--variant", choices=["baseline", "pre-exec", "all"], default="all",
        help=(
            "timing codegen variants to check: baseline (no p-threads), "
            "pre-exec (launch/steal shapes at selected trigger PCs), or "
            "all (default)"
        ),
    )
    transval_parser.add_argument(
        "--format", choices=["text", "json"], default="text",
    )
    transval_parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero if any error-severity diagnostic is found",
    )
    add_observability(transval_parser)
    transval_parser.set_defaults(func=_cmd_verify_codegen)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    # One invocation = one trace / one metric registry, even when main()
    # is driven repeatedly in-process (tests, scripting).
    reset_tracer()
    reset_registry()
    rc = args.func(args)
    _export_observability(args)
    return rc or 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
