"""Aggregate advantage: the paper's p-thread evaluation function.

For a candidate static p-thread::

    ADVagg = LTagg − OHagg
    LTagg  = DCpt-cm · LT          (eq. 3)
    OHagg  = DCtrig  · OH          (eq. 2)
    LT     = min(SCDHmt − SCDHpt, Lmem), clamped at 0   (eq. 5)
    OH     = (SIZEpt / BWseq) · (BWseq-mt / BWseq)       (eq. 4)

``SCDHpt`` is computed over the (possibly optimized) body executing
densely at ``BWseq-pt``; ``SCDHmt`` over the *original* computation as
the main thread reaches it, with trigger distances recovered from slice
tree ``DISTpl`` annotations and bandwidth ``BWseq-mt``.

Distance conventions (reverse-engineered to match the paper's worked
example, Figure 2 — candidates 3/4/5 must score LT = 1/3/8):

* p-thread side: the trigger is *not* fetched by the p-thread, so body
  instruction *j* (0-based) has ``DISTtrig = j + 1``;
* main-thread side: the trigger's own fetch consumes a slot, so an
  instruction *k* dynamic instructions after the trigger has
  ``DISTtrig = k + 1``;
* a sequencing constraint is a whole cycle: ``SC = ceil(DIST / BW)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.isa.instruction import Instruction
from repro.model.params import ModelParams
from repro.model.scdh import scdh_input_height
from repro.pthreads.body import PThreadBody, analyze_dataflow


def instruction_latency(inst: Instruction, params: ModelParams) -> int:
    """Model latency of one body instruction.

    Loads are charged :attr:`~repro.model.params.ModelParams.load_latency`
    (the model's estimate for a body load that hits near the core);
    everything else uses its ISA latency.
    """
    if inst.is_load:
        return params.load_latency
    return inst.info.latency


@dataclass(frozen=True)
class CandidateScore:
    """Evaluation of one candidate static p-thread.

    All "agg" quantities are aggregated over the program sample that
    produced the statistics, in cycles.
    """

    trigger_pc: int
    load_pc: int
    depth: int
    size: int
    dc_trig: int
    dc_pt_cm: int
    scdh_mt: float
    scdh_pt: float
    lt: float
    oh: float

    @property
    def lt_agg(self) -> float:
        return self.dc_pt_cm * self.lt

    @property
    def oh_agg(self) -> float:
        return self.dc_trig * self.oh

    @property
    def adv_agg(self) -> float:
        return self.lt_agg - self.oh_agg

    @property
    def fully_tolerates(self) -> bool:
        """True if the candidate hides the entire miss latency."""
        return self.lt > 0 and self.scdh_mt - self.scdh_pt >= self.lt

    def describe(self) -> str:
        return (
            f"trigger=#{self.trigger_pc:04d} depth={self.depth} "
            f"size={self.size} DCtrig={self.dc_trig} "
            f"DCpt-cm={self.dc_pt_cm} SCDHmt={self.scdh_mt:.1f} "
            f"SCDHpt={self.scdh_pt:.1f} LT={self.lt:.2f} OH={self.oh:.3f} "
            f"ADVagg={self.adv_agg:.1f}"
        )


def pthread_scdh(body: PThreadBody, params: ModelParams, target: Optional[int] = None) -> float:
    """``SCDHpt``: input height of the body's target load.

    The body executes densely: instruction *j* has trigger distance
    ``j + 1`` and is sequenced at ``(j + 1) / BWseq-pt``.
    """
    n = body.size
    sc = [math.ceil((j + 1) / params.bw_seq_pt) for j in range(n)]
    latencies = [
        instruction_latency(inst, params) for inst in body.instructions
    ]
    deps = [body.dataflow.producers(j) for j in range(n)]
    return scdh_input_height(sc, latencies, deps, target=target)


def main_thread_scdh(
    instructions: Sequence[Instruction],
    mt_distances: Sequence[float],
    params: ModelParams,
) -> float:
    """``SCDHmt``: input height of the problem load in the main thread.

    Args:
        instructions: the *original* computation (oldest first, problem
            load last).
        mt_distances: per instruction, its ``DISTtrig`` in the main
            thread — dynamic instructions from the trigger, *inclusive*
            of the trigger's own fetch slot (an instruction k dynamic
            instructions after the trigger has distance k + 1).
    """
    n = len(instructions)
    if len(mt_distances) != n:
        raise ValueError("distance vector must match instruction count")
    dataflow = analyze_dataflow(instructions)
    sc = [math.ceil(mt_distances[j] / params.bw_seq_mt) for j in range(n)]
    latencies = [instruction_latency(inst, params) for inst in instructions]
    deps = [dataflow.producers(j) for j in range(n)]
    return scdh_input_height(sc, latencies, deps)


def evaluate_candidate(
    trigger_pc: int,
    load_pc: int,
    depth: int,
    original: Sequence[Instruction],
    mt_distances: Sequence[float],
    executed_body: PThreadBody,
    dc_trig: int,
    dc_pt_cm: int,
    params: ModelParams,
) -> CandidateScore:
    """Score one candidate.

    Args:
        original: the un-optimized computation (for the main-thread
            side — the main thread always executes the original code).
        mt_distances: main-thread ``DISTtrig`` of each original
            instruction.
        executed_body: the body the p-thread would actually execute
            (optimized when optimization is enabled, otherwise equal to
            the original).
        dc_trig: dynamic executions of the trigger in the sample.
        dc_pt_cm: dynamic misses this candidate pre-executes.
    """
    scdh_mt = main_thread_scdh(original, mt_distances, params)
    scdh_pt = pthread_scdh(executed_body, params)
    tolerance = scdh_mt - scdh_pt
    lt = max(0.0, min(tolerance, float(params.mem_latency)))
    oh = executed_body.size * params.overhead_per_instruction()
    return CandidateScore(
        trigger_pc=trigger_pc,
        load_pc=load_pc,
        depth=depth,
        size=executed_body.size,
        dc_trig=dc_trig,
        dc_pt_cm=dc_pt_cm,
        scdh_mt=scdh_mt,
        scdh_pt=scdh_pt,
        lt=lt,
        oh=oh,
    )
