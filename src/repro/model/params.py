"""Parameters of the analytical pre-execution model.

The paper stresses that the framework is "intuitively parameterized to
model the salient microarchitecture features"; this module is that
parameter set.  Everything the aggregate-advantage formula needs to
know about the machine and the pre-execution implementation lives here:

* ``bw_seq`` — processor sequencing (fetch/rename) width, ``BWseq``.
* ``unassisted_ipc`` — measured IPC of the unassisted program, used to
  derive the main thread's expected sequencing rate ``BWseq-mt`` as the
  2:1 IPC-weighted average of IPC and ``BWseq`` (the paper's heuristic
  accounting for speculative execution).
* ``bw_seq_pt`` — sequencing bandwidth granted to a p-thread,
  ``BWseq-pt``; the paper pins this to 1 because a p-thread is a serial
  computation.
* ``mem_latency`` — ``Lmem``, the miss latency there is to tolerate.
* ``load_latency`` — execution latency assumed for loads *inside* a
  computation when estimating SCDH (the paper's working example uses
  unit latency; against the timing model the L1 hit time is the better
  estimate).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ModelParams:
    """Inputs to the aggregate-advantage model."""

    bw_seq: int = 8
    unassisted_ipc: float = 1.0
    bw_seq_pt: float = 1.0
    mem_latency: int = 70
    load_latency: int = 2

    def __post_init__(self) -> None:
        if self.bw_seq < 1:
            raise ValueError("bw_seq must be >= 1")
        if self.bw_seq_pt <= 0:
            raise ValueError("bw_seq_pt must be positive")
        if self.mem_latency < 1:
            raise ValueError("mem_latency must be >= 1")
        if self.unassisted_ipc <= 0:
            raise ValueError("unassisted_ipc must be positive")
        if self.load_latency < 1:
            raise ValueError("load_latency must be >= 1")

    @property
    def bw_seq_mt(self) -> float:
        """Expected main-thread sequencing rate ``BWseq-mt``.

        The paper: "we heuristically calculate BWseq-mt as the average
        of the unassisted main thread IPC and the sequencing width of
        the processor (BWseq), weighted 2-to-1 in favor of the IPC."
        """
        return (2.0 * self.unassisted_ipc + self.bw_seq) / 3.0

    def overhead_per_instruction(self) -> float:
        """Overhead cycles charged per sequenced p-thread instruction.

        Equation 4 of the paper: a p-thread occupies ``SIZE / BWseq``
        sequencing cycles, discounted by the main thread's expected
        utilization ``BWseq-mt / BWseq`` (opportunity cost — slots the
        main thread would not have used are free).
        """
        return self.bw_seq_mt / (self.bw_seq * self.bw_seq)

    def with_ipc(self, ipc: float) -> "ModelParams":
        """Copy with a different unassisted IPC."""
        return replace(self, unassisted_ipc=ipc)

    def with_mem_latency(self, latency: int) -> "ModelParams":
        """Copy with a different ``Lmem`` (Figure 8 sweeps)."""
        return replace(self, mem_latency=latency)

    def with_width(self, width: int) -> "ModelParams":
        """Copy with a different sequencing width (width sweeps)."""
        return replace(self, bw_seq=width)


@dataclass(frozen=True)
class SelectionConstraints:
    """P-thread construction constraints (paper §4.1 defaults).

    Attributes:
        scope: maximum slicing scope in dynamic instructions.
        max_pthread_length: maximum p-thread body size, applied *after*
            optimization (the paper reports post-optimization lengths).
        optimize: enable p-thread optimization (store-load pair
            elimination, constant folding, register-move elimination).
        merge: enable merging of p-threads with matching dataflow
            prefixes.
    """

    scope: int = 1024
    max_pthread_length: int = 32
    optimize: bool = True
    merge: bool = True
    #: Minimum dynamic-miss support (``DCpt-cm``) for a candidate: a
    #: *static* p-thread is one launched repeatedly, so single-instance
    #: slices are statistical noise, not candidates.
    min_support: int = 2

    def __post_init__(self) -> None:
        if self.scope < 1:
            raise ValueError("scope must be >= 1")
        if self.max_pthread_length < 1:
            raise ValueError("max_pthread_length must be >= 1")
        if self.min_support < 1:
            raise ValueError("min_support must be >= 1")
