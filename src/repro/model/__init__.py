"""Analytical model: SCDH, aggregate advantage, and parameters."""

from repro.model.advantage import (
    CandidateScore,
    evaluate_candidate,
    instruction_latency,
    main_thread_scdh,
    pthread_scdh,
)
from repro.model.params import ModelParams, SelectionConstraints
from repro.model.scdh import scdh_input_height, scdh_profile

__all__ = [
    "CandidateScore",
    "ModelParams",
    "SelectionConstraints",
    "evaluate_candidate",
    "instruction_latency",
    "main_thread_scdh",
    "pthread_scdh",
    "scdh_input_height",
    "scdh_profile",
]
