"""Sequencing-constrained dataflow height (SCDH).

SCDH is the paper's execution-time estimator: ordinary dataflow height
over a computation, except that each instruction's input height also
includes a *sequencing constraint* — the cycle at which the instruction
can first be fetched, computed as its dynamic distance from the trigger
divided by the available sequencing bandwidth.

The same recurrence serves both sides of the latency-tolerance
computation: the p-thread executes the body densely
(``DISTtrig = position + 1``, bandwidth ``BWseq-pt``), while the main
thread reaches the same instructions sparsely (``DISTtrig`` recovered
from slice-tree ``DISTpl`` annotations, bandwidth ``BWseq-mt``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


def scdh_profile(
    sequencing_constraints: Sequence[float],
    latencies: Sequence[int],
    deps: Sequence[Tuple[int, ...]],
) -> List[float]:
    """Completion times of every instruction in a computation.

    Args:
        sequencing_constraints: per position, the cycle at which the
            instruction is sequenced (``SC``).
        latencies: per position, execution latency.
        deps: per position, positions of in-computation producers
            (values from outside the computation are ready at cycle 0).

    Returns:
        Per position, the cycle at which the instruction's result is
        available: ``max(SC, producers ready) + latency``.
    """
    n = len(sequencing_constraints)
    if len(latencies) != n or len(deps) != n:
        raise ValueError("scdh inputs must have equal lengths")
    completion: List[float] = [0.0] * n
    for j in range(n):
        ready = sequencing_constraints[j]
        for producer in deps[j]:
            if not 0 <= producer < j:
                raise ValueError(
                    f"producer {producer} of position {j} is not earlier"
                )
            if completion[producer] > ready:
                ready = completion[producer]
        completion[j] = ready + latencies[j]
    return completion


def scdh_input_height(
    sequencing_constraints: Sequence[float],
    latencies: Sequence[int],
    deps: Sequence[Tuple[int, ...]],
    target: Optional[int] = None,
) -> float:
    """SCDH *input* height of the target instruction.

    This is the paper's ``SCDHin`` of the problem-load instance: the
    cycle at which the load can issue — its inputs are ready and it has
    been sequenced.  The load's own (miss) latency is deliberately
    excluded; the difference of the two sides' input heights is how far
    the p-thread hoists the miss.

    Args:
        target: position of the problem load; defaults to the last
            instruction.
    """
    n = len(sequencing_constraints)
    if target is None:
        target = n - 1
    if not 0 <= target < n:
        raise ValueError(f"target position out of range: {target}")
    completion = scdh_profile(sequencing_constraints, latencies, deps)
    height = float(sequencing_constraints[target])
    for producer in deps[target]:
        if completion[producer] > height:
            height = completion[producer]
    return height
