"""Per-tree p-thread selection with overlap correction.

The composite selection problem for one static load (paper §3.2): from
the slice tree, find the set of candidate p-threads whose aggregate
advantages — with double-counted latency tolerance between parent and
child p-threads subtracted — sum to a maximum.

Aggregate advantage does not add across a parent/child pair: the
``DCpt-cm`` misses the child attacks are a subset of the parent's, and
once one p-thread has tolerated a miss's latency the other cannot
tolerate it again.  The correction charges the *parent* (it tolerates
less per miss)::

    ADVagg'(P) = ADVagg(P) − DCpt-cm(C) · LT(P)

The solver follows the paper's iterative procedure: select the best
candidate per leaf independently, then reduce the advantages of
overlapping parents and re-select, terminating when an iteration's
reductions no longer change the selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.isa.program import Program
from repro.model.advantage import CandidateScore, evaluate_candidate
from repro.model.params import ModelParams, SelectionConstraints
from repro.pthreads.body import PThreadBody
from repro.pthreads.optimizer import optimize_body
from repro.slicing.slice_tree import SliceNode, SliceTree


@dataclass(frozen=True)
class TreeCandidate:
    """A scored candidate p-thread (one slice-tree node).

    Attributes:
        node: the trigger node in the slice tree.
        score: aggregate-advantage evaluation.
        body: the body the p-thread executes (optimized if enabled).
        original: the unoptimized computation (tree-path instructions).
    """

    node: SliceNode
    score: CandidateScore
    body: PThreadBody
    original: PThreadBody

    @property
    def trigger_pc(self) -> int:
        return self.node.pc


def is_strict_ancestor(ancestor: SliceNode, node: SliceNode) -> bool:
    """True if ``ancestor`` lies strictly between ``node`` and the root.

    In slice-tree terms the *shallower* node is the shorter, less
    specialized p-thread — the "parent p-thread" of the paper's
    overlap discussion.
    """
    if ancestor.depth >= node.depth:
        return False
    walk: Optional[SliceNode] = node.parent
    while walk is not None and walk.depth >= ancestor.depth:
        if walk is ancestor:
            return True
        walk = walk.parent
    return False


def enumerate_candidates(
    tree: SliceTree,
    program: Program,
    dc_trig: Dict[int, int],
    params: ModelParams,
    constraints: SelectionConstraints,
) -> Dict[int, TreeCandidate]:
    """Score every legal candidate in a slice tree.

    Returns a mapping from ``id(node)`` to the candidate.  Nodes whose
    (post-optimization) body exceeds the length constraint are not
    candidates.
    """
    candidates: Dict[int, TreeCandidate] = {}
    for node in tree.nodes():
        if node.depth == 0:
            continue
        if node.visits < constraints.min_support:
            continue
        path = node.path_to_root()
        body_nodes = path[1:]  # execution order: oldest first, root last
        instructions = [program[body_node.pc] for body_node in body_nodes]
        original = PThreadBody(instructions)
        if constraints.optimize:
            executed = optimize_body(original).body
        else:
            executed = original
        if executed.size > constraints.max_pthread_length:
            continue
        mt_distances = []
        for position, body_node in enumerate(body_nodes):
            # +1: main-thread DISTtrig includes the trigger's own fetch
            # slot (see repro.model.advantage distance conventions).
            distance = node.dist_pl - body_node.dist_pl + 1.0
            mt_distances.append(max(distance, float(position + 2)))
        score = evaluate_candidate(
            trigger_pc=node.pc,
            load_pc=tree.load_pc,
            depth=node.depth,
            original=instructions,
            mt_distances=mt_distances,
            executed_body=executed,
            dc_trig=dc_trig.get(node.pc, 0),
            dc_pt_cm=node.visits,
            params=params,
        )
        candidates[id(node)] = TreeCandidate(
            node=node, score=score, body=executed, original=original
        )
    return candidates


def _adjusted_advantage(
    candidate: TreeCandidate, others: Sequence[TreeCandidate]
) -> float:
    """Candidate's advantage given an existing selection ``others``."""
    advantage = candidate.score.adv_agg
    for other in others:
        if other.node is candidate.node:
            continue
        if is_strict_ancestor(candidate.node, other.node):
            # candidate is the parent: its tolerance of the child's
            # misses is double-counted.
            advantage -= other.score.dc_pt_cm * candidate.score.lt
        elif is_strict_ancestor(other.node, candidate.node):
            # candidate is the child: joining costs the parent's
            # double-counted tolerance (charged here so the marginal
            # gain of adding the candidate is correct).
            advantage -= candidate.score.dc_pt_cm * other.score.lt
    return advantage


@dataclass
class TreeSelection:
    """Result of selecting p-threads for one slice tree."""

    tree: SliceTree
    selected: List[TreeCandidate]
    candidates_considered: int
    iterations: int

    def total_corrected_advantage(self) -> float:
        """Solution value with all pairwise overlap corrections applied."""
        total = 0.0
        for i, candidate in enumerate(self.selected):
            total += candidate.score.adv_agg
            for other in self.selected[i + 1 :]:
                if is_strict_ancestor(candidate.node, other.node):
                    total -= other.score.dc_pt_cm * candidate.score.lt
                elif is_strict_ancestor(other.node, candidate.node):
                    total -= candidate.score.dc_pt_cm * other.score.lt
        return total


def select_from_tree(
    tree: SliceTree,
    program: Program,
    dc_trig: Dict[int, int],
    params: ModelParams,
    constraints: SelectionConstraints,
    max_iterations: int = 16,
) -> TreeSelection:
    """Select the best p-thread set for one static load's slice tree."""
    candidates = enumerate_candidates(tree, program, dc_trig, params, constraints)
    # Canonical leaf order (by root-to-leaf PC path): the iterative
    # reselection is a coordinate ascent whose fixpoint can depend on
    # visit order, so pin it down — selection results must not depend
    # on dict insertion order (e.g. trees reloaded from files).
    leaves = sorted(
        (leaf for leaf in tree.leaves() if leaf.depth > 0),
        key=lambda leaf: tuple(
            node.pc for node in reversed(leaf.path_to_root())
        ),
    )

    # Candidate chain per leaf: candidates on the leaf's root path.
    chains: List[List[TreeCandidate]] = []
    for leaf in leaves:
        chain = []
        for node in leaf.path_to_root():
            candidate = candidates.get(id(node))
            if candidate is not None:
                chain.append(candidate)
        if chain:
            chains.append(chain)

    selection: List[Optional[TreeCandidate]] = [None] * len(chains)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        changed = False
        for chain_index, chain in enumerate(chains):
            others: List[TreeCandidate] = []
            seen = set()
            for other_index, chosen in enumerate(selection):
                if chosen is None or other_index == chain_index:
                    continue
                if id(chosen.node) not in seen:
                    seen.add(id(chosen.node))
                    others.append(chosen)
            best: Optional[TreeCandidate] = None
            best_value = 0.0
            for candidate in chain:
                value = _adjusted_advantage(candidate, others)
                if value > best_value:
                    best, best_value = candidate, value
            if best is not selection[chain_index]:
                selection[chain_index] = best
                changed = True
        if not changed:
            break

    unique: List[TreeCandidate] = []
    seen_nodes = set()
    for chosen in selection:
        if chosen is not None and id(chosen.node) not in seen_nodes:
            seen_nodes.add(id(chosen.node))
            unique.append(chosen)
    unique.sort(key=lambda c: (c.node.depth, c.node.pc))
    return TreeSelection(
        tree=tree,
        selected=unique,
        candidates_considered=len(candidates),
        iterations=iterations,
    )
