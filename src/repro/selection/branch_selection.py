"""Branch pre-execution: p-thread selection for problem branches.

The paper's footnote 1: "Pre-execution has also been proposed as a way
of dealing with problem (i.e., frequently mis-predicted) branches.
While we do not explicitly discuss branch pre-execution here, all of
our methods do apply in that scenario."  This module applies them:

* a *problem branch* is a static conditional branch the front-end
  predictor mispredicts often;
* the candidate space is the same slice tree, built from the backward
  slices of *mispredicted dynamic branch instances* (a branch's slice
  is its operands' computation — branches produce no register, so
  trees never contain other branches);
* the evaluation function is aggregate advantage verbatim, with one
  reinterpretation: the latency there is to tolerate per covered event
  is the **misprediction penalty**, not the memory latency — so
  selection runs with ``Lmem = mispredict_penalty``;
* at run time a branch p-thread ends in the targeted conditional
  branch; its early-computed outcome is posted as a *hint* that lets
  the fetch engine skip the redirect penalty when it matches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.engine.trace import Trace
from repro.frontend.branch_predictor import HybridPredictor
from repro.isa.opcodes import Format, opinfo
from repro.isa.program import Program
from repro.model.params import ModelParams, SelectionConstraints
from repro.selection.program_selector import (
    ProgramSelection,
    _candidate_to_pthread,
    _dc_trig_counts,
    _effective_coverage,
    ProgramPrediction,
)
from repro.selection.selector import select_from_tree
from repro.slicing.slice_tree import build_slice_trees_for_roots


@dataclass(frozen=True)
class BranchProfile:
    """Misprediction statistics for one static conditional branch."""

    pc: int
    executions: int
    mispredictions: int
    mispredicted_indices: Tuple[int, ...]

    @property
    def rate(self) -> float:
        if not self.executions:
            return 0.0
        return self.mispredictions / self.executions


def profile_branches(
    trace: Trace, program: Program, predictor: Optional[HybridPredictor] = None
) -> Dict[int, BranchProfile]:
    """Replay a trace's conditional branches through the predictor.

    Returns per-PC misprediction statistics, including the dynamic
    indices of mispredicted instances — the roots for slice-tree
    construction.  Only conditional branches are profiled (direct jumps
    never mispredict; indirect-jump targets are not in the trace).
    """
    predictor = predictor or HybridPredictor()
    conditional = {
        inst.pc: int(inst.target)
        for inst in program.instructions
        if opinfo(inst.op).fmt is Format.BRANCH
    }
    executions: Dict[int, int] = {}
    mispredicted: Dict[int, List[int]] = {}
    pcs = trace.pc
    takens = trace.taken
    for index in range(len(trace)):
        pc = int(pcs[index])
        target = conditional.get(pc)
        if target is None:
            continue
        executions[pc] = executions.get(pc, 0) + 1
        correct = predictor.predict_and_update(
            pc, bool(takens[index]), target
        )
        if not correct:
            mispredicted.setdefault(pc, []).append(index)
    return {
        pc: BranchProfile(
            pc=pc,
            executions=count,
            mispredictions=len(mispredicted.get(pc, [])),
            mispredicted_indices=tuple(mispredicted.get(pc, [])),
        )
        for pc, count in executions.items()
    }


def problem_branches(
    profiles: Dict[int, BranchProfile],
    min_rate: float = 0.05,
    min_mispredictions: int = 16,
) -> List[BranchProfile]:
    """Branches worth attacking, hardest first."""
    problems = [
        profile
        for profile in profiles.values()
        if profile.rate >= min_rate
        and profile.mispredictions >= min_mispredictions
    ]
    problems.sort(key=lambda p: p.mispredictions, reverse=True)
    return problems


def select_branch_pthreads(
    program: Program,
    trace: Trace,
    params: ModelParams,
    constraints: Optional[SelectionConstraints] = None,
    mispredict_penalty: int = 10,
    min_rate: float = 0.05,
    min_mispredictions: int = 16,
) -> ProgramSelection:
    """Select p-threads that pre-execute problem branches.

    Args:
        params: model parameters; ``mem_latency`` is ignored — the
            tolerable latency per covered event is the misprediction
            penalty.
        mispredict_penalty: fetch-redirect penalty the machine charges
            (must match the timing configuration for honest scores).
        min_rate / min_mispredictions: problem-branch thresholds.
    """
    constraints = constraints or SelectionConstraints()
    branch_params = params.with_mem_latency(max(1, mispredict_penalty))
    profiles = profile_branches(trace, program)
    problems = problem_branches(profiles, min_rate, min_mispredictions)
    roots: List[int] = []
    for profile in problems:
        roots.extend(profile.mispredicted_indices)
    roots.sort()
    tree_depth = max(constraints.max_pthread_length * 2, 48)
    trees = build_slice_trees_for_roots(
        trace, roots, scope=constraints.scope, max_length=tree_depth
    )
    dc_trig = _dc_trig_counts(trace, len(program), 0, None)

    pthreads = []
    tree_selections = {}
    covered = fully = 0
    lt_agg_total = 0.0
    for branch_pc in sorted(trees):
        tree = trees[branch_pc]
        selection = select_from_tree(
            tree, program, dc_trig, branch_params, constraints
        )
        tree_selections[branch_pc] = selection
        effective = _effective_coverage(selection.selected)
        for candidate in selection.selected:
            events = effective[id(candidate.node)]
            pthread = _candidate_to_pthread(candidate, events, branch_params)
            pthreads.append(pthread)
            covered += pthread.prediction.misses_covered
            fully += pthread.prediction.misses_fully_covered
            lt_agg_total += pthread.prediction.lt_agg

    launches = sum(p.prediction.dc_trig for p in pthreads)
    injected = sum(p.prediction.injected_instructions for p in pthreads)
    total_events = sum(p.mispredictions for p in problems)
    prediction = ProgramPrediction(
        launches=launches,
        injected_instructions=injected,
        misses_covered=covered,
        misses_fully_covered=fully,
        lt_agg=lt_agg_total,
        oh_agg=sum(p.prediction.oh_agg for p in pthreads),
        sample_instructions=len(trace),
        sample_l2_misses=total_events,  # here: total mispredictions
        unassisted_ipc=params.unassisted_ipc,
        sequencing_width=params.bw_seq,
    )
    return ProgramSelection(
        pthreads=pthreads,
        tree_selections=tree_selections,
        prediction=prediction,
        params=branch_params,
        constraints=constraints,
    )
