"""P-thread selection: per-tree solver and whole-program drivers."""

from repro.selection.branch_selection import (
    BranchProfile,
    problem_branches,
    profile_branches,
    select_branch_pthreads,
)
from repro.selection.granularity import (
    GranularSelection,
    RegionSelection,
    select_by_region,
)
from repro.selection.program_selector import (
    ProgramPrediction,
    ProgramSelection,
    select_pthreads,
)
from repro.selection.selector import (
    TreeCandidate,
    TreeSelection,
    enumerate_candidates,
    is_strict_ancestor,
    select_from_tree,
)

__all__ = [
    "BranchProfile",
    "GranularSelection",
    "ProgramPrediction",
    "ProgramSelection",
    "RegionSelection",
    "TreeCandidate",
    "TreeSelection",
    "enumerate_candidates",
    "is_strict_ancestor",
    "problem_branches",
    "profile_branches",
    "select_branch_pthreads",
    "select_by_region",
    "select_from_tree",
    "select_pthreads",
]
