"""Whole-program p-thread selection.

Divides the program's p-thread selection problem into per-static-load
sub-problems (the paper's decomposition — a p-thread for one load never
overlaps one for another load), solves each slice tree, converts the
winning candidates into :class:`~repro.pthreads.pthread.StaticPThread`
objects with coverage-corrected predictions, and optionally merges
p-threads that share triggers and dataflow prefixes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.trace import Trace
from repro.isa.program import Program
from repro.model.params import ModelParams, SelectionConstraints
from repro.pthreads.merger import merge_pthreads
from repro.pthreads.pthread import PThreadPrediction, StaticPThread
from repro.selection.selector import (
    TreeCandidate,
    TreeSelection,
    is_strict_ancestor,
    select_from_tree,
)
from repro.slicing.slice_tree import build_slice_trees


@dataclass(frozen=True)
class ProgramPrediction:
    """Aggregate framework predictions over a program sample.

    These are the diagnostics the paper's Table 2 validates against
    simulation: launches, p-thread length, miss coverage (full and
    partial), and the aggregate overhead/latency-tolerance cycles that
    translate into the overhead-only and latency-only IPC predictions.
    """

    launches: int
    injected_instructions: int
    misses_covered: int
    misses_fully_covered: int
    lt_agg: float
    oh_agg: float
    sample_instructions: int
    sample_l2_misses: int
    unassisted_ipc: float
    sequencing_width: int = 8

    @property
    def adv_agg(self) -> float:
        return self.lt_agg - self.oh_agg

    @property
    def avg_pthread_length(self) -> float:
        if not self.launches:
            return 0.0
        return self.injected_instructions / self.launches

    @property
    def coverage_fraction(self) -> float:
        if not self.sample_l2_misses:
            return 0.0
        return self.misses_covered / self.sample_l2_misses

    @property
    def full_coverage_fraction(self) -> float:
        if not self.sample_l2_misses:
            return 0.0
        return self.misses_fully_covered / self.sample_l2_misses

    def _base_cycles(self) -> float:
        return self.sample_instructions / self.unassisted_ipc

    def _min_cycles(self) -> float:
        """Cycles cannot drop below the sequencing-bandwidth bound."""
        return self.sample_instructions / self.sequencing_width

    @property
    def predicted_ipc(self) -> float:
        """IPC with both overhead and latency tolerance applied."""
        cycles = max(self._base_cycles() - self.adv_agg, self._min_cycles())
        return self.sample_instructions / cycles

    @property
    def predicted_overhead_ipc(self) -> float:
        """IPC of an overhead-only implementation."""
        cycles = self._base_cycles() + self.oh_agg
        return self.sample_instructions / cycles

    @property
    def predicted_latency_ipc(self) -> float:
        """IPC of a latency-tolerance-only implementation."""
        cycles = max(self._base_cycles() - self.lt_agg, self._min_cycles())
        return self.sample_instructions / cycles

    @property
    def predicted_speedup(self) -> float:
        if self.unassisted_ipc <= 0:
            return 0.0
        return self.predicted_ipc / self.unassisted_ipc - 1.0


@dataclass
class ProgramSelection:
    """Output of :func:`select_pthreads`."""

    pthreads: List[StaticPThread]
    tree_selections: Dict[int, TreeSelection]
    prediction: ProgramPrediction
    params: ModelParams
    constraints: SelectionConstraints

    def describe(self) -> str:
        lines = [
            f"{len(self.pthreads)} static p-thread(s); predicted launches "
            f"{self.prediction.launches}, coverage "
            f"{self.prediction.coverage_fraction:.1%} "
            f"(full {self.prediction.full_coverage_fraction:.1%}), "
            f"predicted speedup {self.prediction.predicted_speedup:+.1%}"
        ]
        lines.extend("  " + p.describe() for p in self.pthreads)
        return "\n".join(lines)


def _dc_trig_counts(
    trace: Trace, num_static: int, start: int, end: Optional[int]
) -> Dict[int, int]:
    """Dynamic executions of every static PC within a region."""
    stop = len(trace) if end is None else min(end, len(trace))
    pcs = trace.pc[start:stop]
    counts = np.bincount(pcs, minlength=num_static)
    return {pc: int(count) for pc, count in enumerate(counts) if count}


def _effective_coverage(
    selected: Sequence[TreeCandidate],
) -> Dict[int, int]:
    """Misses attributed to each selected candidate, overlap-corrected.

    A selected parent is credited only with misses not already covered
    by its *maximal* selected descendants — matching the advantage
    correction and preventing double-counted coverage predictions.
    """
    effective: Dict[int, int] = {}
    for candidate in selected:
        covered = candidate.score.dc_pt_cm
        # Maximal selected strict descendants: descendants with no
        # selected candidate strictly between them and `candidate`.
        for other in selected:
            if not is_strict_ancestor(candidate.node, other.node):
                continue
            has_intermediate = any(
                is_strict_ancestor(candidate.node, mid.node)
                and is_strict_ancestor(mid.node, other.node)
                for mid in selected
            )
            if not has_intermediate:
                covered -= other.score.dc_pt_cm
        effective[id(candidate.node)] = max(0, covered)
    return effective


def _candidate_to_pthread(
    candidate: TreeCandidate,
    effective_covered: int,
    params: ModelParams,
) -> StaticPThread:
    score = candidate.score
    fully = effective_covered if score.lt >= params.mem_latency else 0
    prediction = PThreadPrediction(
        dc_trig=score.dc_trig,
        size=score.size,
        misses_covered=effective_covered,
        misses_fully_covered=fully,
        lt_agg=effective_covered * score.lt,
        oh_agg=score.oh_agg,
    )
    instances_ahead = sum(
        1
        for inst in candidate.original.instructions
        if inst.pc == score.trigger_pc
    )
    return StaticPThread(
        trigger_pc=score.trigger_pc,
        body=candidate.body,
        target_load_pcs=(score.load_pc,),
        prediction=prediction,
        components=(score,),
        original_body=candidate.original,
        original_targets=(candidate.original.size - 1,),
        instances_ahead=instances_ahead,
    )


def select_pthreads(
    program: Program,
    trace: Trace,
    params: ModelParams,
    constraints: Optional[SelectionConstraints] = None,
    miss_level: int = 3,
    region: Optional[Tuple[int, int]] = None,
    sample_l2_misses: Optional[int] = None,
    lmem_overrides: Optional[Dict[int, float]] = None,
) -> ProgramSelection:
    """Select static p-threads for a traced program sample.

    Args:
        program: the program the trace came from.
        trace: dynamic trace with miss levels and dependence edges.
        params: model parameters (width, latency, unassisted IPC).
        constraints: p-thread construction constraints.
        miss_level: minimum memory level that counts as a problem miss.
        region: optional ``(start, end)`` dynamic-index window — the
            statistical basis is restricted to this region (used by the
            selection-granularity experiments).
        sample_l2_misses: total problem misses in the sample, for
            coverage fractions; defaults to the count found in the
            region.
        lmem_overrides: optional per-static-load effective miss latency
            (``Lmem``), e.g. from
            :meth:`repro.timing.stats.SimStats.effective_latency`.
            This is the paper's critical-path future-work refinement:
            it replaces the serial-latency assumption with the stall
            each load's misses actually expose.
    """
    constraints = constraints or SelectionConstraints()
    start, end = region if region is not None else (0, None)
    tree_depth = max(constraints.max_pthread_length * 2, 48)
    trees = build_slice_trees(
        trace,
        scope=constraints.scope,
        max_length=tree_depth,
        miss_level=miss_level,
        start=start,
        end=end,
    )
    dc_trig = _dc_trig_counts(trace, len(program), start, end)

    tree_selections: Dict[int, TreeSelection] = {}
    pthreads: List[StaticPThread] = []
    covered_total = 0
    fully_total = 0
    lt_agg_total = 0.0
    for load_pc in sorted(trees):
        tree = trees[load_pc]
        tree_params = params
        if lmem_overrides is not None and load_pc in lmem_overrides:
            latency = max(1, round(lmem_overrides[load_pc]))
            tree_params = params.with_mem_latency(
                min(latency, params.mem_latency)
            )
        selection = select_from_tree(
            tree, program, dc_trig, tree_params, constraints
        )
        tree_selections[load_pc] = selection
        effective = _effective_coverage(selection.selected)
        for candidate in selection.selected:
            covered = effective[id(candidate.node)]
            pthread = _candidate_to_pthread(candidate, covered, tree_params)
            pthreads.append(pthread)
            covered_total += pthread.prediction.misses_covered
            fully_total += pthread.prediction.misses_fully_covered
            lt_agg_total += pthread.prediction.lt_agg

    if constraints.merge:
        pthreads = merge_pthreads(pthreads, optimize=constraints.optimize)

    launches = sum(p.prediction.dc_trig for p in pthreads)
    injected = sum(p.prediction.injected_instructions for p in pthreads)
    oh_agg_total = sum(p.prediction.oh_agg for p in pthreads)

    # Debug-mode post-pass: the finished selection must satisfy every
    # p-thread invariant (lazy import: repro.analysis imports this
    # package's types).
    from repro.analysis.report import assert_clean, verification_enabled

    if verification_enabled():
        from repro.analysis.verifier import verify_selection

        assert_clean(
            verify_selection(program, pthreads, constraints),
            f"select_pthreads({program.name!r}, {len(pthreads)} p-threads)",
        )

    stop = len(trace) if end is None else min(end, len(trace))
    region_misses = sum(tree.total_misses() for tree in trees.values())
    prediction = ProgramPrediction(
        launches=launches,
        injected_instructions=injected,
        misses_covered=covered_total,
        misses_fully_covered=fully_total,
        lt_agg=lt_agg_total,
        oh_agg=oh_agg_total,
        sample_instructions=stop - start,
        sample_l2_misses=(
            sample_l2_misses if sample_l2_misses is not None else region_misses
        ),
        unassisted_ipc=params.unassisted_ipc,
        sequencing_width=params.bw_seq,
    )
    return ProgramSelection(
        pthreads=pthreads,
        tree_selections=tree_selections,
        prediction=prediction,
        params=params,
        constraints=constraints,
    )
