"""Region-grained p-thread selection (paper Figure 6).

The default selection granularity is the whole (sampled) run.  Finer
granularities specialize p-threads for dynamic program regions: the
trace is cut into fixed-size windows, selection runs per window with
that window's statistics, and the resulting p-thread sets are activated
per region during simulation.

The paper's intuition — and occasional counter-intuition — both come
from this mechanism: a p-thread profitable over the whole run may be
unprofitable in some sub-region (losing that sub-region's coverage),
while region-local statistics can make locally-specialized p-threads
sharper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.engine.trace import Trace
from repro.isa.program import Program
from repro.model.params import ModelParams, SelectionConstraints
from repro.pthreads.pthread import StaticPThread
from repro.selection.program_selector import ProgramSelection, select_pthreads


@dataclass(frozen=True)
class RegionSelection:
    """Selection output for one dynamic region."""

    start: int
    end: int
    selection: ProgramSelection

    @property
    def pthreads(self) -> List[StaticPThread]:
        return self.selection.pthreads


@dataclass
class GranularSelection:
    """P-thread sets specialized per dynamic region.

    The timing simulator consumes :meth:`schedule` — a list of
    ``(start, end, pthreads)`` activations keyed by retired main-thread
    instruction count.
    """

    regions: List[RegionSelection]
    region_size: int

    def schedule(self) -> List[Tuple[int, int, List[StaticPThread]]]:
        return [(r.start, r.end, r.pthreads) for r in self.regions]

    def total_static_pthreads(self) -> int:
        return sum(len(r.pthreads) for r in self.regions)

    def predicted_launches(self) -> int:
        return sum(r.selection.prediction.launches for r in self.regions)

    def predicted_covered(self) -> int:
        return sum(
            r.selection.prediction.misses_covered for r in self.regions
        )


def select_by_region(
    program: Program,
    trace: Trace,
    params: ModelParams,
    region_size: int,
    constraints: Optional[SelectionConstraints] = None,
    miss_level: int = 3,
) -> GranularSelection:
    """Run selection independently over fixed-size trace regions.

    Args:
        region_size: region length in dynamic instructions.  The final
            partial region is selected over its actual length.
    """
    if region_size < 1:
        raise ValueError("region_size must be >= 1")
    regions: List[RegionSelection] = []
    length = len(trace)
    start = 0
    while start < length:
        end = min(start + region_size, length)
        selection = select_pthreads(
            program,
            trace,
            params,
            constraints=constraints,
            miss_level=miss_level,
            region=(start, end),
        )
        regions.append(RegionSelection(start=start, end=end, selection=selection))
        start = end
    return GranularSelection(regions=regions, region_size=region_size)
