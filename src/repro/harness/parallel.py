"""Parallel sweep execution.

Sweep cells (one :class:`ExperimentConfig` each) are embarrassingly
parallel: they share read-only inputs and never communicate.
:class:`SweepExecutor` maps a list of cells over a
``ProcessPoolExecutor``, with:

* worker count from ``REPRO_JOBS`` (default ``os.cpu_count()``);
* deterministic result ordering — results come back in input order no
  matter which worker finished first;
* per-cell exception capture — a failed cell reports its config and
  full traceback as a :class:`CellError` instead of killing the sweep;
* a serial fallback used when the job count is 1, which runs every
  cell in-process on the shared runner.  Cells are deterministic, so
  the two paths produce identical results (the serial/parallel
  equivalence guarantee README.md documents and the tests pin down).

Worker processes each hold their own :class:`ExperimentRunner`; the
persistent :class:`~repro.harness.artifacts.ArtifactCache` (when
enabled) is what lets them share traces and baselines instead of
re-computing them per process.  Workers ship their perf-counter deltas
back with every cell, and the executor merges them into the shared
runner's counters so one report covers the whole sweep.
"""

from __future__ import annotations

import os
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.harness.artifacts import ArtifactCache, PerfCounters
from repro.harness.experiment import (
    ExperimentConfig,
    ExperimentDeadlineError,
    ExperimentResult,
    ExperimentRunner,
    PartialExperimentResult,
)
from repro.obs import get_registry, get_tracer, reset_registry, reset_tracer


@dataclass
class CellError:
    """A sweep cell that raised: its config plus the formatted traceback."""

    config: ExperimentConfig
    error: str

    def __str__(self) -> str:
        return f"cell {self.config} failed:\n{self.error}"


class SweepError(RuntimeError):
    """Raised by :meth:`SweepExecutor.run` when any cell failed."""

    def __init__(self, failures: Sequence[CellError]) -> None:
        self.failures = list(failures)
        detail = "\n\n".join(str(f) for f in self.failures)
        super().__init__(
            f"{len(self.failures)} sweep cell(s) failed:\n{detail}"
        )


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit arg, else ``REPRO_JOBS``, else cpu count."""
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS")
        if raw:
            try:
                jobs = int(raw)
            except ValueError:
                raise ValueError(
                    f"REPRO_JOBS must be an integer, got {raw!r}"
                ) from None
        else:
            jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"job count must be >= 1, got {jobs}")
    return jobs


# Per-worker state, installed by the pool initializer.  One runner per
# worker process gives each worker in-memory caching across the cells
# it happens to execute; the shared on-disk cache covers the rest.
_WORKER_RUNNER: Optional[ExperimentRunner] = None


def _init_worker(max_instructions: int, cache_root: Optional[str]) -> None:
    global _WORKER_RUNNER
    artifacts = ArtifactCache(cache_root) if cache_root else None
    _WORKER_RUNNER = ExperimentRunner(
        max_instructions=max_instructions, artifacts=artifacts
    )


def _run_cell(indexed_config):
    """Execute one cell in a worker; never raises.

    Returns ``(index, result_or_None, traceback_or_None, perf_delta,
    obs_payload)``.  ``obs_payload`` carries the cell's span subtree
    (durations only, so no cross-process clock alignment is needed) and
    the worker registry's metric delta; the executor attaches/merges
    both so the coordinator's telemetry covers every worker.
    Exceptions are formatted in the worker so unpicklable exception
    types cannot poison the pool.
    """
    index, config = indexed_config
    runner = _WORKER_RUNNER
    if runner is None:  # direct call outside a pool (tests)
        raise RuntimeError("worker runner not initialized")
    before = runner.perf.snapshot()
    # Fresh per-cell telemetry: the span tree and metric snapshot this
    # cell ships back must not include earlier cells this worker ran.
    tracer = reset_tracer()
    registry = reset_registry()
    try:
        result = runner.run(config)
        error = None
    except Exception:
        result = None
        error = traceback.format_exc()
    obs_payload = {
        "spans": tracer.to_dict()["spans"],
        "metrics": registry.snapshot(),
    }
    return index, result, error, runner.perf.since(before), obs_payload


class SweepExecutor:
    """Maps experiment cells over processes (or serially for 1 job).

    Args:
        jobs: worker count; ``None`` resolves ``REPRO_JOBS`` then
            ``os.cpu_count()``.
        runner: shared runner for the serial path and for callers that
            pre-compute stages (figure 6/7 config builders); created on
            demand.
        artifacts: persistent cache handed to every worker; defaults to
            the runner's.
        max_instructions: per-cell instruction budget for runners this
            executor creates.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        runner: Optional[ExperimentRunner] = None,
        artifacts: Optional[ArtifactCache] = None,
        max_instructions: int = 10_000_000,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        if artifacts is None and runner is not None:
            artifacts = runner.artifacts
        self.artifacts = artifacts
        self.runner = runner or ExperimentRunner(
            max_instructions=max_instructions, artifacts=artifacts
        )

    @property
    def perf(self) -> PerfCounters:
        """Merged counters for everything this executor drove."""
        return self.runner.perf

    def map(
        self, configs: Sequence[ExperimentConfig]
    ) -> List[Union[ExperimentResult, CellError]]:
        """Run every cell; failures come back as :class:`CellError`.

        The output list is index-aligned with ``configs`` regardless of
        completion order or worker assignment.
        """
        configs = list(configs)
        if not configs:
            return []
        if self.jobs == 1 or len(configs) == 1:
            # Serial cells run on the shared runner, so their spans nest
            # under the coordinator's tracer directly.
            with get_tracer().span("sweep", cells=len(configs), jobs=1):
                return [self._run_serial(config) for config in configs]
        outcomes: List[Union[ExperimentResult, CellError]] = [None] * len(configs)  # type: ignore[list-item]
        cache_root = str(self.artifacts.root) if self.artifacts else None
        tracer = get_tracer()
        registry = get_registry()
        with ProcessPoolExecutor(
            max_workers=min(self.jobs, len(configs)),
            initializer=_init_worker,
            initargs=(self.runner.max_instructions, cache_root),
        ) as pool, tracer.span(
            "sweep", cells=len(configs), jobs=min(self.jobs, len(configs))
        ):
            # pool.map yields in input order, so attached cell spans are
            # deterministic no matter which worker finished first.
            for index, result, error, perf_delta, obs_payload in pool.map(
                _run_cell, enumerate(configs)
            ):
                self.runner.perf.merge(perf_delta)
                for span in tracer.attach(obs_payload):
                    span.meta.setdefault("cell", index)
                registry.merge_snapshot(obs_payload["metrics"])
                if error is not None:
                    outcomes[index] = CellError(config=configs[index], error=error)
                else:
                    outcomes[index] = result
        return outcomes

    def run(
        self, configs: Sequence[ExperimentConfig]
    ) -> List[ExperimentResult]:
        """Like :meth:`map` but raises :class:`SweepError` on failures."""
        outcomes = self.map(configs)
        failures = [o for o in outcomes if isinstance(o, CellError)]
        if failures:
            raise SweepError(failures)
        return outcomes  # type: ignore[return-value]

    def run_one(
        self,
        config: ExperimentConfig,
        deadline: Optional[float] = None,
    ) -> Union[ExperimentResult, PartialExperimentResult]:
        """Run a single cell on the shared runner with a soft budget.

        This is the serve daemon's entry point: cells execute in-process
        so the warm runner caches (traces, baselines, selections, the
        compile memo behind them) are shared across requests.  A budget
        that expires between stages returns the
        :class:`PartialExperimentResult` instead of raising; other
        exceptions propagate to the caller.
        """
        try:
            return self.runner.run(config, deadline=deadline)
        except ExperimentDeadlineError as exc:
            return exc.partial

    def _run_serial(
        self, config: ExperimentConfig
    ) -> Union[ExperimentResult, CellError]:
        try:
            return self.runner.run(config)
        except Exception:
            return CellError(config=config, error=traceback.format_exc())
