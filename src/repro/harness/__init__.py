"""Experiment harness: pipeline, parallel sweeps, caching, reporting."""

from repro.harness.artifacts import ArtifactCache, PerfCounters, stable_key
from repro.harness.experiment import (
    ExperimentConfig,
    ExperimentResult,
    ExperimentRunner,
)
from repro.harness.figures import (
    FIGURE_METRICS,
    FigureData,
    figure4_scope_length,
    figure5_opt_merge,
    figure6_granularity,
    figure7_input_sets,
    figure8_memory_latency,
    figure8b_processor_width,
)
from repro.harness.parallel import (
    CellError,
    SweepError,
    SweepExecutor,
    resolve_jobs,
)
from repro.harness.parity import (
    PARITY_MODES,
    parity_suite,
    parity_workload,
    render_parity,
)
from repro.harness.report import fmt, render_perf, render_series, render_table
from repro.harness.tables import (
    Table1Row,
    Table2Row,
    render_table1,
    render_table2,
    table1,
    table2,
)

__all__ = [
    "ArtifactCache",
    "CellError",
    "ExperimentConfig",
    "ExperimentResult",
    "ExperimentRunner",
    "FIGURE_METRICS",
    "FigureData",
    "PARITY_MODES",
    "PerfCounters",
    "SweepError",
    "SweepExecutor",
    "Table1Row",
    "Table2Row",
    "figure4_scope_length",
    "figure5_opt_merge",
    "figure6_granularity",
    "figure7_input_sets",
    "figure8_memory_latency",
    "figure8b_processor_width",
    "fmt",
    "parity_suite",
    "parity_workload",
    "render_parity",
    "render_perf",
    "render_series",
    "render_table",
    "render_table1",
    "render_table2",
    "resolve_jobs",
    "stable_key",
    "table1",
    "table2",
]
