"""Simulation-speed benchmark: engine throughput and wall-clock.

Measures how fast the simulators simulate — million simulated
instructions per second (MIPS) — for both execution engines (the
compiled basic-block engine and the reference interpreter), plus the
end-to-end wall-clock of a cold Table 2 regeneration.  Written to
``results/BENCH_simspeed.json`` by ``python -m repro bench speed`` so
engine regressions show up in review.

Throughput is steady-state: each (simulator, engine, config) cell runs
once to warm the per-program compile cache, then takes the best of
``repeats`` timed runs.  The functional simulator is measured in three
configurations because its costs are layered — ``exec`` (no cache
model, no trace — pure architectural execution, where the compiled
engine's advantage is largest), ``cached`` (with the functional cache
hierarchy), and ``traced`` (hierarchy plus dependence-trace
collection, the configuration the selection pipeline uses).  The
timing simulator is measured in its BASELINE mode.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.engine.compiler import ENGINE_COMPILED, ENGINE_ENV, ENGINE_INTERP
from repro.engine.functional import FunctionalSimulator
from repro.timing.config import BASELINE
from repro.timing.core import TimingSimulator
from repro.workloads.suite import SUITE, build

ENGINES = (ENGINE_INTERP, ENGINE_COMPILED)

#: Functional-simulator configurations: name -> (caching, tracing).
FUNCTIONAL_CONFIGS = {
    "exec": (False, False),
    "cached": (True, False),
    "traced": (True, True),
}


def geomean(values: Sequence[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _steady_mips(run, repeats: int) -> float:
    """Best-of-``repeats`` steady-state throughput of ``run()``.

    ``run`` executes one full simulation and returns the number of
    instructions it simulated.  The warm-up call (compile, allocator
    warm-up) is not timed.
    """
    instructions = run()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        instructions = run()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    if best <= 0 or not instructions:
        return 0.0
    return instructions / best / 1e6


def measure_functional(
    workload_name: str,
    engine: str,
    config: str,
    repeats: int = 3,
    max_instructions: int = 50_000_000,
) -> float:
    """Steady-state functional-simulation MIPS for one cell."""
    caching, tracing = FUNCTIONAL_CONFIGS[config]
    workload = build(workload_name)
    sim = FunctionalSimulator(
        workload.program,
        workload.hierarchy if caching else None,
        engine=engine,
    )

    def run() -> int:
        result = sim.run(
            max_instructions=max_instructions, collect_trace=tracing
        )
        return result.instructions

    mips = _steady_mips(run, repeats)
    if sim.last_engine != engine:  # compile fallback: label honestly
        return 0.0
    return mips


def measure_timing(
    workload_name: str,
    engine: str,
    repeats: int = 3,
    max_instructions: int = 50_000_000,
) -> float:
    """Steady-state BASELINE timing-simulation MIPS for one cell."""
    workload = build(workload_name)
    sim = TimingSimulator(workload.program, workload.hierarchy, engine=engine)

    def run() -> int:
        return sim.run(BASELINE, max_instructions=max_instructions).instructions

    mips = _steady_mips(run, repeats)
    if sim.last_engine != engine:
        return 0.0
    return mips


def _table2_once(workloads: Sequence[str], engine: str) -> float:
    """Wall-clock of one cold (cache-less) Table 2 over ``workloads``."""
    from repro.harness.parallel import SweepExecutor
    from repro.harness.tables import table2

    previous = os.environ.get(ENGINE_ENV)
    os.environ[ENGINE_ENV] = engine
    try:
        executor = SweepExecutor(jobs=1, artifacts=None)
        start = time.perf_counter()
        table2(workloads=list(workloads), executor=executor)
        return time.perf_counter() - start
    finally:
        if previous is None:
            del os.environ[ENGINE_ENV]
        else:
            os.environ[ENGINE_ENV] = previous


def _table2_seconds(
    workloads: Sequence[str], rounds: int = 2
) -> Dict[str, float]:
    """Best-of-``rounds`` cold Table 2 wall-clock per engine.

    Rounds are interleaved (interp, compiled, interp, compiled, ...)
    so a load spike on a shared machine hurts both engines instead of
    whichever one happened to run during it.
    """
    best = {engine: float("inf") for engine in ENGINES}
    for _ in range(rounds):
        for engine in ENGINES:
            elapsed = _table2_once(workloads, engine)
            if elapsed < best[engine]:
                best[engine] = elapsed
    return best


def bench_speed(
    workloads: Optional[Sequence[str]] = None,
    repeats: int = 3,
    max_instructions: int = 50_000_000,
    table2: bool = True,
) -> Dict:
    """Run the full simulation-speed benchmark; returns the payload."""
    names: List[str] = list(workloads) if workloads else list(SUITE)
    functional: Dict[str, Dict[str, Dict[str, float]]] = {}
    functional_geomean: Dict[str, Dict[str, float]] = {}
    for config in FUNCTIONAL_CONFIGS:
        functional[config] = {}
        for engine in ENGINES:
            functional[config][engine] = {
                name: measure_functional(
                    name, engine, config, repeats, max_instructions
                )
                for name in names
            }
        summary = {
            engine: geomean(list(functional[config][engine].values()))
            for engine in ENGINES
        }
        interp = summary[ENGINE_INTERP]
        summary["ratio"] = (
            summary[ENGINE_COMPILED] / interp if interp else 0.0
        )
        functional_geomean[config] = summary

    timing: Dict[str, Dict[str, float]] = {}
    for engine in ENGINES:
        timing[engine] = {
            name: measure_timing(name, engine, repeats, max_instructions)
            for name in names
        }
    timing_geomean = {
        engine: geomean(list(timing[engine].values())) for engine in ENGINES
    }
    interp = timing_geomean[ENGINE_INTERP]
    timing_geomean["ratio"] = (
        timing_geomean[ENGINE_COMPILED] / interp if interp else 0.0
    )

    payload: Dict = {
        "workloads": names,
        "repeats": repeats,
        "max_instructions": max_instructions,
        "unit": "million simulated instructions per second (steady state)",
        "functional": functional,
        "functional_geomean": functional_geomean,
        "timing_baseline": timing,
        "timing_baseline_geomean": timing_geomean,
    }
    if table2:
        seconds = _table2_seconds(names)
        compiled = seconds[ENGINE_COMPILED]
        payload["table2_cold"] = {
            "workloads": names,
            "seconds": seconds,
            "speedup": (
                seconds[ENGINE_INTERP] / compiled if compiled else 0.0
            ),
        }
    return payload


def check_payload(payload: Dict) -> List[str]:
    """Regression gates over a benchmark payload; returns violations.

    * compiled functional throughput must be at least 2x the
      interpreter on the pure-execution configuration (geomean);
    * the compiled engine must not be slower than the interpreter on
      any configuration's geomean (functional or timing).
    """
    problems: List[str] = []
    exec_ratio = payload["functional_geomean"]["exec"]["ratio"]
    if exec_ratio < 2.0:
        problems.append(
            f"functional exec speedup {exec_ratio:.2f}x < 2.0x"
        )
    for config, summary in payload["functional_geomean"].items():
        if summary["ratio"] < 1.0:
            problems.append(
                f"functional {config}: compiled slower than interpreter "
                f"({summary['ratio']:.2f}x)"
            )
    timing_ratio = payload["timing_baseline_geomean"]["ratio"]
    if timing_ratio < 1.0:
        problems.append(
            f"timing baseline: compiled slower than interpreter "
            f"({timing_ratio:.2f}x)"
        )
    return problems


def render(payload: Dict) -> str:
    """Fixed-width summary of a benchmark payload."""
    title = "Simulation speed (MIPS, steady state)"
    lines = [title, "=" * len(title)]
    for config, summary in payload["functional_geomean"].items():
        lines.append(
            f"functional/{config:<7} interp {summary[ENGINE_INTERP]:6.2f}  "
            f"compiled {summary[ENGINE_COMPILED]:6.2f}  "
            f"ratio {summary['ratio']:5.2f}x"
        )
    summary = payload["timing_baseline_geomean"]
    lines.append(
        f"timing/baseline    interp {summary[ENGINE_INTERP]:6.2f}  "
        f"compiled {summary[ENGINE_COMPILED]:6.2f}  "
        f"ratio {summary['ratio']:5.2f}x"
    )
    table = payload.get("table2_cold")
    if table:
        lines.append(
            f"table2 cold        interp "
            f"{table['seconds'][ENGINE_INTERP]:6.1f}s  compiled "
            f"{table['seconds'][ENGINE_COMPILED]:6.1f}s  "
            f"speedup {table['speedup']:5.2f}x"
        )
    return "\n".join(lines)


def write_results(payload: Dict, path) -> None:
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
