"""Simulation-speed benchmark: engine throughput and wall-clock.

Measures how fast the simulators simulate — million simulated
instructions per second (MIPS) — for all three execution engines (the
compiled basic-block engine, the tiered engine, and the reference
interpreter), plus the end-to-end wall-clock of a cold Table 2
regeneration.  Written to ``results/BENCH_simspeed.json`` by
``python -m repro bench speed`` so engine regressions show up in
review.

Throughput is steady-state: each (simulator, engine, config) cell runs
once to warm the per-program compile cache, then takes the best of
``repeats`` timed runs.  The functional simulator is measured in three
configurations because its costs are layered — ``exec`` (no cache
model, no trace — pure architectural execution, where the compiled
engine's advantage is largest), ``cached`` (with the functional cache
hierarchy), and ``traced`` (hierarchy plus dependence-trace
collection, the configuration the selection pipeline uses).  The
timing simulator is measured in its BASELINE mode.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.compiler import (
    ENGINE_COMPILED,
    ENGINE_ENV,
    ENGINE_INTERP,
    ENGINE_TIERED,
)
from repro.engine.functional import FunctionalSimulator
from repro.timing.config import BASELINE
from repro.timing.core import TimingSimulator
from repro.workloads.suite import SUITE, build

ENGINES = (ENGINE_INTERP, ENGINE_COMPILED, ENGINE_TIERED)

#: Functional-simulator configurations: name -> (caching, tracing).
FUNCTIONAL_CONFIGS = {
    "exec": (False, False),
    "cached": (True, False),
    "traced": (True, True),
}


def geomean(values: Sequence[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _steady_mips(run, repeats: int) -> float:
    """Best-of-``repeats`` steady-state throughput of ``run()``.

    ``run`` executes one full simulation and returns the number of
    instructions it simulated.  The warm-up call (compile, allocator
    warm-up) is not timed.
    """
    instructions = run()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        instructions = run()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    if best <= 0 or not instructions:
        return 0.0
    return instructions / best / 1e6


def measure_functional(
    workload_name: str,
    engine: str,
    config: str,
    repeats: int = 3,
    max_instructions: int = 50_000_000,
) -> float:
    """Steady-state functional-simulation MIPS for one cell."""
    caching, tracing = FUNCTIONAL_CONFIGS[config]
    workload = build(workload_name)
    sim = FunctionalSimulator(
        workload.program,
        workload.hierarchy if caching else None,
        engine=engine,
    )

    def run() -> int:
        result = sim.run(
            max_instructions=max_instructions, collect_trace=tracing
        )
        return result.instructions

    mips = _steady_mips(run, repeats)
    if sim.last_engine != engine:  # compile fallback: label honestly
        return 0.0
    return mips


def measure_timing(
    workload_name: str,
    engine: str,
    repeats: int = 3,
    max_instructions: int = 50_000_000,
) -> float:
    """Steady-state BASELINE timing-simulation MIPS for one cell."""
    workload = build(workload_name)
    sim = TimingSimulator(workload.program, workload.hierarchy, engine=engine)

    def run() -> int:
        return sim.run(BASELINE, max_instructions=max_instructions).instructions

    mips = _steady_mips(run, repeats)
    if sim.last_engine != engine:
        return 0.0
    return mips


#: Span names of the pipeline stages an execution engine can affect.
#: Everything else in a Table 2 run — slice-tree construction,
#: candidate selection, p-thread verification — is engine-independent
#: analysis and typically dominates the wall-clock.
_SIM_STAGES = frozenset({"trace", "baseline", "timing"})


def _stage_seconds(span: Dict, names: frozenset) -> float:
    total = 0.0
    if span.get("name") in names:
        total += span.get("duration", 0.0)
    for child in span.get("children", ()):
        total += _stage_seconds(child, names)
    return total


def _table2_once(workloads: Sequence[str], engine: str) -> Tuple[float, float]:
    """One cold (cache-less) Table 2 over ``workloads``.

    Returns ``(total_seconds, sim_seconds)``: the end-to-end
    wall-clock and the portion spent in the simulation stages
    (:data:`_SIM_STAGES`, read from a private span tracer).  Cold
    means *fully* cold: the harness artifact cache is bypassed and the
    codegen cache — persistent and in-process — is cleared, so every
    engine pays its real start-up cost.
    """
    from repro.engine.codecache import reset_code_cache
    from repro.harness.parallel import SweepExecutor
    from repro.harness.tables import table2
    from repro.obs import Tracer, get_tracer, set_tracer

    previous = {
        name: os.environ.get(name) for name in (ENGINE_ENV, "REPRO_CACHE_DIR")
    }
    os.environ[ENGINE_ENV] = engine
    os.environ["REPRO_CACHE_DIR"] = "off"
    reset_code_cache()
    outer_tracer = get_tracer()
    tracer = Tracer()
    set_tracer(tracer)
    try:
        executor = SweepExecutor(jobs=1, artifacts=None)
        start = time.perf_counter()
        table2(workloads=list(workloads), executor=executor)
        total = time.perf_counter() - start
    finally:
        set_tracer(outer_tracer)
        for name, value in previous.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        reset_code_cache()
    sim = sum(
        _stage_seconds(span, _SIM_STAGES)
        for span in tracer.to_dict()["spans"]
    )
    return total, sim


def _table2_seconds(
    workloads: Sequence[str], rounds: int = 2
) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Best-of-``rounds`` cold Table 2 per engine: totals + sim stages.

    Rounds are interleaved (interp, compiled, tiered, interp, ...) so
    a load spike on a shared machine hurts every engine instead of
    whichever one happened to run during it.  The sim-stage seconds
    are taken from the same round as each engine's best total, so the
    two numbers describe one run.
    """
    best = {engine: float("inf") for engine in ENGINES}
    best_sim = {engine: float("inf") for engine in ENGINES}
    for _ in range(rounds):
        for engine in ENGINES:
            elapsed, sim = _table2_once(workloads, engine)
            if elapsed < best[engine]:
                best[engine] = elapsed
                best_sim[engine] = sim
    return best, best_sim


def bench_speed(
    workloads: Optional[Sequence[str]] = None,
    repeats: int = 3,
    max_instructions: int = 50_000_000,
    table2: bool = True,
) -> Dict:
    """Run the full simulation-speed benchmark; returns the payload."""
    names: List[str] = list(workloads) if workloads else list(SUITE)
    functional: Dict[str, Dict[str, Dict[str, float]]] = {}
    functional_geomean: Dict[str, Dict[str, float]] = {}
    for config in FUNCTIONAL_CONFIGS:
        functional[config] = {}
        for engine in ENGINES:
            functional[config][engine] = {
                name: measure_functional(
                    name, engine, config, repeats, max_instructions
                )
                for name in names
            }
        summary = {
            engine: geomean(list(functional[config][engine].values()))
            for engine in ENGINES
        }
        interp = summary[ENGINE_INTERP]
        summary["ratio"] = (
            summary[ENGINE_COMPILED] / interp if interp else 0.0
        )
        summary["tiered_ratio"] = (
            summary[ENGINE_TIERED] / interp if interp else 0.0
        )
        functional_geomean[config] = summary

    timing: Dict[str, Dict[str, float]] = {}
    for engine in ENGINES:
        timing[engine] = {
            name: measure_timing(name, engine, repeats, max_instructions)
            for name in names
        }
    timing_geomean = {
        engine: geomean(list(timing[engine].values())) for engine in ENGINES
    }
    interp = timing_geomean[ENGINE_INTERP]
    timing_geomean["ratio"] = (
        timing_geomean[ENGINE_COMPILED] / interp if interp else 0.0
    )
    timing_geomean["tiered_ratio"] = (
        timing_geomean[ENGINE_TIERED] / interp if interp else 0.0
    )

    payload: Dict = {
        "workloads": names,
        "repeats": repeats,
        "max_instructions": max_instructions,
        "unit": "million simulated instructions per second (steady state)",
        "functional": functional,
        "functional_geomean": functional_geomean,
        "timing_baseline": timing,
        "timing_baseline_geomean": timing_geomean,
    }
    if table2:
        seconds, sim_seconds = _table2_seconds(names)
        compiled = seconds[ENGINE_COMPILED]
        tiered = seconds[ENGINE_TIERED]
        sim_compiled = sim_seconds[ENGINE_COMPILED]
        sim_tiered = sim_seconds[ENGINE_TIERED]
        payload["table2_cold"] = {
            "workloads": names,
            "seconds": seconds,
            "sim_seconds": sim_seconds,
            "speedup": (
                seconds[ENGINE_INTERP] / compiled if compiled else 0.0
            ),
            "tiered_speedup": (
                seconds[ENGINE_INTERP] / tiered if tiered else 0.0
            ),
            "sim_speedup": (
                sim_seconds[ENGINE_INTERP] / sim_compiled
                if sim_compiled
                else 0.0
            ),
            "tiered_sim_speedup": (
                sim_seconds[ENGINE_INTERP] / sim_tiered
                if sim_tiered
                else 0.0
            ),
        }
    return payload


def check_payload(payload: Dict) -> List[str]:
    """Regression gates over a benchmark payload; returns violations.

    * compiled functional throughput must be at least 2x the
      interpreter on the pure-execution configuration (geomean);
    * the vectorized traced path must hold at least 1.5x on the
      traced configuration (geomean);
    * neither the compiled nor the tiered engine may be slower than
      the interpreter on any configuration's geomean (functional or
      timing);
    * when the cold Table 2 measurement is present, the tiered engine
      must never lose the end-to-end wall-clock to the interpreter —
      the cold-start gate: tiering plus the compile memo must erase
      the compile-everything-first regression (the PR 3 compiled
      engine lost this comparison at 0.90x).  No larger multiple is
      enforced, deliberately: a Table 2 run is dominated by
      engine-independent analysis (slice trees, selection, p-thread
      verification), and its simulation stages are short cold runs
      where tiering's whole job is to not pay compile cost — measured
      sim-stage ratios hover near 1.0x with high variance, so a floor
      above parity would gate on noise.  ``sim_seconds`` /
      ``sim_speedup`` stay in the payload as diagnostics.
    """
    problems: List[str] = []
    exec_ratio = payload["functional_geomean"]["exec"]["ratio"]
    if exec_ratio < 2.0:
        problems.append(
            f"functional exec speedup {exec_ratio:.2f}x < 2.0x"
        )
    traced_ratio = payload["functional_geomean"]["traced"]["ratio"]
    if traced_ratio < 1.5:
        problems.append(
            f"functional traced speedup {traced_ratio:.2f}x < 1.5x"
        )
    for config, summary in payload["functional_geomean"].items():
        if summary["ratio"] < 1.0:
            problems.append(
                f"functional {config}: compiled slower than interpreter "
                f"({summary['ratio']:.2f}x)"
            )
        if summary["tiered_ratio"] < 1.0:
            problems.append(
                f"functional {config}: tiered slower than interpreter "
                f"({summary['tiered_ratio']:.2f}x)"
            )
    timing_summary = payload["timing_baseline_geomean"]
    if timing_summary["ratio"] < 1.0:
        problems.append(
            f"timing baseline: compiled slower than interpreter "
            f"({timing_summary['ratio']:.2f}x)"
        )
    if timing_summary["tiered_ratio"] < 1.0:
        problems.append(
            f"timing baseline: tiered slower than interpreter "
            f"({timing_summary['tiered_ratio']:.2f}x)"
        )
    table = payload.get("table2_cold")
    if table is not None and table["tiered_speedup"] < 1.0:
        problems.append(
            f"table2 cold: tiered slower than interpreter end to "
            f"end ({table['tiered_speedup']:.2f}x)"
        )
    return problems


def render(payload: Dict) -> str:
    """Fixed-width summary of a benchmark payload."""
    title = "Simulation speed (MIPS, steady state)"
    lines = [title, "=" * len(title)]
    for config, summary in payload["functional_geomean"].items():
        lines.append(
            f"functional/{config:<7} interp {summary[ENGINE_INTERP]:6.2f}  "
            f"compiled {summary[ENGINE_COMPILED]:6.2f} "
            f"({summary['ratio']:.2f}x)  "
            f"tiered {summary[ENGINE_TIERED]:6.2f} "
            f"({summary['tiered_ratio']:.2f}x)"
        )
    summary = payload["timing_baseline_geomean"]
    lines.append(
        f"timing/baseline    interp {summary[ENGINE_INTERP]:6.2f}  "
        f"compiled {summary[ENGINE_COMPILED]:6.2f} "
        f"({summary['ratio']:.2f}x)  "
        f"tiered {summary[ENGINE_TIERED]:6.2f} "
        f"({summary['tiered_ratio']:.2f}x)"
    )
    table = payload.get("table2_cold")
    if table:
        lines.append(
            f"table2 cold        interp "
            f"{table['seconds'][ENGINE_INTERP]:6.1f}s  compiled "
            f"{table['seconds'][ENGINE_COMPILED]:6.1f}s "
            f"({table['speedup']:.2f}x)  tiered "
            f"{table['seconds'][ENGINE_TIERED]:6.1f}s "
            f"({table['tiered_speedup']:.2f}x)"
        )
        lines.append(
            f"table2 cold (sim)  interp "
            f"{table['sim_seconds'][ENGINE_INTERP]:6.1f}s  compiled "
            f"{table['sim_seconds'][ENGINE_COMPILED]:6.1f}s "
            f"({table['sim_speedup']:.2f}x)  tiered "
            f"{table['sim_seconds'][ENGINE_TIERED]:6.1f}s "
            f"({table['tiered_sim_speedup']:.2f}x)"
        )
    return "\n".join(lines)


def write_results(payload: Dict, path) -> None:
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
