"""Cross-model parity sweep over bundled workloads.

Drives the dual timing models (:mod:`repro.timing.core` vs
:mod:`repro.timing.eventsim`) through the pinned contract of
:mod:`repro.validation.parity` for every requested workload, in the
baseline and pre-execution simulation modes.  The p-thread selection
uses the same fixed-IPC shortcut as the lint/verify-codegen drivers: a
structurally representative selection is what parity needs, not the
model's tuned one.

Both models run under one shared instruction cap so the committed
state being compared is well-defined regardless of workload length,
and the sweep stays cheap enough for the CI lint job.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.timing.config import BASELINE, PRE_EXECUTION, SimMode
from repro.validation.parity import ParityReport, ParityTolerance, run_parity

#: Modes every workload is compared under: the unassisted machine and
#: the full pre-execution machine (launch + execute + steal + hint).
PARITY_MODES: Sequence[SimMode] = (BASELINE, PRE_EXECUTION)

#: Shared per-run instruction cap (see module docstring).
DEFAULT_MAX_INSTRUCTIONS = 120_000


def parity_workload(
    name: str,
    input_name: str = "train",
    engine: Optional[str] = None,
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    tolerance: Optional[ParityTolerance] = None,
) -> List[ParityReport]:
    """Parity reports for one workload, one per mode in order."""
    from repro.engine import run_program
    from repro.model import ModelParams, SelectionConstraints
    from repro.selection import select_pthreads
    from repro.workloads import build

    workload = build(name, input_name)
    trace = run_program(workload.program, workload.hierarchy)
    params = ModelParams(
        bw_seq=8,
        unassisted_ipc=1.0,
        mem_latency=workload.hierarchy.mem_latency,
        load_latency=workload.hierarchy.l1.hit_latency,
    )
    selection = select_pthreads(
        workload.program, trace.trace, params, SelectionConstraints()
    )
    reports = []
    for mode in PARITY_MODES:
        reports.append(
            run_parity(
                workload.program,
                workload.hierarchy,
                mode,
                pthreads=selection.pthreads if mode.launch else None,
                engine=engine,
                max_instructions=max_instructions,
                workload=name,
                tolerance=tolerance,
            )
        )
    return reports


def parity_suite(
    names: Sequence[str],
    input_name: str = "train",
    engine: Optional[str] = None,
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    tolerance: Optional[ParityTolerance] = None,
) -> List[ParityReport]:
    """Parity reports for many workloads, flattened in suite order."""
    reports: List[ParityReport] = []
    for name in names:
        reports.extend(
            parity_workload(
                name,
                input_name=input_name,
                engine=engine,
                max_instructions=max_instructions,
                tolerance=tolerance,
            )
        )
    return reports


def render_parity(reports: Sequence[ParityReport]) -> str:
    """Fixed-width sweep table plus detail lines for divergences."""
    lines = []
    width = max((len(r.workload) for r in reports), default=8)
    for report in reports:
        status = "ok"
        first = report.first_divergence
        if first is not None:
            status = f"DIVERGED at {first.name}"
        lines.append(
            f"{report.workload:<{width}} {report.mode:<10} "
            f"engine={report.engine:<8} checks={len(report.checks):<3} "
            f"{status}"
        )
        if first is not None:
            lines.append(f"    {first.render()}")
    diverged = sum(1 for r in reports if not r.ok)
    lines.append(
        f"\n{len(reports)} comparison(s), {diverged} divergence(s)"
    )
    return "\n".join(lines)
