"""Regeneration of the paper's Figures 4–8 (plus the width study).

Every figure function returns ``FigureData``: per benchmark, per bar, a
set of metrics matching the paper's chart vocabulary — L2 miss coverage
and full coverage (percent of baseline misses), instruction overhead
(p-thread instructions per retired instruction), average p-thread
length, and percent speedup over the common base configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from repro.harness.experiment import (
    ExperimentConfig,
    ExperimentResult,
    ExperimentRunner,
)

if TYPE_CHECKING:  # import cycle: parallel imports experiment only
    from repro.harness.parallel import SweepExecutor
from repro.harness.report import render_series
from repro.model.params import SelectionConstraints
from repro.timing.config import MachineConfig
from repro.workloads.common import SUITE_HIERARCHY
from repro.workloads.suite import SUITE

#: Metrics each figure reports, in the paper's chart order.
FIGURE_METRICS = (
    "coverage_pct",
    "full_coverage_pct",
    "overhead_pct",
    "pthread_len",
    "speedup_pct",
)


@dataclass
class FigureData:
    """One regenerated figure."""

    title: str
    bar_labels: List[str]
    #: data[benchmark][metric][bar_index]
    data: Dict[str, Dict[str, List[float]]] = field(default_factory=dict)
    results: Dict[str, List[ExperimentResult]] = field(default_factory=dict)

    def add(self, benchmark: str, result: ExperimentResult) -> None:
        row = result.summary_row()
        metrics = self.data.setdefault(
            benchmark, {name: [] for name in row}
        )
        for name, value in row.items():
            metrics[name].append(value)
        self.results.setdefault(benchmark, []).append(result)

    def render(self) -> str:
        return render_series(
            self.title, self.bar_labels, FIGURE_METRICS, self.data
        )

    def series(self, benchmark: str, metric: str) -> List[float]:
        return self.data[benchmark][metric]


def _resolve_runner(
    runner: Optional[ExperimentRunner],
    executor: Optional["SweepExecutor"],
) -> ExperimentRunner:
    if runner is not None:
        return runner
    if executor is not None:
        return executor.runner
    return ExperimentRunner()


def _sweep(
    title: str,
    bar_labels: Sequence[str],
    config_for: Callable[[str, int], ExperimentConfig],
    runner: Optional[ExperimentRunner],
    workloads: Sequence[str],
    executor: Optional["SweepExecutor"] = None,
) -> FigureData:
    """Run a (workload x bar) sweep, serially or through an executor.

    With an executor, all cells are materialized up front and fanned
    out; results are folded back in deterministic (workload, bar)
    order, so the rendered figure is byte-identical to a serial run.  A
    failed cell raises :class:`~repro.harness.parallel.SweepError` with
    its config and traceback.
    """
    runner = _resolve_runner(runner, executor)
    figure = FigureData(title=title, bar_labels=list(bar_labels))
    cells = [
        (name, config_for(name, bar_index))
        for name in workloads
        for bar_index in range(len(bar_labels))
    ]
    if executor is not None:
        results = executor.run([config for _, config in cells])
        for (name, _), result in zip(cells, results):
            figure.add(name, result)
    else:
        for name, config in cells:
            figure.add(name, runner.run(config))
    return figure


def figure4_scope_length(
    runner: Optional[ExperimentRunner] = None,
    workloads: Sequence[str] = tuple(SUITE),
    combos: Sequence = ((256, 8), (512, 16), (1024, 32), (2048, 64)),
    executor: Optional["SweepExecutor"] = None,
) -> FigureData:
    """Figure 4: combined impact of slicing scope and p-thread length."""

    def config_for(name: str, bar: int) -> ExperimentConfig:
        scope, length = combos[bar]
        return ExperimentConfig(
            workload=name,
            constraints=SelectionConstraints(
                scope=scope, max_pthread_length=length
            ),
        )

    return _sweep(
        "Figure 4: slicing scope x p-thread length",
        [f"{scope}/{length}" for scope, length in combos],
        config_for,
        runner,
        workloads,
        executor=executor,
    )


def figure5_opt_merge(
    runner: Optional[ExperimentRunner] = None,
    workloads: Sequence[str] = tuple(SUITE),
    executor: Optional["SweepExecutor"] = None,
) -> FigureData:
    """Figure 5: impact of p-thread optimization and merging."""
    variants = [
        ("none", False, False),
        ("opt", True, False),
        ("merge", False, True),
        ("opt+merge", True, True),
    ]

    def config_for(name: str, bar: int) -> ExperimentConfig:
        _, optimize, merge = variants[bar]
        return ExperimentConfig(
            workload=name,
            constraints=SelectionConstraints(optimize=optimize, merge=merge),
        )

    return _sweep(
        "Figure 5: p-thread optimization and merging",
        [label for label, _, _ in variants],
        config_for,
        runner,
        workloads,
        executor=executor,
    )


def figure6_granularity(
    runner: Optional[ExperimentRunner] = None,
    workloads: Sequence[str] = tuple(SUITE),
    divisors: Sequence[int] = (1, 8, 32, 128),
    executor: Optional["SweepExecutor"] = None,
) -> FigureData:
    """Figure 6: p-thread selection granularity.

    The paper's regions are 100M/10M/1M instructions of billion-scale
    runs; we scale proportionally — the whole run divided by 8, 32 and
    128 — preserving the regions-per-run ratios.
    """
    runner = _resolve_runner(runner, executor)

    def config_for(name: str, bar: int) -> ExperimentConfig:
        divisor = divisors[bar]
        if divisor == 1:
            return ExperimentConfig(workload=name)
        workload = runner.workload(name, "train")
        trace_len = len(runner.trace(workload).trace)
        return ExperimentConfig(
            workload=name, granularity=max(1000, trace_len // divisor)
        )

    return _sweep(
        "Figure 6: selection granularity",
        ["run/" + str(d) if d > 1 else "full run" for d in divisors],
        config_for,
        runner,
        workloads,
        executor=executor,
    )


def figure7_input_sets(
    runner: Optional[ExperimentRunner] = None,
    workloads: Sequence[str] = tuple(SUITE),
    profile_fraction: float = 0.15,
    executor: Optional["SweepExecutor"] = None,
) -> FigureData:
    """Figure 7: p-thread selection input data set.

    Scenarios: *perfect* (select on the measured run itself), *dynamic*
    (select on a small leading profile phase of the same run — the JIT
    scenario), and *static* (select on the test input — the
    profile-driven static compiler scenario).
    """
    runner = _resolve_runner(runner, executor)

    def config_for(name: str, bar: int) -> ExperimentConfig:
        if bar == 0:
            return ExperimentConfig(workload=name)
        if bar == 1:
            workload = runner.workload(name, "train")
            trace_len = len(runner.trace(workload).trace)
            return ExperimentConfig(
                workload=name,
                selection_prefix=max(2000, int(trace_len * profile_fraction)),
            )
        return ExperimentConfig(workload=name, selection_input="test")

    return _sweep(
        "Figure 7: selection input data set",
        ["perfect", "dynamic", "static(test)"],
        config_for,
        runner,
        workloads,
        executor=executor,
    )


def figure8_memory_latency(
    runner: Optional[ExperimentRunner] = None,
    workloads: Sequence[str] = tuple(SUITE),
    latencies: Sequence[int] = (70, 140),
    executor: Optional["SweepExecutor"] = None,
) -> FigureData:
    """Figure 8: response to memory-latency variation (cross-validation).

    Four bars per benchmark: simulated latency L2 with p-threads chosen
    for L1 (cross) and L2 (self), then simulated L1 with p-threads for
    L1 (self) and L2 (cross) — the paper's pXX(tYY) notation.
    """
    low, high = latencies
    cells = [  # (simulated, assumed)
        (high, low),
        (high, high),
        (low, low),
        (low, high),
    ]

    def config_for(name: str, bar: int) -> ExperimentConfig:
        simulated, assumed = cells[bar]
        return ExperimentConfig(
            workload=name,
            hierarchy=SUITE_HIERARCHY.with_mem_latency(simulated),
            model_mem_latency=assumed,
        )

    return _sweep(
        "Figure 8: memory latency cross-validation",
        [f"p{sim}(t{assume})" for sim, assume in cells],
        config_for,
        runner,
        workloads,
        executor=executor,
    )


def figure8b_processor_width(
    runner: Optional[ExperimentRunner] = None,
    workloads: Sequence[str] = tuple(SUITE),
    widths: Sequence[int] = (4, 8),
    executor: Optional["SweepExecutor"] = None,
) -> FigureData:
    """Processor-width cross-validation (paper §4.5, results-similar).

    Same methodology as Figure 8 with sequencing width as the varied
    parameter: pW(tV) simulates width W with p-threads selected
    assuming width V.
    """
    narrow, wide = widths
    cells = [
        (wide, narrow),
        (wide, wide),
        (narrow, narrow),
        (narrow, wide),
    ]

    def config_for(name: str, bar: int) -> ExperimentConfig:
        simulated, assumed = cells[bar]
        return ExperimentConfig(
            workload=name,
            machine=MachineConfig(bw_seq=simulated),
            model_bw_seq=assumed,
        )

    return _sweep(
        "Figure 8b: processor width cross-validation",
        [f"p{sim}(t{assume})" for sim, assume in cells],
        config_for,
        runner,
        workloads,
        executor=executor,
    )
