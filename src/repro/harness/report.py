"""Plain-text rendering of tables and figure series.

The paper's figures are bar charts; the harness prints the same data as
fixed-width tables — one row per benchmark, one column group per bar —
so every number is directly comparable with the published chart.
"""

from __future__ import annotations

from typing import Any, List, Mapping, Optional, Sequence


def fmt(value: Any, precision: int = 2) -> str:
    """Human formatting: floats rounded, ints plain, None blank."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
    precision: int = 2,
) -> str:
    """Render a fixed-width table with right-aligned numeric columns."""
    text_rows = [[fmt(cell, precision) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(
            cell.rjust(widths[i]) if i else cell.ljust(widths[i])
            for i, cell in enumerate(cells)
        )

    out: List[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in text_rows)
    return "\n".join(out)


def render_perf(perf, title: str = "Harness performance") -> str:
    """Render a :class:`~repro.harness.artifacts.PerfCounters` report.

    One row per pipeline stage / cache kind: compute seconds, then how
    the requests for that artifact were satisfied (computed fresh,
    in-memory hit, persistent-cache hit), then simulation throughput
    (million simulated instructions per compute-second) for stages
    that record instruction counts.
    """
    stages = sorted(
        set(perf.stage_seconds)
        | set(perf.hits)
        | set(perf.disk_hits)
        | set(perf.misses)
    )

    def mips(instructions, seconds):
        if not instructions or seconds <= 0:
            return ""
        return f"{instructions / seconds / 1e6:.2f}"

    rows = [
        [
            stage,
            perf.stage_seconds.get(stage, 0.0),
            perf.misses.get(stage, 0),
            perf.hits.get(stage, 0),
            perf.disk_hits.get(stage, 0),
            mips(
                perf.instructions.get(stage, 0),
                perf.stage_seconds.get(stage, 0.0),
            ),
        ]
        for stage in stages
    ]
    rows.append(
        [
            "total",
            sum(perf.stage_seconds.values()),
            sum(perf.misses.values()),
            sum(perf.hits.values()),
            sum(perf.disk_hits.values()),
            mips(
                sum(perf.instructions.values()),
                sum(perf.stage_seconds.values()),
            ),
        ]
    )
    return render_table(
        ["stage", "compute(s)", "computed", "mem hits", "disk hits", "MIPS"],
        rows,
        title=title,
        precision=3,
    )


def publish_harness_metrics(perf, artifacts=None, registry=None):
    """Bridge harness telemetry into the metrics registry.

    Folds a :class:`~repro.harness.artifacts.PerfCounters` (and, when
    present, the :class:`~repro.harness.artifacts.ArtifactCache` size
    gauges) into ``registry`` — the step that turns the harness's
    accumulation objects into the single exportable snapshot.  With no
    persistent cache the size gauges are registered at zero so the
    metric names stay stable either way.  Returns the registry.
    """
    from repro.obs import get_registry

    registry = registry if registry is not None else get_registry()
    perf.publish_metrics(registry)
    if artifacts is not None:
        artifacts.publish_metrics(registry)
    else:
        registry.gauge("harness.cache.entries").set(0)
        registry.gauge("harness.cache.bytes").set(0)
    return registry


def render_series(
    title: str,
    group_labels: Sequence[str],
    metric_names: Sequence[str],
    data: Mapping[str, Mapping[str, Sequence[float]]],
    precision: int = 2,
) -> str:
    """Render figure-style data: per benchmark, one row per metric.

    Args:
        title: figure title.
        group_labels: the bar labels within each group (e.g. the four
            scope/length configurations).
        metric_names: metrics to print (keys into the inner mapping).
        data: ``data[benchmark][metric][bar_index]``.
    """
    headers = ["benchmark / metric"] + list(group_labels)
    rows: List[List[Any]] = []
    for benchmark, metrics in data.items():
        for metric in metric_names:
            series = metrics.get(metric)
            if series is None:
                continue
            rows.append([f"{benchmark} {metric}"] + list(series))
        rows.append([""] * (len(group_labels) + 1))
    if rows and all(cell == "" for cell in rows[-1]):
        rows.pop()
    return render_table(headers, rows, title=title, precision=precision)
