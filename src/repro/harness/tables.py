"""Regeneration of the paper's Tables 1 and 2.

Table 1 characterizes the benchmark suite (instructions, loads, L2
misses, baseline IPC, perfect-L2 IPC).  Table 2 is the primary result:
pre-execution performance plus the framework's diagnostic predictions
side by side with the simulated measurements — the paper's model
validation methodology (§4.2/§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.harness.experiment import ExperimentConfig, ExperimentRunner
from repro.harness.report import render_table
from repro.timing.config import MachineConfig
from repro.workloads.suite import SUITE

if TYPE_CHECKING:  # import cycle: parallel imports experiment only
    from repro.harness.parallel import SweepExecutor


@dataclass
class Table1Row:
    """One benchmark's characterization."""

    name: str
    instructions: int
    loads: int
    l2_misses: int
    ipc: float
    perfect_l2_ipc: float


def table1(
    runner: Optional[ExperimentRunner] = None,
    workloads: Sequence[str] = tuple(SUITE),
    machine: Optional[MachineConfig] = None,
    executor: Optional["SweepExecutor"] = None,
) -> List[Table1Row]:
    """Compute Table 1 (benchmark characterization).

    Table 1 only needs the shared pipeline stages (trace, baseline,
    perfect-L2), so it runs on the runner directly; an ``executor`` just
    donates its runner (and persistent cache).
    """
    if runner is None and executor is not None:
        runner = executor.runner
    runner = runner or ExperimentRunner()
    machine = machine or MachineConfig()
    rows: List[Table1Row] = []
    for name in workloads:
        workload = runner.workload(name, "train")
        functional = runner.trace(workload)
        base = runner.baseline(workload, machine)
        perfect = runner.perfect_l2(workload, machine)
        rows.append(
            Table1Row(
                name=name,
                instructions=functional.instructions,
                loads=functional.loads,
                l2_misses=functional.l2_misses,
                ipc=base.ipc,
                perfect_l2_ipc=perfect.ipc,
            )
        )
    return rows


def render_table1(rows: Sequence[Table1Row]) -> str:
    return render_table(
        ["benchmark", "insns(K)", "loads(K)", "L2 miss(K)", "IPC", "perfect-L2 IPC"],
        [
            [
                row.name,
                row.instructions / 1000.0,
                row.loads / 1000.0,
                row.l2_misses / 1000.0,
                row.ipc,
                row.perfect_l2_ipc,
            ]
            for row in rows
        ],
        title="Table 1: benchmark characterization",
    )


@dataclass
class Table2Row:
    """One benchmark's main results and model validation."""

    name: str
    base_ipc: float
    # measured (Pre-exec section)
    preexec_ipc: float
    launches: int
    insns_per_pthread: float
    covered_pct: float
    full_covered_pct: float
    overhead_execute_ipc: float
    overhead_sequence_ipc: float
    latency_only_ipc: float
    # predicted (Predict section)
    pred_ipc: float
    pred_launches: int
    pred_insns_per_pthread: float
    pred_covered_pct: float
    pred_full_covered_pct: float
    pred_overhead_ipc: float
    pred_latency_ipc: float
    speedup_pct: float = field(init=False)

    def __post_init__(self) -> None:
        self.speedup_pct = (
            100.0 * (self.preexec_ipc / self.base_ipc - 1.0)
            if self.base_ipc
            else 0.0
        )


def table2(
    runner: Optional[ExperimentRunner] = None,
    workloads: Sequence[str] = tuple(SUITE),
    machine: Optional[MachineConfig] = None,
    executor: Optional["SweepExecutor"] = None,
) -> List[Table2Row]:
    """Compute Table 2 (primary results + model validation).

    With an ``executor``, the per-benchmark cells fan out in parallel;
    rows always come back in ``workloads`` order.
    """
    if runner is None and executor is not None:
        runner = executor.runner
    runner = runner or ExperimentRunner()
    machine = machine or MachineConfig()
    configs = [
        ExperimentConfig(workload=name, machine=machine, validate=True)
        for name in workloads
    ]
    if executor is not None:
        results = executor.run(configs)
    else:
        results = [runner.run(config) for config in configs]
    rows: List[Table2Row] = []
    for name, result in zip(workloads, results):
        stats = result.preexec
        prediction = result.selection.prediction
        rows.append(
            Table2Row(
                name=name,
                base_ipc=result.baseline.ipc,
                preexec_ipc=stats.ipc,
                launches=stats.pthread_launches,
                insns_per_pthread=stats.avg_pthread_length,
                covered_pct=100.0 * stats.coverage_fraction,
                full_covered_pct=100.0 * stats.full_coverage_fraction,
                overhead_execute_ipc=result.validation["overhead_execute"].ipc,
                overhead_sequence_ipc=result.validation["overhead_sequence"].ipc,
                latency_only_ipc=result.validation["latency_only"].ipc,
                pred_ipc=prediction.predicted_ipc,
                pred_launches=prediction.launches,
                pred_insns_per_pthread=prediction.avg_pthread_length,
                pred_covered_pct=100.0 * prediction.coverage_fraction,
                pred_full_covered_pct=100.0 * prediction.full_coverage_fraction,
                pred_overhead_ipc=prediction.predicted_overhead_ipc,
                pred_latency_ipc=prediction.predicted_latency_ipc,
            )
        )
    return rows


def render_table2(rows: Sequence[Table2Row]) -> str:
    measured = render_table(
        [
            "benchmark",
            "base IPC",
            "IPC",
            "speedup%",
            "launches",
            "insns/pt",
            "cov%",
            "full%",
            "OH-ex IPC",
            "OH-seq IPC",
            "LT IPC",
        ],
        [
            [
                row.name,
                row.base_ipc,
                row.preexec_ipc,
                row.speedup_pct,
                row.launches,
                row.insns_per_pthread,
                row.covered_pct,
                row.full_covered_pct,
                row.overhead_execute_ipc,
                row.overhead_sequence_ipc,
                row.latency_only_ipc,
            ]
            for row in rows
        ],
        title="Table 2 (measured): pre-execution results",
    )
    predicted = render_table(
        [
            "benchmark",
            "IPC",
            "launches",
            "insns/pt",
            "cov%",
            "full%",
            "OH IPC",
            "LT IPC",
        ],
        [
            [
                row.name,
                row.pred_ipc,
                row.pred_launches,
                row.pred_insns_per_pthread,
                row.pred_covered_pct,
                row.pred_full_covered_pct,
                row.pred_overhead_ipc,
                row.pred_latency_ipc,
            ]
            for row in rows
        ],
        title="Table 2 (predicted): framework diagnostics",
    )
    return measured + "\n\n" + predicted
