"""End-to-end experiment pipeline.

One :class:`ExperimentRunner` reproduces the paper's tool flow:

1. functional cache simulation → dynamic trace with miss levels
   (the paper's trace generator);
2. baseline timing simulation → unassisted IPC (a model input);
3. slice-tree construction + aggregate-advantage selection →
   static p-threads and framework predictions;
4. pre-execution timing simulation (plus the overhead-only /
   latency-only validation modes on request) → measured statistics.

Traces and baseline runs are cached per (workload, input, hierarchy,
machine) so parameter sweeps (Figures 4–8) only repeat the stages they
vary.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.report import assert_clean, verification_enabled
from repro.engine.functional import FunctionalResult, run_program
from repro.harness.artifacts import (
    ArtifactCache,
    PerfCounters,
    program_digest,
    stable_key,
)
from repro.memory.hierarchy import HierarchyConfig
from repro.model.params import ModelParams, SelectionConstraints
from repro.obs import get_tracer
from repro.selection.granularity import select_by_region
from repro.selection.program_selector import ProgramSelection, select_pthreads
from repro.timing.config import (
    BASELINE,
    LATENCY_ONLY,
    MachineConfig,
    OVERHEAD_EXECUTE,
    OVERHEAD_SEQUENCE,
    PERFECT_L2,
    PRE_EXECUTION,
)
from repro.timing.core import Schedule, TimingSimulator
from repro.timing.stats import SimStats
from repro.workloads.common import SUITE_HIERARCHY
from repro.workloads.suite import Workload, build


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment cell: workload + all knobs the paper varies.

    Attributes:
        workload: suite workload name.
        input_name: input the measurement runs on.
        constraints: p-thread selection constraints (Figures 4/5).
        machine: core configuration (width sweeps).
        hierarchy: memory system; ``None`` uses the workload default.
        model_mem_latency: ``Lmem`` presented to the *framework*; when
            it differs from the simulated memory latency this is the
            paper's Figure 8 over-/under-specification methodology.
        model_bw_seq: sequencing width presented to the framework
            (processor-width cross-validation); ``None`` uses the
            simulated machine's width.
        selection_input: input whose profile drives selection (Figure 7
            static scenario uses "test" while measuring on "train").
        selection_prefix: select using only the first N dynamic
            instructions of the trace (Figure 7 dynamic scenario).
        granularity: region size for region-specialized selection
            (Figure 6); ``None`` selects over the whole run.
        effective_latency: refine ``Lmem`` per static load using the
            exposed-stall measurement from the baseline run — the
            critical-path extension the paper lists as future work.
        validate: also run the overhead-only / latency-only /
            perfect-L2 validation simulations.
        verify: statically verify the selection's p-thread invariants
            (PT001–PT006) and fail on any error.  Unlike the
            ``REPRO_VERIFY`` transformation hooks, this also covers
            selections loaded from the persistent artifact cache.
    """

    workload: str
    input_name: str = "train"
    constraints: SelectionConstraints = field(default_factory=SelectionConstraints)
    machine: MachineConfig = field(default_factory=MachineConfig)
    hierarchy: Optional[HierarchyConfig] = None
    model_mem_latency: Optional[int] = None
    model_bw_seq: Optional[int] = None
    selection_input: Optional[str] = None
    selection_prefix: Optional[int] = None
    granularity: Optional[int] = None
    effective_latency: bool = False
    validate: bool = False
    verify: bool = False


@dataclass
class ExperimentResult:
    """Everything one experiment cell produced."""

    config: ExperimentConfig
    workload: Workload
    functional: FunctionalResult
    baseline: SimStats
    selection: ProgramSelection
    preexec: SimStats
    validation: Dict[str, SimStats] = field(default_factory=dict)
    num_regions: int = 1
    #: Wall-clock seconds this cell spent in each pipeline stage
    #: (``trace`` / ``baseline`` / ``selection`` / ``timing`` /
    #: ``validation``).  Stages satisfied from a cache report (near)
    #: zero, so a sweep's timings expose exactly what caching saved.
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        """Fractional speedup of pre-execution over the baseline."""
        return self.preexec.speedup_over(self.baseline)

    @property
    def coverage(self) -> float:
        return self.preexec.coverage_fraction

    @property
    def full_coverage(self) -> float:
        return self.preexec.full_coverage_fraction

    def summary_row(self) -> Dict[str, float]:
        """Flat metrics dict for table/figure rendering."""
        return {
            "base_ipc": self.baseline.ipc,
            "preexec_ipc": self.preexec.ipc,
            "speedup_pct": 100.0 * self.speedup,
            "coverage_pct": 100.0 * self.coverage,
            "full_coverage_pct": 100.0 * self.full_coverage,
            "overhead_pct": 100.0 * self.preexec.instruction_overhead,
            "pthread_len": self.preexec.avg_pthread_length,
            "launches": float(self.preexec.pthread_launches),
            "static_pthreads": float(len(self.selection.pthreads)),
        }


#: Pipeline stages in execution order, as a deadline check sees them.
PIPELINE_STAGES = ("trace", "baseline", "selection", "timing", "validation")


@dataclass
class PartialExperimentResult:
    """What a budget-cut experiment had finished when the deadline hit.

    Soft-deadline semantics (the fuzz runner's pattern): the budget is
    only consulted *between* stages, so every stage listed in
    ``stages_completed`` ran to completion and its artifacts are in the
    runner's caches — a retry with a larger budget resumes from there
    for free.  ``next_stage`` is the stage the deadline prevented.
    """

    config: ExperimentConfig
    next_stage: str
    stages_completed: List[str] = field(default_factory=list)
    timings: Dict[str, float] = field(default_factory=dict)


class ExperimentDeadlineError(RuntimeError):
    """Raised when a per-request soft budget expires mid-pipeline."""

    def __init__(self, partial: PartialExperimentResult) -> None:
        super().__init__(
            f"experiment budget exceeded before stage {partial.next_stage!r} "
            f"(completed: {', '.join(partial.stages_completed) or 'none'})"
        )
        self.partial = partial


class ExperimentRunner:
    """Pipeline driver with trace/baseline caching across sweep cells.

    Two cache layers back every expensive stage: an in-memory dict for
    repeats within this process, and (when ``artifacts`` is given) the
    persistent content-addressed :class:`ArtifactCache`, which survives
    across sessions and is shared by the worker processes of a parallel
    sweep.  ``perf`` accumulates per-stage compute seconds and
    hit/miss counters for both layers.
    """

    def __init__(
        self,
        max_instructions: int = 10_000_000,
        artifacts: Optional[ArtifactCache] = None,
    ) -> None:
        self.max_instructions = max_instructions
        self.artifacts = artifacts
        self.perf = PerfCounters()
        self._workloads: Dict[Tuple, Workload] = {}
        self._traces: Dict[Tuple, FunctionalResult] = {}
        self._baselines: Dict[Tuple, SimStats] = {}
        self._perfect: Dict[Tuple, SimStats] = {}
        self._selections: Dict[str, ProgramSelection] = {}

    # -- cached stages --------------------------------------------------

    def workload(
        self,
        name: str,
        input_name: str,
        hierarchy: Optional[HierarchyConfig] = None,
    ) -> Workload:
        # Key on the *resolved* hierarchy: ``None`` and an explicitly
        # passed default otherwise build duplicate workloads (re-running
        # the generators) in sweeps that mix the two spellings.
        resolved = hierarchy if hierarchy is not None else SUITE_HIERARCHY
        key = (name, input_name, resolved)
        if key not in self._workloads:
            self._workloads[key] = build(name, input_name, hierarchy=resolved)
        return self._workloads[key]

    def trace(self, workload: Workload) -> FunctionalResult:
        key = (workload.name, workload.input_name, workload.hierarchy)
        cached = self._traces.get(key)
        if cached is not None:
            self.perf.hit("trace")
            return cached
        result = self._trace_from_disk(workload)
        if result is None:
            self.perf.miss("trace")
            start = time.perf_counter()
            result = run_program(
                workload.program,
                workload.hierarchy,
                max_instructions=self.max_instructions,
            )
            self.perf.add_time("trace", time.perf_counter() - start)
            self.perf.add_instructions("trace", result.instructions)
            self._trace_to_disk(workload, result)
        self._traces[key] = result
        return result

    def baseline(self, workload: Workload, machine: MachineConfig) -> SimStats:
        key = (workload.name, workload.input_name, workload.hierarchy, machine)
        if key not in self._baselines:
            self._baselines[key] = self._timed_stats(
                "baseline", BASELINE, workload, machine
            )
        else:
            self.perf.hit("baseline")
        return self._baselines[key]

    def perfect_l2(self, workload: Workload, machine: MachineConfig) -> SimStats:
        key = (workload.name, workload.input_name, workload.hierarchy, machine)
        if key not in self._perfect:
            self._perfect[key] = self._timed_stats(
                "perfect_l2", PERFECT_L2, workload, machine
            )
        else:
            self.perf.hit("perfect_l2")
        return self._perfect[key]

    # -- persistent-cache plumbing --------------------------------------

    def _trace_key(self, workload: Workload) -> str:
        return self.artifacts.key(
            "trace",
            program=program_digest(workload.program),
            workload=workload.name,
            input=workload.input_name,
            hierarchy=workload.hierarchy,
            max_instructions=self.max_instructions,
        )

    def _trace_from_disk(self, workload: Workload) -> Optional[FunctionalResult]:
        if self.artifacts is None:
            return None
        payload = self.artifacts.load("trace", self._trace_key(workload))
        if payload is None:
            return None
        self.perf.disk_hit("trace")
        return FunctionalResult.from_dict(payload)

    def _trace_to_disk(self, workload: Workload, result: FunctionalResult) -> None:
        if self.artifacts is not None:
            self.artifacts.store(
                "trace", self._trace_key(workload), result.to_dict()
            )

    def _stats_key(
        self, kind: str, workload: Workload, machine: MachineConfig
    ) -> str:
        return self.artifacts.key(
            kind,
            program=program_digest(workload.program),
            workload=workload.name,
            input=workload.input_name,
            hierarchy=workload.hierarchy,
            machine=machine,
            max_instructions=self.max_instructions,
        )

    def _timed_stats(
        self, kind: str, mode, workload: Workload, machine: MachineConfig
    ) -> SimStats:
        """One baseline-family timing simulation, through both caches."""
        if self.artifacts is not None:
            key = self._stats_key(kind, workload, machine)
            payload = self.artifacts.load(kind, key)
            if payload is not None:
                self.perf.disk_hit(kind)
                return SimStats.from_dict(payload)
        self.perf.miss(kind)
        start = time.perf_counter()
        sim = TimingSimulator(workload.program, workload.hierarchy, machine)
        stats = sim.run(mode, max_instructions=self.max_instructions)
        self.perf.add_time(kind, time.perf_counter() - start)
        self.perf.add_instructions(kind, stats.instructions)
        if self.artifacts is not None:
            self.artifacts.store(kind, key, stats.to_dict())
        return stats

    def _cached_selection(
        self,
        profile_workload: Workload,
        profile_trace: FunctionalResult,
        params: ModelParams,
        constraints: SelectionConstraints,
        region: Optional[Tuple[int, int]],
        lmem_overrides: Optional[Dict[int, float]],
    ) -> ProgramSelection:
        """Whole-run p-thread selection, through both cache layers."""
        key = stable_key(
            "selection",
            program=program_digest(profile_workload.program),
            workload=profile_workload.name,
            input=profile_workload.input_name,
            hierarchy=profile_workload.hierarchy,
            params=params,
            constraints=constraints,
            region=list(region) if region is not None else None,
            lmem_overrides=lmem_overrides,
            max_instructions=self.max_instructions,
        )
        cached = self._selections.get(key)
        if cached is not None:
            self.perf.hit("selection")
            return cached
        selection = None
        if self.artifacts is not None:
            selection = self.artifacts.load("selection", key)
            if selection is not None:
                self.perf.disk_hit("selection")
        if selection is None:
            self.perf.miss("selection")
            start = time.perf_counter()
            with get_tracer().span(
                "slice+select", workload=profile_workload.name
            ):
                selection = select_pthreads(
                    profile_workload.program,
                    profile_trace.trace,
                    params,
                    constraints=constraints,
                    region=region,
                    lmem_overrides=lmem_overrides,
                )
            self.perf.add_time("selection", time.perf_counter() - start)
            if self.artifacts is not None:
                self.artifacts.store("selection", key, selection)
        self._selections[key] = selection
        return selection

    # -- pipeline -------------------------------------------------------

    def model_params(
        self, config: ExperimentConfig, workload: Workload, base_ipc: float
    ) -> ModelParams:
        mem_latency = (
            config.model_mem_latency
            if config.model_mem_latency is not None
            else workload.hierarchy.mem_latency
        )
        return ModelParams(
            bw_seq=(
                config.model_bw_seq
                if config.model_bw_seq is not None
                else config.machine.bw_seq
            ),
            unassisted_ipc=max(base_ipc, 0.05),
            mem_latency=mem_latency,
            load_latency=workload.hierarchy.l1.hit_latency,
        )

    def run(
        self,
        config: ExperimentConfig,
        deadline: Optional[float] = None,
    ) -> ExperimentResult:
        """Execute one experiment cell end to end.

        ``deadline`` is an absolute ``time.monotonic()`` instant (the
        caller's soft budget).  It is checked *between* stages only —
        a stage that has started always finishes — and an expired
        budget raises :class:`ExperimentDeadlineError` carrying a
        :class:`PartialExperimentResult` of everything completed so far.
        """
        timings: Dict[str, float] = {}
        tracer = get_tracer()
        with tracer.span(
            "experiment", workload=config.workload, input=config.input_name
        ):
            return self._run_traced(config, timings, tracer, deadline)

    @staticmethod
    def _check_deadline(
        deadline: Optional[float],
        next_stage: str,
        config: ExperimentConfig,
        timings: Dict[str, float],
    ) -> None:
        if deadline is not None and time.monotonic() >= deadline:
            done = [s for s in PIPELINE_STAGES if s in timings]
            raise ExperimentDeadlineError(
                PartialExperimentResult(
                    config=config,
                    next_stage=next_stage,
                    stages_completed=done,
                    timings=dict(timings),
                )
            )

    def _run_traced(
        self,
        config: ExperimentConfig,
        timings: Dict[str, float],
        tracer,
        deadline: Optional[float] = None,
    ) -> ExperimentResult:
        workload = self.workload(
            config.workload, config.input_name, config.hierarchy
        )
        self._check_deadline(deadline, "trace", config, timings)
        with tracer.span("trace") as trace_span:
            functional = self.trace(workload)
        timings["trace"] = trace_span.duration
        self._check_deadline(deadline, "baseline", config, timings)
        with tracer.span("baseline") as base_span:
            base = self.baseline(workload, config.machine)
        timings["baseline"] = base_span.duration

        # --- selection statistics may come from a different profile ---
        if config.selection_input is not None:
            profile_workload = self.workload(
                config.workload, config.selection_input, config.hierarchy
            )
            with tracer.span(
                "trace", profile=config.selection_input
            ) as trace_span:
                profile_trace = self.trace(profile_workload)
            timings["trace"] += trace_span.duration
            with tracer.span(
                "baseline", profile=config.selection_input
            ) as base_span:
                profile_base = self.baseline(profile_workload, config.machine)
            timings["baseline"] += base_span.duration
            profile_ipc = profile_base.ipc
        else:
            profile_workload = workload
            profile_trace = functional
            profile_ipc = base.ipc
        params = self.model_params(config, workload, profile_ipc)

        self._check_deadline(deadline, "selection", config, timings)
        schedule: Optional[Schedule] = None
        num_regions = 1
        with tracer.span("selection") as selection_span:
            if config.granularity is not None:
                # Region-specialized selection stays uncached: its output
                # (a per-region activation schedule) is not content-
                # addressable by the same small key, and Figure 6 is the
                # only user.
                self.perf.miss("selection")
                start = time.perf_counter()
                granular = select_by_region(
                    profile_workload.program,
                    profile_trace.trace,
                    params,
                    region_size=config.granularity,
                    constraints=config.constraints,
                )
                schedule = granular.schedule()
                num_regions = len(granular.regions)
                # Report the aggregate of the region selections.
                selection = _aggregate_regions(
                    granular, params, config.constraints
                )
                self.perf.add_time("selection", time.perf_counter() - start)
            else:
                region = None
                if config.selection_prefix is not None:
                    region = (0, config.selection_prefix)
                lmem_overrides = None
                if config.effective_latency:
                    lmem_overrides = {
                        pc: base.effective_latency(pc, params.mem_latency)
                        for pc in base.miss_exposure
                    }
                selection = self._cached_selection(
                    profile_workload,
                    profile_trace,
                    params,
                    config.constraints,
                    region,
                    lmem_overrides,
                )
        timings["selection"] = selection_span.duration

        if config.verify or verification_enabled():
            # Covers cache-loaded selections, which the in-pipeline
            # REPRO_VERIFY hooks never see.
            from repro.analysis.verifier import verify_selection

            assert_clean(
                verify_selection(
                    profile_workload.program,
                    selection.pthreads,
                    config.constraints,
                ),
                f"experiment({config.workload!r}) selection",
            )

        # --- measurement ----------------------------------------------
        def simulate(mode) -> SimStats:
            if schedule is not None:
                sim = TimingSimulator(
                    workload.program,
                    workload.hierarchy,
                    config.machine,
                    schedule=schedule,
                )
            else:
                sim = TimingSimulator(
                    workload.program,
                    workload.hierarchy,
                    config.machine,
                    pthreads=selection.pthreads,
                )
            return sim.run(mode, max_instructions=self.max_instructions)

        self._check_deadline(deadline, "timing", config, timings)
        with tracer.span("timing") as timing_span:
            preexec = simulate(PRE_EXECUTION)
        elapsed = timing_span.duration
        timings["timing"] = elapsed
        self.perf.miss("timing")
        self.perf.add_time("timing", elapsed)
        self.perf.add_instructions(
            "timing", preexec.instructions + preexec.pthread_instructions
        )
        validation: Dict[str, SimStats] = {}
        if config.validate:
            self._check_deadline(deadline, "validation", config, timings)
            with tracer.span("validation") as validation_span:
                validation["overhead_execute"] = simulate(OVERHEAD_EXECUTE)
                validation["overhead_sequence"] = simulate(OVERHEAD_SEQUENCE)
                validation["latency_only"] = simulate(LATENCY_ONLY)
            elapsed = validation_span.duration
            timings["validation"] = elapsed
            self.perf.miss("validation")
            self.perf.add_time("validation", elapsed)
            # perfect_l2 times/counts itself (it has its own cache).
            with tracer.span("validation", kind="perfect_l2"):
                validation["perfect_l2"] = self.perfect_l2(
                    workload, config.machine
                )

        return ExperimentResult(
            config=config,
            workload=workload,
            functional=functional,
            baseline=base,
            selection=selection,
            preexec=preexec,
            validation=validation,
            num_regions=num_regions,
            timings=timings,
        )


def _aggregate_regions(granular, params, constraints) -> ProgramSelection:
    """Collapse per-region selections into one reportable selection.

    The activation schedule keeps the per-region p-thread sets; this
    aggregate only exists so reports have program-level predictions.
    """
    from repro.selection.program_selector import ProgramPrediction

    pthreads = [p for region in granular.regions for p in region.pthreads]
    totals = dict(
        launches=0,
        injected_instructions=0,
        misses_covered=0,
        misses_fully_covered=0,
        lt_agg=0.0,
        oh_agg=0.0,
        sample_instructions=0,
        sample_l2_misses=0,
    )
    for region in granular.regions:
        prediction = region.selection.prediction
        totals["launches"] += prediction.launches
        totals["injected_instructions"] += prediction.injected_instructions
        totals["misses_covered"] += prediction.misses_covered
        totals["misses_fully_covered"] += prediction.misses_fully_covered
        totals["lt_agg"] += prediction.lt_agg
        totals["oh_agg"] += prediction.oh_agg
        totals["sample_instructions"] += prediction.sample_instructions
        totals["sample_l2_misses"] += prediction.sample_l2_misses
    prediction = ProgramPrediction(
        unassisted_ipc=params.unassisted_ipc,
        sequencing_width=params.bw_seq,
        **totals,
    )
    return ProgramSelection(
        pthreads=pthreads,
        tree_selections={},
        prediction=prediction,
        params=params,
        constraints=constraints,
    )
