"""Persistent, content-addressed artifact cache for the harness.

Every evaluation artifact (Tables 1/2, Figures 4-8, the ablations) fans
out over 10 workloads x many knob settings, but the expensive stages —
functional tracing, baseline timing, p-thread selection — depend only
on a small key: (workload program content, input, hierarchy, machine,
constraints, package version).  :class:`ArtifactCache` stores those
stage outputs on disk under a stable hash of that key, so repeated
bench sessions (and the worker processes of a parallel sweep) reuse
each other's work instead of re-simulating from scratch.

Layout: ``<root>/<kind>/<aa>/<key>.<ext>`` where ``<aa>`` is the first
two hex digits of the key (keeps directories small), ``kind`` is one of
``trace`` / ``baseline`` / ``perfect_l2`` / ``selection`` /
``codegen``, and the
extension is ``.json`` for the dict-codec kinds or ``.pkl`` for
selections (whose p-thread bodies are instruction graphs; pickle is the
pragmatic codec, and the package version baked into every key prevents
stale formats from ever colliding).

The root is ``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro``;
setting ``REPRO_CACHE_DIR`` to ``off`` / ``0`` / the empty string
disables persistence (see :meth:`ArtifactCache.from_env`).

:class:`PerfCounters` rides along here: per-stage wall-clock seconds
plus hit/miss counters for both the in-memory and on-disk caches.  The
runner and the sweep executor share one instance, so a report rendered
after a sweep accounts for every process that contributed.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

from repro.isa.program import Program

#: Bumped whenever an on-disk codec changes shape; part of every key.
SCHEMA_VERSION = 1

#: Cache kinds and their storage codec.
_KIND_CODECS = {
    "trace": "json",
    "baseline": "json",
    "perfect_l2": "json",
    "selection": "pickle",
    "codegen": "json",
}

_DISABLED_VALUES = {"", "0", "off", "none", "disabled"}


def _json_default(obj):
    """Canonicalize dataclasses (and tuples of them) for key hashing."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        encoded = {
            f.name: getattr(obj, f.name) for f in dataclasses.fields(obj)
        }
        encoded["__type__"] = type(obj).__name__
        return encoded
    if isinstance(obj, (set, frozenset)):
        return sorted(obj)
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for cache key")


def stable_key(kind: str, **parts) -> str:
    """A stable hex digest of a cache key description.

    The digest covers the artifact kind, the package and schema
    versions, and every keyword part (dataclasses are canonicalized
    field by field), so any change to code version, configuration, or
    workload identity lands in a different cache slot.
    """
    # Imported lazily: repro/__init__ re-exports the harness, so a
    # module-level import here would be circular.
    from repro import __version__

    payload = {
        "kind": kind,
        "version": __version__,
        "schema": SCHEMA_VERSION,
        **parts,
    }
    blob = json.dumps(payload, sort_keys=True, default=_json_default)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def program_digest(program: Program) -> str:
    """Content digest of a program: instructions plus data image.

    Keys that include this digest are truly content-addressed — two
    builds of the same suite name with different input parameters (or a
    changed generator) never collide.  The digest is memoized on the
    program object because data images can hold tens of thousands of
    words.
    """
    cached = getattr(program, "_repro_digest", None)
    if cached is not None:
        return cached
    hasher = hashlib.sha256()
    for inst in program.instructions:
        hasher.update(str(inst).encode("utf-8"))
        hasher.update(b"\n")
    for addr, value in sorted(program.data.words.items()):
        hasher.update(f"{addr}:{value};".encode("ascii"))
    digest = hasher.hexdigest()
    program._repro_digest = digest
    return digest


@dataclass
class PerfCounters:
    """Per-stage wall-clock seconds and cache hit/miss counters.

    ``hits`` counts in-memory (same-process) cache hits, ``disk_hits``
    loads from the persistent artifact cache, and ``misses`` actual
    computations.  ``stage_seconds`` accumulates compute time only, so
    the report directly shows what caching saved.  ``instructions``
    counts simulated instructions per stage, so the report can show
    simulation throughput (MIPS) for the simulator-bound stages.
    """

    stage_seconds: Dict[str, float] = field(default_factory=dict)
    hits: Dict[str, int] = field(default_factory=dict)
    disk_hits: Dict[str, int] = field(default_factory=dict)
    misses: Dict[str, int] = field(default_factory=dict)
    instructions: Dict[str, int] = field(default_factory=dict)

    def add_time(self, stage: str, seconds: float) -> None:
        self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds

    def add_instructions(self, stage: str, count: int) -> None:
        self.instructions[stage] = self.instructions.get(stage, 0) + count

    def hit(self, kind: str) -> None:
        self.hits[kind] = self.hits.get(kind, 0) + 1

    def disk_hit(self, kind: str) -> None:
        self.disk_hits[kind] = self.disk_hits.get(kind, 0) + 1

    def miss(self, kind: str) -> None:
        self.misses[kind] = self.misses.get(kind, 0) + 1

    def snapshot(self) -> "PerfCounters":
        """An independent copy (for before/after deltas)."""
        return PerfCounters(
            stage_seconds=dict(self.stage_seconds),
            hits=dict(self.hits),
            disk_hits=dict(self.disk_hits),
            misses=dict(self.misses),
            instructions=dict(self.instructions),
        )

    def since(self, before: "PerfCounters") -> "PerfCounters":
        """The delta accumulated since ``before`` was snapshotted."""
        delta = PerfCounters()
        for name in (
            "stage_seconds",
            "hits",
            "disk_hits",
            "misses",
            "instructions",
        ):
            mine, theirs, out = (
                getattr(self, name),
                getattr(before, name),
                getattr(delta, name),
            )
            for key, value in mine.items():
                diff = value - theirs.get(key, 0)
                if diff:
                    out[key] = diff
        return delta

    def merge(self, other: "PerfCounters") -> None:
        """Accumulate another counter set (e.g. a worker's delta)."""
        for stage, seconds in other.stage_seconds.items():
            self.add_time(stage, seconds)
        for name in ("hits", "disk_hits", "misses", "instructions"):
            mine = getattr(self, name)
            for key, value in getattr(other, name).items():
                mine[key] = mine.get(key, 0) + value

    def computations(self) -> int:
        """Total cache misses (actual stage computations) across kinds."""
        return sum(self.misses.values())

    def render(self, title: str = "Harness performance") -> str:
        """Fixed-width report of stage times and cache effectiveness."""
        from repro.harness.report import render_perf

        return render_perf(self, title=title)

    def publish_metrics(self, registry) -> None:
        """Fold these counters into a metrics registry.

        PerfCounters stays the picklable accumulation vehicle (workers
        ship deltas; the executor merges); the registry is the single
        export surface.  Totals land under ``harness.cache.*``, the
        per-stage breakdown under ``harness.stage.<stage>.*``.
        """
        registry.counter("harness.cache.hits").inc(sum(self.hits.values()))
        registry.counter("harness.cache.disk_hits").inc(
            sum(self.disk_hits.values())
        )
        registry.counter("harness.cache.misses").inc(sum(self.misses.values()))
        for stage, seconds in self.stage_seconds.items():
            registry.gauge(f"harness.stage.{stage}.seconds").set(seconds)
        for stage, count in self.instructions.items():
            registry.counter(f"harness.stage.{stage}.instructions").inc(count)


class ArtifactCache:
    """On-disk content-addressed store for harness stage outputs.

    Args:
        root: cache directory; created lazily on first store.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root).expanduser()

    @classmethod
    def from_env(
        cls, environ: Optional[Dict[str, str]] = None
    ) -> Optional["ArtifactCache"]:
        """Build the cache the environment asks for.

        ``REPRO_CACHE_DIR`` names the root; unset falls back to
        ``~/.cache/repro``; the values ``off`` / ``0`` / ``none`` /
        ``disabled`` / empty disable persistence (returns ``None``).
        """
        environ = os.environ if environ is None else environ
        raw = environ.get("REPRO_CACHE_DIR")
        if raw is not None and raw.strip().lower() in _DISABLED_VALUES:
            return None
        if raw:
            return cls(raw)
        return cls(Path.home() / ".cache" / "repro")

    # -- paths ----------------------------------------------------------

    def key(self, kind: str, **parts) -> str:
        if kind not in _KIND_CODECS:
            raise KeyError(f"unknown artifact kind {kind!r}")
        return stable_key(kind, **parts)

    def path(self, kind: str, key: str) -> Path:
        ext = "pkl" if _KIND_CODECS[kind] == "pickle" else "json"
        return self.root / kind / key[:2] / f"{key}.{ext}"

    # -- storage --------------------------------------------------------

    def load(self, kind: str, key: str):
        """Return the stored payload for ``key`` or ``None``.

        JSON kinds return the decoded dict (callers apply their
        ``from_dict``); the pickle kind returns the object directly.  A
        corrupt or truncated entry (e.g. a killed writer predating the
        atomic-rename path) is treated as a miss, not an error.
        """
        target = self.path(kind, key)
        try:
            if _KIND_CODECS[kind] == "pickle":
                with target.open("rb") as handle:
                    return pickle.load(handle)
            return json.loads(target.read_text())
        except FileNotFoundError:
            return None
        except Exception:
            # Corrupt bytes make pickle raise far more than
            # UnpicklingError (ValueError, KeyError, AttributeError,
            # UnicodeDecodeError, ...); every decode failure is a miss.
            return None

    def store(self, kind: str, key: str, payload) -> None:
        """Atomically persist ``payload`` under ``key``.

        Writes to a per-process temporary name then ``os.replace``s it
        into place, so concurrent sweep workers racing on the same key
        each leave a complete file and the last writer wins (they wrote
        identical bytes anyway — the key is content-addressed).
        """
        target = self.path(kind, key)
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.with_suffix(f".{os.getpid()}.tmp")
        try:
            if _KIND_CODECS[kind] == "pickle":
                with tmp.open("wb") as handle:
                    pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            else:
                tmp.write_text(json.dumps(payload))
            os.replace(tmp, target)
        finally:
            if tmp.exists():
                tmp.unlink()

    # -- maintenance ----------------------------------------------------

    def entry_count(self) -> Dict[str, int]:
        """Number of stored artifacts per kind."""
        counts = {}
        for kind in _KIND_CODECS:
            base = self.root / kind
            counts[kind] = (
                sum(1 for _ in base.glob("*/*")) if base.is_dir() else 0
            )
        return counts

    def size_bytes(self, kind: Optional[str] = None) -> int:
        """Total stored bytes, optionally restricted to one kind."""
        if kind is not None:
            if kind not in _KIND_CODECS:
                raise KeyError(f"unknown artifact kind {kind!r}")
            base = self.root / kind
            if not base.is_dir():
                return 0
            return sum(
                path.stat().st_size
                for path in base.rglob("*")
                if path.is_file()
            )
        if not self.root.is_dir():
            return 0
        return sum(
            path.stat().st_size
            for path in self.root.rglob("*")
            if path.is_file()
        )

    def publish_metrics(self, registry) -> None:
        """Set the cache-size gauges (``harness.cache.entries/bytes``)."""
        registry.gauge("harness.cache.entries").set(
            sum(self.entry_count().values())
        )
        registry.gauge("harness.cache.bytes").set(self.size_bytes())

    def clear(self, kind: Optional[str] = None) -> int:
        """Delete stored artifacts; returns the number removed.

        With ``kind`` only that kind's entries are removed; an unknown
        kind raises ``KeyError`` rather than silently clearing nothing.
        """
        if kind is not None and kind not in _KIND_CODECS:
            raise KeyError(f"unknown artifact kind {kind!r}")
        kinds = _KIND_CODECS if kind is None else (kind,)
        removed = 0
        for kind in kinds:
            base = self.root / kind
            if not base.is_dir():
                continue
            for path in sorted(base.glob("*/*")):
                path.unlink()
                removed += 1
            for bucket in sorted(base.iterdir()):
                if bucket.is_dir() and not any(bucket.iterdir()):
                    bucket.rmdir()
        return removed
