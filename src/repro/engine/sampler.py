"""Cyclic sampling controller.

The paper's tools "exploit sampling, cycling through off
(fast-forwarding), warm-up (caches and branch predictor only) and on
(full detail) phases at regular intervals".  :class:`CyclicSampler`
reproduces that control: given phase lengths, it maps a dynamic
instruction number to the phase it falls in.

Our workloads are small enough to trace in full, so the default
everywhere is no sampler; the sampler exists for the granularity and
scaling experiments and to keep the methodology faithful.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Phase(enum.Enum):
    OFF = "off"
    WARM = "warm"
    ON = "on"


@dataclass(frozen=True)
class CyclicSampler:
    """Cyclic off/warm/on sampling schedule.

    Attributes:
        off: instructions fast-forwarded per cycle (no caches, no trace).
        warm: instructions of cache/predictor warm-up per cycle.
        on: instructions of full-detail tracing per cycle.
    """

    off: int
    warm: int
    on: int

    def __post_init__(self) -> None:
        if self.on <= 0:
            raise ValueError("sampler 'on' phase must be positive")
        if self.off < 0 or self.warm < 0:
            raise ValueError("sampler phase lengths must be non-negative")

    @property
    def period(self) -> int:
        return self.off + self.warm + self.on

    def phase(self, instruction_number: int) -> Phase:
        """Phase of dynamic instruction ``instruction_number``."""
        pos = instruction_number % self.period
        if pos < self.off:
            return Phase.OFF
        if pos < self.off + self.warm:
            return Phase.WARM
        return Phase.ON


#: A sampler that is always in the ON phase.
ALWAYS_ON = CyclicSampler(off=0, warm=0, on=1)
