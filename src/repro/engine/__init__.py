"""Functional execution engine: decoding, compiling, tracing, sampling."""

from repro.engine.compiler import (
    ENGINE_COMPILED,
    ENGINE_INTERP,
    CompiledBlocks,
    compile_functional,
    compile_timing,
    discover_blocks,
    resolve_engine,
)
from repro.engine.decode import DecodedProgram
from repro.engine.functional import (
    ExecutionLimitExceeded,
    FunctionalResult,
    FunctionalSimulator,
    run_program,
)
from repro.engine.sampler import ALWAYS_ON, CyclicSampler, Phase
from repro.engine.trace import Trace, TraceRecord

__all__ = [
    "ALWAYS_ON",
    "CompiledBlocks",
    "CyclicSampler",
    "DecodedProgram",
    "ENGINE_COMPILED",
    "ENGINE_INTERP",
    "ExecutionLimitExceeded",
    "FunctionalResult",
    "FunctionalSimulator",
    "Phase",
    "Trace",
    "TraceRecord",
    "compile_functional",
    "compile_timing",
    "discover_blocks",
    "resolve_engine",
    "run_program",
]
