"""Functional execution engine: decoding, tracing, sampling."""

from repro.engine.decode import DecodedProgram
from repro.engine.functional import (
    ExecutionLimitExceeded,
    FunctionalResult,
    FunctionalSimulator,
    run_program,
)
from repro.engine.sampler import ALWAYS_ON, CyclicSampler, Phase
from repro.engine.trace import Trace, TraceRecord

__all__ = [
    "ALWAYS_ON",
    "CyclicSampler",
    "DecodedProgram",
    "ExecutionLimitExceeded",
    "FunctionalResult",
    "FunctionalSimulator",
    "Phase",
    "Trace",
    "TraceRecord",
    "run_program",
]
