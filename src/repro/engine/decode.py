"""Pre-decoded program form shared by the functional and timing engines.

Dispatching on :class:`~repro.isa.opcodes.Opcode` enums and dataclass
attribute lookups in a hot interpreter loop is slow; both simulators
instead run off :class:`DecodedProgram`, plain parallel lists of ints
and callables indexed by PC.  Decoding happens once per program.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.isa.opcodes import Format, Opcode, opinfo
from repro.isa.program import Program

# Instruction kind constants (dense ints for fast dispatch).
K_ALU_R = 0
K_ALU_I = 1
K_LOAD = 2
K_STORE = 3
K_BRANCH = 4
K_JUMP = 5
K_JAL = 6
K_JR = 7
K_NOP = 8
K_HALT = 9

_FORMAT_KIND = {
    Format.R: K_ALU_R,
    Format.I: K_ALU_I,
    Format.LOAD: K_LOAD,
    Format.STORE: K_STORE,
    Format.BRANCH: K_BRANCH,
    Format.JUMP: K_JUMP,
    Format.JAL: K_JAL,
    Format.JR: K_JR,
}


class DecodedProgram:
    """Parallel-array decoded form of a :class:`Program`."""

    def __init__(self, program: Program) -> None:
        n = len(program)
        self.program = program
        self.kind: List[int] = [K_NOP] * n
        self.rd: List[int] = [0] * n
        self.rs1: List[int] = [0] * n
        self.rs2: List[int] = [0] * n
        self.imm: List[int] = [0] * n
        self.target: List[int] = [0] * n
        self.alu: List[Optional[Callable[[int, int], int]]] = [None] * n
        self.branch: List[Optional[Callable[[int, int], bool]]] = [None] * n
        self.latency: List[int] = [1] * n
        for pc, inst in enumerate(program.instructions):
            info = opinfo(inst.op)
            if inst.op is Opcode.HALT:
                self.kind[pc] = K_HALT
            elif inst.op is Opcode.NOP:
                self.kind[pc] = K_NOP
            else:
                self.kind[pc] = _FORMAT_KIND[info.fmt]
            self.rd[pc] = inst.rd if inst.rd is not None else 0
            self.rs1[pc] = inst.rs1 if inst.rs1 is not None else 0
            self.rs2[pc] = inst.rs2 if inst.rs2 is not None else 0
            self.imm[pc] = inst.imm
            self.target[pc] = (
                int(inst.target) if inst.target is not None else 0
            )
            self.alu[pc] = info.alu
            self.branch[pc] = info.branch
            self.latency[pc] = info.latency

    def __len__(self) -> int:
        return len(self.kind)
