"""Basic-block specializing compiler for both simulator engines.

The interpreters in :mod:`repro.engine.functional` and
:mod:`repro.timing.core` pay per-instruction costs that have nothing to
do with the simulated machine: a ``kind[pc]`` dispatch chain, half a
dozen parallel-array subscripts, and a Python call into an opcode
lambda.  This module removes them by *specializing*: it walks a
:class:`~repro.engine.decode.DecodedProgram`, partitions it into
straight-line basic blocks, and ``compile()``/``exec()``-generates one
Python function per block in which every opcode, register index,
immediate, branch target, and latency is baked into the source as a
constant.  The common ALU and branch operations are inlined as
arithmetic expressions that are bit-identical to the
:mod:`repro.isa.opcodes` lambdas, so a compiled run produces exactly
the same architectural and timing results as the interpreter.

Block discovery
---------------

Leaders are: PC 0, every branch/jump target, the fall-through successor
of every control transfer (which also covers ``jal`` return addresses),
and any extra PCs the caller supplies (the timing engine passes
p-thread trigger PCs).  The program text is then partitioned into
maximal straight-line runs that end at a terminator (branch, jump,
``jal``, ``jr``, ``halt``), just before the next leader, or at
:data:`MAX_BLOCK` instructions.  Schedule *region* boundaries are
dynamic instruction counts, not PCs, so they cannot be block leaders;
the timing dispatcher instead caps compiled execution at the next
boundary and single-steps across it with the interpreter (see
``TimingSimulator._run_compiled``).

Two-stage binding
-----------------

Generated source is compiled once per (program, variant) into a
``_bind(ctx)`` factory.  Each simulation run calls ``_bind`` with its
run-specific objects (memory, hierarchy, trace, predictor, ...): the
factory closes the block functions over them and returns a dispatch
table ``{leader_pc: (fn, length, index)}``.  ``exec`` happens once;
per-run binding is just closure creation.

Fallback
--------

:func:`compile_functional` / :func:`compile_timing` return ``None``
when a program contains anything the codegen cannot specialize (an
opcode with no inline template and no decoded callable, or a program
over :data:`MAX_PROGRAM` instructions, where compile time could rival
simulation time).  Both simulators treat ``None`` as "run the
interpreter"; a computed ``jr`` landing mid-block is handled at run
time by interpreting until the next leader, so it never needs a
whole-program fallback.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.engine.decode import (
    DecodedProgram,
    K_ALU_I,
    K_ALU_R,
    K_BRANCH,
    K_HALT,
    K_JAL,
    K_JR,
    K_JUMP,
    K_LOAD,
    K_NOP,
    K_STORE,
)
from repro.isa.opcodes import Opcode, WORD_SIZE
from repro.obs import get_registry as obs_registry

#: Environment variable selecting the execution engine.
ENGINE_ENV = "REPRO_ENGINE"
ENGINE_COMPILED = "compiled"
ENGINE_INTERP = "interp"
ENGINE_TIERED = "tiered"
_INTERP_NAMES = {"interp", "interpreter", "interpreted"}

#: Environment variable for the tier-up threshold (block entry count at
#: which the tiered engine compiles a block).
TIER_ENV = "REPRO_TIER_THRESHOLD"
DEFAULT_TIER_THRESHOLD = 50

#: Programs longer than this are not compiled (compile time guard).
MAX_PROGRAM = 65_536
#: Straight-line runs are split so one block never exceeds this.
MAX_BLOCK = 256

_TERMINATORS = frozenset((K_BRANCH, K_JUMP, K_JAL, K_JR, K_HALT))
_DIRECT_TARGETS = frozenset((K_BRANCH, K_JUMP, K_JAL))

_MASK64 = (1 << 64) - 1
_HIGH = 1 << 63

#: Alignment mask for inlining the aligned-address memory fast path;
#: ``None`` (non-power-of-two word size) keeps the method-call path.
_ALIGN_MASK = (
    WORD_SIZE - 1 if WORD_SIZE & (WORD_SIZE - 1) == 0 else None
)


def resolve_engine(explicit: Optional[str] = None) -> str:
    """Resolve the engine selection: explicit arg > ``REPRO_ENGINE`` > tiered.

    Any spelling of "interp" selects the interpreter; "compiled"
    selects the always-compile engine; "tiered" (or unset/empty)
    selects the tiered engine, which starts in the interpreter and
    compiles only blocks that get hot.  Anything else raises, so a
    typo cannot silently change which engine ran.
    """
    value = explicit if explicit is not None else os.environ.get(ENGINE_ENV)
    if value is None:
        return ENGINE_TIERED
    name = value.strip().lower()
    if name in _INTERP_NAMES:
        return ENGINE_INTERP
    if name == ENGINE_COMPILED:
        return ENGINE_COMPILED
    if name in ("", ENGINE_TIERED):
        return ENGINE_TIERED
    raise ValueError(
        f"unknown engine {value!r}: expected "
        f"'{ENGINE_TIERED}', '{ENGINE_COMPILED}' or '{ENGINE_INTERP}'"
    )


#: Instruction budget of one tiered interpreter slice: the interval at
#: which the tiered engine re-scans block-entry counts for new hot
#: blocks.  Bounded so interpreter-only inner loops still tier up.
TIER_SLICE = 4096


def tier_threshold() -> int:
    """Block-entry count at which the tiered engine compiles a block.

    ``REPRO_TIER_THRESHOLD`` overrides the default; values below 1 are
    clamped to 1 (compile on first re-entry), and a non-integer raises
    so a typo cannot silently disable tiering.
    """
    raw = os.environ.get(TIER_ENV)
    if raw is None or not raw.strip():
        return DEFAULT_TIER_THRESHOLD
    try:
        value = int(raw.strip())
    except ValueError:
        raise ValueError(
            f"{TIER_ENV} must be an integer, got {raw!r}"
        ) from None
    return max(1, value)


def register_engine_metrics() -> None:
    """Register the engine's catalog counters at zero.

    The metric catalog requires ``engine.compile.*``,
    ``engine.codegen.*`` and ``engine.tier.*`` in every
    default-pipeline snapshot, but a fully-interpreted tiered run never
    compiles, a disabled code cache is never consulted, and a
    non-tiered run never tiers.  ``counter()`` is get-or-create, so
    this pins the names without incrementing anything.
    """
    registry = obs_registry()
    registry.counter("engine.compile.programs")
    registry.counter("engine.compile.blocks")
    registry.counter("engine.codegen.cache_hits")
    registry.counter("engine.codegen.cache_misses")
    registry.counter("engine.tier.compiled_blocks")
    registry.counter("engine.tier.interp_blocks")


def discover_blocks(
    decoded: DecodedProgram, extra_leaders: Sequence[int] = ()
) -> List[Tuple[int, int]]:
    """Partition the program into basic blocks ``[(start, end), ...]``.

    Every PC in ``[0, len)`` lands in exactly one block; ``end`` is
    exclusive.  Unreachable text compiles to blocks that simply never
    run.
    """
    n = len(decoded)
    kind = decoded.kind
    target = decoded.target
    leaders = {0}
    leaders.update(pc for pc in extra_leaders if 0 <= pc < n)
    for pc in range(n):
        k = kind[pc]
        if k in _TERMINATORS:
            if pc + 1 < n:
                leaders.add(pc + 1)
            if k in _DIRECT_TARGETS:
                t = target[pc]
                if 0 <= t < n:
                    leaders.add(t)
    blocks: List[Tuple[int, int]] = []
    start = 0
    for pc in range(n):
        if (
            kind[pc] in _TERMINATORS
            or pc + 1 >= n
            or pc + 1 in leaders
            or pc + 1 - start >= MAX_BLOCK
        ):
            blocks.append((start, pc + 1))
            start = pc + 1
    return blocks


# ----------------------------------------------------------------------
# Inline expression templates (bit-identical to the opcodes.py lambdas).
# ----------------------------------------------------------------------


def _wrap(expr: str) -> str:
    """Two's-complement 64-bit wrap; identical to ``opcodes._to_signed``."""
    return f"(({expr}) + {_HIGH} & {_MASK64}) - {_HIGH}"


_ALU_TEMPLATES = {
    Opcode.ADD: lambda a, b: _wrap(f"{a} + {b}"),
    Opcode.SUB: lambda a, b: _wrap(f"{a} - {b}"),
    Opcode.MUL: lambda a, b: _wrap(f"{a} * {b}"),
    Opcode.AND: lambda a, b: _wrap(f"{a} & {b}"),
    Opcode.OR: lambda a, b: _wrap(f"{a} | {b}"),
    Opcode.XOR: lambda a, b: _wrap(f"{a} ^ {b}"),
    Opcode.SLL: lambda a, b: _wrap(f"{a} << ({b} & 63)"),
    Opcode.SRL: lambda a, b: _wrap(f"({a} & {_MASK64}) >> ({b} & 63)"),
    Opcode.SRA: lambda a, b: f"{a} >> ({b} & 63)",
    Opcode.SLT: lambda a, b: f"(1 if {a} < {b} else 0)",
    Opcode.SLTU: lambda a, b: (
        f"(1 if ({a} & {_MASK64}) < ({b} & {_MASK64}) else 0)"
    ),
    Opcode.ADDI: lambda a, b: _wrap(f"{a} + {b}"),
    Opcode.ANDI: lambda a, b: _wrap(f"{a} & {b}"),
    Opcode.ORI: lambda a, b: _wrap(f"{a} | {b}"),
    Opcode.XORI: lambda a, b: _wrap(f"{a} ^ {b}"),
    Opcode.SLLI: lambda a, b: _wrap(f"{a} << ({b} & 63)"),
    Opcode.SRLI: lambda a, b: _wrap(f"({a} & {_MASK64}) >> ({b} & 63)"),
    Opcode.SRAI: lambda a, b: f"{a} >> ({b} & 63)",
    Opcode.SLTI: lambda a, b: f"(1 if {a} < {b} else 0)",
    Opcode.LUI: lambda a, b: _wrap(f"{b} << 16"),
    Opcode.MOV: lambda a, b: f"{a}",
}

_BRANCH_OPS = {
    Opcode.BEQ: "==",
    Opcode.BNE: "!=",
    Opcode.BLT: "<",
    Opcode.BGE: ">=",
    Opcode.BLE: "<=",
    Opcode.BGT: ">",
}


class _Unsupported(Exception):
    """Raised during codegen when an instruction cannot be specialized."""


def _alu_expr(decoded: DecodedProgram, pc: int) -> str:
    """Inline value expression for the ALU instruction at ``pc``."""
    op = decoded.program.instructions[pc].op
    template = _ALU_TEMPLATES.get(op)
    if template is None:
        raise _Unsupported(f"no ALU template for {op}")
    a = f"regs[{decoded.rs1[pc]}]"
    if decoded.kind[pc] == K_ALU_R:
        b = f"regs[{decoded.rs2[pc]}]"
    else:
        b = f"({decoded.imm[pc]})"
    return template(a, b)


def _branch_expr(decoded: DecodedProgram, pc: int) -> str:
    """Inline taken-predicate expression for the branch at ``pc``."""
    op = decoded.program.instructions[pc].op
    cmp = _BRANCH_OPS.get(op)
    if cmp is None:
        raise _Unsupported(f"no branch template for {op}")
    return f"regs[{decoded.rs1[pc]}] {cmp} regs[{decoded.rs2[pc]}]"


def _addr_expr(decoded: DecodedProgram, pc: int) -> str:
    imm = decoded.imm[pc]
    if imm:
        return f"regs[{decoded.rs1[pc]}] + ({imm})"
    return f"regs[{decoded.rs1[pc]}]"


class CompiledBlocks:
    """A compiled program variant: bind factory plus per-block metadata.

    Attributes:
        bind: ``bind(ctx) -> {leader_pc: (fn, length, index)}``.
        starts / lengths: per-block leader PC and instruction count.
        loads / stores / branches: static per-block event counts, so the
            dispatcher recovers dynamic totals from per-block execution
            counts instead of bumping counters inside the hot code.
        max_len: longest block (the dispatcher's budget guard).
        source: the generated Python source (for tests and debugging).
        cache_key: the code-cache key this compilation is stored under
            (``None`` when the cache is disabled).
        validated: translation validation has proved this source clean
            (either this process or a previous one, via the cache).
        from_cache: the source came from the persistent code cache
            (block discovery and emission were skipped).
    """

    __slots__ = (
        "bind",
        "starts",
        "lengths",
        "loads",
        "stores",
        "branches",
        "max_len",
        "source",
        "cache_key",
        "validated",
        "from_cache",
    )

    def __init__(
        self,
        bind,
        starts,
        lengths,
        loads,
        stores,
        branches,
        source,
        cache_key=None,
        validated=False,
        from_cache=False,
    ):
        self.bind = bind
        self.starts = starts
        self.lengths = lengths
        self.loads = loads
        self.stores = stores
        self.branches = branches
        self.max_len = max(lengths) if lengths else 0
        self.source = source
        self.cache_key = cache_key
        self.validated = validated
        self.from_cache = from_cache

    @property
    def num_blocks(self) -> int:
        return len(self.starts)


def _exec_module(source: str, filename: str):
    """``compile()`` + ``exec()`` generated source; returns ``_bind``."""
    namespace: Dict[str, object] = {}
    exec(compile(source, filename, "exec"), namespace)
    return namespace["_bind"]


def _finish(
    lines: List[str],
    blocks: List[Tuple[int, int]],
    counters: List[Tuple[int, int, int]],
    filename: str,
) -> Optional[CompiledBlocks]:
    """Assemble, compile and exec the generated module source."""
    table = ", ".join(
        f"{start}: (_b{start}, {end - start}, {index})"
        for index, (start, end) in enumerate(blocks)
    )
    lines.append(f"    return {{{table}}}")
    source = "\n".join(lines) + "\n"
    bind = _exec_module(source, filename)
    registry = obs_registry()
    registry.counter("engine.compile.programs").inc()
    registry.counter("engine.compile.blocks").inc(len(blocks))
    return CompiledBlocks(
        bind=bind,
        starts=[start for start, _ in blocks],
        lengths=[end - start for start, end in blocks],
        loads=[c[0] for c in counters],
        stores=[c[1] for c in counters],
        branches=[c[2] for c in counters],
        source=source,
    )


def _from_cached(
    payload: Dict, key: str, filename: str
) -> Optional[CompiledBlocks]:
    """Rebuild a :class:`CompiledBlocks` from a cached codegen payload.

    Any failure — source that no longer ``exec``s, metadata lists that
    do not line up — returns ``None`` so the caller falls through to a
    fresh emission (the bad entry is then overwritten by the fresh
    store under the same key).
    """
    try:
        source = payload["source"]
        starts = [int(v) for v in payload["starts"]]
        lengths = [int(v) for v in payload["lengths"]]
        loads = [int(v) for v in payload["loads"]]
        stores = [int(v) for v in payload["stores"]]
        branches = [int(v) for v in payload["branches"]]
        if not (
            isinstance(source, str)
            and len(starts)
            == len(lengths)
            == len(loads)
            == len(stores)
            == len(branches)
        ):
            return None
        bind = _exec_module(source, filename)
    except Exception:
        return None
    return CompiledBlocks(
        bind=bind,
        starts=starts,
        lengths=lengths,
        loads=loads,
        stores=stores,
        branches=branches,
        source=source,
        cache_key=key,
        validated=bool(payload.get("validated", False)),
        from_cache=True,
    )


#: Process-wide memo of finished compilations, keyed exactly like the
#: persistent code cache.  Compilation is deterministic, but a cold
#: pipeline builds many simulator instances per program (functional
#: trace, baseline, perfect-L2, every timing mode), and each instance
#: would otherwise re-emit and re-``exec`` the same module.  Bounded
#: FIFO so fuzz campaigns streaming thousands of distinct programs
#: through here cannot grow it without limit.
_MEMO_LIMIT = 128
_compile_memo: "OrderedDict[str, CompiledBlocks]" = OrderedDict()
# Guards every _compile_memo access: get/move_to_end, put/evict, clear.
# OrderedDict mutation is not atomic under concurrent callers (the serve
# daemon compiles from multiple worker threads), so an unguarded
# check-then-insert can double-insert and racing evictions can raise
# KeyError out of popitem/move_to_end.
_memo_lock = threading.Lock()


def _memo_get(key: str) -> Optional[CompiledBlocks]:
    with _memo_lock:
        memo = _compile_memo.get(key)
        if memo is not None:
            _compile_memo.move_to_end(key)
        return memo


def _memo_put(key: str, compiled: CompiledBlocks) -> None:
    with _memo_lock:
        _compile_memo[key] = compiled
        _compile_memo.move_to_end(key)
        while len(_compile_memo) > _MEMO_LIMIT:
            _compile_memo.popitem(last=False)


def _memo_len() -> int:
    with _memo_lock:
        return len(_compile_memo)


def clear_compile_memo() -> None:
    """Drop all memoized compilations (test / cold-benchmark seam)."""
    with _memo_lock:
        _compile_memo.clear()


# Per-key in-flight compilation guard.  Threads compiling *different*
# programs proceed in parallel; threads racing on the *same* key
# serialize, so the second one finds the first's result in the memo and
# the module is emitted/exec'd exactly once per key.
_inflight_lock = threading.Lock()
_inflight: Dict[str, List] = {}  # key -> [lock, waiter_count]


@contextmanager
def _compile_guard(key: str) -> Iterator[None]:
    with _inflight_lock:
        entry = _inflight.get(key)
        if entry is None:
            entry = [threading.Lock(), 0]
            _inflight[key] = entry
        entry[1] += 1
    entry[0].acquire()
    try:
        yield
    finally:
        entry[0].release()
        with _inflight_lock:
            entry[1] -= 1
            if entry[1] == 0 and _inflight.get(key) is entry:
                del _inflight[key]


def _compile_key(
    decoded: DecodedProgram,
    target: str,
    variant: Dict,
    only_blocks: Optional[Sequence[int]],
) -> str:
    """Content-addressed key for one compilation.

    Identical to :meth:`repro.engine.codecache.CodeCache.key` (same
    ``stable_key`` parts), so the in-process memo and the persistent
    cache index the same entries.
    """
    from repro.engine.codecache import CODEGEN_SCHEMA_VERSION
    from repro.harness.artifacts import program_digest, stable_key

    return stable_key(
        "codegen",
        program=program_digest(decoded.program),
        codegen_schema=CODEGEN_SCHEMA_VERSION,
        target=target,
        variant=variant,
        only_blocks=(
            sorted(only_blocks) if only_blocks is not None else None
        ),
    )


def _consult_code_cache(
    key: str,
    filename: str,
) -> Tuple[Optional[object], Optional[CompiledBlocks]]:
    """Memo and code-cache lookup shared by both compilers.

    Returns ``(cache, compiled)`` for the caller-computed ``key`` (see
    :func:`_compile_key`).  The in-process memo is consulted first (no
    disk, no counters).  On a disk hit the rebuilt compilation is
    memoized for the next simulator instance; on a full miss the caller
    emits fresh source and stores it under ``key``.
    """
    from repro.engine.codecache import get_code_cache

    memo = _memo_get(key)
    if memo is not None:
        return get_code_cache(), memo
    cache = get_code_cache()
    if cache is None:
        return None, None
    payload = cache.load(key)
    if payload is not None:
        compiled = _from_cached(payload, key, filename)
        if compiled is not None:
            _memo_put(key, compiled)
            return cache, compiled
    return cache, None


# ----------------------------------------------------------------------
# Functional engine codegen
# ----------------------------------------------------------------------


def compile_functional(
    decoded: DecodedProgram,
    tracing: bool,
    caching: bool,
    only_blocks: Optional[Sequence[int]] = None,
) -> Optional[CompiledBlocks]:
    """Compile a functional-simulation variant of ``decoded``.

    Block functions take ``(regs, lw)`` (architectural registers and
    the last-writer table) and return the next PC, or -1 for ``halt``.
    Everything else — memory, hierarchy, trace, the last-store map —
    is closed over at bind time.  Returns ``None`` on fallback.

    ``only_blocks`` restricts emission to blocks whose leader PC is in
    the set (the tiered engine compiles just its hot subset); the
    dispatch table then covers only those leaders and the dispatcher
    interprets everything else.  Generated source is served from and
    stored to the persistent code cache when one is enabled.
    """
    n = len(decoded)
    if not n or n > MAX_PROGRAM:
        return None
    filename = "<repro-compiled-functional>"
    cache_key = _compile_key(
        decoded, "functional", {"tracing": tracing, "caching": caching}, only_blocks
    )
    with _compile_guard(cache_key):
        cache, cached = _consult_code_cache(cache_key, filename)
        if cached is not None:
            return cached
        blocks = discover_blocks(decoded)
        if only_blocks is not None:
            only = frozenset(only_blocks)
            blocks = [b for b in blocks if b[0] in only]
            if not blocks:
                return None
        lines = [
            "def _bind(ctx):",
            "    mem_load = ctx['mem_load']",
            "    mem_store = ctx['mem_store']",
            "    words = ctx['words']",
            "    words_get = words.get",
        ]
        if caching:
            lines.append("    hier_access = ctx['hier_access']")
            lines.append("    llc = ctx['llc']")
        if tracing:
            lines.append("    tbuf = ctx['trace_buf']")
            lines.append("    tb_a = tbuf.append")
            lines.append("    tb_e = tbuf.extend")
            lines.append("    tb_len = tbuf.__len__")
            lines.append("    last_store = ctx['last_store']")
            lines.append("    ls_get = last_store.get")
        counters: List[Tuple[int, int, int]] = []
        try:
            for start, end in blocks:
                counters.append(
                    _emit_functional_block(decoded, start, end, tracing, caching, lines)
                )
        except _Unsupported:
            return None
        compiled = _finish(lines, blocks, counters, filename)
        if compiled is not None:
            _memo_put(cache_key, compiled)
            if cache is not None:
                compiled.cache_key = cache_key
                cache.store(
                    cache_key,
                    compiled.source,
                    compiled.starts,
                    compiled.lengths,
                    compiled.loads,
                    compiled.stores,
                    compiled.branches,
                )
        return compiled


def _emit_mem_load(rd: int, out: List[str], addr: str = "a") -> None:
    """Value read at ``addr``: aligned addresses hit the word dict
    directly; the misaligned path calls the real method (which raises
    the same :class:`~repro.memory.main_memory.MemoryAlignmentError`
    the interpreter would)."""
    if _ALIGN_MASK is None:
        out.append(f"        {'v = ' if rd else ''}mem_load({addr})")
        return
    out.append(f"        if {addr} & {_ALIGN_MASK}:")
    out.append(f"            mem_load({addr})")
    if rd:
        out.append(f"        v = words_get({addr}, 0)")


def _emit_mem_store(value_expr: str, out: List[str], addr: str = "a") -> None:
    if _ALIGN_MASK is None:
        out.append(f"        mem_store({addr}, {value_expr})")
        return
    out.append(f"        if {addr} & {_ALIGN_MASK}:")
    out.append(f"            mem_store({addr}, {value_expr})")
    out.append(f"        words[{addr}] = {value_expr}")


def _emit_functional_block(
    decoded: DecodedProgram,
    start: int,
    end: int,
    tracing: bool,
    caching: bool,
    out: List[str],
) -> Tuple[int, int, int]:
    kind = decoded.kind
    rd_arr = decoded.rd
    rs1_arr = decoded.rs1
    rs2_arr = decoded.rs2
    out.append(f"    def _b{start}(regs, lw):")
    body_at = len(out)
    loads = stores = branches = 0
    terminated = False
    emit = out.append
    # Traced blocks batch their records: every instruction contributes
    # one record source string to ``recs`` and the whole block flushes
    # in a single buffer ``extend`` just before its (sole, terminator)
    # return — or the fall-through end.  Record ``j`` of the block
    # lands at buffer index ``idx0 + j``, exactly what the
    # interpreter's per-record ``append`` would have returned, so
    # last-writer updates are deferred to the flush and in-block
    # dependencies are folded to ``idx0 + <offset>`` at compile time.
    # Values a record needs at flush time (addresses, hit levels,
    # memory dependencies) are snapshotted into per-instruction locals
    # (``a3``, ``lvl3``, ``m3``) so later instructions cannot clobber
    # them; register reads never appear in records.
    recs: List[str] = []
    lwmap: Dict[int, int] = {}

    def lw_expr(r: int) -> str:
        j = lwmap.get(r)
        if j is None:
            return f"lw[{r}]"
        return "idx0" if j == 0 else f"idx0 + {j}"

    def flush() -> None:
        if len(recs) == 1:
            emit(f"        tb_a({recs[0]})")
        elif recs:
            emit(f"        tb_e(({', '.join(recs)}))")
        for r in sorted(lwmap):
            j = lwmap[r]
            emit(f"        lw[{r}] = idx0" + (f" + {j}" if j else ""))

    if tracing and end > start:
        emit("        idx0 = tb_len()")
    for pc in range(start, end):
        k = kind[pc]
        rd = rd_arr[pc]
        rs1 = rs1_arr[pc]
        rs2 = rs2_arr[pc]
        j = pc - start
        if k == K_ALU_R or k == K_ALU_I:
            if tracing:
                dep2 = lw_expr(rs2) if k == K_ALU_R else "-1"
                recs.append(
                    f"({pc}, -1, 0, {lw_expr(rs1)}, {dep2}, -1, False)"
                )
            if rd:
                emit(f"        regs[{rd}] = {_alu_expr(decoded, pc)}")
                if tracing:
                    lwmap[rd] = j
        elif k == K_LOAD:
            loads += 1
            a = f"a{j}" if tracing else "a"
            emit(f"        {a} = {_addr_expr(decoded, pc)}")
            _emit_mem_load(rd, out, addr=a)
            if caching:
                lvl = f"lvl{j}" if tracing else "lvl"
                emit(f"        {lvl} = hier_access({a})")
                emit(f"        llc[{lvl}] += 1")
            if tracing:
                lvl_src = f"lvl{j}" if caching else "0"
                emit(f"        m{j} = ls_get({a}, -1)")
                recs.append(
                    f"({pc}, {a}, {lvl_src}, {lw_expr(rs1)}, -1, "
                    f"m{j}, False)"
                )
            if rd:
                emit(f"        regs[{rd}] = v")
                if tracing:
                    lwmap[rd] = j
        elif k == K_STORE:
            stores += 1
            a = f"a{j}" if tracing else "a"
            emit(f"        {a} = {_addr_expr(decoded, pc)}")
            _emit_mem_store(f"regs[{rs2}]", out, addr=a)
            if caching:
                emit(f"        hier_access({a}, True)")
            if tracing:
                own = "idx0" if j == 0 else f"idx0 + {j}"
                emit(f"        last_store[{a}] = {own}")
                recs.append(
                    f"({pc}, {a}, 0, {lw_expr(rs1)}, {lw_expr(rs2)}, "
                    "-1, False)"
                )
        elif k == K_BRANCH:
            branches += 1
            emit(f"        t = {_branch_expr(decoded, pc)}")
            if tracing:
                recs.append(
                    f"({pc}, -1, 0, {lw_expr(rs1)}, {lw_expr(rs2)}, -1, t)"
                )
                flush()
            emit(f"        return {decoded.target[pc]} if t else {pc + 1}")
            terminated = True
        elif k == K_JUMP:
            branches += 1
            if tracing:
                recs.append(f"({pc}, -1, 0, -1, -1, -1, True)")
                flush()
            emit(f"        return {decoded.target[pc]}")
            terminated = True
        elif k == K_JAL:
            branches += 1
            if tracing:
                recs.append(f"({pc}, -1, 0, -1, -1, -1, True)")
            if rd:
                emit(f"        regs[{rd}] = {pc + 1}")
                if tracing:
                    lwmap[rd] = j
            if tracing:
                flush()
            emit(f"        return {decoded.target[pc]}")
            terminated = True
        elif k == K_JR:
            branches += 1
            if tracing:
                recs.append(f"({pc}, -1, 0, {lw_expr(rs1)}, -1, -1, True)")
                flush()
            emit(f"        return regs[{rs1}]")
            terminated = True
        elif k == K_HALT:
            if tracing:
                recs.append(f"({pc}, -1, 0, -1, -1, -1, False)")
                flush()
            emit("        return -1")
            terminated = True
        elif k == K_NOP:
            if tracing:
                recs.append(f"({pc}, -1, 0, -1, -1, -1, False)")
        else:
            raise _Unsupported(f"unknown kind {k} at pc {pc}")
    if not terminated:
        if tracing:
            flush()
        out.append(f"        return {end}")
    if len(out) == body_at:  # fully empty body (can't happen, but safe)
        out.append("        pass")
    return loads, stores, branches


# ----------------------------------------------------------------------
# Timing engine codegen
# ----------------------------------------------------------------------


def compile_timing(
    decoded: DecodedProgram,
    *,
    window: int,
    bw_seq: int,
    dispatch_latency: int,
    mispredict_penalty: int,
    forward_latency: int,
    launching: bool,
    stealing: bool,
    prefetching: bool,
    trigger_pcs: frozenset,
    hinted_pcs: frozenset,
    only_blocks: Optional[Sequence[int]] = None,
) -> Optional[CompiledBlocks]:
    """Compile a timing-simulation variant of ``decoded``.

    Block functions take ``(executed, fetch_cycle, cap_used,
    last_retire, regs, rdy)`` and return the same scalars (plus the
    next PC) so the dispatcher can keep the hot state in locals.  Rare
    events (L1 misses, mispredictions, hint coverage) tally into a
    shared 3-slot list; frequent per-instruction counts are recovered
    statically from block execution counts.  Returns ``None`` on
    fallback.

    ``only_blocks`` restricts emission to blocks whose leader PC is in
    the set (tiered hot subset); generated source is served from and
    stored to the persistent code cache when one is enabled.
    """
    n = len(decoded)
    if not n or n > MAX_PROGRAM:
        return None
    filename = "<repro-compiled-timing>"
    cache_key = _compile_key(
        decoded,
        "timing",
        {
            "window": window,
            "bw_seq": bw_seq,
            "dispatch_latency": dispatch_latency,
            "mispredict_penalty": mispredict_penalty,
            "forward_latency": forward_latency,
            "launching": launching,
            "stealing": stealing,
            "prefetching": prefetching,
            "trigger_pcs": sorted(trigger_pcs),
            "hinted_pcs": sorted(hinted_pcs),
        },
        only_blocks,
    )
    with _compile_guard(cache_key):
        cache, cached = _consult_code_cache(cache_key, filename)
        if cached is not None:
            return cached
        blocks = discover_blocks(
            decoded, extra_leaders=sorted(trigger_pcs) if launching else ()
        )
        if only_blocks is not None:
            only = frozenset(only_blocks)
            blocks = [b for b in blocks if b[0] in only]
            if not blocks:
                return None
        lines = [
            "def _bind(ctx):",
            "    ring = ctx['ring']",
            "    sq = ctx['store_queue']",
            "    sq_get = sq.get",
            "    predict = ctx['predict']",
            "    predict_ind = ctx['predict_ind']",
            "    mt = ctx['mt_access']",
            "    mem_load = ctx['mem_load']",
            "    mem_store = ctx['mem_store']",
            "    words = ctx['words']",
            "    words_get = words.get",
            "    mexp = ctx['miss_exposure']",
            "    tallies = ctx['tallies']",
        ]
        if stealing:
            lines.append("    sget = ctx['stolen'].get")
        if launching:
            lines.append("    trig = ctx['trig']")
            lines.append("    launch = ctx['launch']")
            if hinted_pcs:
                lines.append("    bh = ctx['branch_hints']")
                lines.append("    bh_get = bh.get")
                lines.append("    bc = ctx['branch_counts']")
                lines.append("    bc_get = bc.get")
        if prefetching:
            lines.append("    observe = ctx['observe']")
            lines.append("    pt = ctx['pt_access']")
        ctx = _TimingCtx(
            window=window,
            bw_seq=bw_seq,
            dispatch_latency=dispatch_latency,
            mispredict_penalty=mispredict_penalty,
            forward_latency=forward_latency,
            launching=launching,
            stealing=stealing,
            prefetching=prefetching,
            trigger_pcs=trigger_pcs,
            hinted_pcs=hinted_pcs,
        )
        counters: List[Tuple[int, int, int]] = []
        try:
            for start, end in blocks:
                counters.append(_emit_timing_block(decoded, start, end, ctx, lines))
        except _Unsupported:
            return None
        compiled = _finish(lines, blocks, counters, filename)
        if compiled is not None:
            _memo_put(cache_key, compiled)
            if cache is not None:
                compiled.cache_key = cache_key
                cache.store(
                    cache_key,
                    compiled.source,
                    compiled.starts,
                    compiled.lengths,
                    compiled.loads,
                    compiled.stores,
                    compiled.branches,
                )
        return compiled


class _TimingCtx:
    """Compile-time constants threaded through timing codegen."""

    __slots__ = (
        "window",
        "bw_seq",
        "dispatch_latency",
        "mispredict_penalty",
        "forward_latency",
        "launching",
        "stealing",
        "prefetching",
        "trigger_pcs",
        "hinted_pcs",
    )

    def __init__(self, **kw):
        for name, value in kw.items():
            setattr(self, name, value)


def _emit_timing_prologue(ctx: _TimingCtx, out: List[str]) -> None:
    """Fetch-bandwidth and window accounting for one instruction."""
    out.append("        executed += 1")
    if ctx.window & (ctx.window - 1) == 0:
        out.append(f"        rs = executed & {ctx.window - 1}")
    else:
        out.append(f"        rs = executed % {ctx.window}")
    out.append("        ws = ring[rs]")
    out.append("        if ws > fetch_cycle:")
    out.append("            fetch_cycle = ws")
    out.append("            cap_used = 0")
    if ctx.stealing:
        out.append(
            f"        while cap_used >= {ctx.bw_seq} - sget(fetch_cycle, 0):"
        )
    else:
        # With no slot stealing, cap_used never exceeds bw_seq, so the
        # interpreter's while-loop runs at most once.
        out.append(f"        if cap_used >= {ctx.bw_seq}:")
    out.append("            fetch_cycle += 1")
    out.append("            cap_used = 0")
    out.append("        cap_used += 1")
    out.append(f"        disp = fetch_cycle + {ctx.dispatch_latency}")


def _emit_retire(out: List[str]) -> None:
    out.append("        if complete < last_retire:")
    out.append("            complete = last_retire")
    out.append("        last_retire = complete")
    out.append("        ring[rs] = complete")


def _emit_trigger(ctx: _TimingCtx, pc: int, out: List[str]) -> None:
    if ctx.launching and pc in ctx.trigger_pcs:
        out.append(f"        w = trig[0].get({pc})")
        out.append("        if w is not None:")
        out.append("            launch(w, disp)")


_RETURN = "executed, fetch_cycle, cap_used, last_retire"


def _emit_timing_block(
    decoded: DecodedProgram,
    start: int,
    end: int,
    ctx: _TimingCtx,
    out: List[str],
) -> Tuple[int, int, int]:
    kind = decoded.kind
    rd_arr = decoded.rd
    rs1_arr = decoded.rs1
    rs2_arr = decoded.rs2
    lat_arr = decoded.latency
    out.append(
        f"    def _b{start}(executed, fetch_cycle, cap_used, last_retire, "
        "regs, rdy):"
    )
    loads = stores = branches = 0
    terminated = False
    for pc in range(start, end):
        k = kind[pc]
        rd = rd_arr[pc]
        rs1 = rs1_arr[pc]
        rs2 = rs2_arr[pc]
        emit = out.append
        _emit_timing_prologue(ctx, out)
        if k == K_ALU_R:
            emit(f"        ready = rdy[{rs1}]")
            emit(f"        r2 = rdy[{rs2}]")
            emit("        if r2 > ready:")
            emit("            ready = r2")
            emit("        if disp > ready:")
            emit("            ready = disp")
            emit(f"        complete = ready + {lat_arr[pc]}")
            if rd:
                emit(f"        regs[{rd}] = {_alu_expr(decoded, pc)}")
                emit(f"        rdy[{rd}] = complete")
        elif k == K_ALU_I:
            emit(f"        ready = rdy[{rs1}]")
            emit("        if disp > ready:")
            emit("            ready = disp")
            emit(f"        complete = ready + {lat_arr[pc]}")
            if rd:
                emit(f"        regs[{rd}] = {_alu_expr(decoded, pc)}")
                emit(f"        rdy[{rd}] = complete")
        elif k == K_LOAD:
            loads += 1
            emit(f"        a = {_addr_expr(decoded, pc)}")
            _emit_mem_load(rd, out)
            emit(f"        ready = rdy[{rs1}]")
            emit("        if disp > ready:")
            emit("            ready = disp")
            emit("        issue = ready + 1")
            emit("        fw = sq_get(a)")
            emit("        if fw is not None:")
            emit("            dr = fw[0]")
            emit(
                "            complete = (dr if dr > issue else issue)"
                f" + {ctx.forward_latency}"
            )
            emit("        else:")
            emit("            lvl, complete = mt(a, issue)")
            emit("            if lvl != 1:")
            emit("                tallies[0] += 1")
            emit("            if lvl == 3:")
            emit(f"                e = mexp.get({pc})")
            emit("                if e is None:")
            emit("                    e = [0, 0]")
            emit(f"                    mexp[{pc}] = e")
            emit("                e[0] += 1")
            emit("                x = complete - last_retire")
            emit("                if x > 0:")
            emit("                    e[1] += x")
            if ctx.prefetching:
                emit(f"            for tgt in observe({pc}, a):")
                emit("                pt(tgt, issue)")
            if rd:
                emit(f"        regs[{rd}] = v")
                emit(f"        rdy[{rd}] = complete")
        elif k == K_STORE:
            stores += 1
            emit(f"        a = {_addr_expr(decoded, pc)}")
            _emit_mem_store(f"regs[{rs2}]", out)
            emit(f"        ready = rdy[{rs1}]")
            emit("        if disp > ready:")
            emit("            ready = disp")
            emit("        complete = ready + 1")
            emit("        lvl, _c = mt(a, complete, True)")
            emit("        if lvl != 1:")
            emit("            tallies[0] += 1")
            emit("        if a in sq:")
            emit("            del sq[a]")
            emit(f"        r2 = rdy[{rs2}]")
            emit(
                "        sq[a] = ((complete if complete > r2 else r2), "
                f"regs[{rs2}])"
            )
            emit("        if len(sq) > 64:")
            emit("            del sq[next(iter(sq))]")
        elif k == K_BRANCH:
            branches += 1
            target = decoded.target[pc]
            emit(f"        t = {_branch_expr(decoded, pc)}")
            emit(f"        ready = rdy[{rs1}]")
            emit(f"        r2 = rdy[{rs2}]")
            emit("        if r2 > ready:")
            emit("            ready = r2")
            emit("        if disp > ready:")
            emit("            ready = disp")
            emit("        complete = ready + 1")
            hinted = ctx.launching and pc in ctx.hinted_pcs
            if hinted:
                emit(f"        inst = bc_get({pc}, 0)")
                emit(f"        bc[{pc}] = inst + 1")
                emit(f"        pp = bh_get({pc})")
                emit(
                    "        hint = pp.pop(inst, None) "
                    "if pp is not None else None"
                )
            emit(f"        if not predict({pc}, t, {target}):")
            emit("            tallies[1] += 1")
            if hinted:
                emit(
                    "            if hint is not None and hint[0] <= "
                    "fetch_cycle and hint[1] == (1 if t else 0):"
                )
                emit("                tallies[2] += 1")
                emit("            else:")
                emit(f"                fetch_cycle = complete + "
                     f"{ctx.mispredict_penalty}")
                emit("                cap_used = 0")
            else:
                emit(
                    f"            fetch_cycle = complete + "
                    f"{ctx.mispredict_penalty}"
                )
                emit("            cap_used = 0")
            _emit_retire(out)
            _emit_trigger(ctx, pc, out)
            emit(f"        return ({target} if t else {pc + 1}), {_RETURN}")
            terminated = True
            continue
        elif k == K_JUMP:
            branches += 1
            emit("        complete = disp")
            _emit_retire(out)
            _emit_trigger(ctx, pc, out)
            emit(f"        return {decoded.target[pc]}, {_RETURN}")
            terminated = True
            continue
        elif k == K_JAL:
            branches += 1
            emit("        complete = disp")
            if rd:
                emit(f"        regs[{rd}] = {pc + 1}")
                emit(f"        rdy[{rd}] = complete")
            _emit_retire(out)
            _emit_trigger(ctx, pc, out)
            emit(f"        return {decoded.target[pc]}, {_RETURN}")
            terminated = True
            continue
        elif k == K_JR:
            branches += 1
            emit(f"        ready = rdy[{rs1}]")
            emit("        if disp > ready:")
            emit("            ready = disp")
            emit("        complete = ready + 1")
            emit(f"        npc = regs[{rs1}]")
            emit(f"        if not predict_ind({pc}, npc):")
            emit("            tallies[1] += 1")
            emit(f"            fetch_cycle = complete + {ctx.mispredict_penalty}")
            emit("            cap_used = 0")
            _emit_retire(out)
            _emit_trigger(ctx, pc, out)
            emit(f"        return npc, {_RETURN}")
            terminated = True
            continue
        elif k == K_HALT:
            # The interpreter updates the retire ring and breaks before
            # the launch check; mirror that exactly.
            emit("        complete = disp")
            emit("        if complete > last_retire:")
            emit("            last_retire = complete")
            emit("        ring[rs] = last_retire")
            emit(f"        return -1, {_RETURN}")
            terminated = True
            continue
        elif k == K_NOP:
            emit("        complete = disp")
        else:
            raise _Unsupported(f"unknown kind {k} at pc {pc}")
        _emit_retire(out)
        _emit_trigger(ctx, pc, out)
    if not terminated:
        out.append(f"        return {end}, {_RETURN}")
    return loads, stores, branches
