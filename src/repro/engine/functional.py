"""Functional simulator: executes a program and emits a dynamic trace.

This is the paper's "functional cache simulator [that] generates program
traces": it runs the program to completion (or an instruction limit) on
a :class:`~repro.memory.main_memory.MainMemory`, classifies every load
against a :class:`~repro.memory.hierarchy.FunctionalHierarchy`, and
records register and memory dependence edges so the slicer can walk
backward slices without re-executing anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.engine.decode import (
    DecodedProgram,
    K_ALU_I,
    K_ALU_R,
    K_BRANCH,
    K_HALT,
    K_JAL,
    K_JR,
    K_JUMP,
    K_LOAD,
    K_STORE,
)
from repro.engine.sampler import CyclicSampler, Phase
from repro.engine.trace import Trace
from repro.isa.program import Program
from repro.isa.registers import NUM_REGS
from repro.memory.hierarchy import FunctionalHierarchy, HierarchyConfig
from repro.memory.main_memory import MainMemory


class ExecutionLimitExceeded(Exception):
    """Raised when a program fails to halt within a hard safety limit."""


@dataclass
class FunctionalResult:
    """Output of one functional simulation run.

    Attributes:
        trace: the dynamic trace (``None`` if tracing was disabled).
        instructions: dynamic instructions executed (all phases).
        traced_instructions: instructions recorded in the trace.
        halted: True if the program executed ``halt``; False if it was
            stopped by ``max_instructions``.
        loads / stores / branches: dynamic counts (all phases).
        l1_misses / l2_misses: load+store misses seen by the hierarchy
            (warm and on phases only).
        registers: final architectural register values.
        memory: final memory state.
    """

    trace: Optional[Trace]
    instructions: int
    traced_instructions: int
    halted: bool
    loads: int
    stores: int
    branches: int
    l1_misses: int
    l2_misses: int
    registers: List[int]
    memory: MainMemory
    load_level_counts: Dict[int, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Serialize to a JSON-compatible dict (full fidelity).

        The trace is packed through :meth:`Trace.to_dict`; the sparse
        final memory image is stored as sorted ``[addr, value]`` pairs.
        Used by the harness artifact cache so warm sweeps skip the
        functional simulation entirely.
        """
        return {
            "trace": self.trace.to_dict() if self.trace is not None else None,
            "instructions": self.instructions,
            "traced_instructions": self.traced_instructions,
            "halted": self.halted,
            "loads": self.loads,
            "stores": self.stores,
            "branches": self.branches,
            "l1_misses": self.l1_misses,
            "l2_misses": self.l2_misses,
            "registers": list(self.registers),
            "memory": sorted(self.memory.snapshot().items()),
            "load_level_counts": {
                str(level): count
                for level, count in sorted(self.load_level_counts.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FunctionalResult":
        """Rebuild from :meth:`to_dict` output."""
        memory = MainMemory()
        memory.restore({int(addr): int(value) for addr, value in data["memory"]})
        trace_data = data["trace"]
        return cls(
            trace=Trace.from_dict(trace_data) if trace_data is not None else None,
            instructions=int(data["instructions"]),
            traced_instructions=int(data["traced_instructions"]),
            halted=bool(data["halted"]),
            loads=int(data["loads"]),
            stores=int(data["stores"]),
            branches=int(data["branches"]),
            l1_misses=int(data["l1_misses"]),
            l2_misses=int(data["l2_misses"]),
            registers=[int(r) for r in data["registers"]],
            memory=memory,
            load_level_counts={
                int(level): int(count)
                for level, count in data["load_level_counts"].items()
            },
        )


class FunctionalSimulator:
    """Executes programs functionally with optional tracing and caches.

    Args:
        program: the linked program to run.
        hierarchy_config: cache geometry; if ``None`` no cache model is
            attached and all loads are recorded at level 0.
    """

    def __init__(
        self,
        program: Program,
        hierarchy_config: Optional[HierarchyConfig] = None,
    ) -> None:
        self.program = program
        self.decoded = DecodedProgram(program)
        self.hierarchy_config = hierarchy_config

    def run(
        self,
        max_instructions: int = 50_000_000,
        collect_trace: bool = True,
        sampler: Optional[CyclicSampler] = None,
        strict_limit: bool = False,
    ) -> FunctionalResult:
        """Run the program to ``halt`` or ``max_instructions``.

        Args:
            max_instructions: stop after this many dynamic instructions.
            collect_trace: record a :class:`Trace` of ON-phase records.
            sampler: optional cyclic off/warm/on schedule.
            strict_limit: if True, hitting ``max_instructions`` raises
                :class:`ExecutionLimitExceeded` instead of returning.
        """
        decoded = self.decoded
        kind = decoded.kind
        rd_arr = decoded.rd
        rs1_arr = decoded.rs1
        rs2_arr = decoded.rs2
        imm_arr = decoded.imm
        target_arr = decoded.target
        alu_arr = decoded.alu
        branch_arr = decoded.branch

        memory = MainMemory(self.program.data)
        hierarchy = (
            FunctionalHierarchy(self.hierarchy_config)
            if self.hierarchy_config is not None
            else None
        )
        trace = Trace(capacity=min(max_instructions, 1 << 18)) if collect_trace else None

        regs = [0] * NUM_REGS
        last_writer = [-1] * NUM_REGS
        last_store: Dict[int, int] = {}
        load_level_counts: Dict[int, int] = {1: 0, 2: 0, 3: 0}

        pc = 0
        executed = 0
        loads = stores = branches = 0
        halted = False

        mem_load = memory.load
        mem_store = memory.store
        hier_access = hierarchy.access if hierarchy is not None else None
        trace_append = trace.append if trace is not None else None
        sample_phase = sampler.phase if sampler is not None else None

        while executed < max_instructions:
            k = kind[pc]
            if sample_phase is not None:
                phase = sample_phase(executed)
                tracing = phase is Phase.ON and trace_append is not None
                caching = phase is not Phase.OFF and hier_access is not None
            else:
                tracing = trace_append is not None
                caching = hier_access is not None
            executed += 1
            next_pc = pc + 1

            if k == K_ALU_R:
                rs1 = rs1_arr[pc]
                rs2 = rs2_arr[pc]
                value = alu_arr[pc](regs[rs1], regs[rs2])
                rd = rd_arr[pc]
                idx = -1
                if tracing:
                    idx = trace_append(
                        pc, dep1=last_writer[rs1], dep2=last_writer[rs2]
                    )
                if rd:
                    regs[rd] = value
                    last_writer[rd] = idx
            elif k == K_ALU_I:
                rs1 = rs1_arr[pc]
                value = alu_arr[pc](regs[rs1], imm_arr[pc])
                rd = rd_arr[pc]
                idx = -1
                if tracing:
                    idx = trace_append(pc, dep1=last_writer[rs1])
                if rd:
                    regs[rd] = value
                    last_writer[rd] = idx
            elif k == K_LOAD:
                loads += 1
                rs1 = rs1_arr[pc]
                addr = regs[rs1] + imm_arr[pc]
                value = mem_load(addr)
                level = 0
                if caching:
                    level = int(hier_access(addr))
                    load_level_counts[level] += 1
                rd = rd_arr[pc]
                idx = -1
                if tracing:
                    idx = trace_append(
                        pc,
                        addr=addr,
                        level=level,
                        dep1=last_writer[rs1],
                        memdep=last_store.get(addr, -1),
                    )
                if rd:
                    regs[rd] = value
                    last_writer[rd] = idx
            elif k == K_STORE:
                stores += 1
                rs1 = rs1_arr[pc]
                rs2 = rs2_arr[pc]
                addr = regs[rs1] + imm_arr[pc]
                mem_store(addr, regs[rs2])
                if caching:
                    hier_access(addr, True)
                if tracing:
                    idx = trace_append(
                        pc,
                        addr=addr,
                        dep1=last_writer[rs1],
                        dep2=last_writer[rs2],
                    )
                    last_store[addr] = idx
                else:
                    last_store[addr] = -1
            elif k == K_BRANCH:
                branches += 1
                rs1 = rs1_arr[pc]
                rs2 = rs2_arr[pc]
                taken = branch_arr[pc](regs[rs1], regs[rs2])
                if tracing:
                    trace_append(
                        pc,
                        dep1=last_writer[rs1],
                        dep2=last_writer[rs2],
                        taken=taken,
                    )
                if taken:
                    next_pc = target_arr[pc]
            elif k == K_JUMP:
                branches += 1
                if tracing:
                    trace_append(pc, taken=True)
                next_pc = target_arr[pc]
            elif k == K_JAL:
                branches += 1
                rd = rd_arr[pc]
                idx = -1
                if tracing:
                    idx = trace_append(pc, taken=True)
                if rd:
                    regs[rd] = pc + 1
                    last_writer[rd] = idx
                next_pc = target_arr[pc]
            elif k == K_JR:
                branches += 1
                rs1 = rs1_arr[pc]
                if tracing:
                    trace_append(pc, dep1=last_writer[rs1], taken=True)
                next_pc = regs[rs1]
            elif k == K_HALT:
                if tracing:
                    trace_append(pc)
                halted = True
                break
            else:  # K_NOP
                if tracing:
                    trace_append(pc)

            pc = next_pc

        if not halted and strict_limit:
            raise ExecutionLimitExceeded(
                f"{self.program.name}: no halt within {max_instructions} "
                "instructions"
            )
        if trace is not None:
            trace.trim()
        return FunctionalResult(
            trace=trace,
            instructions=executed,
            traced_instructions=len(trace) if trace is not None else 0,
            halted=halted,
            loads=loads,
            stores=stores,
            branches=branches,
            l1_misses=hierarchy.l1.misses if hierarchy is not None else 0,
            l2_misses=hierarchy.l2.misses if hierarchy is not None else 0,
            registers=regs,
            memory=memory,
            load_level_counts=load_level_counts,
        )


def run_program(
    program: Program,
    hierarchy_config: Optional[HierarchyConfig] = None,
    max_instructions: int = 50_000_000,
    collect_trace: bool = True,
    sampler: Optional[CyclicSampler] = None,
) -> FunctionalResult:
    """One-shot convenience wrapper around :class:`FunctionalSimulator`."""
    sim = FunctionalSimulator(program, hierarchy_config)
    return sim.run(
        max_instructions=max_instructions,
        collect_trace=collect_trace,
        sampler=sampler,
    )
