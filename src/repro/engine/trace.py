"""Compact dynamic-trace storage.

A :class:`Trace` holds one dynamic record per executed instruction in
parallel numpy arrays.  This keeps multi-hundred-thousand-instruction
traces cheap (a few dozen bytes per record instead of a Python object)
while letting the slicer walk dependence edges with plain integer
indexing.

Per-record fields:

* ``pc`` — static PC of the instruction.
* ``addr`` — effective byte address for loads/stores, -1 otherwise.
* ``level`` — for loads, the :class:`~repro.memory.hierarchy.MemoryLevel`
  that satisfied the access (0 for non-loads).
* ``dep1`` / ``dep2`` — dynamic indices of the producers of the first
  and second register source operands (-1 if the value is a program
  live-in or the operand does not exist).
* ``memdep`` — for loads, the dynamic index of the most recent store to
  the same word (-1 if the value came from the initial data image).
* ``taken`` — for branches, 1 if taken.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple

import numpy as np


class TraceRecord(NamedTuple):
    """A single dynamic instruction record (convenience view)."""

    index: int
    pc: int
    addr: int
    level: int
    dep1: int
    dep2: int
    memdep: int
    taken: bool


class Trace:
    """Growable parallel-array trace.

    Args:
        capacity: initial capacity in records (grows by doubling).
    """

    def __init__(self, capacity: int = 1 << 16) -> None:
        capacity = max(16, capacity)
        self.pc = np.empty(capacity, dtype=np.int32)
        self.addr = np.empty(capacity, dtype=np.int64)
        self.level = np.empty(capacity, dtype=np.int8)
        self.dep1 = np.empty(capacity, dtype=np.int64)
        self.dep2 = np.empty(capacity, dtype=np.int64)
        self.memdep = np.empty(capacity, dtype=np.int64)
        self.taken = np.empty(capacity, dtype=np.int8)
        self.length = 0

    def __len__(self) -> int:
        return self.length

    def _grow(self) -> None:
        new_capacity = len(self.pc) * 2
        for name in ("pc", "addr", "level", "dep1", "dep2", "memdep", "taken"):
            old = getattr(self, name)
            grown = np.empty(new_capacity, dtype=old.dtype)
            grown[: self.length] = old[: self.length]
            setattr(self, name, grown)

    def append(
        self,
        pc: int,
        addr: int = -1,
        level: int = 0,
        dep1: int = -1,
        dep2: int = -1,
        memdep: int = -1,
        taken: bool = False,
    ) -> int:
        """Append one record; returns its dynamic index."""
        i = self.length
        if i >= len(self.pc):
            self._grow()
        self.pc[i] = pc
        self.addr[i] = addr
        self.level[i] = level
        self.dep1[i] = dep1
        self.dep2[i] = dep2
        self.memdep[i] = memdep
        self.taken[i] = taken
        self.length = i + 1
        return i

    def trim(self) -> None:
        """Release unused capacity (call once tracing is finished)."""
        for name in ("pc", "addr", "level", "dep1", "dep2", "memdep", "taken"):
            setattr(self, name, getattr(self, name)[: self.length].copy())

    def record(self, i: int) -> TraceRecord:
        """Return record ``i`` as a named tuple."""
        if not 0 <= i < self.length:
            raise IndexError(f"trace index out of range: {i}")
        return TraceRecord(
            index=i,
            pc=int(self.pc[i]),
            addr=int(self.addr[i]),
            level=int(self.level[i]),
            dep1=int(self.dep1[i]),
            dep2=int(self.dep2[i]),
            memdep=int(self.memdep[i]),
            taken=bool(self.taken[i]),
        )

    def __iter__(self) -> Iterator[TraceRecord]:
        for i in range(self.length):
            yield self.record(i)

    def static_counts(self, num_static: int) -> np.ndarray:
        """Dynamic execution count of every static PC."""
        return np.bincount(
            self.pc[: self.length], minlength=num_static
        ).astype(np.int64)

    def miss_indices(self, min_level: int) -> np.ndarray:
        """Dynamic indices of loads that missed to ``min_level`` or beyond."""
        return np.nonzero(self.level[: self.length] >= min_level)[0]

    #: Parallel-array field names, in serialization order.
    FIELDS = ("pc", "addr", "level", "dep1", "dep2", "memdep", "taken")

    def to_dict(self) -> dict:
        """Serialize to a JSON-compatible dict.

        Arrays are packed as base64 of their little-endian raw bytes so
        multi-hundred-thousand-record traces stay compact and cheap to
        round-trip (no per-record Python objects).
        """
        import base64

        payload: dict = {"length": self.length}
        for name in self.FIELDS:
            arr = getattr(self, name)[: self.length]
            arr = np.ascontiguousarray(arr, dtype=arr.dtype.newbyteorder("<"))
            payload[name] = {
                "dtype": arr.dtype.str,
                "data": base64.b64encode(arr.tobytes()).decode("ascii"),
            }
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "Trace":
        """Rebuild a trace from :meth:`to_dict` output."""
        import base64

        length = int(data["length"])
        trace = cls(capacity=max(length, 16))
        for name in cls.FIELDS:
            field = data[name]
            raw = base64.b64decode(field["data"])
            arr = np.frombuffer(raw, dtype=np.dtype(field["dtype"]))
            native = getattr(trace, name).dtype
            setattr(trace, name, arr.astype(native, copy=True))
        trace.length = length
        return trace
