"""Compact dynamic-trace storage.

A :class:`Trace` holds one dynamic record per executed instruction in
parallel numpy arrays.  This keeps multi-hundred-thousand-instruction
traces cheap (a few dozen bytes per record instead of a Python object)
while letting the slicer walk dependence edges with plain integer
indexing.

Internally the trace is built as a plain list of record tuples —
appending to a Python list is several times faster than seven numpy
scalar stores, and the simulators append once per executed instruction
— and converted to the parallel numpy arrays lazily, the first time a
column is read (or explicitly via :meth:`Trace.trim`).  The array
attributes (``trace.pc`` etc.) are properties backed by that
materialization, so consumers are unaffected by the buffering.

Per-record fields:

* ``pc`` — static PC of the instruction.
* ``addr`` — effective byte address for loads/stores, -1 otherwise.
* ``level`` — for loads, the :class:`~repro.memory.hierarchy.MemoryLevel`
  that satisfied the access (0 for non-loads).
* ``dep1`` / ``dep2`` — dynamic indices of the producers of the first
  and second register source operands (-1 if the value is a program
  live-in or the operand does not exist).
* ``memdep`` — for loads, the dynamic index of the most recent store to
  the same word (-1 if the value came from the initial data image).
* ``taken`` — for branches, 1 if taken.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, NamedTuple, Optional, Tuple

import numpy as np


class TraceRecord(NamedTuple):
    """A single dynamic instruction record (convenience view)."""

    index: int
    pc: int
    addr: int
    level: int
    dep1: int
    dep2: int
    memdep: int
    taken: bool


class Trace:
    """Growable record-tuple trace with lazy parallel-array views.

    Args:
        capacity: accepted for API compatibility; the record buffer is
            a plain list and sizes itself.
    """

    #: Parallel-array field names, in record/serialization order.
    FIELDS = ("pc", "addr", "level", "dep1", "dep2", "memdep", "taken")

    _DTYPES = {
        "pc": np.int32,
        "addr": np.int64,
        "level": np.int8,
        "dep1": np.int64,
        "dep2": np.int64,
        "memdep": np.int64,
        "taken": np.int8,
    }

    def __init__(self, capacity: int = 1 << 16) -> None:
        self._records: Optional[List[Tuple]] = []
        self._arrays: Optional[Dict[str, np.ndarray]] = None

    @property
    def length(self) -> int:
        if self._records is not None:
            return len(self._records)
        return len(self._arrays["pc"])

    def __len__(self) -> int:
        return self.length

    def append(
        self,
        pc: int,
        addr: int = -1,
        level: int = 0,
        dep1: int = -1,
        dep2: int = -1,
        memdep: int = -1,
        taken: bool = False,
    ) -> int:
        """Append one record; returns its dynamic index."""
        records = self._records
        if records is None:
            records = self._reopen()
        if self._arrays is not None:
            self._arrays = None
        records.append((pc, addr, level, dep1, dep2, memdep, taken))
        return len(records) - 1

    def extend(self, records: List[Tuple]) -> None:
        """Bulk-append pre-shaped ``(pc, addr, level, dep1, dep2,
        memdep, taken)`` record tuples.

        One list ``extend`` replaces per-record :meth:`append` calls;
        the compiled engine flushes each basic block's records through
        this path (or directly on :meth:`raw_buffer`).
        """
        buffer = self._records
        if buffer is None:
            buffer = self._reopen()
        if self._arrays is not None:
            self._arrays = None
        buffer.extend(records)

    def raw_buffer(self) -> List[Tuple]:
        """The live record-tuple buffer.

        The compiled engine appends ``(pc, addr, level, dep1, dep2,
        memdep, taken)`` tuples to it directly (skipping the
        :meth:`append` call per instruction); any previously
        materialized arrays are invalidated here.
        """
        if self._records is None:
            self._reopen()
        self._arrays = None
        return self._records

    def _reopen(self) -> List[Tuple]:
        """Rebuild the record buffer from materialized arrays."""
        records = list(
            zip(*(self._arrays[name].tolist() for name in self.FIELDS))
        )
        self._records = records
        return records

    def _materialize(self) -> Dict[str, np.ndarray]:
        arrays = self._arrays
        if arrays is None:
            records = self._records
            if records:
                # One 2-D conversion then per-column casts: measurably
                # faster than transposing the record tuples in Python.
                table = np.array(records, dtype=np.int64)
                arrays = {
                    name: table[:, i].astype(self._DTYPES[name])
                    for i, name in enumerate(self.FIELDS)
                }
            else:
                arrays = {
                    name: np.array((), dtype=self._DTYPES[name])
                    for name in self.FIELDS
                }
            self._arrays = arrays
        return arrays

    # -- parallel-array views -------------------------------------------

    @property
    def pc(self) -> np.ndarray:
        return self._materialize()["pc"]

    @property
    def addr(self) -> np.ndarray:
        return self._materialize()["addr"]

    @property
    def level(self) -> np.ndarray:
        return self._materialize()["level"]

    @property
    def dep1(self) -> np.ndarray:
        return self._materialize()["dep1"]

    @property
    def dep2(self) -> np.ndarray:
        return self._materialize()["dep2"]

    @property
    def memdep(self) -> np.ndarray:
        return self._materialize()["memdep"]

    @property
    def taken(self) -> np.ndarray:
        return self._materialize()["taken"]

    def trim(self) -> None:
        """Materialize the arrays and release the build buffer."""
        self._materialize()
        self._records = None

    def record(self, i: int) -> TraceRecord:
        """Return record ``i`` as a named tuple."""
        if not 0 <= i < self.length:
            raise IndexError(f"trace index out of range: {i}")
        if self._records is not None:
            pc, addr, level, dep1, dep2, memdep, taken = self._records[i]
        else:
            arrays = self._arrays
            pc, addr, level, dep1, dep2, memdep, taken = (
                arrays[name][i] for name in self.FIELDS
            )
        return TraceRecord(
            index=i,
            pc=int(pc),
            addr=int(addr),
            level=int(level),
            dep1=int(dep1),
            dep2=int(dep2),
            memdep=int(memdep),
            taken=bool(taken),
        )

    def __iter__(self) -> Iterator[TraceRecord]:
        for i in range(self.length):
            yield self.record(i)

    def static_counts(self, num_static: int) -> np.ndarray:
        """Dynamic execution count of every static PC."""
        return np.bincount(self.pc, minlength=num_static).astype(np.int64)

    def miss_indices(self, min_level: int) -> np.ndarray:
        """Dynamic indices of loads that missed to ``min_level`` or beyond."""
        return np.nonzero(self.level >= min_level)[0]

    def to_dict(self) -> dict:
        """Serialize to a JSON-compatible dict.

        Arrays are packed as base64 of their little-endian raw bytes so
        multi-hundred-thousand-record traces stay compact and cheap to
        round-trip (no per-record Python objects).
        """
        import base64

        payload: dict = {"length": self.length}
        for name in self.FIELDS:
            arr = getattr(self, name)
            arr = np.ascontiguousarray(arr, dtype=arr.dtype.newbyteorder("<"))
            payload[name] = {
                "dtype": arr.dtype.str,
                "data": base64.b64encode(arr.tobytes()).decode("ascii"),
            }
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "Trace":
        """Rebuild a trace from :meth:`to_dict` output."""
        import base64

        trace = cls()
        arrays: Dict[str, np.ndarray] = {}
        for name in cls.FIELDS:
            field = data[name]
            raw = base64.b64decode(field["data"])
            arr = np.frombuffer(raw, dtype=np.dtype(field["dtype"]))
            arrays[name] = arr.astype(cls._DTYPES[name], copy=True)
        trace._arrays = arrays
        trace._records = None
        return trace
