"""Persistent cache for generated engine source text.

Code generation is deterministic: for a given program content digest,
variant flags, and codegen schema version, ``compile_functional`` /
``compile_timing`` always emit the same module source.  That makes the
emitted text a content-addressed artifact like any other, so it rides
in the harness :class:`~repro.harness.artifacts.ArtifactCache` under a
dedicated ``codegen`` kind.  On a warm cache the compilers skip block
discovery and source emission entirely and go straight to
``compile()`` + ``exec()`` of the stored source — the dominant cold
cost of the compiled engine.

Translation-validation results ride alongside: when ``REPRO_VERIFY=1``
proves a compilation clean, the entry is re-stored with
``validated: true`` and later loads skip re-validation of the same
bytes.

Invalidation is by key, never in place: ``CODEGEN_SCHEMA_VERSION`` is
part of every key and must be bumped whenever the emitted source shape
or the payload layout changes, and the package version plus the
program content digest are hashed in by ``stable_key`` /
``program_digest``.

This module keeps its imports lazy (`repro.harness.artifacts` imports
into the harness package, which transitively imports the engine) and
deals only in payload dicts — it never imports the compiler.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

#: Bump whenever the emitted source shape or payload layout changes;
#: part of every codegen cache key.
CODEGEN_SCHEMA_VERSION = 1

#: Payload keys every cached codegen entry must carry.
_REQUIRED_FIELDS = (
    "source",
    "starts",
    "lengths",
    "loads",
    "stores",
    "branches",
    "validated",
)


class CodeCache:
    """Load/store generated module source through the artifact cache.

    Owns its own :class:`~repro.harness.artifacts.PerfCounters` (the
    harness counters account harness stages; engine compilations happen
    inside them) and publishes hit/miss counters to the metrics
    registry under ``engine.codegen.*``.
    """

    def __init__(self, artifacts: Any) -> None:
        from repro.harness.artifacts import PerfCounters

        self.artifacts = artifacts
        self.perf = PerfCounters()

    def key(
        self,
        program: Any,
        target: str,
        variant: Dict[str, Any],
        only_blocks: Optional[Sequence[int]] = None,
    ) -> str:
        """Stable key for one (program, target, variant) compilation."""
        from repro.harness.artifacts import program_digest

        return self.artifacts.key(
            "codegen",
            program=program_digest(program),
            codegen_schema=CODEGEN_SCHEMA_VERSION,
            target=target,
            variant=variant,
            only_blocks=(
                sorted(only_blocks) if only_blocks is not None else None
            ),
        )

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the cached codegen payload for ``key`` or ``None``.

        Counts a ``codegen`` disk hit or miss on the perf counters and
        on the ``engine.codegen.cache_hits`` / ``cache_misses`` registry
        counters (both registered on every consult so snapshots always
        carry the pair).  Structurally incomplete payloads — corrupt or
        written by other tooling — count as misses.
        """
        from repro.obs import get_registry

        registry = get_registry()
        hits = registry.counter("engine.codegen.cache_hits")
        misses = registry.counter("engine.codegen.cache_misses")
        payload = self.artifacts.load("codegen", key)
        if isinstance(payload, dict) and all(
            field in payload for field in _REQUIRED_FIELDS
        ):
            self.perf.disk_hit("codegen")
            hits.inc()
            return payload
        self.perf.miss("codegen")
        misses.inc()
        return None

    def store(
        self,
        key: str,
        source: str,
        starts: Sequence[int],
        lengths: Sequence[int],
        loads: Sequence[int],
        stores: Sequence[int],
        branches: Sequence[int],
        validated: bool = False,
    ) -> None:
        """Persist one generated module under ``key``."""
        self.artifacts.store(
            "codegen",
            key,
            {
                "source": source,
                "starts": list(starts),
                "lengths": list(lengths),
                "loads": list(loads),
                "stores": list(stores),
                "branches": list(branches),
                "validated": bool(validated),
            },
        )

    def mark_validated(self, compiled: Any) -> None:
        """Re-store ``compiled``'s entry with the validated flag set.

        Called after a clean translation-validation pass so warm loads
        of the same bytes skip re-validation.  A compilation that never
        went through the cache (no ``cache_key``) is left alone.
        """
        key = getattr(compiled, "cache_key", None)
        if key is None:
            return
        compiled.validated = True
        self.store(
            key,
            compiled.source,
            compiled.starts,
            compiled.lengths,
            compiled.loads,
            compiled.stores,
            compiled.branches,
            validated=True,
        )


_SINGLETON: List[Any] = []


def get_code_cache() -> Optional[CodeCache]:
    """The process-wide code cache, or ``None`` when disabled.

    Built once from ``ArtifactCache.from_env()`` (honouring
    ``REPRO_CACHE_DIR``, including the ``off`` values); tests switch
    cache roots by calling :func:`reset_code_cache` after changing the
    environment.
    """
    if not _SINGLETON:
        from repro.harness.artifacts import ArtifactCache

        artifacts = ArtifactCache.from_env()
        _SINGLETON.append(
            CodeCache(artifacts) if artifacts is not None else None
        )
    return _SINGLETON[0]


def reset_code_cache() -> None:
    """Drop the singleton so the next consult re-reads the environment.

    Also clears the compiler's in-process memo: callers reset to get a
    genuinely cold compilation path (tests, cold benchmarks), and a
    warm memo would otherwise serve compilations from before the
    reset.
    """
    _SINGLETON.clear()
    from repro.engine.compiler import clear_compile_memo

    clear_compile_memo()
