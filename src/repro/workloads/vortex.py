"""``vortex``-analogue: object-database lookups through deep indirection.

Vortex is an object-oriented database: each transaction resolves an
object id through an object table, follows the object to its attribute
block, and reads a field — three dependent loads with address
arithmetic in between.  The slices are long, which is why vortex is the
paper's example of a benchmark that keeps benefiting as scope/length
constraints relax beyond the defaults (Figure 4).
"""

from __future__ import annotations

from typing import Any, Dict

from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.workloads.common import DataBuilder

INPUTS: Dict[str, Dict[str, Any]] = {
    "train": dict(n_queries=2600, n_objects=12 * 1024, attr_words=48 * 1024, seed=91),
    "test": dict(n_queries=500, n_objects=512, attr_words=2048, seed=93),
}

_SOURCE = """
start:
    addi a0, zero, 0
    addi a1, zero, {n_queries}
    addi s0, zero, {queries_base}
loop:
    bge  a0, a1, done
    lw   t0, 0(s0)             # object id (sequential query stream)
    slli t1, t0, 2
    addi t1, t1, {objtable_base}
    lw   t2, 0(t1)             # obj ptr        (problem load, level 1)
    lw   t3, 8(t2)             # obj->attr_ptr  (problem load, level 2)
    lw   t4, 4(t2)             # obj->class
    andi t5, t4, 7             # field selector
    slli t5, t5, 2
    add  t6, t3, t5
    lw   u0, 0(t6)             # attr field     (problem load, level 3)
    add  s4, s4, u0
    xor  s5, s5, t4
    addi s0, s0, 4
    addi a0, a0, 1
    j    loop
done:
    halt
"""

_OBJ_WORDS = 4  # [reserved, class, attr_ptr, pad]


def build(n_queries: int, n_objects: int, attr_words: int, seed: int) -> Program:
    """Build the vortex analogue.

    Args:
        n_queries: object lookups performed.
        n_objects: objects in the database.
        attr_words: attribute arena size in words.
        seed: RNG seed.
    """
    data = DataBuilder(seed=seed)
    rng = data.rng
    queries_base = data.words(
        "queries", (rng.randrange(n_objects) for _ in range(n_queries))
    )
    # Object records, scattered: allocate object arena and a table of
    # pointers into it.
    obj_arena = data.region("objects", n_objects * _OBJ_WORDS)
    slots = list(range(n_objects))
    rng.shuffle(slots)
    attr_base = data.random_words("attrs", attr_words, 0, 1 << 16)
    obj_ptrs = []
    for obj_id in range(n_objects):
        addr = obj_arena + slots[obj_id] * _OBJ_WORDS * 4
        attr_ptr = attr_base + rng.randrange(max(1, attr_words - 8)) * 4
        data.image.store_words(
            addr, [0, rng.getrandbits(16), attr_ptr, 0]
        )
        obj_ptrs.append(addr)
    objtable_base = data.words("objtable", obj_ptrs)
    source = _SOURCE.format(
        n_queries=n_queries,
        queries_base=queries_base,
        objtable_base=objtable_base,
    )
    return assemble(source, data=data.image, name="vortex")
