"""``parser``-analogue: dictionary hashing under a wide instruction span.

The link-grammar parser hashes words into a large dictionary between
long stretches of parsing work.  The structure the paper calls out: the
miss computation itself is *sparse and small* (read a word, a few hash
instructions, probe), but it is spread across a wide dynamic window of
unrelated work — so parser is sensitive to the slicing **scope**, not
to p-thread length (Figure 4 discussion).

The analogue reads tokens sequentially, runs a block of independent
filler arithmetic (the "parsing"), then probes a large hash table with
a short mixing function of the token.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.workloads.common import DataBuilder

INPUTS: Dict[str, Dict[str, Any]] = {
    "train": dict(n_tokens=1800, table_words=64 * 1024, filler_blocks=12, seed=71),
    "test": dict(n_tokens=400, table_words=2048, filler_blocks=12, seed=73),
}

# One filler block: 4 independent ALU instructions (no memory).
_FILLER_BLOCK = """
    addi u0, u0, 3
    xor  u1, u1, u0
    slli u2, u0, 1
    add  u3, u3, u2
"""

_SOURCE_HEAD = """
start:
    addi a0, zero, 0
    addi a1, zero, {n_tokens}
    addi s0, zero, {tokens_base}
    addi t7, zero, {table_mask}
    addi s3, zero, 0x5bd1e995   # hash salt (loop-invariant)
loop:
    bge  a0, a1, done
    lw   t0, 0(s0)             # token (sequential)
"""

_SOURCE_TAIL = """
    xor  t1, t0, s3            # hash mix (pure function of the token)
    slli t2, t1, 5
    add  t1, t1, t2
    srli t3, t1, 11
    xor  t1, t1, t3
    and  t4, t1, t7            # bucket index
    slli t4, t4, 2
    addi t4, t4, {table_base}
    lw   t5, 0(t4)             # dictionary probe  (problem load)
    add  s4, s4, t5            # accumulate (off the address path)
    addi s0, s0, 4
    addi a0, a0, 1
    j    loop
done:
    halt
"""


def build(n_tokens: int, table_words: int, filler_blocks: int, seed: int) -> Program:
    """Build the parser analogue.

    Args:
        n_tokens: tokens hashed.
        table_words: dictionary size in words (power of two).
        filler_blocks: 4-instruction filler blocks between the token
            read and the hash — widens the dynamic span of the miss
            computation, making the workload scope-sensitive.
        seed: RNG seed.
    """
    if table_words & (table_words - 1):
        raise ValueError("table_words must be a power of two")
    data = DataBuilder(seed=seed)
    rng = data.rng
    tokens_base = data.words(
        "tokens", (rng.getrandbits(30) for _ in range(n_tokens))
    )
    table_base = data.random_words("table", table_words, 0, 1 << 16)
    source = (
        _SOURCE_HEAD.format(
            n_tokens=n_tokens,
            tokens_base=tokens_base,
            table_mask=table_words - 1,
        )
        + _FILLER_BLOCK * filler_blocks
        + _SOURCE_TAIL.format(table_base=table_base)
    )
    return assemble(source, data=data.image, name="parser")
