"""``twolf``-analogue: standard-cell placement cost evaluation.

TimberWolf evaluates placement perturbations: read a net's pin list,
look up each pin's cell record (scattered over a big cell array), and
accumulate a bounding-box style cost.  Like parser, the miss
computations are small but spread out (pins are processed after other
bookkeeping), making twolf scope-sensitive in the paper's Figure 4.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.workloads.common import DataBuilder

INPUTS: Dict[str, Dict[str, Any]] = {
    "train": dict(n_moves=2400, n_cells=24 * 1024, filler_blocks=8, seed=81),
    "test": dict(n_moves=500, n_cells=1024, filler_blocks=8, seed=83),
}

_FILLER_BLOCK = """
    addi u0, u0, 7
    xor  u1, u1, u0
    srli u2, u1, 2
    add  u3, u3, u2
"""

# Cell record: [x, y, width, pad] — 4 words.
_SOURCE_HEAD = """
start:
    addi a0, zero, 0
    addi a1, zero, {n_moves}
    addi s0, zero, {pins_base}
loop:
    bge  a0, a1, done
    lw   t0, 0(s0)             # cell index a (sequential pin list)
    lw   t1, 4(s0)             # cell index b
"""

_SOURCE_TAIL = """
    slli t2, t0, 4             # 16-byte cell records
    addi t2, t2, {cells_base}
    lw   t3, 0(t2)             # cell_a.x      (problem load)
    lw   t4, 4(t2)             # cell_a.y
    slli t5, t1, 4
    addi t5, t5, {cells_base}
    lw   t6, 0(t5)             # cell_b.x      (problem load)
    sub  u4, t3, t6
    bge  u4, zero, abs_done
    sub  u4, zero, u4
abs_done:
    add  s4, s4, u4            # wire-length cost
    add  s5, s5, t4
    addi s0, s0, 8             # pin-list induction
    addi a0, a0, 1
    j    loop
done:
    halt
"""


def build(n_moves: int, n_cells: int, filler_blocks: int, seed: int) -> Program:
    """Build the twolf analogue.

    Args:
        n_moves: placement moves evaluated.
        n_cells: cells in the placement (16 bytes each).
        filler_blocks: bookkeeping filler between pin reads and cell
            lookups (scope sensitivity).
        seed: RNG seed.
    """
    data = DataBuilder(seed=seed)
    rng = data.rng
    pin_words = []
    for _ in range(n_moves):
        pin_words.extend([rng.randrange(n_cells), rng.randrange(n_cells)])
    pins_base = data.words("pins", pin_words)
    cell_words = []
    for _ in range(n_cells):
        cell_words.extend(
            [rng.randrange(4096), rng.randrange(4096), rng.randint(1, 16), 0]
        )
    cells_base = data.words("cells", cell_words)
    source = (
        _SOURCE_HEAD.format(n_moves=n_moves, pins_base=pins_base)
        + _FILLER_BLOCK * filler_blocks
        + _SOURCE_TAIL.format(cells_base=cells_base)
    )
    return assemble(source, data=data.image, name="twolf")
