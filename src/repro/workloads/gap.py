"""``gap``-analogue: bags of linked records with per-node arithmetic.

GAP (computational group theory) churns through heap-allocated bags of
small records.  The analogue walks short linked lists (heads drawn from
a sequential array, nodes scattered through a large arena) doing a
little arithmetic at each node.  Chains are short (default 4), so the
miss computation mixes one easy hop (the head fetch, whose address is
available early) with a few hard hops (pointer chasing).
"""

from __future__ import annotations

from typing import Any, Dict

from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.workloads.common import DataBuilder

INPUTS: Dict[str, Dict[str, Any]] = {
    "train": dict(n_lists=2600, chain_length=4, arena_words=64 * 1024, seed=41),
    "test": dict(n_lists=500, chain_length=4, arena_words=8192, seed=43),
}

#: Node layout: [next_ptr, value, weight, pad] — 4 words.
_NODE_WORDS = 4

_SOURCE = """
start:
    addi a0, zero, 0
    addi a1, zero, {n_lists}
    addi s0, zero, {heads_base}
outer:
    bge  a0, a1, done
    lw   t0, 0(s0)             # node = heads[i]   (sequential read)
inner:
    beq  t0, zero, next_list
    lw   t1, 4(t0)             # node->value       (problem load)
    lw   t2, 8(t0)             # node->weight
    mul  t3, t1, t2
    add  s4, s4, t3
    srli t4, t3, 5
    xor  s5, s5, t4
    lw   t0, 0(t0)             # node = node->next (problem load)
    j    inner
next_list:
    addi s0, s0, 4
    addi a0, a0, 1
    j    outer
done:
    halt
"""


def build(n_lists: int, chain_length: int, arena_words: int, seed: int) -> Program:
    """Build the gap analogue.

    Args:
        n_lists: number of linked lists walked.
        chain_length: nodes per list.
        arena_words: size of the node arena in words (node placement is
            a random shuffle across it).
        seed: RNG seed.
    """
    data = DataBuilder(seed=seed)
    rng = data.rng
    n_nodes = n_lists * chain_length
    slots = arena_words // _NODE_WORDS
    if n_nodes > slots:
        raise ValueError(
            f"arena too small: {n_nodes} nodes > {slots} slots"
        )
    arena_base = data.region("arena", arena_words)
    # Scatter nodes across the arena with a random slot permutation.
    slot_ids = list(range(slots))
    rng.shuffle(slot_ids)
    heads = []
    node_index = 0
    for _ in range(n_lists):
        chain = [
            arena_base + slot_ids[node_index + k] * _NODE_WORDS * 4
            for k in range(chain_length)
        ]
        node_index += chain_length
        heads.append(chain[0])
        for position, addr in enumerate(chain):
            next_ptr = chain[position + 1] if position + 1 < chain_length else 0
            data.image.store_words(
                addr,
                [next_ptr, rng.randint(1, 97), rng.randint(1, 13), 0],
            )
    heads_base = data.words("heads", heads)
    source = _SOURCE.format(n_lists=n_lists, heads_base=heads_base)
    return assemble(source, data=data.image, name="gap")
