"""``bzip2``-analogue: permutation-indirect block access.

Block-sorting compression spends its time walking permutation vectors:
``v = data[ptr[i]]`` — a sequential read of an index array followed by
a data access at the permuted (effectively random) position, plus a
small counting table.  The miss computation is *dense*: the address is
a short chain right before the load — per the paper's Figure 4
discussion, such programs need longer p-threads (induction unrolling)
rather than wide slicing scopes.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.workloads.common import DataBuilder

INPUTS: Dict[str, Dict[str, Any]] = {
    "train": dict(n_iter=9000, table_words=48 * 1024, seed=21),
    "test": dict(n_iter=1500, table_words=1536, seed=23),
}

_SOURCE = """
start:
    addi a0, zero, 0           # i
    addi a1, zero, {n_iter}
    addi s0, zero, {ptr_base}
    addi s2, zero, {counts_base}
    addi t7, zero, {count_mask}
loop:
    bge  a0, a1, done
    lw   t0, 0(s0)             # j = ptr[i]          (sequential)
    slli t1, t0, 2
    addi t1, t1, {data_base}
    lw   t2, 0(t1)             # v = data[j]         (problem load)
    and  t3, t2, t7            # bucket = v & mask
    slli t3, t3, 2
    add  t3, t3, s2
    lw   t4, 0(t3)             # counts[bucket]      (small, hot)
    addi t4, t4, 1
    sw   t4, 0(t3)
    add  s4, s4, t2            # checksum
    addi s0, s0, 4             # ptr induction
    addi a0, a0, 1
    j    loop
done:
    halt
"""


def build(n_iter: int, table_words: int, seed: int) -> Program:
    """Build the bzip2 analogue.

    Args:
        n_iter: iterations (each executes one permuted data access).
        table_words: size of the permuted ``data`` table in words;
            the ``ptr`` array holds ``n_iter`` indices into it.
        seed: RNG seed.
    """
    data = DataBuilder(seed=seed)
    rng = data.rng
    ptr_base = data.words(
        "ptr", (rng.randrange(table_words) for _ in range(n_iter))
    )
    data_base = data.random_words("data", table_words, 0, 1 << 20)
    counts_base = data.words("counts", [0] * 256)
    source = _SOURCE.format(
        n_iter=n_iter,
        ptr_base=ptr_base,
        data_base=data_base,
        counts_base=counts_base,
        count_mask=255,
    )
    return assemble(source, data=data.image, name="bzip2")
