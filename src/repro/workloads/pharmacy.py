"""The paper's running example: the mythical pharmacy cash register.

This is a line-for-line transcription of Figure 1: a loop over the
day's transactions that sums the appropriate price for each purchased
drug.  Load #09 (``drugs[drug_id].price``) is the static problem load —
its addresses do not form an arithmetic series, so only pre-execution
can cover its misses.  Three control paths feed it: fully-covered
transactions skip it, partially-covered ones use ``drug_id`` (#04) and
the rest use ``generic_drug_id`` (#06) — producing exactly the
two-armed slice tree of Figure 3.

PC numbering matches the paper: the setup preamble is placed *after*
the loop so the loop body occupies PCs #00–#13.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.workloads.common import DataBuilder, mixed_indices

#: Coverage codes.
FULL, PARTIAL, GENERIC = 0, 1, 2

INPUTS: Dict[str, Dict[str, Any]] = {
    # The paper's working-example proportions: 20% FULL / 60% PARTIAL /
    # 20% GENERIC, with roughly half of the price lookups missing.
    "train": dict(
        n_xact=8000, n_drugs=65536, hot_drugs=3072, hot_fraction=0.45, seed=11
    ),
    "test": dict(
        n_xact=1200, n_drugs=1024, hot_drugs=512, hot_fraction=0.45, seed=13
    ),
    # The exact Figure 2 scenario (100 iterations) for the worked example.
    "figure2": dict(
        n_xact=100, n_drugs=65536, hot_drugs=2048, hot_fraction=0.5, seed=7
    ),
}

_SOURCE = """
start:
    j    setup
loop:                          # pc 1..14 == paper #00..#13
    bge  r4, r1, done          # #00: i >= N_XACT -> exit
    lw   r6, 0(r5)             # #01: coverage = xact[i].coverage
    beq  r6, r2, induct        # #02: == FULL -> continue
    bne  r6, r3, generic       # #03: != PARTIAL -> generic path
    lw   r7, 4(r5)             # #04: drug_id = xact[i].drug_id
    j    shift                 # #05
generic:
    lw   r7, 8(r5)             # #06: drug_id = xact[i].generic_drug_id
shift:
    slli r7, r7, 2             # #07
    addi r7, r7, {drugs_base}  # #08: &drugs[drug_id].price
    lw   r8, 0(r7)             # #09: price  (problem load)
    add  r9, r9, r8            # #10: todays_take += price
induct:
    addi r5, r5, 16            # #11: xact induction
    addi r4, r4, 1             # #12: i++
    j    loop                  # #13
done:
    halt
setup:
    addi r4, zero, 0           # i
    addi r1, zero, {n_xact}    # N_XACT
    addi r2, zero, {full}      # FULL
    addi r3, zero, {partial}   # PARTIAL
    addi r5, zero, {xact_base}
    addi r9, zero, 0           # todays_take
    j    loop
"""

#: PCs of the paper's numbered instructions (paper number -> our PC).
PAPER_PCS = {paper: paper + 1 for paper in range(14)}
#: PC of the problem load (#09) and the induction trigger (#11).
PROBLEM_LOAD_PC = PAPER_PCS[9]
INDUCTION_PC = PAPER_PCS[11]


def build(
    n_xact: int,
    n_drugs: int,
    hot_drugs: int,
    hot_fraction: float,
    seed: int,
    full_fraction: float = 0.20,
    partial_fraction: float = 0.60,
) -> Program:
    """Build the pharmacy program.

    Args:
        n_xact: transactions (loop iterations).
        n_drugs: size of the drug price table, in entries (4B each);
            sized well beyond the L2 for the train input.
        hot_drugs: entries in the cache-resident hot set.
        hot_fraction: probability a lookup hits the hot set (controls
            the miss mix; the paper's example has half the #09
            instances missing).
        seed: RNG seed for deterministic data.
        full_fraction / partial_fraction: coverage-code mix (the
            remainder is GENERIC).
    """
    data = DataBuilder(seed=seed)
    rng = data.rng
    drug_ids = mixed_indices(rng, n_xact, n_drugs, hot_drugs, hot_fraction)
    generic_ids = mixed_indices(rng, n_xact, n_drugs, hot_drugs, hot_fraction)

    xact_words = []
    for i in range(n_xact):
        draw = rng.random()
        if draw < full_fraction:
            coverage = FULL
        elif draw < full_fraction + partial_fraction:
            coverage = PARTIAL
        else:
            coverage = GENERIC
        xact_words.extend([coverage, drug_ids[i], generic_ids[i], 0])
    xact_base = data.words("xact", xact_words)
    drugs_base = data.words(
        "drugs", (rng.randint(1, 500) for _ in range(n_drugs))
    )

    source = _SOURCE.format(
        n_xact=n_xact,
        full=FULL,
        partial=PARTIAL,
        xact_base=xact_base,
        drugs_base=drugs_base,
    )
    return assemble(source, data=data.image, name="pharmacy")
