"""Synthetic workload suite mirroring the paper's SPEC2000int set."""

from repro.workloads import (
    bzip2,
    crafty,
    gap,
    gcc,
    mcf,
    parser,
    pharmacy,
    twolf,
    vortex,
    vpr_place,
    vpr_route,
)
from repro.workloads.common import SUITE_HIERARCHY, DataBuilder, mixed_indices
from repro.workloads.suite import SUITE, Workload, available_inputs, build

__all__ = [
    "DataBuilder",
    "SUITE",
    "SUITE_HIERARCHY",
    "Workload",
    "available_inputs",
    "build",
    "bzip2",
    "crafty",
    "gap",
    "gcc",
    "mcf",
    "mixed_indices",
    "parser",
    "pharmacy",
    "twolf",
    "vortex",
    "vpr_place",
    "vpr_route",
]
