"""``crafty``-analogue: bit manipulation with unpredictable branches.

Chess search is ALU-dominated: bitboard masks, shifts and xors over
tables that mostly fit in the L2, with data-dependent branches that
mispredict often.  L2 misses are rare (the paper's crafty has a 0.93M
misses / 2.6B instructions ratio — the lowest in the suite) and the
benchmark is the one case where pre-execution *degrades* performance
slightly (-1%), because there is almost nothing to cover but overhead
is still paid.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.workloads.common import DataBuilder

INPUTS: Dict[str, Dict[str, Any]] = {
    "train": dict(n_iter=6000, hot_words=2048, cold_words=64 * 1024,
                  cold_period=23, seed=31),
    "test": dict(n_iter=1000, hot_words=1024, cold_words=2048,
                 cold_period=23, seed=33),
}

_SOURCE = """
start:
    addi a0, zero, 0
    addi a1, zero, {n_iter}
    addi s1, zero, {hot_base}
    addi t7, zero, {hot_mask}
    addi s3, zero, 0x9e3779b9  # mixing constant
    addi s7, zero, {move_seed} # move-generator state (register-resident,
    addi u0, zero, {cold_period}   # like real move generation)
    addi u1, zero, 0           # cold counter
loop:
    bge  a0, a1, done
    slli u4, s7, 13            # generate next move word (xorshift)
    xor  s7, s7, u4
    srli u5, s7, 7
    xor  s7, s7, u5
    xor  t1, s7, s3            # bit mixing
    srli t2, t1, 7
    xor  t1, t1, t2
    slli t2, t1, 3
    xor  t1, t1, t2
    and  t3, t1, t7            # hot table index
    slli t3, t3, 2
    add  t3, t3, s1
    lw   t4, 0(t3)             # attack table (hot: L2 resident)
    andi t5, t1, 1             # data-dependent branch (mispredicts)
    beq  t5, zero, evens
    xor  s4, s4, t4
    srli t6, t4, 3
    add  s5, s5, t6
    j    merge
evens:
    add  s4, s4, t4
    slli t6, t4, 1
    xor  s5, s5, t6
merge:
    addi u1, u1, 1
    bne  u1, u0, induct        # every cold_period-th: cold lookup
    addi u1, zero, 0
    xor  u2, s4, s6            # index depends on the branchy accumulator
    xor  u2, u2, s5            # AND the previous cold value (s6): the
    andi u2, u2, {cold_mask}   # slice both fans out across branch paths
    slli u2, u2, 2             # and chains serially through the prior
    addi u2, u2, {cold_base}   # miss, so no p-thread can hoist it
    lw   u3, 0(u2)             # rare cold lookup (the few L2 misses)
    xor  s6, s6, u3
induct:
    addi a0, a0, 1
    j    loop
done:
    halt
"""


def build(
    n_iter: int, hot_words: int, cold_words: int, cold_period: int, seed: int
) -> Program:
    """Build the crafty analogue.

    Args:
        n_iter: iterations of the move-evaluation loop.
        hot_words: size of the hot attack table (power of two; stays
            cache-resident).
        cold_words: size of the rarely-touched cold table (power of
            two; the source of the few L2 misses).
        cold_period: one cold lookup every this many iterations.
        seed: RNG seed.
    """
    if hot_words & (hot_words - 1) or cold_words & (cold_words - 1):
        raise ValueError("table sizes must be powers of two")
    data = DataBuilder(seed=seed)
    rng = data.rng
    hot_base = data.random_words("hot", hot_words, 0, 1 << 20)
    cold_base = data.random_words("cold", cold_words, 0, 1 << 20)
    source = _SOURCE.format(
        n_iter=n_iter,
        move_seed=rng.getrandbits(30) | 1,
        hot_base=hot_base,
        hot_mask=hot_words - 1,
        cold_base=cold_base,
        cold_mask=cold_words - 1,
        cold_period=cold_period,
    )
    return assemble(source, data=data.image, name="crafty")
