"""``gcc``-analogue: IR graph walk with operand indirection.

A compiler walks instruction nodes and dereferences their operands.
The analogue iterates a node table in order (large, so the node reads
themselves miss at line granularity) and follows two operand indices
into a separate value table at random positions.  Slices for the
operand loads pass through the node load — two-level computations of
moderate density.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.workloads.common import DataBuilder

INPUTS: Dict[str, Dict[str, Any]] = {
    "train": dict(n_nodes=5200, value_words=48 * 1024, seed=51),
    "test": dict(n_nodes=900, value_words=2048, seed=53),
}

#: Node layout: [opcode, op1_index, op2_index, pad] — 4 words.
_SOURCE = """
start:
    addi a0, zero, 0
    addi a1, zero, {n_nodes}
    addi s0, zero, {nodes_base}
loop:
    bge  a0, a1, done
    lw   t0, 0(s0)             # opcode        (sequential, line misses)
    lw   t1, 4(s0)             # op1 index
    lw   t2, 8(s0)             # op2 index
    slli t3, t1, 2
    addi t3, t3, {values_base}
    lw   t4, 0(t3)             # value[op1]    (problem load)
    slli t5, t2, 2
    addi t5, t5, {values_base}
    lw   t6, 0(t5)             # value[op2]    (problem load)
    andi u0, t0, 3             # dispatch on opcode class
    beq  u0, zero, fold_add
    addi u1, zero, 1
    beq  u0, u1, fold_xor
    sub  u2, t4, t6
    add  s4, s4, u2
    j    next
fold_add:
    add  u2, t4, t6
    add  s4, s4, u2
    j    next
fold_xor:
    xor  u2, t4, t6
    xor  s5, s5, u2
next:
    addi s0, s0, 16            # node induction
    addi a0, a0, 1
    j    loop
done:
    halt
"""


def build(n_nodes: int, value_words: int, seed: int) -> Program:
    """Build the gcc analogue.

    Args:
        n_nodes: IR nodes walked (16 bytes each).
        value_words: size of the operand value table in words.
        seed: RNG seed.
    """
    data = DataBuilder(seed=seed)
    rng = data.rng
    node_words = []
    for _ in range(n_nodes):
        node_words.extend(
            [
                rng.getrandbits(8),
                rng.randrange(value_words),
                rng.randrange(value_words),
                0,
            ]
        )
    nodes_base = data.words("nodes", node_words)
    values_base = data.random_words("values", value_words, 0, 1 << 16)
    source = _SOURCE.format(
        n_nodes=n_nodes, nodes_base=nodes_base, values_base=values_base
    )
    return assemble(source, data=data.image, name="gcc")
