"""``vpr.p``-analogue: simulated-annealing placement with computed swaps.

VPR's placer picks random blocks with an inline pseudo-random generator
and evaluates the swap.  Crucially, the *entire address computation is
register-resident arithmetic* (the multiplicative generator state),
with no loads on the path — the ideal case for pre-execution, which is
why the paper's vpr.p reaches the suite's best coverage (82%).  A
p-thread runs the generator ahead of the main thread by pure induction
unrolling: each level costs one ``mul`` (3-cycle dataflow height)
against a full main-thread iteration of sequencing, so lookahead grows
with every level the length budget allows — vpr is correspondingly
length-sensitive in the Figure 4 sweep.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.workloads.common import DataBuilder

INPUTS: Dict[str, Dict[str, Any]] = {
    "train": dict(n_swaps=4200, n_blocks=16 * 1024, lcg_seed=88172645463325147, seed=101),
    "test": dict(n_swaps=900, n_blocks=1024, lcg_seed=362436069363, seed=103),
}

#: Knuth's MMIX multiplier — odd, so x *= a is invertible mod 2^64.
_MULTIPLIER = 6364136223846793005

# Block record: [x, y, net, pad] — 4 words.
_SOURCE = """
start:
    addi a0, zero, 0
    addi a1, zero, {n_swaps}
    addi s0, zero, {lcg_seed}  # generator state (odd)
    addi s1, zero, {multiplier}
    addi t7, zero, {block_mask}
loop:
    bge  a0, a1, done
    mul  s0, s0, s1            # x *= a   (sole induction; pure register)
    srli t0, s0, 9             # decorrelate low bits
    and  t0, t0, t7            # block index
    slli t1, t0, 4             # 16-byte records
    addi t1, t1, {blocks_base}
    lw   t2, 0(t1)             # block.x        (problem load)
    lw   t3, 4(t1)             # block.y
    add  t4, t2, t3
    andi t5, t4, 1             # accept test on the loaded data: a
    beq  t5, zero, reject      # ~50% mispredicted branch, so the
    add  s4, s4, t2            # unassisted pipeline serializes on the
    j    next                  # miss — the latency p-threads then hide
reject:
    sub  s4, s4, t3
next:
    addi u0, u0, 5             # placement bookkeeping (filler)
    xor  u1, u1, u0
    srli u2, u1, 3
    add  u3, u3, u2
    addi u4, u4, 9
    xor  u5, u5, u4
    addi a0, a0, 1
    j    loop
done:
    halt
"""


def build(n_swaps: int, n_blocks: int, lcg_seed: int, seed: int) -> Program:
    """Build the vpr.p analogue.

    Args:
        n_swaps: annealing moves evaluated.
        n_blocks: placeable blocks (power of two; 16 bytes each).
        lcg_seed: initial generator state (made odd if necessary).
        seed: RNG seed for the data image.
    """
    if n_blocks & (n_blocks - 1):
        raise ValueError("n_blocks must be a power of two")
    data = DataBuilder(seed=seed)
    rng = data.rng
    block_words = []
    for _ in range(n_blocks):
        block_words.extend(
            [rng.randrange(512), rng.randrange(512), rng.getrandbits(12), 0]
        )
    blocks_base = data.words("blocks", block_words)
    source = _SOURCE.format(
        n_swaps=n_swaps,
        lcg_seed=lcg_seed | 1,
        multiplier=_MULTIPLIER,
        block_mask=n_blocks - 1,
        blocks_base=blocks_base,
    )
    return assemble(source, data=data.image, name="vpr.p")
