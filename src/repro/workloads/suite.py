"""Workload suite registry.

Maps the paper's ten benchmark/input pairs to their analogue modules
and provides uniform construction.  ``pharmacy`` (the Figure 1 running
example) rides along as an eleventh entry for examples and tests but is
not part of :data:`SUITE` (the Table 1/2 benchmark list).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from types import ModuleType
from typing import Any, Dict, List, Optional

from repro.isa.program import Program
from repro.memory.hierarchy import HierarchyConfig
from repro.workloads.common import SUITE_HIERARCHY

#: Paper benchmark name -> analogue module (within repro.workloads).
_MODULES: Dict[str, str] = {
    "bzip2": "bzip2",
    "crafty": "crafty",
    "gap": "gap",
    "gcc": "gcc",
    "mcf": "mcf",
    "parser": "parser",
    "twolf": "twolf",
    "vortex": "vortex",
    "vpr.p": "vpr_place",
    "vpr.r": "vpr_route",
    "pharmacy": "pharmacy",
}

#: The Table 1 / Table 2 benchmark list, in the paper's order.
SUITE: List[str] = [
    "bzip2",
    "crafty",
    "gap",
    "gcc",
    "mcf",
    "parser",
    "twolf",
    "vortex",
    "vpr.p",
    "vpr.r",
]


@dataclass(frozen=True)
class Workload:
    """A built workload: program plus suite-level configuration."""

    name: str
    input_name: str
    program: Program
    hierarchy: HierarchyConfig
    description: str


def _module(name: str) -> ModuleType:
    if name not in _MODULES:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(_MODULES)}"
        )
    return importlib.import_module(f"repro.workloads.{_MODULES[name]}")


def available_inputs(name: str) -> List[str]:
    """Input-set names a workload defines (always includes 'train')."""
    return sorted(_module(name).INPUTS)


def build(
    name: str,
    input_name: str = "train",
    hierarchy: Optional[HierarchyConfig] = None,
    **overrides: Any,
) -> Workload:
    """Build a workload by suite name.

    Args:
        name: suite name ("mcf", "vpr.p", "pharmacy", ...).
        input_name: which input set ("train" for measurement runs,
            "test" for the Figure 7 static-selection scenario).
        hierarchy: cache configuration; defaults to the suite standard.
        **overrides: per-parameter overrides of the input set.
    """
    module = _module(name)
    if input_name not in module.INPUTS:
        raise KeyError(
            f"workload {name!r} has no input {input_name!r}; "
            f"known: {sorted(module.INPUTS)}"
        )
    params = dict(module.INPUTS[input_name])
    params.update(overrides)
    program = module.build(**params)
    return Workload(
        name=name,
        input_name=input_name,
        program=program,
        hierarchy=hierarchy or SUITE_HIERARCHY,
        description=(module.__doc__ or "").strip().splitlines()[0],
    )
