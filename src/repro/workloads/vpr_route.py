"""``vpr.r``-analogue: maze-router wavefront expansion.

VPR's router expands a wavefront over the routing-resource graph: pop a
node index from the frontier queue, read its cost record from a large
node array, and push successors.  The frontier itself is a sequential,
cache-friendly queue — so the *index* of the next expensive node load
is available well ahead, making the misses highly coverable; the paper
reports its best speedup (24%) on vpr.r.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.workloads.common import DataBuilder

INPUTS: Dict[str, Dict[str, Any]] = {
    "train": dict(n_expansions=4200, n_nodes=32 * 1024, seed=111),
    "test": dict(n_expansions=800, n_nodes=1024, seed=113),
}

# Node record: [base_cost, congestion, succ_delta, pad] — 4 words.
_SOURCE = """
start:
    addi a0, zero, 0
    addi a1, zero, {n_expansions}
    addi s0, zero, {frontier_base}   # read cursor
    addi s1, zero, {frontier_end}    # write cursor (appends)
    addi t7, zero, {node_mask}
loop:
    bge  a0, a1, done
    lw   t0, 0(s0)             # node index (sequential frontier pop)
    slli t1, t0, 4             # 16-byte node records
    addi t1, t1, {nodes_base}
    lw   t2, 0(t1)             # node.base_cost   (problem load)
    lw   t3, 4(t1)             # node.congestion
    lw   t4, 8(t1)             # node.succ_delta
    add  t5, t2, t3            # path cost
    add  s4, s4, t5
    add  t6, t0, t4            # successor index
    and  t6, t6, t7
    sw   t6, 0(s1)             # push successor (sequential append)
    addi s1, s1, 4
    addi s0, s0, 4             # frontier induction
    addi a0, a0, 1
    j    loop
done:
    halt
"""


def build(n_expansions: int, n_nodes: int, seed: int) -> Program:
    """Build the vpr.r analogue.

    Args:
        n_expansions: wavefront expansions.
        n_nodes: routing nodes (power of two; 16 bytes each).
        seed: RNG seed.
    """
    if n_nodes & (n_nodes - 1):
        raise ValueError("n_nodes must be a power of two")
    data = DataBuilder(seed=seed)
    rng = data.rng
    node_words = []
    for _ in range(n_nodes):
        node_words.extend(
            [
                rng.randint(1, 64),
                rng.randint(0, 15),
                rng.randrange(n_nodes),
                0,
            ]
        )
    nodes_base = data.words("nodes", node_words)
    # Seed frontier with random node indices; the appended region
    # (written then re-read) follows it.
    frontier_seed = [rng.randrange(n_nodes) for _ in range(64)]
    frontier_base = data.region("frontier", n_expansions + 128)
    data.image.store_words(frontier_base, frontier_seed)
    frontier_end = frontier_base + len(frontier_seed) * 4
    source = _SOURCE.format(
        n_expansions=n_expansions,
        frontier_base=frontier_base,
        frontier_end=frontier_end,
        node_mask=n_nodes - 1,
        nodes_base=nodes_base,
    )
    return assemble(source, data=data.image, name="vpr.r")
