"""``mcf``-analogue: serial pointer chasing (network simplex).

MCF's minimum-cost-flow solver chases long chains of arc and node
pointers; every address depends on the value of the *previous* cache
miss.  This is the pathological case for pre-execution — the paper
covers only 10% of mcf's L2 misses, and stresses that this is a
property of program structure, not a selection failure: a p-thread that
mimics the chain must itself serialize through the same misses, so
there is almost no sequencing advantage to exploit.

The analogue walks long randomized pointer chains (heads from a
sequential array), with a couple of arithmetic instructions per node so
the main thread has *some* non-memory work.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.workloads.common import DataBuilder

INPUTS: Dict[str, Dict[str, Any]] = {
    "train": dict(n_chains=120, chain_length=90, arena_words=96 * 1024, seed=61),
    "test": dict(n_chains=40, chain_length=30, arena_words=8192, seed=63),
}

_NODE_WORDS = 4  # [next, cost, flow, pad]

_SOURCE = """
start:
    addi a0, zero, 0
    addi a1, zero, {n_chains}
    addi s0, zero, {heads_base}
    addi s5, zero, 500         # cheap-arc cost threshold
outer:
    bge  a0, a1, done
    lw   t0, 0(s0)             # node = heads[i]
inner:
    beq  t0, zero, next_chain
    lw   t1, 4(t0)             # node->cost    (same line as next ptr)
    add  s4, s4, t1
    slt  t2, t1, s5
    add  s6, s6, t2
    lw   t0, 0(t0)             # node = node->next   (serial problem load)
    j    inner
next_chain:
    addi s0, s0, 4
    addi a0, a0, 1
    j    outer
done:
    halt
"""


def build(n_chains: int, chain_length: int, arena_words: int, seed: int) -> Program:
    """Build the mcf analogue.

    Args:
        n_chains: number of chains traversed.
        chain_length: nodes per chain (long, like simplex pivots).
        arena_words: node arena size in words.
        seed: RNG seed.
    """
    data = DataBuilder(seed=seed)
    rng = data.rng
    n_nodes = n_chains * chain_length
    slots = arena_words // _NODE_WORDS
    if n_nodes > slots:
        raise ValueError(f"arena too small: {n_nodes} nodes > {slots} slots")
    arena_base = data.region("arena", arena_words)
    slot_ids = list(range(slots))
    rng.shuffle(slot_ids)
    heads = []
    node_index = 0
    for _ in range(n_chains):
        chain = [
            arena_base + slot_ids[node_index + k] * _NODE_WORDS * 4
            for k in range(chain_length)
        ]
        node_index += chain_length
        heads.append(chain[0])
        for position, addr in enumerate(chain):
            next_ptr = chain[position + 1] if position + 1 < chain_length else 0
            data.image.store_words(
                addr, [next_ptr, rng.randint(1, 1000), 0, 0]
            )
    heads_base = data.words("heads", heads)
    source = _SOURCE.format(n_chains=n_chains, heads_base=heads_base)
    return assemble(source, data=data.image, name="mcf")
