"""Shared infrastructure for the synthetic workload suite.

The paper evaluates on SPEC2000int.  Those binaries and inputs are not
reproducible here (see DESIGN.md §2); instead each workload in this
package is a small kernel hand-written to exhibit the *memory behaviour
class* of one benchmark/input pair — pointer chasing, hash probing,
multi-level indirection, computed indices, and so on — against caches
scaled down in proportion.

Every workload module exposes::

    INPUTS: Dict[str, Dict[str, Any]]   # 'train' and 'test' at minimum
    build(**params) -> Program          # deterministic given a seed

and registers itself in :mod:`repro.workloads.suite`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, List

from repro.isa.program import DataImage
from repro.memory.cache import CacheConfig
from repro.memory.hierarchy import HierarchyConfig

#: Cache hierarchy used by the workload suite: the paper's geometry
#: scaled down 4-8x in capacity (4KB L1 / 32KB L2) so the kernels'
#: scaled working sets land in the same miss regimes SPEC2000 did
#: against 16KB/256KB.  Line sizes, associativities and latencies are
#: the paper's.
SUITE_HIERARCHY = HierarchyConfig(
    l1=CacheConfig(name="L1D", size_bytes=4 * 1024, line_bytes=32, assoc=2, hit_latency=2),
    l2=CacheConfig(name="L2", size_bytes=32 * 1024, line_bytes=64, assoc=4, hit_latency=6),
    mem_latency=70,
    mshr_entries=32,
)

#: Base addresses for workload data regions, spaced far apart so
#: regions never collide regardless of size parameters.
MB = 1 << 20
REGION_BASES = [i * 16 * MB + 4096 for i in range(1, 17)]


@dataclass
class DataBuilder:
    """Helper for laying out workload data structures.

    Wraps a :class:`DataImage` with region allocation and deterministic
    random fills.
    """

    seed: int
    image: DataImage = field(default_factory=DataImage)
    _next_region: int = 0

    def __post_init__(self) -> None:
        self.rng = random.Random(self.seed)

    def region(self, name: str, num_words: int) -> int:
        """Allocate the next region base and record it; returns base."""
        if self._next_region >= len(REGION_BASES):
            raise ValueError("too many data regions")
        base = REGION_BASES[self._next_region]
        self._next_region += 1
        self.image.add_region(name, base, num_words)
        return base

    def words(self, name: str, values: Iterable[int]) -> int:
        """Allocate a region and fill it with ``values``; returns base."""
        values = list(values)
        base = self.region(name, len(values))
        self.image.store_words(base, values)
        return base

    def random_words(self, name: str, count: int, lo: int, hi: int) -> int:
        """Region of ``count`` uniform random words in ``[lo, hi]``."""
        rand = self.rng.randint
        return self.words(name, (rand(lo, hi) for _ in range(count)))

    def permutation(self, name: str, count: int) -> int:
        """Region containing a random permutation of ``0..count-1``."""
        perm = list(range(count))
        self.rng.shuffle(perm)
        return self.words(name, perm)


def mixed_indices(
    rng: random.Random,
    count: int,
    table_size: int,
    hot_size: int,
    hot_fraction: float,
) -> List[int]:
    """Indices drawn from a hot set with probability ``hot_fraction``.

    The hot set (first ``hot_size`` entries) stays cache-resident, so
    ``hot_fraction`` directly controls the kernel's hit/miss mix — the
    knob used to place each workload in its benchmark's miss regime.
    """
    out = []
    for _ in range(count):
        if rng.random() < hot_fraction:
            out.append(rng.randrange(hot_size))
        else:
            out.append(rng.randrange(hot_size, table_size))
    return out
