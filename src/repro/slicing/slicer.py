"""Dynamic backward slicing of cache-miss computations.

Given a dynamic trace and the index of a problem-load instance, the
slicer computes the **backward data-dependence slice** of the load: the
chain of dynamic instructions that produced the load's address (and,
through memory, the values feeding that address), restricted to a
bounded *slicing scope* — the window of dynamic instructions examined
before the miss (the paper's default is 1024).

Register dependences are followed through ``dep1``/``dep2`` edges, and
memory dependences through ``memdep`` edges (a load sliced into the
body pulls in the store that produced its value, which is what later
enables store-load pair elimination).  Branches never appear: p-threads
are control-less and slices carry data dependences only.

The slice is returned as dynamic indices in **descending** order.  The
paper flattens the dependence DAG into this linear order to form the
candidate chain: the p-thread triggered at slice position *k* has a
body consisting of every slice instruction younger than position *k* —
any producer older than the trigger has already executed in the main
thread by launch time and becomes a seed live-in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.engine.trace import Trace


@dataclass(frozen=True)
class DynamicSlice:
    """A backward slice of one dynamic problem-load instance.

    Attributes:
        root: dynamic index of the problem load.
        indices: slice member dynamic indices, descending (root first).
        dep_positions: for each slice position, the positions (into
            ``indices``) of its producers that are inside the slice.
            Producers outside the scope window are live-ins and do not
            appear.
    """

    root: int
    indices: Tuple[int, ...]
    dep_positions: Tuple[Tuple[int, ...], ...]

    def __len__(self) -> int:
        return len(self.indices)


class Slicer:
    """Backward slicer over one trace.

    Args:
        trace: the dynamic trace to slice.
        scope: slicing scope in dynamic instructions — only producers
            within ``scope`` instructions before the root are followed.
        max_length: stop growing the slice beyond this many
            instructions (the tree only needs candidates up to the
            maximum p-thread length, plus slack for optimization).
    """

    def __init__(self, trace: Trace, scope: int = 1024, max_length: int = 64) -> None:
        if scope < 1:
            raise ValueError("slicing scope must be >= 1")
        if max_length < 1:
            raise ValueError("max slice length must be >= 1")
        self.trace = trace
        self.scope = scope
        self.max_length = max_length

    def slice_at(self, root: int) -> DynamicSlice:
        """Compute the backward slice of the dynamic load at ``root``."""
        trace = self.trace
        if not 0 <= root < len(trace):
            raise IndexError(f"root index out of range: {root}")
        dep1 = trace.dep1
        dep2 = trace.dep2
        memdep = trace.memdep
        horizon = root - self.scope

        members: List[int] = [root]
        member_set = {root}
        # Grow the slice in descending dynamic order.  A max-heap over
        # candidate producer indices gives exactly that order; a simple
        # sorted working list is sufficient at these slice lengths.
        frontier: List[int] = []

        def push(idx: int) -> None:
            if idx >= 0 and idx > horizon and idx not in member_set:
                member_set.add(idx)
                frontier.append(idx)

        def expand(idx: int) -> None:
            push(int(dep1[idx]))
            push(int(dep2[idx]))
            # memdep is -1 for anything but a store-forwarded load.
            push(int(memdep[idx]))

        expand(root)
        while frontier and len(members) <= self.max_length:
            nxt = max(frontier)
            frontier.remove(nxt)
            members.append(nxt)
            expand(nxt)

        position = {idx: pos for pos, idx in enumerate(members)}
        deps: List[Tuple[int, ...]] = []
        for idx in members:
            producer_positions = []
            for producer in (int(dep1[idx]), int(dep2[idx]), int(memdep[idx])):
                if producer in position and producer != idx:
                    producer_positions.append(position[producer])
            deps.append(tuple(sorted(set(producer_positions))))
        result = DynamicSlice(
            root=root,
            indices=tuple(members),
            dep_positions=tuple(deps),
        )
        # Debug-mode post-pass (lazy import: repro.analysis imports us).
        from repro.analysis.report import assert_clean, verification_enabled

        if verification_enabled():
            from repro.analysis.verifier import verify_slice

            assert_clean(verify_slice(result), f"slice_at(root={root})")
        return result
