"""Slice-tree file I/O.

The paper's tool flow is file-based: "A functional cache simulator
generates program traces and constructs backward slices of all dynamic
L2 misses and collects them into slice trees **which are written out to
files**.  The p-thread selection tool takes a slice tree file and
parameters ... and produces a list of static p-threads.  This
arrangement allows multiple p-thread sets ... to be generated quickly."

This module provides that arrangement: JSON serialization of slice
trees (plus the trigger-count statistics selection needs), so sweeps
over pipeline/latency/constraint parameters re-run selection without
re-tracing.  The schema is versioned and self-describing.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, IO, Union

from repro.slicing.slice_tree import SliceNode, SliceTree

#: Schema version written into every file.
FORMAT_VERSION = 1


class SliceTreeFormatError(Exception):
    """Raised when a slice-tree file cannot be parsed."""


def _node_to_dict(node: SliceNode) -> dict:
    return {
        "pc": node.pc,
        "visits": node.visits,
        "dist_sum": node.dist_sum,
        "dep_depths": list(node.dep_depths),
        "truncated": node.truncated,
        "children": [
            _node_to_dict(child)
            for child in sorted(node.children.values(), key=lambda c: c.pc)
        ],
    }


def _node_from_dict(
    data: dict, depth: int, parent: SliceNode = None
) -> SliceNode:
    try:
        node = SliceNode(
            pc=int(data["pc"]),
            depth=depth,
            parent=parent,
            visits=int(data["visits"]),
            dist_sum=int(data["dist_sum"]),
            dep_depths=tuple(int(d) for d in data.get("dep_depths", ())),
            truncated=int(data.get("truncated", 0)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SliceTreeFormatError(f"malformed node record: {exc}") from exc
    for child_data in data.get("children", ()):
        child = _node_from_dict(child_data, depth + 1, node)
        node.children[child.pc] = child
    return node


def tree_to_dict(tree: SliceTree) -> dict:
    """Serialize one tree to a JSON-compatible dict."""
    return {
        "load_pc": tree.load_pc,
        "slices_inserted": tree.slices_inserted,
        "root": _node_to_dict(tree.root),
    }


def tree_from_dict(data: dict) -> SliceTree:
    """Rebuild a tree from :func:`tree_to_dict` output."""
    try:
        tree = SliceTree(int(data["load_pc"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise SliceTreeFormatError(f"malformed tree record: {exc}") from exc
    tree.slices_inserted = int(data.get("slices_inserted", 0))
    tree.root = _node_from_dict(data["root"], depth=0)
    return tree


def save_slice_trees(
    path: Union[str, Path, IO[str]],
    trees: Dict[int, SliceTree],
    dc_trig: Dict[int, int],
    program_name: str = "",
    sample_instructions: int = 0,
) -> None:
    """Write a slice-tree file.

    Args:
        path: file path or open text handle.
        trees: trees keyed by problem PC (loads or branches).
        dc_trig: dynamic execution counts of every static PC in the
            sample — the trigger statistics selection needs.
        program_name / sample_instructions: provenance metadata.
    """
    payload = {
        "format": "repro-slice-trees",
        "version": FORMAT_VERSION,
        "program": program_name,
        "sample_instructions": sample_instructions,
        "dc_trig": {str(pc): count for pc, count in dc_trig.items()},
        "trees": [tree_to_dict(tree) for _, tree in sorted(trees.items())],
    }
    if hasattr(path, "write"):
        json.dump(payload, path)
    else:
        Path(path).write_text(json.dumps(payload))


def load_slice_trees(
    path: Union[str, Path, IO[str]],
) -> "SliceTreeFile":
    """Read a slice-tree file written by :func:`save_slice_trees`."""
    if hasattr(path, "read"):
        payload = json.load(path)
    else:
        payload = json.loads(Path(path).read_text())
    if payload.get("format") != "repro-slice-trees":
        raise SliceTreeFormatError("not a repro slice-tree file")
    if payload.get("version") != FORMAT_VERSION:
        raise SliceTreeFormatError(
            f"unsupported version {payload.get('version')!r}"
        )
    trees = {}
    for tree_data in payload.get("trees", ()):
        tree = tree_from_dict(tree_data)
        trees[tree.load_pc] = tree
    return SliceTreeFile(
        trees=trees,
        dc_trig={
            int(pc): int(count)
            for pc, count in payload.get("dc_trig", {}).items()
        },
        program_name=payload.get("program", ""),
        sample_instructions=int(payload.get("sample_instructions", 0)),
    )


class SliceTreeFile:
    """Contents of a slice-tree file: trees plus selection statistics."""

    def __init__(
        self,
        trees: Dict[int, SliceTree],
        dc_trig: Dict[int, int],
        program_name: str = "",
        sample_instructions: int = 0,
    ) -> None:
        self.trees = trees
        self.dc_trig = dc_trig
        self.program_name = program_name
        self.sample_instructions = sample_instructions

    def total_misses(self) -> int:
        return sum(tree.total_misses() for tree in self.trees.values())
