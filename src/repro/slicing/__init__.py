"""Dynamic backward slicing and the slice tree."""

from repro.slicing.serialize import (
    SliceTreeFile,
    SliceTreeFormatError,
    load_slice_trees,
    save_slice_trees,
)
from repro.slicing.slice_tree import (
    SliceNode,
    SliceTree,
    build_slice_trees,
    build_slice_trees_for_roots,
)
from repro.slicing.slicer import DynamicSlice, Slicer

__all__ = [
    "DynamicSlice",
    "SliceNode",
    "SliceTree",
    "SliceTreeFile",
    "SliceTreeFormatError",
    "Slicer",
    "build_slice_trees",
    "build_slice_trees_for_roots",
    "load_slice_trees",
    "save_slice_trees",
]
