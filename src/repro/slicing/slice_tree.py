"""The slice tree: the paper's compact space of candidate p-threads.

A :class:`SliceTree` is built per static problem load.  The load is the
root; each dynamic miss contributes its backward slice as a root-to-leaf
path.  Paths that share a suffix of the computation (in the paper's
Figure 3, the instructions between the load and the control divergence)
share tree nodes, which is exactly how the tree represents p-thread
*overlap*:

* every node is a candidate static p-thread — trigger = the node's
  instruction, body = the path from just below the node up to the root;
* a node's ``miss_visits`` is the p-thread's ``DCpt-cm`` (how many
  dynamic misses that candidate pre-executes), and the invariant
  ``DCpt-cm(parent) == sum(DCpt-cm(children))`` holds by construction
  for interior nodes whose every continuation stayed within slicing
  scope;
* parent/child (direct or transitive) is the *only* overlap relation.

Each node is annotated with ``DISTpl`` — the average distance in
dynamic main-thread instructions between the node's instance and the
root load instance — from which any candidate's main-thread
``DISTtrig`` values are recovered by subtraction, exactly as in the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.engine.trace import Trace
from repro.isa.program import Program
from repro.slicing.slicer import DynamicSlice, Slicer


@dataclass
class SliceNode:
    """One node of a slice tree.

    Attributes:
        pc: static PC of the instruction at this node.
        depth: path distance from the root (root is 0).
        parent: parent node (``None`` at the root).
        children: child nodes keyed by static PC.
        visits: dynamic slices whose path passes through this node;
            since trees are built from miss slices only, this is the
            candidate's ``DCpt-cm``.
        dist_sum: sum over visits of (root dynamic index − node dynamic
            index); ``dist_sum / visits`` is ``DISTpl``.
        dep_depths: depths (toward the root, i.e. smaller numbers) of
            this node's producers *within the slice*, recorded from the
            first dynamic slice that created the node.  Producers
            outside the slice are seed live-ins and are not listed.
        truncated: number of slices that *ended* at this node because
            the slicer ran out of scope or length (the computation
            continued, but out of view).
    """

    pc: int
    depth: int
    parent: Optional["SliceNode"] = None
    children: Dict[int, "SliceNode"] = field(default_factory=dict)
    visits: int = 0
    dist_sum: int = 0
    dep_depths: Tuple[int, ...] = ()
    truncated: int = 0

    @property
    def dist_pl(self) -> float:
        """Average dynamic distance from this node to the root load."""
        if not self.visits:
            return 0.0
        return self.dist_sum / self.visits

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def path_to_root(self) -> List["SliceNode"]:
        """Nodes from this node up to (and including) the root."""
        path: List[SliceNode] = []
        node: Optional[SliceNode] = self
        while node is not None:
            path.append(node)
            node = node.parent
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SliceNode(pc={self.pc}, depth={self.depth}, "
            f"visits={self.visits}, dist_pl={self.dist_pl:.1f})"
        )


class SliceTree:
    """Slice tree for one static problem load.

    Args:
        load_pc: static PC of the problem load at the root.
    """

    def __init__(self, load_pc: int) -> None:
        self.load_pc = load_pc
        self.root = SliceNode(pc=load_pc, depth=0)
        self.slices_inserted = 0

    def insert(self, dynamic_slice: DynamicSlice, trace: Trace) -> None:
        """Insert one dynamic miss slice as a root-to-leaf path."""
        indices = dynamic_slice.indices
        if trace.pc[indices[0]] != self.load_pc:
            raise ValueError(
                f"slice root pc {trace.pc[indices[0]]} does not match tree "
                f"load pc {self.load_pc}"
            )
        self.slices_inserted += 1
        root_index = indices[0]
        node = self.root
        node.visits += 1
        for position in range(1, len(indices)):
            dyn_index = indices[position]
            pc = int(trace.pc[dyn_index])
            child = node.children.get(pc)
            if child is None:
                child = SliceNode(
                    pc=pc,
                    depth=position,
                    parent=node,
                    dep_depths=dynamic_slice.dep_positions[position],
                )
                node.children[pc] = child
            child.visits += 1
            child.dist_sum += root_index - dyn_index
            node = child
        node.truncated += 1

    def nodes(self) -> Iterator[SliceNode]:
        """All nodes in pre-order (root first)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def leaves(self) -> Iterator[SliceNode]:
        """All leaf nodes."""
        for node in self.nodes():
            if node.is_leaf:
                yield node

    def num_nodes(self) -> int:
        return sum(1 for _ in self.nodes())

    def max_depth(self) -> int:
        return max(node.depth for node in self.nodes())

    def total_misses(self) -> int:
        """Dynamic misses represented by this tree."""
        return self.root.visits

    def check_invariants(self) -> None:
        """Verify the parent/child DCpt-cm invariant.

        For every interior node, visits must equal the sum of its
        children's visits plus the slices that terminated at the node
        itself (scope/length truncation).  Raises ``AssertionError`` on
        violation — used heavily in tests.
        """
        for node in self.nodes():
            child_sum = sum(child.visits for child in node.children.values())
            if node.visits != child_sum + node.truncated:
                raise AssertionError(
                    f"slice tree invariant violated at pc {node.pc} "
                    f"(depth {node.depth}): visits={node.visits}, "
                    f"children={child_sum}, truncated={node.truncated}"
                )

    def render(self, program: Optional[Program] = None, max_depth: int = 12) -> str:
        """ASCII rendering of the tree (for examples and debugging)."""
        lines: List[str] = []

        def visit(node: SliceNode, indent: int) -> None:
            if node.depth > max_depth:
                return
            text = f"pc#{node.pc:04d}"
            if program is not None:
                text = f"#{node.pc:02d}: {program[node.pc]}"
            lines.append(
                f"{'  ' * indent}{text}  "
                f"[DCpt-cm={node.visits}, DISTpl={node.dist_pl:.1f}]"
            )
            for child in sorted(node.children.values(), key=lambda c: c.pc):
                visit(child, indent + 1)

        visit(self.root, 0)
        return "\n".join(lines)


def build_slice_trees(
    trace: Trace,
    scope: int = 1024,
    max_length: int = 64,
    miss_level: int = 3,
    start: int = 0,
    end: Optional[int] = None,
) -> Dict[int, SliceTree]:
    """Build slice trees for every static load with misses in a trace.

    This is the paper's "functional cache simulator ... constructs
    backward slices of all dynamic L2 misses and collects them into
    slice trees" step.

    Args:
        trace: the dynamic trace.
        scope: slicing scope (dynamic instructions).
        max_length: maximum slice (tree) depth retained.
        miss_level: minimum :class:`~repro.memory.hierarchy.MemoryLevel`
            that counts as a problem miss (3 = served from memory, i.e.
            an L2 miss).
        start / end: restrict to dynamic indices in ``[start, end)``
            (used by the selection-granularity experiments).

    Returns:
        Mapping from static load PC to its slice tree.
    """
    return build_slice_trees_for_roots(
        trace,
        (int(i) for i in trace.miss_indices(miss_level)),
        scope=scope,
        max_length=max_length,
        start=start,
        end=end,
    )


def build_slice_trees_for_roots(
    trace: Trace,
    roots,
    scope: int = 1024,
    max_length: int = 64,
    start: int = 0,
    end: Optional[int] = None,
) -> Dict[int, SliceTree]:
    """Build slice trees for arbitrary dynamic root instances.

    The general form of :func:`build_slice_trees`: roots need not be
    loads.  Branch pre-execution uses it with the dynamic indices of
    *mispredicted branches* as roots (the paper's footnote 1: "all of
    our methods do apply in that scenario").
    """
    slicer = Slicer(trace, scope=scope, max_length=max_length)
    trees: Dict[int, SliceTree] = {}
    stop = len(trace) if end is None else min(end, len(trace))
    for root in roots:
        root = int(root)
        if root < start or root >= stop:
            continue
        root_pc = int(trace.pc[root])
        tree = trees.get(root_pc)
        if tree is None:
            tree = SliceTree(root_pc)
            trees[root_pc] = tree
        tree.insert(slicer.slice_at(root), trace)
    return trees
