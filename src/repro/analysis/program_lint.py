"""Workload-level lints over full programs (PL001–PL005).

Where the verifier (``verifier.py``) checks p-thread invariants, this
module checks the *source programs* the pipeline consumes.  The bundled
workload analogues are hand-written assembly; these lints catch the
mistakes hand-written assembly actually accumulates:

========  ========================================================
PL001     the source does not assemble (syntax error, undefined or
          duplicate label) — reported with line/column.
PL002     unreachable instructions (dead code the trace can never
          visit, so the profile and the selector never see it).
PL003     a register is read somewhere but written nowhere in the
          program.  Reading the initial zero of a register that *is*
          written elsewhere is idiomatic (cheap initialization); a
          register with no definition anywhere is almost certainly a
          typo.
PL004     a load whose address is statically constant reads a word
          the data image never initializes and no store can write —
          it will always produce 0, which is rarely intended.
PL005     execution can fall off the end of the program (a reachable
          final instruction that neither halts nor jumps).
========  ========================================================
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.analysis.dataflow import ControlFlowGraph, constant_registers
from repro.analysis.report import Diagnostic, Severity
from repro.isa.assembler import AssemblerError, assemble
from repro.isa.program import DataImage, Program, ProgramError


def _unreachable_runs(cfg: ControlFlowGraph) -> List[range]:
    """Maximal runs of unreachable instruction indices."""
    reachable = cfg.reachable()
    runs: List[range] = []
    start: Optional[int] = None
    for index in range(len(cfg) + 1):
        dead = index < len(cfg) and index not in reachable
        if dead and start is None:
            start = index
        elif not dead and start is not None:
            runs.append(range(start, index))
            start = None
    return runs


def _lint_reachability(
    program: Program, cfg: ControlFlowGraph
) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    for run in _unreachable_runs(cfg):
        first = program[run.start]
        span = (
            f"pc#{run.start:04d}"
            if len(run) == 1
            else f"pc#{run.start:04d}..#{run.stop - 1:04d}"
        )
        diagnostics.append(
            Diagnostic(
                "PL002",
                Severity.WARNING,
                f"unreachable code at {span} "
                f"({len(run)} instruction(s), starting with {first})",
                pc=run.start,
            )
        )
    reachable = cfg.reachable()
    for index in sorted(cfg.falls_off_end):
        if index in reachable:
            diagnostics.append(
                Diagnostic(
                    "PL005",
                    Severity.ERROR,
                    f"execution can fall off the end of the program "
                    f"after {program[index]}",
                    pc=index,
                )
            )
    return diagnostics


def _lint_registers(program: Program) -> List[Diagnostic]:
    """PL003 — registers read somewhere but written nowhere."""
    written: Set[int] = {0}
    for inst in program.instructions:
        dest = inst.dest()
        if dest is not None:
            written.add(dest)
    diagnostics: List[Diagnostic] = []
    reported: Set[int] = set()
    for inst in program.instructions:
        for src in inst.sources():
            if src is None or src in written or src in reported:
                continue
            reported.add(src)
            diagnostics.append(
                Diagnostic(
                    "PL003",
                    Severity.WARNING,
                    f"register r{src} is read (first at {inst}) but "
                    "never written anywhere in the program — it is "
                    "always the initial 0",
                    pc=inst.pc,
                )
            )
    return diagnostics


def _initialized(data: DataImage, addr: int) -> bool:
    if addr in data.words:
        return True
    return any(addr in region for region in data.regions.values())


def _lint_data_image(
    program: Program, cfg: ControlFlowGraph
) -> List[Diagnostic]:
    """PL004 — constant-address loads from never-initialized words.

    Conservative: if any store's address is not statically constant it
    could write anywhere, so the check is skipped entirely.
    """
    consts = constant_registers(cfg)
    store_addrs: Set[int] = set()
    for index, inst in enumerate(program.instructions):
        if not inst.is_store:
            continue
        state = consts[index]
        if state is None:
            continue  # unreachable store: writes nothing
        base = 0 if inst.rs1 == 0 else state.get(inst.rs1)
        if base is None:
            return []  # a store to an unknown address: anything goes
        store_addrs.add(base + inst.imm)
    diagnostics: List[Diagnostic] = []
    for index, inst in enumerate(program.instructions):
        if not inst.is_load:
            continue
        state = consts[index]
        if state is None:
            continue  # unreachable, or loop-varying state
        base = 0 if inst.rs1 == 0 else state.get(inst.rs1)
        if base is None:
            continue  # address not statically known
        addr = base + inst.imm
        if addr in store_addrs or _initialized(program.data, addr):
            continue
        diagnostics.append(
            Diagnostic(
                "PL004",
                Severity.WARNING,
                f"load from address {addr:#x} ({inst}): the data image "
                "never initializes that word and no store writes it — "
                "the load always produces 0",
                pc=index,
            )
        )
    return diagnostics


def lint_program(program: Program) -> List[Diagnostic]:
    """Run all workload-level lints (PL002–PL005) over ``program``."""
    cfg = ControlFlowGraph.from_program(program)
    diagnostics: List[Diagnostic] = []
    diagnostics.extend(_lint_reachability(program, cfg))
    diagnostics.extend(_lint_registers(program))
    diagnostics.extend(_lint_data_image(program, cfg))
    diagnostics.sort(
        key=lambda d: (d.pc if d.pc is not None else -1, d.code)
    )
    return diagnostics


def lint_source(
    source: str,
    data: Optional[DataImage] = None,
    name: str = "program",
) -> List[Diagnostic]:
    """Lint assembly text: PL001 on assembly failure, else the program
    lints on the assembled result."""
    try:
        program = assemble(source, data=data, name=name)
    except AssemblerError as exc:
        return [
            Diagnostic(
                "PL001",
                Severity.ERROR,
                str(exc),
                line=exc.line_no,
                column=exc.column,
            )
        ]
    except ProgramError as exc:
        # Link-stage failures (undefined labels, out-of-range targets)
        # carry no line information.
        return [Diagnostic("PL001", Severity.ERROR, str(exc))]
    return lint_program(program)


def lint_workload(name: str, input_name: str = "train") -> List[Diagnostic]:
    """Build a bundled workload and lint its program."""
    from repro.workloads.suite import build

    workload = build(name, input_name)
    return lint_program(workload.program)
